"""Walk through the paper's worked examples and its competitive analysis.

The script reproduces, end to end:

1. Figure 1 — the example instance with its feasible schedule of cost 9, its
   optimal schedule of cost 7, and ALG's schedule (also cost 7);
2. Figure 2 — the realised per-packet impacts (1, 2, 5) and (1, 3, 3, 7)
   computed by the Section IV-C charging scheme;
3. the dual-fitting certificate of Section IV on a random instance: the dual
   solution of Figure 4, feasibility of its halved variant (Lemma 5), and the
   Theorem 1 bound ``ALG ≤ 2·(2/ε + 1) · OPT`` checked against the Figure 3
   LP lower bound.

Run with:  python examples/competitive_analysis_demo.py
"""

from __future__ import annotations

from repro.analysis import (
    attach_decision_log,
    compute_charges,
    evaluate_competitive_ratio,
    solve_lp_lower_bound,
    verify_certificate,
)
from repro.baselines import brute_force_optimal
from repro.core import OpportunisticLinkScheduler
from repro.experiments import small_lp_instances
from repro.simulation import simulate
from repro.utils.tables import format_table
from repro.workloads import figure1_instance, figure2_instances, figure2_reported_impacts


def figure1_demo() -> None:
    print("=" * 70)
    print("Figure 1: worked example")
    print("=" * 70)
    instance = figure1_instance()
    result = simulate(
        instance.topology, OpportunisticLinkScheduler(), instance.packets, record_trace=True
    )
    optimum = brute_force_optimal(instance)
    print(f"paper's feasible schedule cost : 9.0  (p5 over the fixed (s2, d3) link)")
    print(f"paper's optimal schedule cost  : 7.0")
    print(f"brute-force optimum            : {optimum.cost}")
    print(f"ALG's cost                     : {result.total_weighted_latency}")
    print("\nALG's slot-by-slot schedule:")
    print(result.trace.format())


def figure2_demo() -> None:
    print("\n" + "=" * 70)
    print("Figure 2: realised impacts (charging scheme)")
    print("=" * 70)
    for key, instance in figure2_instances().items():
        result = simulate(
            instance.topology, OpportunisticLinkScheduler(), instance.packets, record_trace=True
        )
        charges = compute_charges(result)
        expected = figure2_reported_impacts()[key]
        rows = [
            [f"p{pid + 1}", expected[pid], charges.charge(pid)] for pid in sorted(expected)
        ]
        print(format_table(["packet", "paper impact", "measured impact"], rows, title=f"\npacket set {key}"))


def certificate_demo() -> None:
    print("\n" + "=" * 70)
    print("Dual fitting and Theorem 1 on a random hybrid instance")
    print("=" * 70)
    instance = list(small_lp_instances(num_instances=1, num_packets=10, seed=3).values())[0]
    policy = OpportunisticLinkScheduler(record_decisions=True)
    result = simulate(instance.topology, policy, instance.packets, record_trace=True)
    attach_decision_log(result, policy.impact_dispatcher)

    epsilon = 1.0
    cert = verify_certificate(
        result, instance.topology, epsilon=epsilon, check_lemma4_constraints=True
    )
    lp = solve_lp_lower_bound(instance, capacity=1.0 / (2.0 + epsilon), objective="fractional")
    report = evaluate_competitive_ratio(instance, epsilon, use_lp=True)

    print(f"ALG cost                         : {cert.algorithm_cost:.2f}")
    print(f"dual objective D (Figure 4)      : {cert.dual_objective:.2f}")
    print(f"feasible dual value D/2 (Lemma 5): {cert.feasible_dual_value:.2f}")
    print(f"LP lower bound, capacity 1/(2+ε) : {lp.objective_value:.2f}")
    print(f"Lemma 1 holds                    : {cert.lemma1.holds}")
    print(f"Lemma 2 holds                    : {cert.lemma2.holds}")
    print(f"Lemma 4 violations               : {len(cert.lemma4_violations)}")
    print(f"halved dual feasible (Lemma 5)   : {not cert.dual_violations}")
    print(f"empirical competitive ratio      : {report.empirical_ratio:.3f}")
    print(f"Theorem 1 bound 2*(2/ε+1), ε=1   : {report.theoretical_bound:.1f}")
    print(f"within bound                     : {report.within_bound}")


def main() -> None:
    figure1_demo()
    figure2_demo()
    certificate_demo()


if __name__ == "__main__":
    main()
