"""Quickstart: schedule opportunistic links on a small reconfigurable fabric.

Builds a 4-rack ProjecToR-style fabric (2 lasers / 2 photodetectors per
rack), generates a skewed online workload, runs the paper's online algorithm
(worst-case-impact dispatch + greedy stable matching) and prints the headline
metrics together with a slot-by-slot trace of the first few transmission
slots.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import OpportunisticLinkScheduler, simulate
from repro.network import projector_fabric
from repro.simulation import completion_time_statistics, latency_statistics
from repro.workloads import uniform_weights, zipf_workload


def main() -> None:
    # 1. The two-tier topology: every rack has 2 lasers (transmitters) and
    #    2 photodetectors (receivers); any laser can point at any other rack.
    topology = projector_fabric(
        num_racks=4, lasers_per_rack=2, photodetectors_per_rack=2, seed=1
    )
    print(f"topology: {topology}")

    # 2. An online packet sequence: Zipf-skewed rack pairs, heavy-tailed weights.
    packets = zipf_workload(
        topology,
        num_packets=60,
        exponent=1.3,
        weight_sampler=uniform_weights(1, 10),
        arrival_rate=2.0,
        seed=2,
    )
    print(f"workload: {len(packets)} packets over {max(p.arrival for p in packets)} slots")

    # 3. The paper's algorithm, executed by the slot-level simulation engine.
    result = simulate(
        topology, OpportunisticLinkScheduler(), packets, record_trace=True
    )

    print(f"\nall packets delivered: {result.all_delivered}")
    print(f"total weighted latency: {result.total_weighted_latency:.1f}")
    print(f"simulated slots:        {result.num_slots}")

    weighted = latency_statistics(result)
    completion = completion_time_statistics(result)
    print(f"mean weighted latency:  {weighted.mean:.2f}  (p99 {weighted.p99:.2f})")
    print(f"mean completion time:   {completion.mean:.2f} slots  (max {completion.maximum:.0f})")

    print("\nfirst three transmission slots:")
    print(result.trace.format(max_slots=3))


if __name__ == "__main__":
    main()
