"""Hybrid topologies: when does traffic stay on the static network?

The dispatcher sends a packet over the direct (static) source→destination
link whenever the fixed-link latency ``w_p · d_l(p)`` does not exceed the
worst-case impact of the best opportunistic edge.  This example sweeps the
fixed-link delay of a hybrid ProjecToR fabric and shows how the traffic split
and the total weighted latency respond — the quantitative version of the
paper's claim that the model "also applies to hybrid topologies".

Run with:  python examples/hybrid_offload.py
"""

from __future__ import annotations

from repro.experiments import hybrid_fixed_link_sweep
from repro.utils.tables import format_table


def main() -> None:
    rows = hybrid_fixed_link_sweep(
        fixed_link_delays=(1, 2, 3, 4, 6, 8, 12, 16),
        num_racks=6,
        num_packets=150,
        seed=37,
    )
    print(
        format_table(
            ["fixed-link delay", "total weighted latency", "share on fixed links", "share on opportunistic links"],
            [
                [r.fixed_link_delay, r.total_weighted_latency, r.fixed_link_fraction, r.reconfigurable_fraction]
                for r in rows
            ],
            title="ALG on a hybrid fabric (Zipf traffic, 6 racks)",
        )
    )
    print(
        "\nFast static links absorb almost all traffic; once their delay exceeds the\n"
        "typical queueing-adjusted impact of an opportunistic edge, the dispatcher\n"
        "moves the traffic onto the reconfigurable network and the total latency\n"
        "saturates at the reconfigurable-only level."
    )


if __name__ == "__main__":
    main()
