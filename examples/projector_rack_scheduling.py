"""Compare the paper's algorithm against classic schedulers on rack-to-rack traffic.

This is the scenario the paper's introduction motivates: a reconfigurable
datacenter fabric carrying skewed, bursty rack-to-rack traffic where a few
elephant flows dominate.  The example runs ALG, the classic comparators
(FIFO, iSLIP, per-slot maximum-weight matching, random) and the two
single-component ablations on three workloads and prints the resulting
total-weighted-latency table, normalised to ALG.

Run with:  python examples/projector_rack_scheduling.py
"""

from __future__ import annotations

from repro.baselines import ablation_policies, standard_baselines
from repro.core import OpportunisticLinkScheduler
from repro.experiments import (
    compare_policies_on_suite,
    format_comparison_table,
    standard_projector_instances,
)


def main() -> None:
    instances = standard_projector_instances(
        num_racks=6, lasers_per_rack=2, num_packets=120, seed=2021
    )
    # Keep the three workloads that stress the scheduler the most.
    selected = {name: instances[name] for name in ("zipf", "elephant-mice", "incast")}

    policies = {
        "alg": OpportunisticLinkScheduler(),
        **standard_baselines(seed=0),
        **ablation_policies(),
    }

    rows = compare_policies_on_suite(selected, policies)
    print(format_comparison_table(rows, title="Total weighted latency (lower is better)"))

    print("\nReading the table:")
    print(" * ratio_to_alg > 1 means the policy is worse than the paper's algorithm;")
    print(" * 'impact+fifo' keeps the paper's dispatcher but drops the stable matching;")
    print(" * 'least-loaded+stable' keeps the stable matching but drops the dispatcher;")
    print("   comparing the two shows how much each component contributes.")


if __name__ == "__main__":
    main()
