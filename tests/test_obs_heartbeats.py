"""Progress heartbeats: experiment-runner and search-loop JSONL streams."""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentRunner, ExperimentSpec, ExperimentTask, RunnerConfig
from repro.obs import read_metric_records


def _echo_task(task: ExperimentTask) -> dict:
    return {"index": task.index, "x": task.params["x"]}


def _make_spec(n: int = 4) -> ExperimentSpec:
    return ExperimentSpec(
        name="echo", task_fn=_echo_task, grid=[{"x": i} for i in range(n)], seed=3
    )


class TestRunnerHeartbeats:
    def test_one_heartbeat_per_task_in_grid_order(self, tmp_path):
        path = tmp_path / "hb.jsonl"
        runner = ExperimentRunner(RunnerConfig(metrics_path=str(path)))
        rows = runner.run(_make_spec(4))
        assert [row["index"] for row in rows] == [0, 1, 2, 3]
        records = read_metric_records(path)
        assert len(records) == 4
        assert [r["task_index"] for r in records] == [0, 1, 2, 3]
        assert all(r["record"] == "runner_heartbeat" for r in records)
        assert all(r["experiment"] == "echo" for r in records)
        assert all(r["tasks_total"] == 4 for r in records)
        assert records[-1]["rows_emitted"] == 4
        assert all(r["elapsed_s"] >= 0.0 for r in records)

    def test_parallel_rows_and_heartbeats_match_serial(self, tmp_path):
        serial_path = tmp_path / "serial.jsonl"
        parallel_path = tmp_path / "parallel.jsonl"
        spec = _make_spec(6)
        serial_rows = ExperimentRunner(
            RunnerConfig(jobs=1, metrics_path=str(serial_path))
        ).run(spec)
        parallel_rows = ExperimentRunner(
            RunnerConfig(jobs=3, metrics_path=str(parallel_path))
        ).run(spec)
        assert serial_rows == parallel_rows
        strip = lambda recs: [
            {k: v for k, v in r.items() if k != "elapsed_s"} for r in recs
        ]
        assert strip(read_metric_records(serial_path)) == strip(
            read_metric_records(parallel_path)
        )

    def test_no_heartbeat_file_without_metrics_path(self, tmp_path):
        rows = ExperimentRunner(RunnerConfig()).run(_make_spec(2))
        assert len(rows) == 2
        assert list(tmp_path.iterdir()) == []


class TestSearchHeartbeats:
    @pytest.fixture
    def smoke_search(self):
        import dataclasses

        from repro.search import AdversarialSearch, BUDGETS, get_space, objective_from_json

        def make(clock=None, generations=2):
            config = dataclasses.replace(
                BUDGETS["smoke"], generations=generations, seed=5
            )
            kwargs = {} if clock is None else {"clock": clock}
            return AdversarialSearch(
                get_space("adversarial"),
                objective_from_json({"kind": "empirical"}),
                config,
                **kwargs,
            )

        return make

    def test_one_heartbeat_per_generation(self, smoke_search, tmp_path):
        ticks = iter(float(i) for i in range(100))
        search = smoke_search(clock=lambda: next(ticks))
        path = tmp_path / "search.jsonl"
        result = search.run(metrics_path=str(path))
        records = read_metric_records(path)
        assert [r["generation"] for r in records] == list(
            range(len(records))
        )
        assert len(records) == result.generations_run
        last = records[-1]
        assert last["record"] == "search_heartbeat"
        assert last["best_score"] == pytest.approx(result.best_history[-1])
        assert last["evaluations_total"] == result.evaluations
        assert last["evaluations_total"] > 0
        assert last["evals_per_s"] > 0  # fake clock: deterministic elapsed
        assert last["archive_size"] > 0

    def test_heartbeats_never_change_search_results(self, smoke_search, tmp_path):
        silent = smoke_search().run()
        chatty = smoke_search().run(
            metrics_path=str(tmp_path / "hb.jsonl")
        )
        assert [e.to_json() for e in silent.hall_of_fame] == [
            e.to_json() for e in chatty.hall_of_fame
        ]

    def test_resume_appends_to_the_stream(self, smoke_search, tmp_path):
        from repro.search import resume_search

        path = tmp_path / "hb.jsonl"
        checkpoint = tmp_path / "ckpt.jsonl"
        search = smoke_search(generations=2)
        search.run(checkpoint_path=str(checkpoint), metrics_path=str(path))
        first = read_metric_records(path)
        resume_search(
            str(checkpoint), generations=4, metrics_path=str(path)
        )
        combined = read_metric_records(path)
        assert combined[: len(first)] == first
        assert len(combined) > len(first)
        resumed = combined[len(first):]
        assert [r["generation"] for r in resumed] == list(
            range(2, 2 + len(resumed))
        )
