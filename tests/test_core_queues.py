"""Tests for repro.core.queues.PendingChunkPool."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet, split_into_chunks
from repro.core.queues import PendingChunkPool
from repro.exceptions import SimulationError


def make_chunks(pid: int, weight: float, edge=("t1", "r1"), arrival: int = 1, delay: int = 1):
    packet = Packet(pid, "s", "d", weight=weight, arrival=arrival)
    return split_into_chunks(packet, edge[0], edge[1], edge_delay=delay)


class TestMutation:
    def test_add_and_len(self):
        pool = PendingChunkPool()
        pool.add_all(make_chunks(0, 1.0, delay=3))
        assert len(pool) == 3
        assert not pool.is_empty()

    def test_add_duplicate_rejected(self):
        pool = PendingChunkPool()
        chunk = make_chunks(0, 1.0)[0]
        pool.add(chunk)
        with pytest.raises(SimulationError):
            pool.add(chunk)

    def test_add_non_pending_rejected(self):
        pool = PendingChunkPool()
        chunk = make_chunks(0, 1.0)[0]
        chunk.remaining_work = 0.0
        with pytest.raises(SimulationError):
            pool.add(chunk)

    def test_remove(self):
        pool = PendingChunkPool()
        chunk = make_chunks(0, 1.0)[0]
        pool.add(chunk)
        pool.remove(chunk)
        assert pool.is_empty()
        assert chunk not in pool

    def test_remove_absent_rejected(self):
        pool = PendingChunkPool()
        with pytest.raises(SimulationError):
            pool.remove(make_chunks(0, 1.0)[0])

    def test_clear(self):
        pool = PendingChunkPool()
        pool.add_all(make_chunks(0, 1.0, delay=2))
        pool.clear()
        assert pool.is_empty()
        assert pool.busy_transmitters() == set()


class TestQueries:
    def test_chunks_on_edge_sorted_by_priority(self):
        pool = PendingChunkPool()
        light = make_chunks(0, 1.0)[0]
        heavy = make_chunks(1, 5.0)[0]
        pool.add(light)
        pool.add(heavy)
        ordered = pool.chunks_on_edge("t1", "r1")
        assert ordered[0] is heavy and ordered[1] is light

    def test_adjacent_chunks_by_transmitter_and_receiver(self):
        pool = PendingChunkPool()
        a = make_chunks(0, 1.0, edge=("t1", "r1"))[0]
        b = make_chunks(1, 2.0, edge=("t1", "r2"))[0]
        c = make_chunks(2, 3.0, edge=("t2", "r1"))[0]
        d = make_chunks(3, 4.0, edge=("t2", "r2"))[0]
        for chunk in (a, b, c, d):
            pool.add(chunk)
        adjacent = pool.adjacent_chunks("t1", "r1")
        assert set(adjacent) == {a, b, c}

    def test_eligible_chunks_respects_eligible_time(self):
        pool = PendingChunkPool()
        packet = Packet(0, "s", "d", weight=1.0, arrival=1)
        late = split_into_chunks(packet, "t1", "r1", edge_delay=1, head_delay=5)[0]
        early = make_chunks(1, 1.0, edge=("t2", "r2"))[0]
        pool.add(late)
        pool.add(early)
        assert pool.eligible_chunks(now=1) == [early]
        assert set(pool.eligible_chunks(now=6)) == {late, early}

    def test_weight_aggregates(self):
        pool = PendingChunkPool()
        pool.add(make_chunks(0, 2.0, edge=("t1", "r1"))[0])
        pool.add(make_chunks(1, 3.0, edge=("t1", "r2"))[0])
        assert pool.total_weight() == pytest.approx(5.0)
        assert pool.weight_at_transmitter("t1") == pytest.approx(5.0)
        assert pool.weight_at_receiver("r1") == pytest.approx(2.0)
        assert pool.weight_at_receiver("rX") == 0.0

    def test_busy_sets(self):
        pool = PendingChunkPool()
        pool.add(make_chunks(0, 1.0, edge=("t1", "r2"))[0])
        assert pool.busy_transmitters() == {"t1"}
        assert pool.busy_receivers() == {"r2"}

    def test_chunks_at_transmitter_and_receiver(self):
        pool = PendingChunkPool()
        a = make_chunks(0, 1.0, edge=("t1", "r1"))[0]
        b = make_chunks(1, 2.0, edge=("t1", "r2"))[0]
        pool.add(a)
        pool.add(b)
        assert set(pool.chunks_at_transmitter("t1")) == {a, b}
        assert pool.chunks_at_receiver("r2") == [b]

    def test_indices_cleaned_after_removal(self):
        pool = PendingChunkPool()
        chunk = make_chunks(0, 1.0)[0]
        pool.add(chunk)
        pool.remove(chunk)
        assert pool.weight_at_transmitter("t1") == 0.0
        assert pool.chunks_on_edge("t1", "r1") == []
        assert pool.adjacent_chunks("t1", "r1") == []


class TestSortedIndexes:
    """The pool keeps every index in priority order via sorted insertion."""

    def test_adjacent_chunks_in_priority_order_without_duplicates(self):
        pool = PendingChunkPool()
        shared = make_chunks(0, 3.0, edge=("t1", "r1"))[0]  # in both incidence lists
        at_tx = make_chunks(1, 5.0, edge=("t1", "r2"))[0]
        at_rx = make_chunks(2, 1.0, edge=("t2", "r1"))[0]
        for chunk in (shared, at_tx, at_rx):
            pool.add(chunk)
        adjacent = pool.adjacent_chunks("t1", "r1")
        assert adjacent == [at_tx, shared, at_rx]  # decreasing weight, shared once

    def test_interleaved_add_remove_keeps_order(self):
        pool = PendingChunkPool()
        chunks = [make_chunks(pid, weight, edge=("t1", "r1"))[0]
                  for pid, weight in ((0, 2.0), (1, 9.0), (2, 5.0), (3, 7.0))]
        for chunk in chunks:
            pool.add(chunk)
        pool.remove(chunks[1])
        pool.add(make_chunks(4, 8.0, edge=("t1", "r1"))[0])
        weights = [c.weight for c in pool.chunks_on_edge("t1", "r1")]
        assert weights == sorted(weights, reverse=True) == [8.0, 7.0, 5.0, 2.0]

    def test_eligible_chunks_priority_order(self):
        pool = PendingChunkPool()
        for pid, weight in ((0, 1.0), (1, 4.0), (2, 2.0)):
            pool.add(make_chunks(pid, weight, edge=(f"t{pid}", f"r{pid}"))[0])
        weights = [c.weight for c in pool.eligible_chunks(now=10)]
        assert weights == [4.0, 2.0, 1.0]


def delayed_chunk(pid: int, weight: float, edge=("t1", "r1"), arrival: int = 1, head_delay: int = 0):
    packet = Packet(pid, "s", "d", weight=weight, arrival=arrival)
    return split_into_chunks(packet, edge[0], edge[1], edge_delay=1, head_delay=head_delay)[0]


class TestEligibilityPartition:
    """Future chunks wait in activation buckets; queries stay exact."""

    def test_next_activation_time(self):
        pool = PendingChunkPool()
        assert pool.next_activation_time() is None
        pool.add(delayed_chunk(0, 1.0, head_delay=4))  # eligible at 5
        pool.add(delayed_chunk(1, 1.0, edge=("t2", "r2"), head_delay=8))  # at 9
        assert pool.next_activation_time() == 5
        pool.advance_eligibility(5)
        assert pool.next_activation_time() == 9

    def test_next_activation_skips_emptied_bucket(self):
        pool = PendingChunkPool()
        early = delayed_chunk(0, 1.0, head_delay=2)
        pool.add(early)
        pool.add(delayed_chunk(1, 1.0, edge=("t2", "r2"), head_delay=6))
        pool.remove(early)  # bucket at 3 empties; its heap entry goes stale
        assert pool.next_activation_time() == 7

    def test_has_eligible(self):
        pool = PendingChunkPool()
        assert not pool.has_eligible(1)
        pool.add(delayed_chunk(0, 1.0, head_delay=3))
        assert not pool.has_eligible(2)
        assert pool.has_eligible(4)

    def test_non_monotone_queries_filter_exactly(self):
        pool = PendingChunkPool()
        early = delayed_chunk(0, 1.0)
        late = delayed_chunk(1, 5.0, edge=("t2", "r2"), head_delay=6)
        pool.add(early)
        pool.add(late)
        assert set(pool.eligible_chunks(now=9)) == {early, late}  # watermark now 9
        assert pool.eligible_chunks(now=2) == [early]
        assert list(pool.iter_eligible(now=2)) == [early]
        assert pool.has_eligible(2)
        assert pool.eligible_through == 9

    def test_iter_eligible_fifo_order_across_activations(self):
        pool = PendingChunkPool()
        # A later-arriving chunk activates *earlier* than an older chunk with
        # a long head delay — FIFO order must follow arrival, not activation.
        old_delayed = delayed_chunk(0, 1.0, edge=("t1", "r1"), arrival=1, head_delay=5)
        young_prompt = delayed_chunk(1, 9.0, edge=("t2", "r2"), arrival=3)
        pool.add(old_delayed)
        pool.add(young_prompt)
        assert list(pool.iter_eligible_fifo(3)) == [young_prompt]
        assert list(pool.iter_eligible_fifo(6)) == [old_delayed, young_prompt]
        # The lazily-built FIFO list is maintained by later mutations too.
        newest = delayed_chunk(2, 4.0, edge=("t3", "r3"), arrival=6)
        pool.add(newest)
        pool.remove(young_prompt)
        assert list(pool.iter_eligible_fifo(6)) == [old_delayed, newest]

    def test_non_monotone_query_leaves_watermark_and_heap_consistent(self):
        # An out-of-order (earlier) query must neither regress the watermark
        # nor promote future buckets early; the partition keeps answering
        # exactly before, during and after the non-monotone excursion.
        pool = PendingChunkPool()
        prompt = delayed_chunk(0, 1.0)
        mid = delayed_chunk(1, 2.0, edge=("t2", "r2"), head_delay=4)  # eligible at 5
        late = delayed_chunk(2, 3.0, edge=("t3", "r3"), head_delay=8)  # eligible at 9
        pool.add_all([prompt, mid, late])
        assert set(pool.eligible_chunks(7)) == {prompt, mid}  # watermark -> 7
        # Earlier queries filter; nothing moves.
        assert pool.eligible_chunks(3) == [prompt]
        assert not pool.has_eligible(0)
        assert pool.eligible_through == 7
        assert pool.next_activation_time() == 9
        # Resuming the monotone walk still promotes the last bucket exactly.
        assert set(pool.eligible_chunks(9)) == {prompt, mid, late}
        assert pool.next_activation_time() is None

    def test_non_monotone_query_after_future_removal_skips_stale_heap_entry(self):
        pool = PendingChunkPool()
        doomed = delayed_chunk(0, 1.0, head_delay=2)  # eligible at 3
        keeper = delayed_chunk(1, 1.0, edge=("t2", "r2"), head_delay=6)  # at 7
        pool.add_all([doomed, keeper])
        pool.advance_eligibility(1)
        pool.remove(doomed)  # bucket at 3 empties; heap entry goes stale
        # A non-monotone query right after the removal must not resurrect
        # (or trip over) the stale activation time.
        assert pool.eligible_chunks(0) == []
        assert pool.next_activation_time() == 7
        assert pool.has_eligible(7)
        assert list(pool.iter_eligible(7)) == [keeper]

    def test_late_add_below_watermark_is_immediately_eligible(self):
        pool = PendingChunkPool()
        pool.advance_eligibility(10)
        straggler = delayed_chunk(0, 1.0, arrival=1, head_delay=3)  # eligible at 4
        pool.add(straggler)
        assert pool.eligible_chunks(10) == [straggler]
        # ... but a query before its own eligible_time still excludes it.
        assert pool.eligible_chunks(2) == []
        assert pool.next_activation_time() is None

    def test_clear_resets_partition(self):
        pool = PendingChunkPool()
        pool.add(delayed_chunk(0, 1.0, head_delay=4))
        list(pool.iter_eligible_fifo(1))  # force the FIFO view into existence
        pool.clear()
        assert pool.next_activation_time() is None
        assert pool.eligible_chunks(99) == []
        assert list(pool.iter_eligible_fifo(99)) == []


class TestFaultEvictionCornerCases:
    """Evict/re-admit cycles the fault layer performs on edge failures.

    When a laser, photodetector or edge fails, the engine removes every
    stranded chunk from the pool (possibly mid-transmission) and re-adds the
    survivors when the hardware recovers — at a later slot, so the re-added
    chunk's ``eligible_time`` usually lies *below* the watermark.  These
    tests pin the pool invariants that cycle leans on.
    """

    def test_mid_transmission_eviction_accounts_partial_work(self):
        pool = PendingChunkPool()
        chunk = make_chunks(0, 1.0)[0]
        other = make_chunks(1, 1.0, edge=("t2", "r2"))[0]
        pool.add(chunk)
        pool.add(other)
        # engine transmits 0.6 of the chunk, then the edge fails mid-flight
        chunk.remaining_work = 0.4
        pool.debit_work(0.6)
        assert pool.total_pending_work() == pytest.approx(1.4)
        pool.remove(chunk)  # eviction debits exactly the *remaining* work
        assert pool.total_pending_work() == pytest.approx(1.0)
        assert pool.chunks_on_edge("t1", "r1") == []
        assert pool.busy_transmitters() == {"t2"}

    def test_evicted_partial_chunk_readmits_cleanly(self):
        pool = PendingChunkPool()
        chunk = make_chunks(0, 1.0)[0]
        pool.add(chunk)
        chunk.remaining_work = 0.25
        pool.debit_work(0.75)
        pool.remove(chunk)
        assert pool.is_empty()
        pool.add(chunk)  # recovery re-admits the half-sent chunk
        assert pool.total_pending_work() == pytest.approx(0.25)
        assert pool.chunks_on_edge("t1", "r1") == [chunk]
        assert pool.eligible_chunks(now=5) == [chunk]

    def test_readmission_below_watermark_after_recovery(self):
        # Failure at slot 2, recovery at slot 9: the watermark has moved far
        # past the chunk's eligible_time by the time it is re-added, and it
        # must be eligible again *immediately* — a requeued chunk never waits
        # out its head delay twice.
        pool = PendingChunkPool()
        chunk = delayed_chunk(0, 1.0, head_delay=1)  # eligible at 2
        pool.add(chunk)
        assert pool.eligible_chunks(now=2) == [chunk]
        pool.remove(chunk)  # laser fails at slot 2
        pool.advance_eligibility(9)  # simulation keeps running without it
        pool.add(chunk)  # laser recovers at slot 9
        assert pool.eligible_chunks(now=9) == [chunk]
        # non-monotone queries still filter exactly against eligible_time
        assert pool.eligible_chunks(now=1) == []
        assert pool.next_activation_time() is None

    def test_eviction_from_future_bucket_then_requeue(self):
        # The failure can land while the chunk is still waiting out its head
        # delay (future partition).  Eviction must empty its activation
        # bucket; re-admission later must not trip over the stale heap entry.
        pool = PendingChunkPool()
        waiting = delayed_chunk(0, 2.0, head_delay=6)  # eligible at 7
        bystander = delayed_chunk(1, 1.0, edge=("t2", "r2"), head_delay=9)
        pool.add_all([waiting, bystander])
        pool.advance_eligibility(2)
        pool.remove(waiting)  # fails at slot 2, long before activating
        assert pool.next_activation_time() == 10  # bucket at 7 is gone
        pool.advance_eligibility(8)
        pool.add(waiting)  # recovers at slot 8 — now below the watermark
        assert pool.eligible_chunks(now=8) == [waiting]
        assert list(pool.iter_eligible(7)) == [waiting]
        assert pool.next_activation_time() == 10

    def test_requeue_preserves_fifo_order(self):
        # A chunk that is evicted and re-admitted keeps its place in the
        # FIFO view: arrival order, not re-admission order, drives FIFO
        # scheduling, so a fault cannot reorder equal-priority service.
        pool = PendingChunkPool()
        first = delayed_chunk(0, 1.0, edge=("t1", "r1"), arrival=1)
        second = delayed_chunk(1, 1.0, edge=("t2", "r2"), arrival=2)
        third = delayed_chunk(2, 1.0, edge=("t3", "r3"), arrival=3)
        pool.add_all([first, second, third])
        assert list(pool.iter_eligible_fifo(4)) == [first, second, third]
        pool.remove(first)  # first's edge fails ...
        pool.advance_eligibility(6)
        pool.add(first)  # ... and recovers: still served first
        assert list(pool.iter_eligible_fifo(6)) == [first, second, third]

    def test_eviction_order_is_priority_order(self):
        # The engine evicts stranded chunks in chunks_on_edge order and
        # re-admits in that same order; the pool must present them by
        # decreasing weight regardless of insertion order.
        pool = PendingChunkPool()
        light = make_chunks(0, 1.0)[0]
        heavy = make_chunks(1, 8.0)[0]
        middle = make_chunks(2, 4.0)[0]
        pool.add_all([light, heavy, middle])
        stranded = pool.chunks_on_edge("t1", "r1")
        assert stranded == [heavy, middle, light]
        for chunk in stranded:
            pool.remove(chunk)
        assert pool.is_empty()
        pool.add_all(stranded)  # recovery replays the eviction list
        assert pool.chunks_on_edge("t1", "r1") == [heavy, middle, light]
