"""Unit tests for :mod:`repro.faults` and the engine's degradation semantics."""

from __future__ import annotations

import pickle

import pytest

from repro.baselines.policies import all_policies
from repro.core.packet import Packet
from repro.exceptions import FaultError, RoutingError, SimulationError
from repro.faults import (
    FabricState,
    FaultEvent,
    FaultSchedule,
    FaultTopologyView,
    seeded_fault_schedule,
)
from repro.network.builders import projector_fabric
from repro.network.topology import TwoTierTopology
from repro.obs import MetricsRegistry
from repro.simulation import simulate


def _fault_topology() -> TwoTierTopology:
    """One source/destination pair with two lasers of different head delays.

    ``t0`` (head delay 2, edge delay 1) is the preferred route; ``t1`` (head
    delay 1, edge delay 3) is the fallback a redispatch can move to.
    """
    topo = TwoTierTopology(name="fault-unit")
    topo.add_source("s0")
    topo.add_destination("d0")
    topo.add_transmitter("t0", "s0", head_delay=2)
    topo.add_transmitter("t1", "s0", head_delay=1)
    topo.add_receiver("r0", "d0", tail_delay=0)
    topo.add_reconfigurable_edge("t0", "r0", delay=1)
    topo.add_reconfigurable_edge("t1", "r0", delay=3)
    return topo.freeze()


def _packet() -> Packet:
    return Packet(0, "s0", "d0", weight=1.0, arrival=1)


def _policy():
    return all_policies(seed=0)["fifo"]


#: Fails the preferred laser at slot 2 (while the dispatched chunk is still
#: waiting out its head delay) and recovers it at slot 7.
_OUTAGE = FaultSchedule.from_events([
    FaultEvent(slot=2, action="fail", kind="laser", target="t0"),
    FaultEvent(slot=7, action="recover", kind="laser", target="t0"),
])


# ---------------------------------------------------------------------- #
# schedule data model
# ---------------------------------------------------------------------- #
class TestFaultEvent:
    def test_validates_action_kind_slot(self):
        with pytest.raises(FaultError, match="action"):
            FaultEvent(slot=1, action="explode", kind="laser", target="t0")
        with pytest.raises(FaultError, match="kind"):
            FaultEvent(slot=1, action="fail", kind="gpu", target="t0")
        with pytest.raises(FaultError, match="slot"):
            FaultEvent(slot=-1, action="fail", kind="laser", target="t0")

    def test_edge_target_must_be_pair(self):
        with pytest.raises(FaultError, match="pair"):
            FaultEvent(slot=1, action="fail", kind="edge", target="t0")
        with pytest.raises(FaultError, match="node name"):
            FaultEvent(slot=1, action="fail", kind="laser", target=("t0", "r0"))

    def test_degrade_rules(self):
        with pytest.raises(FaultError, match="only apply to edges"):
            FaultEvent(slot=1, action="degrade", kind="laser", target="t0", rate=0.5)
        with pytest.raises(FaultError, match="rate"):
            FaultEvent(slot=1, action="degrade", kind="edge", target=("t0", "r0"), rate=0.0)
        with pytest.raises(FaultError, match="rate"):
            FaultEvent(slot=1, action="degrade", kind="edge", target=("t0", "r0"), rate=1.5)
        with pytest.raises(FaultError, match="only meaningful for degrade"):
            FaultEvent(slot=1, action="fail", kind="laser", target="t0", rate=0.5)

    def test_dict_round_trip(self):
        event = FaultEvent(slot=3, action="degrade", kind="edge",
                           target=("t0", "r0"), rate=0.5)
        assert FaultEvent.from_dict(event.to_dict()) == event
        assert event.to_dict()["target"] == ["t0", "r0"]


class TestFaultSchedule:
    def test_rejects_unordered_events(self):
        events = [
            FaultEvent(slot=5, action="fail", kind="laser", target="t0"),
            FaultEvent(slot=2, action="recover", kind="laser", target="t0"),
        ]
        with pytest.raises(FaultError, match="ordered"):
            FaultSchedule(events=tuple(events))
        assert [e.slot for e in FaultSchedule.from_events(events).events] == [2, 5]

    def test_round_trips_and_pickles(self):
        schedule = _OUTAGE
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule
        assert pickle.loads(pickle.dumps(schedule)) == schedule
        assert len(schedule) == 2 and bool(schedule)
        assert not FaultSchedule()


class TestFabricState:
    def test_apply_validates_targets(self):
        topology = _fault_topology()
        state = FabricState()
        with pytest.raises(FaultError, match="unknown laser"):
            state.apply(FaultEvent(slot=1, action="fail", kind="laser",
                                   target="nope"), topology)
        with pytest.raises(FaultError, match="unknown photodetector"):
            state.apply(FaultEvent(slot=1, action="fail", kind="photodetector",
                                   target="nope"), topology)
        with pytest.raises(FaultError, match="unknown reconfigurable edge"):
            state.apply(FaultEvent(slot=1, action="fail", kind="edge",
                                   target=("t0", "nope")), topology)

    def test_fail_recover_degrade_lifecycle(self):
        topology = _fault_topology()
        state = FabricState()
        assert state.edge_alive("t0", "r0") and not state.any_failed
        state.apply(FaultEvent(slot=1, action="fail", kind="laser", target="t0"),
                    topology)
        assert not state.edge_alive("t0", "r0") and state.any_failed
        assert state.edge_alive("t1", "r0")
        state.apply(FaultEvent(slot=2, action="degrade", kind="edge",
                               target=("t1", "r0"), rate=0.5), topology)
        assert state.edge_rate("t1", "r0") == 0.5 and state.any_degraded
        state.apply(FaultEvent(slot=3, action="recover", kind="laser", target="t0"),
                    topology)
        state.apply(FaultEvent(slot=3, action="recover", kind="edge",
                               target=("t1", "r0")), topology)
        assert state.edge_alive("t0", "r0") and not state.any_failed
        assert state.edge_rate("t1", "r0") == 1.0 and not state.any_degraded
        assert state.version == 4


class TestFaultTopologyView:
    def test_masks_dead_edges_and_delegates(self):
        topology = _fault_topology()
        state = FabricState()
        view = FaultTopologyView(topology, state)
        assert view.candidate_edges("s0", "d0") == [("t0", "r0"), ("t1", "r0")]
        state.apply(FaultEvent(slot=1, action="fail", kind="laser", target="t0"),
                    topology)
        assert view.candidate_edges("s0", "d0") == [("t1", "r0")]
        assert not view.has_edge("t0", "r0")
        assert view.has_edge("t1", "r0")
        assert view.can_route("s0", "d0")
        # everything else delegates to the frozen base
        assert view.transmitters == topology.transmitters
        assert view.edge_delay("t0", "r0") == 1

    def test_total_failure_leaves_pair_unroutable(self):
        topology = _fault_topology()
        state = FabricState()
        view = FaultTopologyView(topology, state)
        for laser in ("t0", "t1"):
            state.apply(FaultEvent(slot=1, action="fail", kind="laser", target=laser),
                        topology)
        assert view.candidate_edges("s0", "d0") == []
        assert not view.can_route("s0", "d0")


class TestSeededFaultSchedule:
    def test_deterministic_and_validates(self):
        topology = projector_fabric(3, lasers_per_rack=2, photodetectors_per_rack=2)
        one = seeded_fault_schedule(topology, seed=11, num_faults=3)
        two = seeded_fault_schedule(topology, seed=11, num_faults=3)
        other = seeded_fault_schedule(topology, seed=12, num_faults=3)
        assert one == two
        assert one != other
        assert all(e.slot >= 1 for e in one.events)
        with pytest.raises(FaultError, match="num_faults"):
            seeded_fault_schedule(topology, seed=1, num_faults=0)
        with pytest.raises(FaultError, match="horizon"):
            seeded_fault_schedule(topology, seed=1, horizon=2)

    def test_recover_false_emits_only_failures(self):
        topology = projector_fabric(3)
        schedule = seeded_fault_schedule(topology, seed=3, num_faults=4,
                                         recover=False)
        assert all(e.action in ("fail", "degrade") for e in schedule.events)


# ---------------------------------------------------------------------- #
# engine degradation semantics
# ---------------------------------------------------------------------- #
class TestEngineDegradation:
    def test_requeue_holds_chunk_until_recovery(self):
        baseline = simulate(_fault_topology(), _policy(), [_packet()])
        faulted = simulate(_fault_topology(), _policy(), [_packet()],
                           faults=_OUTAGE, on_fail="requeue")
        assert baseline.all_delivered and faulted.all_delivered
        assert (faulted.summary()["total_weighted_latency"]
                > baseline.summary()["total_weighted_latency"])
        # delivery waits for the slot-7 recovery: 7 slots simulated, not 3
        assert faulted.summary()["num_slots"] == 7.0

    def test_drop_abandons_the_packet(self):
        faulted = simulate(_fault_topology(), _policy(), [_packet()],
                           faults=_OUTAGE, on_fail="drop")
        assert not faulted.all_delivered
        assert faulted.summary()["num_packets"] == 1.0
        # nothing was transmitted before the failure, so no latency accrued
        assert faulted.summary()["total_weighted_latency"] == 0.0

    def test_redispatch_moves_to_live_edge(self):
        faulted = simulate(_fault_topology(), _policy(), [_packet()],
                           faults=_OUTAGE, on_fail="redispatch", record_trace=True)
        assert faulted.all_delivered
        # the chunk completes on the fallback laser, before the recovery slot
        edges = [tuple(ev.edge) for slot in faulted.trace.slots
                 for ev in slot.transmissions]
        assert edges == [("t1", "r0")]
        assert faulted.summary()["num_slots"] < 7.0

    def test_degraded_edge_halves_throughput(self):
        slowdown = FaultSchedule.from_events([
            FaultEvent(slot=1, action="degrade", kind="edge",
                       target=("t0", "r0"), rate=0.5),
        ])
        baseline = simulate(_fault_topology(), _policy(), [_packet()],
                            record_trace=True)
        degraded = simulate(_fault_topology(), _policy(), [_packet()],
                            faults=slowdown, on_fail="requeue", record_trace=True)
        assert degraded.all_delivered
        base_tx = [ev for s in baseline.trace.slots for ev in s.transmissions]
        slow_tx = [ev for s in degraded.trace.slots for ev in s.transmissions]
        assert len(base_tx) == 1 and len(slow_tx) == 2  # two half-rate slots
        assert slow_tx[0].amount == pytest.approx(0.5)
        assert (degraded.summary()["total_weighted_latency"]
                > baseline.summary()["total_weighted_latency"])

    def test_unrecovered_failure_raises_stuck_error(self):
        no_recovery = FaultSchedule.from_events([
            FaultEvent(slot=2, action="fail", kind="laser", target="t0"),
        ])
        with pytest.raises(SimulationError, match="stranded"):
            simulate(_fault_topology(), _policy(), [_packet()],
                     faults=no_recovery, on_fail="requeue")

    def test_arrival_during_outage_is_masked_to_live_edge(self):
        # The packet arrives *after* t0 fails: the dispatcher must never see
        # the dead edge, so the chunk goes straight to t1.
        outage = FaultSchedule.from_events([
            FaultEvent(slot=1, action="fail", kind="laser", target="t0"),
        ])
        packet = Packet(0, "s0", "d0", weight=1.0, arrival=2)
        result = simulate(_fault_topology(), _policy(), [packet],
                          faults=outage, on_fail="requeue", record_trace=True)
        assert result.all_delivered
        edges = {tuple(ev.edge) for slot in result.trace.slots
                 for ev in slot.transmissions}
        assert edges == {("t1", "r0")}

    def test_total_outage_without_fixed_link_raises_routing_error(self):
        blackout = FaultSchedule.from_events([
            FaultEvent(slot=1, action="fail", kind="laser", target="t0"),
            FaultEvent(slot=1, action="fail", kind="laser", target="t1"),
        ])
        with pytest.raises(RoutingError):
            simulate(_fault_topology(), _policy(),
                     [Packet(0, "s0", "d0", weight=1.0, arrival=2)],
                     faults=blackout, on_fail="requeue")

    def test_fixed_link_survives_total_optical_outage(self):
        topo = TwoTierTopology(name="fault-hybrid")
        topo.add_source("s0")
        topo.add_destination("d0")
        topo.add_transmitter("t0", "s0")
        topo.add_receiver("r0", "d0")
        topo.add_reconfigurable_edge("t0", "r0", delay=1)
        topo.add_fixed_link("s0", "d0", delay=5)
        topology = topo.freeze()
        blackout = FaultSchedule.from_events([
            FaultEvent(slot=1, action="fail", kind="laser", target="t0"),
        ])
        result = simulate(topology, _policy(),
                          [Packet(0, "s0", "d0", weight=1.0, arrival=2)],
                          faults=blackout, on_fail="requeue")
        assert result.all_delivered
        assert result.summary()["fixed_link_fraction"] == 1.0

    def test_unknown_hardware_in_schedule_raises(self):
        bad = FaultSchedule.from_events([
            FaultEvent(slot=1, action="fail", kind="laser", target="phantom"),
        ])
        with pytest.raises(FaultError, match="phantom"):
            simulate(_fault_topology(), _policy(), [_packet()], faults=bad)

    def test_fault_counters_published_only_when_faulted(self):
        registry = MetricsRegistry()
        simulate(_fault_topology(), _policy(), [_packet()], obs=registry)
        plain = registry.snapshot()["counters"]
        assert not any(k.startswith("engine_fault") for k in plain)

        registry = MetricsRegistry()
        simulate(_fault_topology(), _policy(), [_packet()],
                 faults=_OUTAGE, on_fail="requeue", obs=registry)
        counters = registry.snapshot()["counters"]
        events = [v for k, v in counters.items()
                  if k.startswith("engine_fault_events{")]
        recoveries = [v for k, v in counters.items()
                      if k.startswith("engine_fault_recoveries{")]
        requeued = [v for k, v in counters.items()
                    if k.startswith("engine_chunks_requeued{")]
        assert events == [2]
        assert recoveries == [1]
        assert requeued == [1]
