"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import SeedSequenceFactory, as_rng


class TestAsRng:
    def test_int_seed_is_deterministic(self):
        assert as_rng(42).random() == as_rng(42).random()

    def test_different_seeds_differ(self):
        assert as_rng(1).random() != as_rng(2).random()

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_seed_sequence_accepted(self):
        seq = np.random.SeedSequence(5)
        rng = as_rng(seq)
        assert isinstance(rng, np.random.Generator)

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError):
            as_rng(-1)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            as_rng("seed")  # type: ignore[arg-type]


class TestSeedSequenceFactory:
    def test_same_key_same_stream(self):
        a = SeedSequenceFactory(9).generator("x", 1).random()
        b = SeedSequenceFactory(9).generator("x", 1).random()
        assert a == b

    def test_different_keys_differ(self):
        fac = SeedSequenceFactory(9)
        assert fac.generator("x", 1).random() != fac.generator("x", 2).random()

    def test_different_roots_differ(self):
        a = SeedSequenceFactory(1).generator("k").random()
        b = SeedSequenceFactory(2).generator("k").random()
        assert a != b

    def test_integer_seed_deterministic(self):
        assert SeedSequenceFactory(3).integer_seed("a") == SeedSequenceFactory(3).integer_seed("a")

    def test_integer_seed_non_negative(self):
        assert SeedSequenceFactory(3).integer_seed("a") >= 0

    def test_root_seed_property(self):
        assert SeedSequenceFactory(17).root_seed == 17

    def test_none_root_allowed(self):
        fac = SeedSequenceFactory(None)
        assert isinstance(fac.generator("k"), np.random.Generator)
