"""Tests for the adversarial search driver: determinism, checkpoint/resume,
objectives and the registry bridge."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.exceptions import SearchError
from repro.scenarios import get_scenario, list_scenarios
from repro.search import (
    AdversarialSearch,
    BruteForceRatioObjective,
    EmpiricalRatioObjective,
    SearchConfig,
    adversarial_space,
    hall_of_fame_to_scenarios,
    objective_from_json,
    objective_to_json,
    read_checkpoint,
    resume_search,
    tiny_space,
)

#: One small, fully deterministic budget reused across the tests below.
SMALL = SearchConfig(population_size=5, generations=3, replicate_seeds=(0, 1), seed=3)


@pytest.fixture(scope="module")
def small_run():
    """One serial reference run of the small budget (shared, read-only)."""
    search = AdversarialSearch(adversarial_space(), EmpiricalRatioObjective(), SMALL)
    return search.run()


# ---------------------------------------------------------------------- #
# configuration guards
# ---------------------------------------------------------------------- #
class TestConfigGuards:
    def test_invalid_configs_rejected(self):
        with pytest.raises(SearchError, match="population_size"):
            SearchConfig(population_size=1)
        with pytest.raises(SearchError, match="generations"):
            SearchConfig(generations=0)
        with pytest.raises(SearchError, match="elite"):
            SearchConfig(population_size=4, elite=4)
        with pytest.raises(SearchError, match="tournament"):
            SearchConfig(tournament=0)
        with pytest.raises(SearchError, match="replicate_seeds"):
            SearchConfig(replicate_seeds=())

    def test_objective_json_round_trip(self):
        for objective in (
            EmpiricalRatioObjective(baselines=("fifo", "islip"), retention="full"),
            BruteForceRatioObjective(max_total_chunks=10),
        ):
            assert objective_from_json(objective_to_json(objective)) == objective
        with pytest.raises(SearchError, match="unknown objective"):
            objective_from_json({"kind": "oracle"})


# ---------------------------------------------------------------------- #
# determinism: the satellite seam (spawn-keyed RNG through mutation)
# ---------------------------------------------------------------------- #
class TestDeterminism:
    def test_serial_rerun_is_bit_identical(self, small_run):
        again = AdversarialSearch(
            adversarial_space(), EmpiricalRatioObjective(), SMALL
        ).run()
        assert again.hall_of_fame == small_run.hall_of_fame
        assert again.best_history == small_run.best_history

    def test_jobs_do_not_change_the_archive(self, small_run):
        """--jobs N and --jobs 1 must produce identical hall-of-fame archives."""
        parallel = AdversarialSearch(
            adversarial_space(),
            EmpiricalRatioObjective(),
            dataclasses.replace(SMALL, jobs=4),
        ).run()
        assert parallel.hall_of_fame == small_run.hall_of_fame
        assert parallel.best_history == small_run.best_history

    def test_seed_changes_the_trajectory(self, small_run):
        other = AdversarialSearch(
            adversarial_space(),
            EmpiricalRatioObjective(),
            dataclasses.replace(SMALL, seed=99),
        ).run()
        assert other.hall_of_fame != small_run.hall_of_fame

    def test_archive_ranking_is_total(self, small_run):
        ranks = [(-e.score, -e.mean_ratio, e.key) for e in small_run.hall_of_fame]
        assert ranks == sorted(ranks)
        assert len({e.key for e in small_run.hall_of_fame}) == len(
            small_run.hall_of_fame
        )


# ---------------------------------------------------------------------- #
# checkpoint / resume
# ---------------------------------------------------------------------- #
class TestCheckpointResume:
    def test_round_trip_is_bit_identical(self, small_run, tmp_path):
        """Interrupting after any generation and resuming matches the
        uninterrupted run exactly."""
        checkpoint = tmp_path / "ck.jsonl"
        AdversarialSearch(
            adversarial_space(),
            EmpiricalRatioObjective(),
            dataclasses.replace(SMALL, generations=1),
        ).run(checkpoint_path=checkpoint)
        search, resumed = resume_search(
            checkpoint, generations=SMALL.generations, jobs=2
        )
        assert resumed.hall_of_fame == small_run.hall_of_fame
        assert resumed.best_history == small_run.best_history

    def test_resume_does_not_reevaluate_cached_candidates(self, tmp_path):
        checkpoint = tmp_path / "ck.jsonl"
        AdversarialSearch(
            adversarial_space(), EmpiricalRatioObjective(), SMALL
        ).run(checkpoint_path=checkpoint)
        state = read_checkpoint(checkpoint)
        evaluated = sum(len(g["evaluations"]) for g in state["generations"])
        # Resuming with the same budget re-breeds the final generation and
        # scores only candidates never seen before.
        _search, resumed = resume_search(checkpoint)
        assert resumed.evaluations >= evaluated

    def test_checkpoint_is_valid_jsonl_with_meta(self, tmp_path):
        checkpoint = tmp_path / "ck.jsonl"
        AdversarialSearch(
            adversarial_space(),
            EmpiricalRatioObjective(),
            dataclasses.replace(SMALL, generations=2),
        ).run(checkpoint_path=checkpoint)
        lines = [json.loads(line) for line in checkpoint.read_text().splitlines()]
        assert lines[0]["type"] == "meta"
        assert lines[0]["space"] == "adversarial"
        assert [line["generation"] for line in lines[1:]] == [0, 1]

    def test_extended_budget_survives_an_interrupted_resume(self, tmp_path):
        """A resume that extends --generations persists the new target, so a
        later resume continues to it instead of silently stopping short."""
        full = AdversarialSearch(
            adversarial_space(),
            EmpiricalRatioObjective(),
            dataclasses.replace(SMALL, generations=4),
        ).run()

        checkpoint = tmp_path / "ck.jsonl"
        AdversarialSearch(
            adversarial_space(),
            EmpiricalRatioObjective(),
            dataclasses.replace(SMALL, generations=2),
        ).run(checkpoint_path=checkpoint)
        resume_search(checkpoint, generations=4)
        # Simulate the extension being killed right after generation 2 was
        # written: drop the trailing generation-3 record.
        lines = checkpoint.read_text().splitlines()
        assert json.loads(lines[-1])["generation"] == 3
        checkpoint.write_text("\n".join(lines[:-1]) + "\n")
        # A plain resume (no override) must pick up the extended budget from
        # the appended meta record and finish the remaining generation.
        _search, recovered = resume_search(checkpoint)
        assert recovered.generations_run == 4
        assert recovered.hall_of_fame == full.hall_of_fame
        assert recovered.best_history == full.best_history

    def test_failing_objective_leaves_resumable_checkpoint(
        self, small_run, tmp_path, monkeypatch
    ):
        """An objective crashing mid-search must not corrupt the checkpoint.

        The checkpoint handle lives in a context manager, so the crash still
        closes it; every generation written before the failure stays on disk
        as complete JSONL lines, and a plain resume finishes the search
        bit-identically to a run that never crashed.
        """
        checkpoint = tmp_path / "ck.jsonl"
        real_evaluate = AdversarialSearch._evaluate

        def explode(self, generation, population, scores, names):
            if generation >= 1:
                raise RuntimeError("objective crashed mid-search")
            return real_evaluate(self, generation, population, scores, names)

        monkeypatch.setattr(AdversarialSearch, "_evaluate", explode)
        with pytest.raises(RuntimeError, match="objective crashed"):
            AdversarialSearch(
                adversarial_space(), EmpiricalRatioObjective(), SMALL
            ).run(checkpoint_path=checkpoint)
        monkeypatch.undo()

        state = read_checkpoint(checkpoint)
        assert [g["generation"] for g in state["generations"]] == [0]
        _search, recovered = resume_search(checkpoint)
        assert recovered.generations_run == SMALL.generations
        assert recovered.hall_of_fame == small_run.hall_of_fame
        assert recovered.best_history == small_run.best_history

    def test_invalid_jobs_rejected_at_config_time(self):
        with pytest.raises(SearchError, match="jobs"):
            SearchConfig(jobs=0)
        with pytest.raises(SearchError, match="chunksize"):
            SearchConfig(chunksize=0)

    def test_corrupt_and_missing_checkpoints_raise(self, tmp_path):
        with pytest.raises(SearchError, match="does not exist"):
            read_checkpoint(tmp_path / "absent.jsonl")
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(SearchError, match="not valid JSON"):
            read_checkpoint(bad)
        meta_only = tmp_path / "meta.jsonl"
        meta_only.write_text(json.dumps({"type": "meta", "space": "adversarial",
                                         "objective": {"kind": "empirical"},
                                         "config": {}}) + "\n")
        with pytest.raises(SearchError, match="no finished generation"):
            AdversarialSearch(
                adversarial_space(), EmpiricalRatioObjective(), SMALL
            ).resume(meta_only)


# ---------------------------------------------------------------------- #
# objectives
# ---------------------------------------------------------------------- #
class TestObjectives:
    def test_empirical_objective_min_filters_replicates(self):
        objective = EmpiricalRatioObjective()
        scenario = dataclasses.replace(
            get_scenario("laser-hotspot"),
            seeds=(0, 1),
            policies=objective.scenario_policies(),
        )
        result = objective.evaluate(scenario)
        assert len(result.ratios) == 2
        assert result.score == min(result.ratios)
        assert result.mean_ratio == pytest.approx(sum(result.ratios) / 2)

    def test_brute_force_objective_scores_tiny_cells(self):
        space = tiny_space()
        objective = BruteForceRatioObjective()
        from repro.utils.rng import as_rng

        scenario = space.build_scenario(
            space.sample(as_rng(5)), seeds=(0,), policies=objective.scenario_policies()
        )
        result = objective.evaluate(scenario)
        # ALG can never beat the offline optimum.
        assert result.score >= 1.0 or result.score == 0.0

    def test_brute_force_objective_filters_oversized_cells(self):
        objective = BruteForceRatioObjective(max_total_chunks=1)
        space = tiny_space()
        from repro.utils.rng import as_rng

        scenario = space.build_scenario(
            space.sample(as_rng(6)), seeds=(0,), policies=("alg",)
        )
        result = objective.evaluate(scenario)
        assert result.score == 0.0  # filtered, not raised

    def test_stagnation_early_stop(self):
        # With a tiny space and an aggressive stagnation limit the search
        # stops before exhausting its generation budget.
        config = SearchConfig(
            population_size=4, generations=12, replicate_seeds=(0,),
            stagnation_limit=2, seed=1,
        )
        result = AdversarialSearch(
            tiny_space(), BruteForceRatioObjective(), config
        ).run()
        assert result.stopped_early
        assert result.generations_run < config.generations


# ---------------------------------------------------------------------- #
# the registry bridge
# ---------------------------------------------------------------------- #
class TestBridge:
    def test_promoted_scenarios_rebuild_the_scored_cells(self, small_run):
        space = adversarial_space()
        scenarios = hall_of_fame_to_scenarios(
            small_run.hall_of_fame, space, seeds=(0, 1, 2), limit=2
        )
        assert len(scenarios) == 2
        assert scenarios[0].name == small_run.hall_of_fame[0].scenario_name
        assert scenarios[0].seeds == (0, 1, 2)
        # Promotion widens seeds/policies but replays the same instances: the
        # content-addressed name pins the topology/workload derivation.
        topology, packets, _ = scenarios[0].materialise(0)
        assert list(packets)

    def test_register_round_trip(self, small_run):
        space = adversarial_space()
        try:
            promoted = hall_of_fame_to_scenarios(
                small_run.hall_of_fame, space, register=True, replace=True, limit=1
            )
            name = promoted[0].name
            assert get_scenario(name) == promoted[0]
            assert any(s.name == name for s in list_scenarios(tag="searched"))
        finally:
            # Keep the global registry clean for other tests.
            from repro.scenarios.library import _REGISTRY

            _REGISTRY.pop(promoted[0].name, None)
