"""Unit tests for the scenario registry, specs and matrix plumbing."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.exceptions import ScenarioError, SimulationError
from repro.network import projector_fabric
from repro.scenarios import (
    GRIDS,
    Scenario,
    ScenarioMatrix,
    TopologySpec,
    WorkloadSpec,
    get_scenario,
    grid_matrix,
    grid_names,
    list_scenarios,
    resolve_policies,
    resolve_weight_sampler,
    scenario_matrix,
    scenario_names,
)
from repro.simulation import EngineConfig, SimulationEngine
from repro.utils.rng import as_rng
from repro.workloads import (
    contention_hotspot_workload,
    heavy_tailed_incast_workload,
    iter_contention_hotspot_workload,
    iter_heavy_tailed_incast_workload,
    iter_priority_inversion_workload,
    iter_saturated_pairs_workload,
    priority_inversion_workload,
    saturated_pairs_workload,
    uniform_random_workload,
    write_packet_trace,
    write_packet_trace_jsonl,
)


# ---------------------------------------------------------------------- #
# registry
# ---------------------------------------------------------------------- #
class TestRegistry:
    def test_every_grid_names_registered_scenarios(self):
        names = set(scenario_names())
        for grid, members in GRIDS.items():
            missing = set(members) - names
            assert not missing, f"grid {grid!r} references unknown scenarios {missing}"

    def test_full_grid_contains_every_scenario(self):
        assert {s.name for s in grid_matrix("full").scenarios} == set(scenario_names())

    def test_unknown_scenario_and_grid_raise(self):
        with pytest.raises(ScenarioError, match="unknown scenario"):
            get_scenario("no-such-scenario")
        with pytest.raises(ScenarioError, match="unknown grid"):
            grid_matrix("no-such-grid")

    def test_tag_filter(self):
        adversarial = list_scenarios(tag="adversarial")
        assert adversarial and all("adversarial" in s.tags for s in adversarial)
        assert list_scenarios(tag="no-such-tag") == []

    def test_grid_names_include_implicit_full(self):
        assert "full" in grid_names()
        assert set(GRIDS) < set(grid_names())

    def test_duplicate_scenario_in_matrix_rejected(self):
        fig1 = get_scenario("figure1")
        with pytest.raises(ScenarioError, match="twice"):
            ScenarioMatrix(name="dup", scenarios=(fig1, fig1))


# ---------------------------------------------------------------------- #
# specs
# ---------------------------------------------------------------------- #
class TestSpecs:
    def test_unknown_kinds_rejected(self):
        with pytest.raises(ScenarioError, match="topology kind"):
            TopologySpec("moebius")
        with pytest.raises(ScenarioError, match="workload kind"):
            WorkloadSpec("antigravity")

    def test_weight_sampler_specs(self):
        rng = as_rng(0)
        assert resolve_weight_sampler(None) is None
        sampler = resolve_weight_sampler(("uniform", 1, 10))
        assert 1 <= sampler(rng) <= 10
        with pytest.raises(ScenarioError, match="weight spec"):
            resolve_weight_sampler(("gaussian", 0, 1))

    def test_fixed_link_delay_builds_hybrid(self):
        spec = TopologySpec(
            "projector", {"num_racks": 3, "lasers_per_rack": 1,
                          "photodetectors_per_rack": 1},
            fixed_link_delay=4,
        )
        topo = spec.build(seed=1)
        assert topo.fixed_links, "hybrid spec produced no fixed links"
        assert all(
            s.split(":")[0] != d.split(":")[0] for (s, d) in topo.fixed_links
        ), "fixed links must be cross-rack only"

    def test_topology_build_is_seed_deterministic(self):
        spec = TopologySpec(
            "random-bipartite",
            {"num_sources": 3, "num_destinations": 3, "edge_probability": 0.5},
        )
        assert (
            spec.build(seed=9).reconfigurable_edges
            == spec.build(seed=9).reconfigurable_edges
        )

    def test_resolve_policies_validates_names(self):
        policies = resolve_policies(("alg", "direct-first"), seed=1)
        assert list(policies) == ["alg", "direct-first"]
        with pytest.raises(ScenarioError, match="unknown policies"):
            resolve_policies(("alg", "quantum"), seed=1)

    def test_scenario_validation(self):
        fig1 = get_scenario("figure1")
        with pytest.raises(ScenarioError, match="no policies"):
            Scenario(name="x", description="", topology=fig1.topology,
                     workload=fig1.workload, policies=())
        with pytest.raises(ScenarioError, match="no seeds"):
            Scenario(name="x", description="", topology=fig1.topology,
                     workload=fig1.workload, seeds=())


# ---------------------------------------------------------------------- #
# matrix semantics
# ---------------------------------------------------------------------- #
class TestMatrix:
    def test_counts(self):
        matrix = grid_matrix("smoke")
        assert matrix.num_cells == len(matrix.cells())
        assert matrix.num_runs == sum(
            len(s.policies) * len(s.seeds) for s in matrix.scenarios
        )

    def test_invalid_mode_rejected(self):
        with pytest.raises(ScenarioError, match="mode"):
            grid_matrix("smoke").to_experiment_spec(mode="telepathic")

    def test_rows_are_grid_composition_invariant(self):
        """A scenario's rows do not depend on which matrix runs it."""
        alone = scenario_matrix(["tiny-random"], name="solo").run()
        with_others = grid_matrix("smoke").run()
        subset = [row for row in with_others if row["scenario"] == "tiny-random"]
        assert alone == subset

    def test_rows_serialise_to_json(self, tmp_path):
        path = tmp_path / "rows.json"
        rows = scenario_matrix(["figure1"], name="io").run(output_path=str(path))
        document = json.loads(path.read_text())
        assert document["rows"] == rows

    def test_rows_are_engine_invariant(self):
        """The indexed/reference dispatch backends produce identical rows.

        Exercises the whole override chain: ``run(engine=…)`` →
        ``to_experiment_spec`` grid params → the cell task's
        ``task.params.get("engine") or scenario.engine`` fallback.
        """
        matrix = scenario_matrix(["tiny-random"], name="engines")
        default = matrix.run()  # scenario default ("indexed")
        indexed = matrix.run(engine="indexed")
        reference = matrix.run(engine="reference")
        per_policy_reference = matrix.run(engine="reference", mode="per-policy")
        assert default == indexed == reference == per_policy_reference

    def test_invalid_engine_rejected(self):
        with pytest.raises(ScenarioError, match="engine"):
            grid_matrix("smoke").to_experiment_spec(engine="vectorised")
        with pytest.raises(ScenarioError, match="engine"):
            dataclasses.replace(get_scenario("figure1"), engine="vectorised")


# ---------------------------------------------------------------------- #
# run_multi guard rails
# ---------------------------------------------------------------------- #
class TestRunMultiGuards:
    def test_empty_policy_mapping_rejected(self):
        topo = projector_fabric(num_racks=2, seed=0)
        engine = SimulationEngine(topo)
        with pytest.raises(SimulationError, match="at least one policy"):
            engine.run_multi([], {})

    def test_policyless_engine_cannot_run_single(self):
        topo = projector_fabric(num_racks=2, seed=0)
        with pytest.raises(SimulationError, match="without a policy"):
            SimulationEngine(topo).run([])

    def test_trace_path_restricted_to_single_policy(self, tmp_path):
        topo = projector_fabric(num_racks=2, seed=0)
        engine = SimulationEngine(
            topo, config=EngineConfig(trace_path=str(tmp_path / "t.jsonl"))
        )
        policies = resolve_policies(("alg", "fifo"), seed=0)
        with pytest.raises(SimulationError, match="single-policy"):
            engine.run_multi([], policies)
        # One policy is fine.
        only_alg = resolve_policies(("alg",), seed=0)
        results = engine.run_multi([], only_alg)
        assert list(results) == ["alg"]

    def test_same_policy_object_under_two_names_rejected(self):
        topo = projector_fabric(num_racks=2, seed=0)
        policy = resolve_policies(("islip",), seed=0)["islip"]
        with pytest.raises(SimulationError, match="distinct policy object"):
            SimulationEngine(topo).run_multi([], {"a": policy, "b": policy})

    def test_shared_scheduler_component_rejected(self):
        from repro.baselines.schedulers import ISLIPScheduler
        from repro.core.dispatcher import ImpactDispatcher
        from repro.core.interfaces import Policy

        topo = projector_fabric(num_racks=2, seed=0)
        shared = ISLIPScheduler()  # stateful round-robin pointers
        policies = {
            "a": Policy("a", ImpactDispatcher(), shared),
            "b": Policy("b", ImpactDispatcher(), shared),
        }
        with pytest.raises(SimulationError, match="shared object"):
            SimulationEngine(topo).run_multi([], policies)

    def test_invalid_input_does_not_truncate_existing_trace(self, tmp_path):
        from repro.core.packet import Packet

        trace = tmp_path / "slots.jsonl"
        trace.write_text('{"slot": 1}\n')
        topo = projector_fabric(num_racks=2, seed=0)
        policy = resolve_policies(("alg",), seed=0)["alg"]
        engine = SimulationEngine(
            topo, policy, config=EngineConfig(trace_path=str(trace))
        )
        duplicate = Packet(packet_id=0, source="rack0:src",
                           destination="rack1:dst", weight=1.0, arrival=1)
        with pytest.raises(SimulationError, match="duplicate"):
            engine.run([duplicate, duplicate])
        assert trace.read_text() == '{"slot": 1}\n', (
            "invalid input must not clobber a pre-existing trace file"
        )
        # An empty stream writes no trace file at all (historical behaviour).
        empty_trace = tmp_path / "empty.jsonl"
        empty_engine = SimulationEngine(
            topo, policy, config=EngineConfig(trace_path=str(empty_trace))
        )
        empty_engine.run([])
        assert not empty_trace.exists()


# ---------------------------------------------------------------------- #
# adversarial generators
# ---------------------------------------------------------------------- #
class TestAdversarialGenerators:
    @pytest.fixture
    def fabric(self):
        return projector_fabric(
            num_racks=4, lasers_per_rack=2, photodetectors_per_rack=2, seed=3
        )

    def test_iter_and_list_forms_agree(self, fabric):
        for iter_fn, list_fn, args in (
            (iter_priority_inversion_workload, priority_inversion_workload, (4,)),
            (iter_contention_hotspot_workload, contention_hotspot_workload, (30,)),
            (iter_heavy_tailed_incast_workload, heavy_tailed_incast_workload, (3,)),
        ):
            lazy = list(iter_fn(fabric, *args, seed=11))
            eager = list_fn(fabric, *args, seed=11)
            assert lazy == eager

    def test_priority_inversion_shape(self, fabric):
        packets = priority_inversion_workload(
            fabric, 3, light_per_burst=4, heavy_per_burst=2,
            light_weight=(1.0, 1.0), heavy_weight=(100.0, 100.0),
            burst_gap=10, seed=5,
        )
        assert len(packets) == 3 * 6
        for burst in range(3):
            chunk = packets[burst * 6:(burst + 1) * 6]
            light, heavy = chunk[:4], chunk[4:]
            assert {p.destination for p in chunk} == {light[0].destination}
            assert all(p.weight == 1.0 for p in light)
            assert all(p.weight == 100.0 for p in heavy)
            # heavy wave lands exactly one slot after the light wave
            assert {p.arrival for p in heavy} == {light[0].arrival + 1}

    @pytest.mark.parametrize("side,attr", [("transmitter", "source"),
                                           ("receiver", "destination")])
    def test_contention_hotspot_concentrates_traffic(self, fabric, side, attr):
        packets = contention_hotspot_workload(
            fabric, 80, side=side, hot_fraction=0.9, seed=7
        )
        counts: dict = {}
        for p in packets:
            counts[getattr(p, attr)] = counts.get(getattr(p, attr), 0) + 1
        assert max(counts.values()) >= 0.7 * len(packets), (
            f"hotspot on {side} side did not concentrate traffic: {counts}"
        )

    def test_saturated_pairs_concentrates_on_disjoint_pairs(self, fabric):
        packets = saturated_pairs_workload(
            fabric, 80, num_pairs=2, hot_fraction=0.9, seed=7
        )
        lazy = list(
            iter_saturated_pairs_workload(
                fabric, 80, num_pairs=2, hot_fraction=0.9, seed=7
            )
        )
        assert lazy == packets
        counts: dict = {}
        for p in packets:
            pair = (p.source, p.destination)
            counts[pair] = counts.get(pair, 0) + 1
        hot = sorted(counts, key=lambda pair: counts[pair], reverse=True)[:2]
        assert sum(counts[pair] for pair in hot) >= 0.7 * len(packets), (
            f"saturated pairs did not concentrate traffic: {counts}"
        )
        # The hot pairs share no endpoint, so one matching serves them all.
        assert len({node for pair in hot for node in pair}) == 4

    def test_heavy_tailed_incast_targets_one_destination(self, fabric):
        packets = heavy_tailed_incast_workload(
            fabric, 4, senders_per_wave=3, packets_per_sender=2, seed=9
        )
        assert len({p.destination for p in packets}) == 1
        arrivals = sorted({p.arrival for p in packets})
        assert arrivals == [1, 7, 13, 19]  # wave_gap=6 default

    def test_parameter_validation(self, fabric):
        with pytest.raises(Exception, match="burst_gap"):
            priority_inversion_workload(fabric, 2, burst_gap=1)
        with pytest.raises(Exception, match="side"):
            contention_hotspot_workload(fabric, 10, side="diagonal")
        with pytest.raises(Exception, match="hot_fraction"):
            contention_hotspot_workload(fabric, 10, hot_fraction=0.0)
        with pytest.raises(Exception, match="pareto_exponent"):
            heavy_tailed_incast_workload(fabric, 2, pareto_exponent=1.0)
        with pytest.raises(Exception, match="node-disjoint"):
            saturated_pairs_workload(fabric, 10, num_pairs=64)
        with pytest.raises(Exception, match="hot_fraction"):
            saturated_pairs_workload(fabric, 10, num_pairs=2, hot_fraction=0.0)


# ---------------------------------------------------------------------- #
# trace-replay workload kind
# ---------------------------------------------------------------------- #
class TestTraceWorkloadSpec:
    @pytest.fixture
    def fabric(self):
        return projector_fabric(
            num_racks=3, lasers_per_rack=2, photodetectors_per_rack=2, seed=4
        )

    @pytest.fixture
    def recorded(self, fabric, tmp_path):
        packets = uniform_random_workload(
            fabric, num_packets=20, arrival_rate=2.0, seed=11
        )
        path = tmp_path / "trace.jsonl"
        write_packet_trace_jsonl(packets, path)
        return fabric, packets, path

    def test_replays_recorded_packets_exactly(self, recorded):
        fabric, packets, path = recorded
        spec = WorkloadSpec("trace", {"path": str(path)})
        assert spec.build(fabric) == packets
        # The lazy form agrees and ignores the derivation seed (a replay is
        # already a fixed packet sequence).
        assert list(spec.build_iter(fabric, seed=123)) == packets

    def test_csv_traces_replay_too(self, fabric, tmp_path):
        packets = uniform_random_workload(
            fabric, num_packets=10, arrival_rate=1.5, seed=3
        )
        path = tmp_path / "trace.csv"
        write_packet_trace(packets, path)
        assert WorkloadSpec("trace", {"path": str(path)}).build(fabric) == packets

    def test_trace_scenario_runs_end_to_end(self, recorded, tmp_path):
        """A trace-backed scenario is a first-class registry citizen."""
        from repro.baselines import all_policies
        from repro.simulation import simulate

        fabric, packets, path = recorded
        scenario = Scenario(
            name="replayed",
            description="recorded uniform workload, replayed",
            topology=TopologySpec("projector",
                                  {"num_racks": 3, "lasers_per_rack": 2,
                                   "photodetectors_per_rack": 2}),
            workload=WorkloadSpec("trace", {"path": str(path)}),
            policies=("alg", "fifo"),
        )
        rows = ScenarioMatrix(name="replay", scenarios=(scenario,)).run()
        assert [row["policy"] for row in rows] == ["alg", "fifo"]
        # The replayed cell's topology comes from the scenario's own seed
        # derivation, so cross-check against a direct simulation on it.
        topology, replayed, policies = scenario.materialise(0)
        direct = simulate(topology, policies["alg"], list(replayed))
        alg_row = rows[0]
        assert alg_row["total_weighted_latency"] == direct.total_weighted_latency

    def test_trace_spec_validation(self):
        with pytest.raises(ScenarioError, match="requires params"):
            WorkloadSpec("trace")
        with pytest.raises(ScenarioError, match="unknown params"):
            WorkloadSpec("trace", {"path": "x.jsonl", "chunk": 2})
        with pytest.raises(ScenarioError, match="no weight sampler"):
            WorkloadSpec("trace", {"path": "x.jsonl"}, weights=("uniform", 1, 2))

    def test_missing_trace_file_raises_workload_error(self, fabric, tmp_path):
        from repro.exceptions import WorkloadError

        spec = WorkloadSpec("trace", {"path": str(tmp_path / "absent.jsonl")})
        with pytest.raises((WorkloadError, FileNotFoundError)):
            list(spec.build_iter(fabric))

    def test_mismatched_topology_fails_with_clear_diagnostic(self, recorded):
        """Replaying a trace on a topology it wasn't recorded on must raise a
        ScenarioError up front, not an obscure failure inside the engine."""
        _fabric, _packets, path = recorded  # recorded on a 3-rack fabric
        small = projector_fabric(num_racks=2, lasers_per_rack=1,
                                 photodetectors_per_rack=1, seed=0)
        spec = WorkloadSpec("trace", {"path": str(path)})
        with pytest.raises(ScenarioError, match="not routable"):
            list(spec.build_iter(small))


# ---------------------------------------------------------------------- #
# speed-augmentation grid
# ---------------------------------------------------------------------- #
class TestSpeedGrid:
    def test_grid_registered(self):
        names = [s.name for s in grid_matrix("speed").scenarios]
        assert "tiny-random" in names and "tiny-random@s1.5" in names
        assert all(
            get_scenario(n).tags and "speed" in get_scenario(n).tags
            for n in names if "@" in n
        )

    def test_variants_share_cells_via_seed_key(self):
        base = get_scenario("priority-inversion-burst")
        variant = get_scenario("priority-inversion-burst@s2.5")
        assert variant.seed_key == base.name
        base_topo, base_packets, _ = base.materialise(0)
        var_topo, var_packets, _ = variant.materialise(0)
        assert list(base_packets) == list(var_packets)
        assert base_topo.reconfigurable_edges == var_topo.reconfigurable_edges

    def test_alg_cost_weakly_improves_with_speed(self):
        rows = scenario_matrix(
            ["priority-inversion-burst", "priority-inversion-burst@s1.5",
             "priority-inversion-burst@s2.5"],
            name="speed-check",
        ).run()
        costs = {
            row["scenario"]: row["total_weighted_latency"]
            for row in rows if row["policy"] == "alg"
        }
        assert (
            costs["priority-inversion-burst"]
            >= costs["priority-inversion-burst@s1.5"]
            >= costs["priority-inversion-burst@s2.5"]
        ), f"speed augmentation should not hurt ALG: {costs}"
