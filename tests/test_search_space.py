"""Unit tests for the search parameter spaces (knobs, operators, builders)."""

from __future__ import annotations

import json
import pickle

import pytest

from repro.exceptions import SearchError
from repro.search import (
    ChoiceKnob,
    FloatKnob,
    IntKnob,
    ParamSpace,
    adversarial_space,
    candidate_digest,
    candidate_key,
    get_space,
    space_names,
    tiny_space,
)
from repro.utils.rng import as_rng


# ---------------------------------------------------------------------- #
# knobs
# ---------------------------------------------------------------------- #
class TestKnobs:
    def test_int_knob_bounds_and_mutation(self):
        knob = IntKnob("k", 2, 8)
        rng = as_rng(0)
        for _ in range(200):
            value = knob.sample(rng)
            assert 2 <= value <= 8 and isinstance(value, int)
            mutated = knob.mutate(value, rng)
            assert 2 <= mutated <= 8 and isinstance(mutated, int)

    def test_float_knob_bounds_and_mutation(self):
        knob = FloatKnob("k", 0.5, 1.0)
        rng = as_rng(1)
        for _ in range(200):
            value = knob.sample(rng)
            assert 0.5 <= value <= 1.0 and isinstance(value, float)
            mutated = knob.mutate(value, rng)
            assert 0.5 <= mutated <= 1.0 and isinstance(mutated, float)

    def test_choice_knob_samples_choices(self):
        knob = ChoiceKnob("k", ("a", "b"))
        rng = as_rng(2)
        seen = {knob.sample(rng) for _ in range(50)}
        assert seen == {"a", "b"}
        assert knob.mutate("a", rng) in ("a", "b")

    def test_knob_validation(self):
        with pytest.raises(SearchError, match="low"):
            IntKnob("k", 5, 1)
        with pytest.raises(SearchError, match="no choices"):
            ChoiceKnob("k", ())
        with pytest.raises(SearchError, match="expects an int"):
            IntKnob("k", 1, 3).validate(2.0)
        with pytest.raises(SearchError, match="outside"):
            FloatKnob("k", 0.0, 1.0).validate(1.5)
        with pytest.raises(SearchError, match="not among"):
            ChoiceKnob("k", ("a",)).validate("z")


# ---------------------------------------------------------------------- #
# candidate identity
# ---------------------------------------------------------------------- #
class TestCandidateIdentity:
    def test_key_is_order_insensitive_and_json_stable(self):
        a = {"x": 1, "y": 0.1, "z": "s"}
        b = {"z": "s", "y": 0.1, "x": 1}
        assert candidate_key(a) == candidate_key(b)
        # JSON round trip (the checkpoint path) preserves the key exactly.
        round_tripped = json.loads(json.dumps(a))
        assert candidate_key(round_tripped) == candidate_key(a)

    def test_digest_is_short_and_deterministic(self):
        params = {"x": 1}
        assert candidate_digest(params) == candidate_digest({"x": 1})
        assert len(candidate_digest(params)) == 10
        assert candidate_digest({"x": 2}) != candidate_digest(params)


# ---------------------------------------------------------------------- #
# spaces and operators
# ---------------------------------------------------------------------- #
class TestParamSpace:
    @pytest.fixture(params=["adversarial", "tiny"])
    def space(self, request) -> ParamSpace:
        return get_space(request.param)

    def test_registry(self):
        assert set(space_names()) >= {"adversarial", "tiny"}
        with pytest.raises(SearchError, match="unknown search space"):
            get_space("warp")

    def test_sample_mutate_crossover_stay_in_bounds(self, space):
        rng = as_rng(7)
        for _ in range(50):
            a = space.sample(rng)
            b = space.sample(rng)
            space.validate(a)
            space.validate(space.mutate(a, rng))
            space.validate(space.crossover(a, b, rng))

    def test_mutation_never_degenerates_to_identity(self, space):
        rng = as_rng(8)
        parent = space.sample(rng)
        # Even at rate 0 the mutation perturbs at least one knob.
        children = [space.mutate(parent, rng, rate=0.0) for _ in range(20)]
        assert all(c != parent for c in children)

    def test_assignments_are_plain_json_scalars(self, space):
        params = space.sample(as_rng(9))
        round_tripped = json.loads(json.dumps(params))
        assert round_tripped == params
        assert all(type(v) in (int, float, str) for v in params.values())

    def test_validate_rejects_wrong_keys(self, space):
        params = space.sample(as_rng(10))
        params.pop(next(iter(params)))
        with pytest.raises(SearchError, match="do not match"):
            space.validate(params)

    def test_build_scenario_is_content_addressed_and_picklable(self, space):
        rng = as_rng(11)
        params = space.sample(rng)
        scenario = space.build_scenario(params, seeds=(0, 1), policies=("alg", "fifo"))
        again = space.build_scenario(dict(params))
        assert scenario.name == again.name == (
            f"search-{space.name}-{candidate_digest(params)}"
        )
        assert pickle.loads(pickle.dumps(scenario)) == scenario
        assert scenario.seeds == (0, 1)

    def test_random_assignments_build_runnable_scenarios(self, space):
        """Closure: any sampled/mutated point materialises into real cells."""
        rng = as_rng(12)
        params = space.sample(rng)
        for _ in range(5):
            params = space.mutate(params, rng)
            scenario = space.build_scenario(params, policies=("alg",))
            topology, packets, policies = scenario.materialise(0)
            materialised = list(packets)
            assert materialised, f"empty workload for {params}"
            for packet in materialised:
                assert topology.can_route(packet.source, packet.destination)

    def test_unknown_builder_rejected(self):
        with pytest.raises(SearchError, match="unknown builder"):
            ParamSpace(name="x", knobs=(IntKnob("a", 0, 1),), builder="nope")

    def test_duplicate_knob_names_rejected(self):
        with pytest.raises(SearchError, match="duplicate knob"):
            ParamSpace(
                name="x",
                knobs=(IntKnob("a", 0, 1), IntKnob("a", 0, 2)),
                builder="tiny-v1",
            )


class TestTinySpaceStaysBruteForceable:
    def test_tiny_cells_fit_the_exhaustive_solver(self):
        """Every tiny-space corner must stay within brute-force size limits."""
        from repro.baselines import brute_force_optimal
        from repro.workloads import Instance

        space = tiny_space()
        rng = as_rng(13)
        for _ in range(10):
            scenario = space.build_scenario(space.sample(rng), policies=("alg",))
            topology, packets, _ = scenario.materialise(0)
            instance = Instance(
                name=scenario.name, topology=topology, packets=list(packets)
            )
            result = brute_force_optimal(instance)
            assert result.cost >= 0.0


class TestAdversarialSpaceCoversHandDerived:
    def test_knob_axes_match_issue_contract(self):
        space = adversarial_space()
        names = {k.name for k in space.knobs}
        assert {
            "num_racks", "lasers_per_rack", "photodetectors_per_rack",
            "connectivity", "intensity", "skew", "burst", "speed", "kind",
        } <= names

    def test_speed_choices_parameterisable(self):
        space = adversarial_space(speeds=(1.0, 1.5, 2.5))
        knob = space.knob("speed")
        assert knob.choices == (1.0, 1.5, 2.5)
