"""Property-based tests for the stable-matching scheduler and the chunk order."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.packet import Packet, split_into_chunks
from repro.core.stable_matching import (
    blocking_chunk,
    greedy_stable_matching,
    greedy_stable_matching_on_edges,
    is_chunk_matching,
    is_stable_edge_matching,
    is_stable_matching,
)
from repro.utils.ordering import chunk_priority_key


@st.composite
def chunk_sets(draw, max_chunks=20, max_nodes=6):
    """Random sets of single-chunk packets over a small transmitter/receiver grid."""
    n = draw(st.integers(min_value=0, max_value=max_chunks))
    chunks = []
    for pid in range(n):
        t = draw(st.integers(min_value=0, max_value=max_nodes - 1))
        r = draw(st.integers(min_value=0, max_value=max_nodes - 1))
        weight = draw(st.floats(min_value=0.1, max_value=100.0, allow_nan=False))
        arrival = draw(st.integers(min_value=1, max_value=10))
        packet = Packet(pid, "s", "d", weight=weight, arrival=arrival)
        chunks.append(split_into_chunks(packet, f"t{t}", f"r{r}", edge_delay=1)[0])
    return chunks


class TestGreedyStableMatchingProperties:
    @given(chunk_sets())
    @settings(max_examples=200, deadline=None)
    def test_output_is_matching(self, chunks):
        assert is_chunk_matching(greedy_stable_matching(chunks))

    @given(chunk_sets())
    @settings(max_examples=200, deadline=None)
    def test_output_is_stable(self, chunks):
        matching = greedy_stable_matching(chunks)
        assert is_stable_matching(matching, chunks)

    @given(chunk_sets())
    @settings(max_examples=200, deadline=None)
    def test_every_skipped_chunk_has_blocker(self, chunks):
        matching = greedy_stable_matching(chunks)
        selected = set(matching)
        for chunk in chunks:
            if chunk not in selected:
                blocker = blocking_chunk(chunk, matching)
                assert blocker is not None
                # The blocker never has lower priority than the blocked chunk.
                assert chunk_priority_key(blocker) <= chunk_priority_key(chunk)

    @given(chunk_sets())
    @settings(max_examples=200, deadline=None)
    def test_matching_is_maximal(self, chunks):
        matching = greedy_stable_matching(chunks)
        used_t = {c.transmitter for c in matching}
        used_r = {c.receiver for c in matching}
        for chunk in chunks:
            if chunk not in matching:
                assert chunk.transmitter in used_t or chunk.receiver in used_r

    @given(chunk_sets())
    @settings(max_examples=100, deadline=None)
    def test_deterministic(self, chunks):
        first = greedy_stable_matching(chunks)
        second = greedy_stable_matching(list(reversed(chunks)))
        assert first == second

    @given(chunk_sets(max_chunks=12))
    @settings(max_examples=100, deadline=None)
    def test_heaviest_chunk_always_selected(self, chunks):
        if not chunks:
            return
        best = min(chunks, key=chunk_priority_key)
        assert best in greedy_stable_matching(chunks)


class TestEdgeLevelMatchingProperties:
    @given(
        st.dictionaries(
            keys=st.tuples(
                st.sampled_from([f"t{i}" for i in range(5)]),
                st.sampled_from([f"r{i}" for i in range(5)]),
            ),
            values=st.floats(min_value=0.1, max_value=50.0, allow_nan=False),
            max_size=20,
        )
    )
    @settings(max_examples=200, deadline=None)
    def test_edge_matching_stable(self, edge_weights):
        matching = greedy_stable_matching_on_edges(edge_weights)
        assert is_stable_edge_matching(matching, edge_weights)
