"""Tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments import read_json, read_jsonl
from repro.network import projector_fabric
from repro.workloads import (
    uniform_random_workload,
    write_packet_trace,
    write_packet_trace_jsonl,
)


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compare_defaults(self):
        args = build_parser().parse_args(["compare"])
        assert args.racks == 6 and args.workload == "zipf"

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compare", "--workload", "nope"])


class TestFiguresCommand:
    def test_reproduces_paper_numbers(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out and "Figure 2" in out
        assert "p4" in out  # Π′ rows present


class TestCompareCommand:
    def test_small_comparison_runs(self, capsys):
        code = main(["compare", "--racks", "4", "--packets", "30", "--workload", "uniform", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "alg" in out and "fifo" in out
        assert "ratio_to_alg" in out

    def test_ablations_included_when_requested(self, capsys):
        main(["compare", "--racks", "4", "--packets", "20", "--ablations", "--seed", "3"])
        out = capsys.readouterr().out
        assert "impact+fifo" in out


class TestCompetitiveCommand:
    def test_within_bound_exit_code(self, capsys):
        code = main(
            ["competitive", "--epsilon", "1.0", "--packets", "6", "--instances", "1", "--no-lp"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ratio" in out and "True" in out

    def test_invalid_epsilon(self, capsys):
        assert main(["competitive", "--epsilon", "0"]) == 2


class TestSimulateCommand:
    def test_generated_workload(self, capsys):
        code = main(
            ["simulate", "--racks", "4", "--packets", "20", "--policy", "alg", "--seed", "5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "all delivered" in out and "True" in out

    def test_trace_flag_prints_slots(self, capsys):
        main(["simulate", "--racks", "4", "--packets", "10", "--trace", "--seed", "5"])
        out = capsys.readouterr().out
        assert "slot 1" in out

    def test_unknown_policy(self):
        assert main(["simulate", "--policy", "bogus"]) == 2

    def test_replay_trace_file(self, tmp_path, capsys):
        topo = projector_fabric(num_racks=4, lasers_per_rack=2, photodetectors_per_rack=2, seed=7)
        packets = uniform_random_workload(topo, 15, seed=8)
        path = write_packet_trace(packets, tmp_path / "trace.csv")
        code = main(["simulate", "--racks", "4", "--seed", "7", "--input", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "15" in out

    def test_baseline_policy_runs(self, capsys):
        code = main(
            ["simulate", "--racks", "4", "--packets", "15", "--policy", "maxweight", "--seed", "5"]
        )
        assert code == 0

    def test_aggregate_retention_matches_full_total(self, capsys):
        argv = ["simulate", "--racks", "4", "--packets", "40", "--seed", "5"]
        assert main(argv) == 0
        full = capsys.readouterr().out
        assert main(argv + ["--retention", "aggregate"]) == 0
        aggregate = capsys.readouterr().out

        def total(out):
            for line in out.splitlines():
                if "total weighted latency" in line:
                    return line.split()[-2]
            raise AssertionError(f"no total in {out!r}")

        assert total(full) == total(aggregate)

    def test_replay_jsonl_trace_streaming(self, tmp_path, capsys):
        topo = projector_fabric(num_racks=4, lasers_per_rack=2, photodetectors_per_rack=2, seed=7)
        packets = uniform_random_workload(topo, 12, seed=8)
        path = write_packet_trace_jsonl(packets, tmp_path / "trace.jsonl")
        code = main(
            ["simulate", "--racks", "4", "--seed", "7", "--input", str(path),
             "--retention", "aggregate"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "12" in out

    def test_trace_jsonl_streams_slots_to_disk(self, tmp_path, capsys):
        path = tmp_path / "slots.jsonl"
        code = main(
            ["simulate", "--racks", "4", "--packets", "10", "--seed", "5",
             "--trace-jsonl", str(path)]
        )
        assert code == 0
        assert path.exists() and path.stat().st_size > 0
        assert "wrote slot trace" in capsys.readouterr().out


class TestSweepCommand:
    def test_single_sweep_runs(self, capsys):
        code = main(
            ["sweep", "--experiment", "tiers", "--racks", "4", "--packets", "30", "--seed", "3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "sweep: tiers" in out and "lasers_per_rack" in out

    def test_jobs_flag_does_not_change_rows(self, capsys):
        argv = ["sweep", "--experiment", "speedup", "--lp-packets", "6", "--seed", "3"]
        assert main(argv) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial.replace("jobs=1", "") == parallel.replace("jobs=2", "")

    def test_output_writes_json(self, tmp_path, capsys):
        path = tmp_path / "rows.json"
        code = main(
            [
                "sweep", "--experiment", "hybrid", "--racks", "4", "--packets", "30",
                "--seed", "3", "--jobs", "2", "--output", str(path),
            ]
        )
        assert code == 0
        rows = read_json(path)
        assert rows and all(row["experiment"] == "hybrid" for row in rows)
        assert "wrote" in capsys.readouterr().out

    def test_output_writes_jsonl(self, tmp_path, capsys):
        path = tmp_path / "rows.jsonl"
        code = main(
            [
                "sweep", "--experiment", "tiers", "--racks", "4", "--packets", "30",
                "--seed", "3", "--retention", "aggregate", "--output", str(path),
            ]
        )
        assert code == 0
        rows = read_jsonl(path)
        assert rows and all(row["experiment"] == "tiers" for row in rows)

    def test_retention_does_not_change_rows(self, capsys):
        argv = ["sweep", "--experiment", "tiers", "--racks", "4", "--packets", "30", "--seed", "3"]
        assert main(argv) == 0
        full = capsys.readouterr().out
        assert main(argv + ["--retention", "aggregate"]) == 0
        aggregate = capsys.readouterr().out
        assert full == aggregate

    def test_invalid_jobs(self):
        assert main(["sweep", "--experiment", "tiers", "--jobs", "0"]) == 2

    def test_invalid_chunksize(self):
        assert main(["sweep", "--experiment", "tiers", "--chunksize", "0"]) == 2

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--experiment", "nope"])


class TestScenariosCommand:
    def test_list_shows_registry(self, capsys):
        assert main(["scenarios", "list"]) == 0
        out = capsys.readouterr().out
        assert "figure1" in out and "priority-inversion-burst" in out

    def test_list_tag_filter(self, capsys):
        assert main(["scenarios", "list", "--tag", "adversarial"]) == 0
        out = capsys.readouterr().out
        assert "laser-hotspot" in out and "zipf-projector" not in out

    def test_list_grid_filter(self, capsys):
        assert main(["scenarios", "list", "--grid", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "tiny-random" in out and "heavy-tailed-incast" not in out

    def test_list_unknown_grid(self, capsys):
        assert main(["scenarios", "list", "--grid", "nope"]) == 2

    def test_run_smoke_grid(self, capsys):
        assert main(["scenarios", "run", "--grid", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "scenario grid: smoke" in out and "priority-inversion-burst" in out

    def test_run_modes_and_jobs_agree(self, capsys):
        assert main(["scenarios", "run", "--scenario", "tiny-random"]) == 0
        shared = capsys.readouterr().out.splitlines()[1:]  # drop the title line
        assert main(["scenarios", "run", "--scenario", "tiny-random",
                     "--mode", "per-policy", "--jobs", "2"]) == 0
        per_policy = capsys.readouterr().out.splitlines()[1:]
        assert shared == per_policy

    def test_run_engines_agree(self, capsys):
        """--engine reference and --engine indexed print identical rows."""
        assert main(["scenarios", "run", "--scenario", "tiny-random",
                     "--engine", "reference"]) == 0
        reference = capsys.readouterr().out.splitlines()[1:]
        assert main(["scenarios", "run", "--scenario", "tiny-random",
                     "--engine", "indexed"]) == 0
        indexed = capsys.readouterr().out.splitlines()[1:]
        assert reference == indexed

    def test_run_writes_output(self, tmp_path, capsys):
        path = tmp_path / "rows.jsonl"
        assert main(["scenarios", "run", "--scenario", "figure1",
                     "--output", str(path)]) == 0
        rows = read_jsonl(path)
        assert {row["policy"] for row in rows} == {"alg", "fifo"}

    def test_run_rejects_grid_and_scenario_together(self, capsys):
        assert main(["scenarios", "run", "--grid", "smoke",
                     "--scenario", "figure1"]) == 2

    def test_run_unknown_scenario(self, capsys):
        assert main(["scenarios", "run", "--scenario", "nope"]) == 2

    def test_run_missing_output_dir(self, capsys):
        assert main(["scenarios", "run", "--scenario", "figure1",
                     "--output", "/no/such/dir/rows.json"]) == 2
