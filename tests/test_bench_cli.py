"""Tests for the benchmark institution (repro.bench) and the bench CLI.

The history-file migration/corruption rules are pinned against the script
re-export in tests/test_bench_history.py; this file covers the sectioned
runners, the machine/scale comparability logic, the pure regression gate
and the ``bench run|report|check`` subcommands end to end at smoke scale.
"""

from __future__ import annotations

import json

import pytest

from repro import bench
from repro.cli import _BENCH_SECTIONS, main

SMOKE = dict(packets=200, racks=8, seed=15)
SMOKE_ARGS = ["--packets", "200", "--racks", "8", "--seed", "15"]


def _smoke_point(section: str = "dispatch"):
    return bench.run_section(section, **SMOKE)


@pytest.fixture(scope="module")
def dispatch_point():
    return _smoke_point("dispatch")


class TestSections:
    def test_cli_section_literal_matches_bench(self):
        assert _BENCH_SECTIONS == bench.SECTIONS

    @pytest.mark.parametrize("section", bench.SECTIONS)
    def test_every_section_returns_a_valid_point(self, section):
        point = _smoke_point(section)
        assert bench.validate_point(point) == []
        assert point["section"] == section
        assert point["cell"]["num_racks"] == SMOKE["racks"]
        assert point["throughput_pps"] > 0
        assert point["bit_identical"] is True
        json.dumps(point)  # JSON-serialisable as recorded

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown bench section"):
            bench.run_section("warp-drive")
        with pytest.raises(ValueError):
            bench.bench_path("warp-drive", ".")


class TestComparability:
    def test_machine_key_ignores_python_patch_version(self, dispatch_point):
        other = json.loads(json.dumps(dispatch_point))
        other["machine"]["python"] = "0.0.0"
        assert bench.machine_key(other) == bench.machine_key(dispatch_point)
        other["machine"]["platform"] = "other-box"
        assert bench.machine_key(other) != bench.machine_key(dispatch_point)

    def test_unstamped_point_has_no_key(self):
        assert bench.machine_key({}) is None
        assert bench.machine_key({"machine": {"platform": "x"}}) is None

    def test_scale_and_throughput_of_legacy_dispatch_points(self):
        legacy = {
            "machine": bench.machine_stamp(),
            "cell": {"num_racks": 64},
            "single_run": {"num_packets": 5000, "packets_per_s_indexed": 750.5},
        }
        assert bench.point_scale(legacy) == (64, 5000)
        assert bench.point_throughput(legacy) == 750.5

    def test_validate_point_flags_problems(self, dispatch_point):
        assert bench.validate_point(dispatch_point) == []
        broken = json.loads(json.dumps(dispatch_point))
        broken["schema"] = 99
        broken["throughput_pps"] = -1
        del broken["machine"]
        problems = bench.validate_point(broken)
        assert any("schema" in p for p in problems)
        assert any("machine" in p for p in problems)
        assert any("throughput" in p for p in problems)


class TestCheckHistory:
    def _clone(self, point, **overrides):
        clone = json.loads(json.dumps(point))
        clone.update(overrides)
        return clone

    def test_empty_history_passes(self, dispatch_point):
        ok, message = bench.check_history([], dispatch_point, 0.3)
        assert ok
        assert "no comparable prior" in message

    def test_within_tolerance_passes(self, dispatch_point):
        prior = self._clone(
            dispatch_point, throughput_pps=dispatch_point["throughput_pps"] * 1.2
        )
        ok, message = bench.check_history([prior], dispatch_point, 0.3)
        assert ok
        assert "OK" in message

    def test_regression_fails(self, dispatch_point):
        prior = self._clone(
            dispatch_point, throughput_pps=dispatch_point["throughput_pps"] * 10
        )
        ok, message = bench.check_history([prior], dispatch_point, 0.3)
        assert not ok
        assert "REGRESSION" in message

    def test_other_machine_is_not_comparable(self, dispatch_point):
        prior = self._clone(
            dispatch_point, throughput_pps=dispatch_point["throughput_pps"] * 10
        )
        prior["machine"]["platform"] = "someone-elses-laptop"
        ok, _message = bench.check_history([prior], dispatch_point, 0.3)
        assert ok

    def test_other_scale_is_not_comparable(self, dispatch_point):
        prior = self._clone(
            dispatch_point, throughput_pps=dispatch_point["throughput_pps"] * 10
        )
        prior["cell"]["num_packets"] = 10 * prior["cell"]["num_packets"]
        ok, _message = bench.check_history([prior], dispatch_point, 0.3)
        assert ok

    def test_best_comparable_point_wins(self, dispatch_point):
        slow = self._clone(dispatch_point, throughput_pps=1.0)
        fast = self._clone(
            dispatch_point, throughput_pps=dispatch_point["throughput_pps"] * 10
        )
        ok, _ = bench.check_history([slow], dispatch_point, 0.3)
        assert ok
        ok, _ = bench.check_history([slow, fast], dispatch_point, 0.3)
        assert not ok

    def test_bad_tolerance_rejected(self, dispatch_point):
        with pytest.raises(ValueError, match="tolerance"):
            bench.check_history([], dispatch_point, 1.0)
        with pytest.raises(ValueError):
            bench.check_history([], dispatch_point, -0.1)


class TestHistoryFiles:
    def test_save_load_round_trip(self, tmp_path, dispatch_point):
        path = bench.bench_path("dispatch", tmp_path)
        assert path.name == "BENCH_dispatch.json"
        bench.save_history(path, [dispatch_point], bench.bench_tag("dispatch"))
        assert bench.load_history(path) == [dispatch_point]
        document = json.loads(path.read_text(encoding="utf-8"))
        assert document["benchmark"] == "dispatch-hot-path"

    def test_other_sections_get_their_own_files(self, tmp_path):
        names = {bench.bench_path(s, tmp_path).name for s in bench.SECTIONS}
        assert names == {f"BENCH_{s}.json" for s in bench.SECTIONS}
        assert bench.bench_tag("scheduler") == "scheduler-hot-path"


class TestBenchCli:
    def test_run_appends_history_points(self, tmp_path, capsys):
        args = ["bench", "run", "--section", "dispatch", "--dir", str(tmp_path)]
        assert main(args + SMOKE_ARGS) == 0
        assert main(args + SMOKE_ARGS) == 0
        history = bench.load_history(bench.bench_path("dispatch", tmp_path))
        assert len(history) == 2
        assert all(bench.validate_point(p) == [] for p in history)
        out = capsys.readouterr().out
        assert "2 history points" in out

    def test_run_refuses_corrupt_history(self, tmp_path, capsys):
        path = bench.bench_path("dispatch", tmp_path)
        path.write_text("not json", encoding="utf-8")
        code = main(
            ["bench", "run", "--section", "dispatch", "--dir", str(tmp_path)]
            + SMOKE_ARGS
        )
        assert code == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_report_renders_new_and_legacy_points(
        self, tmp_path, dispatch_point, capsys
    ):
        legacy = {
            "recorded_at": "2026-01-01T00:00:00+00:00",
            "machine": bench.machine_stamp(),
            "cell": {"num_racks": 64},
            "single_run": {
                "num_packets": 5000,
                "packets_per_s_indexed": 750.5,
                "speedup": 12.0,
            },
        }
        bench.save_history(
            bench.bench_path("dispatch", tmp_path),
            [legacy, dispatch_point],
            bench.bench_tag("dispatch"),
        )
        assert main(["bench", "report", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "dispatch (BENCH_dispatch.json, 2 points)" in out
        assert "750.5 pps" in out       # legacy point rendered
        assert "12.00x" in out
        assert "2026-01-01T00:00:00+00:00" in out
        assert "streaming: no history" in out

    def test_check_passes_on_empty_and_consistent_history(self, tmp_path, capsys):
        args = ["bench", "--dir", str(tmp_path), "--section", "dispatch"]
        assert main(["bench", "check", "--dir", str(tmp_path),
                     "--section", "dispatch"] + SMOKE_ARGS) == 0
        assert "no comparable prior" in capsys.readouterr().out
        # Record a real point, then re-check with a generous tolerance.
        assert main(["bench", "run", "--dir", str(tmp_path),
                     "--section", "dispatch"] + SMOKE_ARGS) == 0
        assert main(["bench", "check", "--dir", str(tmp_path), "--section",
                     "dispatch", "--tolerance", "0.9"] + SMOKE_ARGS) == 0

    def test_check_fails_on_injected_regression(
        self, tmp_path, dispatch_point, capsys
    ):
        # A synthetic prior point from THIS machine at THIS scale claiming
        # impossible throughput: the gate must flag the (real) re-measurement
        # as a regression and exit non-zero.
        impossible = json.loads(json.dumps(dispatch_point))
        impossible["throughput_pps"] = dispatch_point["throughput_pps"] * 1000
        bench.save_history(
            bench.bench_path("dispatch", tmp_path),
            [impossible],
            bench.bench_tag("dispatch"),
        )
        code = main(["bench", "check", "--dir", str(tmp_path),
                     "--section", "dispatch"] + SMOKE_ARGS)
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_check_bad_tolerance_rejected(self, tmp_path, capsys):
        code = main(["bench", "check", "--dir", str(tmp_path),
                     "--tolerance", "1.5"])
        assert code == 2
        assert "--tolerance" in capsys.readouterr().err
