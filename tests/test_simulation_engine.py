"""Tests for repro.simulation.engine."""

from __future__ import annotations

import pytest

from repro.core import OpportunisticLinkScheduler, Packet, Policy, StableMatchingScheduler
from repro.core.dispatcher import ImpactDispatcher
from repro.core.interfaces import Scheduler
from repro.exceptions import SchedulingError, SimulationError
from repro.network import TwoTierTopology, figure1_topology, single_tier_crossbar
from repro.simulation import EngineConfig, SimulationEngine, simulate
from repro.workloads import figure1_packets, uniform_random_workload


class TestEngineBasics:
    def test_empty_packet_list(self, line_topology, alg_policy):
        result = simulate(line_topology, alg_policy, [])
        assert len(result) == 0
        assert result.total_weighted_latency == 0.0
        assert result.all_delivered

    def test_single_packet_latency(self, line_topology, alg_policy):
        p = Packet(0, "s", "d", weight=3.0, arrival=1)
        result = simulate(line_topology, alg_policy, [p])
        assert result.all_delivered
        assert result.record(0).completion_time == 2
        assert result.total_weighted_latency == pytest.approx(3.0)

    def test_two_packets_same_edge_serialize(self, line_topology, alg_policy):
        packets = [
            Packet(0, "s", "d", weight=1.0, arrival=1),
            Packet(1, "s", "d", weight=1.0, arrival=1),
        ]
        result = simulate(line_topology, alg_policy, packets)
        latencies = sorted(r.weighted_latency for r in result)
        assert latencies == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_heavier_packet_goes_first(self, line_topology, alg_policy):
        packets = [
            Packet(0, "s", "d", weight=1.0, arrival=1),
            Packet(1, "s", "d", weight=10.0, arrival=1),
        ]
        result = simulate(line_topology, alg_policy, packets)
        assert result.record(1).completion_time < result.record(0).completion_time

    def test_duplicate_packet_ids_rejected(self, line_topology, alg_policy):
        packets = [Packet(0, "s", "d", 1.0, 1), Packet(0, "s", "d", 1.0, 2)]
        with pytest.raises(SimulationError):
            simulate(line_topology, alg_policy, packets)

    def test_unroutable_packet_rejected(self, fig1_topology, alg_policy):
        with pytest.raises(SimulationError):
            simulate(fig1_topology, alg_policy, [Packet(0, "s1", "d3", 1.0, 1)])

    def test_max_slots_guard(self, line_topology, alg_policy):
        packets = [Packet(i, "s", "d", 1.0, 1) for i in range(10)]
        with pytest.raises(SimulationError):
            simulate(line_topology, alg_policy, packets, max_slots=3)

    def test_late_arrivals_handled(self, line_topology, alg_policy):
        packets = [Packet(0, "s", "d", 1.0, 100)]
        result = simulate(line_topology, alg_policy, packets)
        assert result.record(0).completion_time == 101
        assert result.first_slot == 100

    def test_matching_sizes_recorded(self, crossbar4, alg_policy):
        packets = uniform_random_workload(crossbar4, 20, arrival_rate=4.0, seed=1)
        result = simulate(crossbar4, alg_policy, packets)
        assert len(result.matching_sizes) == result.num_slots
        assert max(result.matching_sizes) <= 4


class TestDelaysAndChunking:
    def make_delay_topology(self, edge_delay=2, head=0, tail=0, fixed=None):
        topo = TwoTierTopology()
        topo.add_source("s")
        topo.add_destination("d")
        topo.add_transmitter("t", "s", head_delay=head)
        topo.add_receiver("r", "d", tail_delay=tail)
        topo.add_reconfigurable_edge("t", "r", delay=edge_delay)
        if fixed is not None:
            topo.add_fixed_link("s", "d", delay=fixed)
        return topo.freeze()

    def test_multi_chunk_packet_completion(self, alg_policy):
        topo = self.make_delay_topology(edge_delay=3)
        p = Packet(0, "s", "d", weight=3.0, arrival=1)
        result = simulate(topo, alg_policy, [p])
        # Chunks cross in slots 1, 2, 3 -> completion at 4; weighted latency
        # = sum over chunks of (w/3) * i for i = 1..3 = 1+2+3 = 6... times w/3 = 2 each -> 6.
        assert result.record(0).completion_time == 4
        assert result.record(0).weighted_latency == pytest.approx(6.0)

    def test_head_delay_postpones_eligibility(self, alg_policy):
        topo = self.make_delay_topology(edge_delay=1, head=2)
        p = Packet(0, "s", "d", weight=1.0, arrival=1)
        result = simulate(topo, alg_policy, [p])
        assert result.record(0).completion_time == 4  # eligible at 3, crosses slot 3
        assert result.record(0).weighted_latency == pytest.approx(3.0)

    def test_tail_delay_added_to_latency(self, alg_policy):
        topo = self.make_delay_topology(edge_delay=1, tail=3)
        p = Packet(0, "s", "d", weight=2.0, arrival=1)
        result = simulate(topo, alg_policy, [p])
        assert result.record(0).completion_time == 5
        assert result.record(0).weighted_latency == pytest.approx(8.0)

    def test_fixed_link_packet_completion(self, alg_policy):
        topo = self.make_delay_topology(edge_delay=5, fixed=2)
        p = Packet(0, "s", "d", weight=1.0, arrival=3)
        result = simulate(topo, alg_policy, [p])
        record = result.record(0)
        assert record.used_fixed_link
        assert record.completion_time == 5
        assert record.weighted_latency == pytest.approx(2.0)

    def test_fixed_link_packets_do_not_contend(self, alg_policy):
        topo = self.make_delay_topology(edge_delay=10, fixed=2)
        packets = [Packet(i, "s", "d", 1.0, 1) for i in range(5)]
        result = simulate(topo, alg_policy, packets)
        assert all(r.used_fixed_link for r in result)
        assert all(r.weighted_latency == pytest.approx(2.0) for r in result)


class TestSpeedup:
    def test_speed_two_halves_queueing(self, line_topology, alg_policy):
        packets = [Packet(i, "s", "d", 1.0, 1) for i in range(4)]
        slow = simulate(line_topology, alg_policy, packets, speed=1.0)
        fast = simulate(line_topology, OpportunisticLinkScheduler(), packets, speed=2.0)
        assert fast.total_weighted_latency < slow.total_weighted_latency
        # At speed 2, two chunks cross per slot: completions at slots 1,1,2,2.
        assert fast.total_weighted_latency == pytest.approx(1 + 1 + 2 + 2)

    def test_fractional_speed_progress(self, line_topology):
        packets = [Packet(0, "s", "d", 1.0, 1)]
        result = simulate(line_topology, OpportunisticLinkScheduler(), packets, speed=0.5)
        # Half the chunk in slot 1, the rest in slot 2: fractional latency
        # 0.5*1 + 0.5*2 = 1.5.
        assert result.record(0).completion_time == 3
        assert result.record(0).weighted_latency == pytest.approx(1.5)

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(speed=0.0)

    def test_higher_speed_never_worse(self, crossbar4):
        packets = uniform_random_workload(crossbar4, 30, arrival_rate=5.0, seed=3)
        costs = [
            simulate(crossbar4, OpportunisticLinkScheduler(), packets, speed=s).total_weighted_latency
            for s in (1.0, 2.0, 3.0)
        ]
        assert costs[0] >= costs[1] >= costs[2]


class TestMatchingValidation:
    class BadScheduler(Scheduler):
        name = "bad"

        def select_matching(self, pool, topology, now):
            # Return every eligible chunk, which can violate the matching property.
            return pool.eligible_chunks(now)

    def test_non_matching_schedule_rejected(self, line_topology):
        policy = Policy("bad", ImpactDispatcher(), self.BadScheduler())
        packets = [Packet(0, "s", "d", 1.0, 1), Packet(1, "s", "d", 1.0, 1)]
        with pytest.raises(SchedulingError):
            simulate(line_topology, policy, packets)

    class NotEligibleScheduler(Scheduler):
        name = "not-eligible"

        def select_matching(self, pool, topology, now):
            return [c for c in pool][:1]

    def test_ineligible_chunk_rejected(self):
        topo = TwoTierTopology()
        topo.add_source("s")
        topo.add_destination("d")
        topo.add_transmitter("t", "s", head_delay=5)
        topo.add_receiver("r", "d")
        topo.add_reconfigurable_edge("t", "r", delay=1)
        topo.freeze()
        policy = Policy("bad", ImpactDispatcher(), self.NotEligibleScheduler())
        with pytest.raises(SchedulingError):
            simulate(topo, policy, [Packet(0, "s", "d", 1.0, 1)])


class TestTraceRecording:
    def test_trace_disabled_by_default(self, line_topology, alg_policy):
        result = simulate(line_topology, alg_policy, [Packet(0, "s", "d", 1.0, 1)])
        assert result.trace is None

    def test_trace_records_slots(self, fig1_topology):
        result = simulate(
            fig1_topology, OpportunisticLinkScheduler(), figure1_packets(), record_trace=True
        )
        assert result.trace is not None
        assert len(result.trace) == result.num_slots
        slot1 = result.trace.slot(1)
        assert slot1.arrivals == [0, 1, 2]
        assert slot1.matching_size == 2

    def test_trace_format_readable(self, fig1_topology):
        result = simulate(
            fig1_topology, OpportunisticLinkScheduler(), figure1_packets(), record_trace=True
        )
        text = result.trace.format()
        assert "slot 1" in text and "dispatch" in text and "transmit" in text

    def test_trace_missing_slot_raises(self, fig1_topology):
        result = simulate(
            fig1_topology, OpportunisticLinkScheduler(), figure1_packets(), record_trace=True
        )
        with pytest.raises(KeyError):
            result.trace.slot(999)


class TestEngineConfig:
    def test_keyword_overrides(self, line_topology, alg_policy):
        engine = SimulationEngine(line_topology, alg_policy, speed=2.0, max_slots=50)
        assert engine.config.speed == 2.0
        assert engine.config.max_slots == 50

    def test_config_object_used(self, line_topology, alg_policy):
        engine = SimulationEngine(line_topology, alg_policy, EngineConfig(record_trace=True))
        assert engine.config.record_trace

    def test_invalid_max_slots(self):
        with pytest.raises(ValueError):
            EngineConfig(max_slots=0)

    def test_engine_freezes_topology(self, alg_policy):
        topo = TwoTierTopology()
        topo.add_source("s")
        topo.add_destination("d")
        topo.add_transmitter("t", "s")
        topo.add_receiver("r", "d")
        topo.add_reconfigurable_edge("t", "r", delay=1)
        SimulationEngine(topo, alg_policy)
        assert topo.frozen
