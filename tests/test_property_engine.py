"""Property-based tests for the simulation engine's accounting invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import make_fifo_policy, make_maxweight_policy
from repro.core import OpportunisticLinkScheduler, Packet
from repro.network import projector_fabric, random_bipartite
from repro.simulation import recompute_weighted_latency, simulate
from repro.workloads import Instance


@st.composite
def random_instances(draw, max_packets=25):
    """Small random topologies and packet sequences."""
    num_sources = draw(st.integers(min_value=2, max_value=4))
    num_destinations = draw(st.integers(min_value=2, max_value=4))
    topo_seed = draw(st.integers(min_value=0, max_value=10_000))
    delays = draw(st.sampled_from([(1,), (1, 2), (1, 3), (2,)]))
    topology = random_bipartite(
        num_sources,
        num_destinations,
        transmitters_per_source=draw(st.integers(min_value=1, max_value=2)),
        receivers_per_destination=draw(st.integers(min_value=1, max_value=2)),
        edge_probability=0.6,
        delay_choices=delays,
        seed=topo_seed,
    )
    pairs = [
        (s, d)
        for s in topology.sources
        for d in topology.destinations
        if topology.can_route(s, d)
    ]
    n = draw(st.integers(min_value=1, max_value=max_packets))
    packets = []
    for pid in range(n):
        s, d = pairs[draw(st.integers(min_value=0, max_value=len(pairs) - 1))]
        packets.append(
            Packet(
                packet_id=pid,
                source=s,
                destination=d,
                weight=draw(st.floats(min_value=0.1, max_value=20.0, allow_nan=False)),
                arrival=draw(st.integers(min_value=1, max_value=8)),
            )
        )
    return Instance(name="prop", topology=topology, packets=packets)


class TestEngineInvariants:
    @given(random_instances())
    @settings(max_examples=60, deadline=None)
    def test_all_packets_delivered(self, instance):
        result = simulate(instance.topology, OpportunisticLinkScheduler(), instance.packets)
        assert result.all_delivered
        assert len(result) == instance.num_packets

    @given(random_instances())
    @settings(max_examples=60, deadline=None)
    def test_accounting_consistency(self, instance):
        result = simulate(instance.topology, OpportunisticLinkScheduler(), instance.packets)
        assert math.isclose(
            recompute_weighted_latency(result),
            result.total_weighted_latency,
            rel_tol=1e-9,
            abs_tol=1e-9,
        )

    @given(random_instances())
    @settings(max_examples=60, deadline=None)
    def test_latency_lower_bounded_by_path_delay(self, instance):
        result = simulate(instance.topology, OpportunisticLinkScheduler(), instance.packets)
        topo = instance.topology
        for record in result:
            packet = record.packet
            if record.used_fixed_link:
                min_latency = packet.weight * topo.fixed_link_delay(
                    packet.source, packet.destination
                )
            else:
                # The cheapest possible routing of the packet over any candidate edge.
                min_latency = min(
                    packet.weight
                    * (
                        topo.head_delay(t)
                        + (topo.edge_delay(t, r) + 1) / 2
                        + topo.tail_delay(r)
                    )
                    for (t, r) in topo.candidate_edges(packet.source, packet.destination)
                )
            assert record.weighted_latency >= min_latency - 1e-9

    @given(random_instances())
    @settings(max_examples=60, deadline=None)
    def test_completion_after_arrival(self, instance):
        result = simulate(instance.topology, OpportunisticLinkScheduler(), instance.packets)
        for record in result:
            assert record.completion_time > record.packet.arrival

    @given(random_instances())
    @settings(max_examples=40, deadline=None)
    def test_matching_sizes_bounded(self, instance):
        result = simulate(instance.topology, OpportunisticLinkScheduler(), instance.packets)
        bound = min(len(instance.topology.transmitters), len(instance.topology.receivers))
        assert all(0 <= size <= bound for size in result.matching_sizes)

    @given(random_instances(max_packets=15))
    @settings(max_examples=30, deadline=None)
    def test_alpha_upper_bounds_latency_for_alg(self, instance):
        # Lemma 2 corollary: summed charges equal the cost and each packet's
        # charge is at most alpha, so the total cost never exceeds total alpha.
        result = simulate(instance.topology, OpportunisticLinkScheduler(), instance.packets)
        assert result.total_weighted_latency <= result.total_alpha + 1e-6

    @given(random_instances(max_packets=15))
    @settings(max_examples=25, deadline=None)
    def test_speedup_never_hurts(self, instance):
        slow = simulate(
            instance.topology, OpportunisticLinkScheduler(), instance.packets, speed=1.0
        )
        fast = simulate(
            instance.topology, OpportunisticLinkScheduler(), instance.packets, speed=2.0
        )
        assert fast.total_weighted_latency <= slow.total_weighted_latency + 1e-9

    @given(random_instances(max_packets=15))
    @settings(max_examples=25, deadline=None)
    def test_baselines_also_deliver_everything(self, instance):
        for policy in (make_fifo_policy(), make_maxweight_policy()):
            result = simulate(instance.topology, policy, instance.packets)
            assert result.all_delivered

    @given(
        random_instances(),
        st.sampled_from([1.0, 1.3, 1.7, 2.0]),
        st.sampled_from([0, 2, 1 << 30]),
    )
    @settings(max_examples=40, deadline=None)
    def test_engine_backends_bit_identical(self, instance, speed, min_batch):
        # The vectorized backend (at every scalar/numpy crossover setting,
        # including fractional-speed spill walks) must replay the indexed and
        # reference engines bit-for-bit on arbitrary random instances.
        from repro.simulation import vector_backend

        original = vector_backend._VECTOR_MIN_BATCH
        vector_backend._VECTOR_MIN_BATCH = min_batch
        try:
            summaries = {
                engine: simulate(
                    instance.topology,
                    OpportunisticLinkScheduler(),
                    instance.packets,
                    speed=speed,
                    engine=engine,
                ).summary()
                for engine in ("indexed", "reference", "vectorized")
            }
        finally:
            vector_backend._VECTOR_MIN_BATCH = original
        assert summaries["vectorized"] == summaries["indexed"] == summaries["reference"]
