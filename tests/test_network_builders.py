"""Tests for repro.network.builders."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.network import (
    add_uniform_fixed_links,
    figure1_topology,
    figure2_topology,
    projector_fabric,
    random_bipartite,
    single_tier_crossbar,
)
from repro.workloads import routable_pairs


class TestCrossbar:
    def test_dimensions(self):
        topo = single_tier_crossbar(4)
        assert len(topo.sources) == 4
        assert len(topo.transmitters) == 4
        assert len(topo.reconfigurable_edges) == 16

    def test_every_pair_routable(self):
        topo = single_tier_crossbar(3)
        for s in topo.sources:
            for d in topo.destinations:
                assert topo.can_route(s, d)

    def test_single_transmitter_per_source(self):
        topo = single_tier_crossbar(5)
        for s in topo.sources:
            assert len(topo.transmitters_of_source(s)) == 1

    def test_custom_delay(self):
        topo = single_tier_crossbar(2, delay=3)
        assert all(topo.edge_delay(t, r) == 3 for (t, r) in topo.reconfigurable_edges)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            single_tier_crossbar(0)


class TestProjectorFabric:
    def test_counts(self):
        topo = projector_fabric(num_racks=4, lasers_per_rack=2, photodetectors_per_rack=3)
        assert len(topo.sources) == 4
        assert len(topo.transmitters) == 8
        assert len(topo.receivers) == 12

    def test_full_connectivity_edges(self):
        topo = projector_fabric(num_racks=3, lasers_per_rack=2, photodetectors_per_rack=2)
        # 3 racks, each pair (i != j): 2*2 edges -> 6 ordered pairs * 4 = 24.
        assert len(topo.reconfigurable_edges) == 24

    def test_no_self_rack_edges(self):
        topo = projector_fabric(num_racks=3)
        for (t, r) in topo.reconfigurable_edges:
            assert t.split(":")[0] != r.split(":")[0]

    def test_partial_connectivity_keeps_routability(self):
        topo = projector_fabric(num_racks=5, connectivity=0.2, seed=1)
        for i in range(5):
            for j in range(5):
                if i != j:
                    assert topo.can_route(f"rack{i}:src", f"rack{j}:dst")

    def test_partial_connectivity_reduces_edges(self):
        full = projector_fabric(num_racks=5, lasers_per_rack=3, photodetectors_per_rack=3)
        sparse = projector_fabric(
            num_racks=5, lasers_per_rack=3, photodetectors_per_rack=3, connectivity=0.3, seed=2
        )
        assert len(sparse.reconfigurable_edges) < len(full.reconfigurable_edges)

    def test_requires_two_racks(self):
        with pytest.raises(TopologyError):
            projector_fabric(num_racks=1)

    def test_deterministic_given_seed(self):
        a = projector_fabric(num_racks=4, connectivity=0.5, seed=9)
        b = projector_fabric(num_racks=4, connectivity=0.5, seed=9)
        assert a.reconfigurable_edges == b.reconfigurable_edges


class TestRandomBipartite:
    def test_all_pairs_routable(self):
        topo = random_bipartite(3, 4, edge_probability=0.1, seed=0)
        assert len(routable_pairs(topo)) == 12

    def test_delay_choices_respected(self):
        topo = random_bipartite(3, 3, delay_choices=(2, 5), seed=1)
        delays = {topo.edge_delay(t, r) for (t, r) in topo.reconfigurable_edges}
        assert delays <= {2, 5}

    def test_invalid_delay_choices(self):
        with pytest.raises(TopologyError):
            random_bipartite(2, 2, delay_choices=(0,))

    def test_deterministic_given_seed(self):
        a = random_bipartite(3, 3, edge_probability=0.4, seed=5)
        b = random_bipartite(3, 3, edge_probability=0.4, seed=5)
        assert a == b

    def test_multiple_transmitters_per_source(self):
        topo = random_bipartite(2, 2, transmitters_per_source=3, receivers_per_destination=2, seed=2)
        assert len(topo.transmitters) == 6
        assert len(topo.receivers) == 4


class TestFixedLinkAugmentation:
    def test_adds_links_for_all_pairs(self):
        base = projector_fabric(num_racks=3)
        hybrid = add_uniform_fixed_links(
            base, delay=5, pair_filter=lambda s, d: s.split(":")[0] != d.split(":")[0]
        )
        assert len(hybrid.fixed_links) == 6
        assert all(d == 5 for d in hybrid.fixed_links.values())

    def test_original_not_modified(self):
        base = projector_fabric(num_racks=3)
        add_uniform_fixed_links(base, delay=5)
        assert len(base.fixed_links) == 0

    def test_preserves_edges_and_delays(self):
        base = random_bipartite(2, 2, delay_choices=(3,), seed=0)
        hybrid = add_uniform_fixed_links(base, delay=4)
        assert set(hybrid.reconfigurable_edges) == set(base.reconfigurable_edges)
        assert all(hybrid.edge_delay(t, r) == 3 for (t, r) in hybrid.reconfigurable_edges)

    def test_existing_fixed_links_kept(self):
        base = figure1_topology()
        hybrid = add_uniform_fixed_links(base, delay=9)
        assert hybrid.fixed_link_delay("s2", "d3") == 4  # pre-existing link untouched

    def test_invalid_delay(self):
        with pytest.raises(TopologyError):
            add_uniform_fixed_links(figure1_topology(), delay=0)


class TestPaperTopologies:
    def test_figure1_structure(self):
        topo = figure1_topology()
        assert set(topo.candidate_edges("s2", "d2")) == {("t3", "r3")}
        assert set(topo.candidate_edges("s1", "d2")) == {("t1", "r2")}
        assert topo.has_fixed_link("s2", "d3")
        assert topo.fixed_link_delay("s2", "d3") == 4

    def test_figure2_structure(self):
        topo = figure2_topology()
        assert len(topo.candidate_edges("s1", "d1")) == 1
        assert len(topo.candidate_edges("s1", "d2")) == 1
        assert len(topo.candidate_edges("s2", "d2")) == 1
        assert len(topo.candidate_edges("s2", "d3")) == 1
        assert not topo.can_route("s1", "d3")
        assert len(topo.fixed_links) == 0
