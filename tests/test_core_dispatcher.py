"""Tests for repro.core.dispatcher (the worst-case-impact dispatcher)."""

from __future__ import annotations

import pytest

from repro.core.dispatcher import ImpactDispatcher, compute_edge_impact
from repro.core.packet import EdgeAssignment, FixedLinkAssignment, Packet
from repro.core.queues import PendingChunkPool
from repro.exceptions import RoutingError
from repro.network import TwoTierTopology, figure1_topology, figure2_topology


def dispatch(topology, packet, pool=None, now=None):
    dispatcher = ImpactDispatcher()
    return dispatcher.dispatch(packet, topology, pool or PendingChunkPool(), now or packet.arrival)


class TestImpactFormula:
    def test_empty_pool_impact_is_self_latency(self, fig2_topology):
        p = Packet(0, "s1", "d1", weight=2.0, arrival=1)
        impact = compute_edge_impact(p, "t(s1)", "r(d1)", fig2_topology, PendingChunkPool())
        # d(e)=1, head=tail=0: self latency = w * (0 + 1 + 0) = 2.
        assert impact.total == pytest.approx(2.0)
        assert impact.num_heavier == 0 and impact.num_lighter == 0

    def test_heavier_pending_chunk_counted_in_H(self, fig2_topology):
        pool = PendingChunkPool()
        heavy = Packet(0, "s1", "d2", weight=5.0, arrival=1)
        heavy_assignment = dispatch(fig2_topology, heavy, pool)
        pool.add_all(heavy_assignment.chunks)
        p = Packet(1, "s1", "d1", weight=2.0, arrival=1)
        impact = compute_edge_impact(p, "t(s1)", "r(d1)", fig2_topology, pool)
        assert impact.num_heavier == 1
        assert impact.blocked_by_term == pytest.approx(2.0)
        assert impact.total == pytest.approx(2.0 + 2.0)

    def test_lighter_pending_chunk_counted_in_L(self, fig2_topology):
        pool = PendingChunkPool()
        light = Packet(0, "s1", "d2", weight=1.0, arrival=1)
        pool.add_all(dispatch(fig2_topology, light, pool).chunks)
        p = Packet(1, "s1", "d1", weight=4.0, arrival=1)
        impact = compute_edge_impact(p, "t(s1)", "r(d1)", fig2_topology, pool)
        assert impact.num_lighter == 1
        assert impact.blocks_term == pytest.approx(1.0)  # d(e)=1 times weight 1

    def test_equal_weight_counts_as_heavier(self, fig2_topology):
        pool = PendingChunkPool()
        first = Packet(0, "s1", "d2", weight=2.0, arrival=1)
        pool.add_all(dispatch(fig2_topology, first, pool).chunks)
        p = Packet(1, "s1", "d1", weight=2.0, arrival=1)
        impact = compute_edge_impact(p, "t(s1)", "r(d1)", fig2_topology, pool)
        assert impact.num_heavier == 1 and impact.num_lighter == 0

    def test_delay_affects_self_latency_and_chunk_weight(self):
        topo = TwoTierTopology()
        topo.add_source("s")
        topo.add_destination("d")
        topo.add_transmitter("t", "s", head_delay=2)
        topo.add_receiver("r", "d", tail_delay=3)
        topo.add_reconfigurable_edge("t", "r", delay=4)
        topo.freeze()
        p = Packet(0, "s", "d", weight=8.0, arrival=1)
        impact = compute_edge_impact(p, "t", "r", topo, PendingChunkPool())
        # self latency = w * (head + (d+1)/2 + tail) = 8 * (2 + 2.5 + 3) = 60.
        assert impact.self_latency == pytest.approx(60.0)
        assert impact.total == pytest.approx(60.0)

    def test_non_adjacent_chunks_ignored(self, fig2_topology):
        pool = PendingChunkPool()
        other = Packet(0, "s2", "d3", weight=9.0, arrival=1)
        pool.add_all(dispatch(fig2_topology, other, pool).chunks)
        p = Packet(1, "s1", "d1", weight=1.0, arrival=1)
        impact = compute_edge_impact(p, "t(s1)", "r(d1)", fig2_topology, pool)
        assert impact.num_heavier == 0 and impact.num_lighter == 0


class TestDispatchDecisions:
    def test_unique_candidate_edge_chosen(self, fig2_topology):
        p = Packet(0, "s1", "d1", weight=1.0, arrival=1)
        assignment = dispatch(fig2_topology, p)
        assert isinstance(assignment, EdgeAssignment)
        assert assignment.edge == ("t(s1)", "r(d1)")
        assert len(assignment.chunks) == 1

    def test_minimum_impact_edge_chosen(self, fig1_topology):
        # From Figure 1 slot 1: after p1 and p2 are queued at t1, packet p3
        # (s2 -> d2) has the uncontended (t3, r3) as its only candidate.
        pool = PendingChunkPool()
        p1 = Packet(0, "s1", "d1", weight=1.0, arrival=1)
        pool.add_all(dispatch(fig1_topology, p1, pool).chunks)
        p3 = Packet(2, "s2", "d2", weight=1.0, arrival=1)
        assignment = dispatch(fig1_topology, p3, pool)
        assert assignment.edge == ("t3", "r3")
        assert assignment.impact == pytest.approx(1.0)

    def test_fixed_link_chosen_when_cheaper(self, fig1_topology):
        pool = PendingChunkPool()
        # Queue three heavy packets on (t3, r4)'s transmitter to make the
        # reconfigurable impact exceed the fixed-link latency of 4.
        for i in range(4):
            heavy = Packet(i, "s2", "d2", weight=10.0, arrival=1)
            pool.add_all(dispatch(fig1_topology, heavy, pool).chunks)
        p = Packet(9, "s2", "d3", weight=1.0, arrival=1)
        assignment = dispatch(fig1_topology, p, pool)
        assert isinstance(assignment, FixedLinkAssignment)
        assert assignment.impact == pytest.approx(4.0)

    def test_reconfigurable_preferred_when_cheaper_than_fixed(self, fig1_topology):
        p = Packet(0, "s2", "d3", weight=1.0, arrival=1)
        assignment = dispatch(fig1_topology, p)
        assert isinstance(assignment, EdgeAssignment)
        assert assignment.edge == ("t3", "r4")

    def test_tie_prefers_fixed_link(self):
        # Fixed-link latency equal to the best reconfigurable impact: the
        # paper uses "<=", so the fixed link wins.
        topo = TwoTierTopology()
        topo.add_source("s")
        topo.add_destination("d")
        topo.add_transmitter("t", "s")
        topo.add_receiver("r", "d")
        topo.add_reconfigurable_edge("t", "r", delay=1)
        topo.add_fixed_link("s", "d", delay=1)
        topo.freeze()
        p = Packet(0, "s", "d", weight=3.0, arrival=1)
        assignment = dispatch(topo, p)
        assert isinstance(assignment, FixedLinkAssignment)

    def test_unroutable_packet_raises(self, fig2_topology):
        p = Packet(0, "s1", "d3", weight=1.0, arrival=1)
        with pytest.raises(RoutingError):
            dispatch(fig2_topology, p)

    def test_packet_split_according_to_delay(self):
        topo = TwoTierTopology()
        topo.add_source("s")
        topo.add_destination("d")
        topo.add_transmitter("t", "s")
        topo.add_receiver("r", "d")
        topo.add_reconfigurable_edge("t", "r", delay=3)
        topo.freeze()
        p = Packet(0, "s", "d", weight=6.0, arrival=1)
        assignment = dispatch(topo, p)
        assert len(assignment.chunks) == 3
        assert assignment.chunks[0].weight == pytest.approx(2.0)

    def test_impact_recorded_as_alpha(self, fig2_topology):
        p = Packet(0, "s2", "d3", weight=3.0, arrival=1)
        assignment = dispatch(fig2_topology, p)
        assert assignment.impact == pytest.approx(3.0)

    def test_deterministic_tie_break_between_edges(self):
        # Two identical candidate edges: the lexicographically smaller one wins.
        topo = TwoTierTopology()
        topo.add_source("s")
        topo.add_destination("d")
        topo.add_transmitter("ta", "s")
        topo.add_transmitter("tb", "s")
        topo.add_receiver("ra", "d")
        topo.add_receiver("rb", "d")
        topo.add_reconfigurable_edge("ta", "ra", delay=1)
        topo.add_reconfigurable_edge("tb", "rb", delay=1)
        topo.freeze()
        p = Packet(0, "s", "d", weight=1.0, arrival=1)
        assert dispatch(topo, p).edge == ("ta", "ra")


class TestDecisionLog:
    def test_log_recorded_when_enabled(self, fig1_topology):
        dispatcher = ImpactDispatcher(record_decisions=True)
        pool = PendingChunkPool()
        p = Packet(0, "s2", "d3", weight=1.0, arrival=1)
        dispatcher.dispatch(p, fig1_topology, pool, 1)
        assert len(dispatcher.decision_log) == 1
        entry = dispatcher.decision_log[0]
        assert entry["packet_id"] == 0
        assert entry["fixed_latency"] == pytest.approx(4.0)
        assert len(entry["candidates"]) == 1

    def test_log_empty_when_disabled(self, fig1_topology):
        dispatcher = ImpactDispatcher()
        p = Packet(0, "s1", "d1", weight=1.0, arrival=1)
        dispatcher.dispatch(p, fig1_topology, PendingChunkPool(), 1)
        assert dispatcher.decision_log == []

    def test_reset_clears_log(self, fig1_topology):
        dispatcher = ImpactDispatcher(record_decisions=True)
        p = Packet(0, "s1", "d1", weight=1.0, arrival=1)
        dispatcher.dispatch(p, fig1_topology, PendingChunkPool(), 1)
        dispatcher.reset()
        assert dispatcher.decision_log == []
