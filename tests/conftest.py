"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.core import OpportunisticLinkScheduler, Packet
from repro.network import (
    TwoTierTopology,
    figure1_topology,
    figure2_topology,
    projector_fabric,
    single_tier_crossbar,
)
from repro.workloads import Instance, figure1_instance, uniform_random_workload


def pytest_addoption(parser: pytest.Parser) -> None:
    """Register the golden-file regeneration flag (see tests/test_golden_scenarios.py)."""
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite the golden scenario fingerprints under tests/golden/ "
        "instead of asserting against them",
    )


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    """Whether this run should regenerate golden files instead of checking them."""
    return bool(request.config.getoption("--update-golden"))


@pytest.fixture
def fig1_topology() -> TwoTierTopology:
    """The Figure 1 hybrid topology."""
    return figure1_topology()


@pytest.fixture
def fig1_instance() -> Instance:
    """The Figure 1 instance (topology + five unit packets)."""
    return figure1_instance()


@pytest.fixture
def fig2_topology() -> TwoTierTopology:
    """The Figure 2 topology (one transmitter per source, one receiver per destination)."""
    return figure2_topology()


@pytest.fixture
def crossbar4() -> TwoTierTopology:
    """A 4x4 single-tier crossbar."""
    return single_tier_crossbar(4)


@pytest.fixture
def small_fabric() -> TwoTierTopology:
    """A small ProjecToR-style fabric (4 racks, 2 lasers/photodetectors each)."""
    return projector_fabric(num_racks=4, lasers_per_rack=2, photodetectors_per_rack=2, seed=3)


@pytest.fixture
def small_instance(small_fabric: TwoTierTopology) -> Instance:
    """A deterministic 40-packet instance on the small fabric."""
    packets = uniform_random_workload(small_fabric, num_packets=40, arrival_rate=2.0, seed=5)
    return Instance(name="small", topology=small_fabric, packets=packets)


@pytest.fixture
def alg_policy() -> OpportunisticLinkScheduler:
    """A fresh instance of the paper's algorithm."""
    return OpportunisticLinkScheduler()


def make_simple_line_topology() -> TwoTierTopology:
    """One source, one destination, a single edge of delay 1 (used by unit tests)."""
    topo = TwoTierTopology(name="line")
    topo.add_source("s")
    topo.add_destination("d")
    topo.add_transmitter("t", "s")
    topo.add_receiver("r", "d")
    topo.add_reconfigurable_edge("t", "r", delay=1)
    return topo.freeze()


@pytest.fixture
def line_topology() -> TwoTierTopology:
    """Single source→transmitter→receiver→destination line."""
    return make_simple_line_topology()


def make_packet(
    packet_id: int = 0,
    source: str = "s",
    destination: str = "d",
    weight: float = 1.0,
    arrival: int = 1,
) -> Packet:
    """Convenience packet constructor for unit tests."""
    return Packet(
        packet_id=packet_id,
        source=source,
        destination=destination,
        weight=weight,
        arrival=arrival,
    )
