"""Property-based tests for the incremental matching repairer.

The contract of :class:`repro.core.matching_index.MatchingIndex` is exact
equivalence with the from-scratch oracle: after *any* sequence of
activations, removals and eligibility advances, ``current_matching()`` must
equal :func:`repro.core.stable_matching.greedy_stable_matching` recomputed
over the currently eligible chunks — same chunks, same (priority) order —
and must be a stable matching of that set.  The random walks here drive the
repairer through its full event space (tie weights, eviction cascades,
removal promotions, future-bucket removals) and check the oracle equivalence
after every single step.
"""

from __future__ import annotations

import random

import pytest

from repro.core.matching_index import MatchingIndex
from repro.core.packet import Chunk, Packet, split_into_chunks
from repro.core.queues import PendingChunkPool
from repro.core.scheduler import StableMatchingScheduler
from repro.core.stable_matching import greedy_stable_matching, is_stable_matching
from repro.exceptions import SimulationError
from repro.network import figure2_topology


def make_chunk(
    pid: int,
    weight: float,
    edge: tuple[str, str],
    arrival: int = 1,
    head_delay: int = 0,
) -> Chunk:
    packet = Packet(pid, "s", "d", weight=weight, arrival=arrival)
    return split_into_chunks(packet, edge[0], edge[1], edge_delay=1, head_delay=head_delay)[0]


def assert_matches_oracle(index: MatchingIndex, eligible: list[Chunk]) -> None:
    """The repaired matching equals the from-scratch greedy pass, in order."""
    matching = index.current_matching()
    assert matching == greedy_stable_matching(eligible)
    assert is_stable_matching(matching, eligible)


class TestBasics:
    def test_empty(self):
        assert MatchingIndex().current_matching() == []

    def test_single_chunk_matched(self):
        index = MatchingIndex()
        chunk = make_chunk(0, 2.0, ("t1", "r1"))
        index.activate(chunk)
        assert index.current_matching() == [chunk]
        assert len(index) == 1

    def test_duplicate_activation_rejected(self):
        index = MatchingIndex()
        chunk = make_chunk(0, 2.0, ("t1", "r1"))
        index.activate(chunk)
        with pytest.raises(SimulationError):
            index.activate(chunk)

    def test_discard_untracked_is_noop(self):
        index = MatchingIndex()
        index.discard(make_chunk(0, 2.0, ("t1", "r1")))
        assert index.current_matching() == []

    def test_clear(self):
        index = MatchingIndex()
        index.activate(make_chunk(0, 2.0, ("t1", "r1")))
        index.clear()
        assert len(index) == 0
        assert index.current_matching() == []

    def test_removing_unmatched_chunk_changes_nothing(self):
        index = MatchingIndex()
        heavy = make_chunk(0, 5.0, ("t1", "r1"))
        blocked = make_chunk(1, 1.0, ("t1", "r2"))
        index.activate(heavy)
        index.activate(blocked)
        assert index.current_matching() == [heavy]
        index.discard(blocked)
        assert index.current_matching() == [heavy]


class TestTieWeights:
    def test_equal_weights_resolved_by_arrival(self):
        index = MatchingIndex()
        late = make_chunk(0, 2.0, ("t1", "r1"), arrival=9)
        early = make_chunk(1, 2.0, ("t1", "r2"), arrival=3)
        index.activate(late)  # matched first…
        index.activate(early)  # …then evicted by the earlier arrival
        assert_matches_oracle(index, [late, early])
        assert index.current_matching() == [early]

    def test_equal_weight_and_arrival_resolved_by_packet_id(self):
        index = MatchingIndex()
        chunks = [make_chunk(pid, 4.0, ("t1", f"r{pid}")) for pid in (2, 0, 1)]
        for chunk in chunks:
            index.activate(chunk)
        assert_matches_oracle(index, chunks)
        assert [c.packet.packet_id for c in index.current_matching()] == [0]

    def test_all_tied_on_disjoint_edges_all_matched(self):
        index = MatchingIndex()
        chunks = [make_chunk(pid, 1.0, (f"t{pid}", f"r{pid}")) for pid in range(4)]
        for chunk in chunks:
            index.activate(chunk)
        assert_matches_oracle(index, chunks)
        assert len(index.current_matching()) == 4


class TestEvictionCascade:
    def _chain(self):
        # Matched chain b1 > b2 > b3 on disjoint edges, with c2, c3 blocked
        # in between: adding `a` on b1's transmitter triggers a full-length
        # cascade (a evicts b1, freeing r1 for c2, which evicts b2, …).
        b1 = make_chunk(1, 5.0, ("t1", "r1"))
        b2 = make_chunk(2, 3.0, ("t2", "r2"))
        b3 = make_chunk(3, 1.0, ("t3", "r3"))
        c2 = make_chunk(4, 4.0, ("t2", "r1"))
        c3 = make_chunk(5, 2.0, ("t3", "r2"))
        return [b1, b2, b3, c2, c3]

    def test_addition_triggers_bounded_cascade(self):
        index = MatchingIndex()
        chunks = self._chain()
        for chunk in chunks:
            index.activate(chunk)
        b1, b2, b3, c2, c3 = chunks
        assert index.current_matching() == [b1, b2, b3]

        a = make_chunk(0, 6.0, ("t1", "r0"))
        index.activate(a)
        assert_matches_oracle(index, chunks + [a])
        assert index.current_matching() == [a, c2, c3]

    def test_removal_unwinds_the_cascade(self):
        index = MatchingIndex()
        chunks = self._chain()
        a = make_chunk(0, 6.0, ("t1", "r0"))
        for chunk in chunks + [a]:
            index.activate(chunk)
        assert index.current_matching() == [a, chunks[3], chunks[4]]

        index.discard(a)  # b1 re-enters, evicting c2; b2 re-enters, evicting c3…
        assert_matches_oracle(index, chunks)
        assert index.current_matching() == chunks[:3]

    def test_same_edge_replacement(self):
        index = MatchingIndex()
        low = make_chunk(0, 1.0, ("t1", "r1"))
        high = make_chunk(1, 7.0, ("t1", "r1"))
        index.activate(low)
        assert index.current_matching() == [low]
        index.activate(high)  # same-edge owner: both ports pass over at once
        assert index.current_matching() == [high]
        index.discard(high)
        assert index.current_matching() == [low]


class TestRandomWalks:
    """Add/remove/advance walks checked against the oracle on every step."""

    @pytest.mark.parametrize("seed", range(10))
    def test_walk_through_pool(self, seed: int) -> None:
        rng = random.Random(seed)
        pool = PendingChunkPool(matching_index=True)
        index = pool.matching_index
        now = 1
        live: list[Chunk] = []
        next_pid = 0
        for _ in range(200):
            op = rng.random()
            if op < 0.55 or not live:
                # Small weight alphabet → frequent priority ties; nonzero
                # head delays populate the future-activation buckets.
                chunk = make_chunk(
                    next_pid,
                    float(rng.choice((1.0, 2.0, 2.0, 3.0, 5.0))),
                    (f"t{rng.randrange(4)}", f"r{rng.randrange(4)}"),
                    arrival=now,
                    head_delay=rng.randrange(4),
                )
                next_pid += 1
                pool.add(chunk)
                live.append(chunk)
            elif op < 0.85:
                # Removals hit eligible and future chunks alike.
                pool.remove(live.pop(rng.randrange(len(live))))
            else:
                now += rng.randrange(1, 3)
                pool.advance_eligibility(now)
            assert_matches_oracle(index, pool.eligible_chunks(now))

    @pytest.mark.parametrize("seed", range(5))
    def test_walk_on_bare_index(self, seed: int) -> None:
        """Same walk against the index alone (no pool): activation order is free."""
        rng = random.Random(100 + seed)
        index = MatchingIndex()
        tracked: list[Chunk] = []
        next_pid = 0
        for _ in range(200):
            if rng.random() < 0.6 or not tracked:
                chunk = make_chunk(
                    next_pid,
                    float(rng.choice((1.0, 1.0, 2.0, 4.0))),
                    (f"t{rng.randrange(3)}", f"r{rng.randrange(3)}"),
                    arrival=rng.randrange(1, 5),
                )
                next_pid += 1
                index.activate(chunk)
                tracked.append(chunk)
            else:
                index.discard(tracked.pop(rng.randrange(len(tracked))))
            assert_matches_oracle(index, tracked)


class TestPoolIntegration:
    def test_enable_matching_index_backfills(self):
        pool = PendingChunkPool()
        chunks = [make_chunk(pid, float(pid + 1), ("t1", f"r{pid}")) for pid in range(3)]
        for chunk in chunks:
            pool.add(chunk)
        pool.advance_eligibility(5)
        index = pool.enable_matching_index()
        assert_matches_oracle(index, pool.eligible_chunks(5))

    def test_future_chunks_invisible_until_activation(self):
        pool = PendingChunkPool(matching_index=True)
        early = make_chunk(0, 1.0, ("t1", "r1"))
        late = make_chunk(1, 9.0, ("t1", "r2"), head_delay=10)
        pool.add(early)
        pool.add(late)
        pool.advance_eligibility(2)
        assert pool.matching_index.current_matching() == [early]
        pool.advance_eligibility(11)  # the heavier chunk activates and wins
        assert pool.matching_index.current_matching() == [late]

    def test_scheduler_reads_index_and_matches_reference(self):
        topology = figure2_topology()
        pool = PendingChunkPool(matching_index=True)
        for pid, (weight, edge) in enumerate(
            [(3.0, ("t1", "r1")), (2.0, ("t1", "r2")), (5.0, ("t2", "r1")), (1.0, ("t3", "r3"))]
        ):
            pool.add(make_chunk(pid, weight, edge))
        incremental = StableMatchingScheduler()
        reference = StableMatchingScheduler(incremental=False)
        assert incremental.uses_matching_index
        assert not reference.uses_matching_index
        matching = incremental.select_matching(pool, topology, 1)
        assert matching == reference.select_matching(pool, topology, 1)
        assert matching == greedy_stable_matching(pool.eligible_chunks(1))

    def test_scheduler_falls_back_on_non_monotone_query(self):
        topology = figure2_topology()
        pool = PendingChunkPool(matching_index=True)
        early = make_chunk(0, 1.0, ("t1", "r1"))
        late = make_chunk(1, 9.0, ("t2", "r2"), head_delay=5)
        pool.add(early)
        pool.add(late)
        scheduler = StableMatchingScheduler()
        assert set(scheduler.select_matching(pool, topology, 6)) == {early, late}
        # A query behind the watermark must not report the later activation.
        assert scheduler.select_matching(pool, topology, 1) == [early]
