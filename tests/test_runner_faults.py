"""Fault-tolerance tests for :class:`repro.experiments.runner.ExperimentRunner`.

Covers the retry/re-seed state machine (serial and parallel), per-task
timeouts, worker-crash recovery, the ``on_error="skip"`` policy, and JSONL
checkpoint/resume.  All task functions are module-level so they survive
pickling into worker processes.
"""

from __future__ import annotations

import json
import os
import signal
import time
from pathlib import Path

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.runner import (
    ExperimentRunner,
    ExperimentSpec,
    RunnerConfig,
)
from repro.obs import read_metric_records


# ---------------------------------------------------------------------- #
# module-level task functions (picklable)
# ---------------------------------------------------------------------- #
def _ok_task(task):
    return {"index": task.index, "seed": task.seed, "x": task.params["x"]}


def _flaky_task(task):
    """Fails while running under its original seed; succeeds once re-seeded.

    The spec puts each task's first-attempt seed into its own params, so the
    failure condition is deterministic and needs no shared state — exactly the
    situation the runner's fresh-retry-seed policy is designed for.
    """
    if task.seed == task.params["original_seed"]:
        raise RuntimeError("transient failure under original seed")
    return {"index": task.index, "seed": task.seed}


def _always_failing_task(task):
    raise RuntimeError("permanent failure")


def _sleepy_task(task):
    if task.index == task.params.get("slow_index"):
        time.sleep(task.params["sleep"])
    return {"index": task.index, "seed": task.seed}


def _crash_once_task(task):
    """SIGKILL the worker on the first attempt, succeed on the second.

    A marker file records that the crash already happened, so the retry (which
    the runner performs with the *original* seed — the task never observed its
    own failure) completes normally.
    """
    marker = Path(task.params["marker"])
    if not marker.exists():
        marker.write_text("crashed", encoding="utf-8")
        os.kill(os.getpid(), signal.SIGKILL)
    return {"index": task.index, "seed": task.seed}


def _always_crashing_task(task):
    if task.index == 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return {"index": task.index, "seed": task.seed}


def _counting_task(task):
    """Appends one line per execution so tests can count real evaluations."""
    with open(task.params["ledger"], "a", encoding="utf-8") as handle:
        handle.write(f"{task.index}\n")
        handle.flush()
    return {"index": task.index, "seed": task.seed, "x": task.params["x"]}


def _spec(task_fn, grid, seed=7, name="faulty"):
    return ExperimentSpec(name=name, task_fn=task_fn, grid=grid, seed=seed)


def _flaky_spec(num_tasks=3, seed=7):
    base = ExperimentSpec(name="flaky", task_fn=_flaky_task,
                          grid=[{} for _ in range(num_tasks)], seed=seed)
    grid = [{"original_seed": task.seed} for task in base.tasks()]
    return ExperimentSpec(name="flaky", task_fn=_flaky_task, grid=grid, seed=seed)


# ---------------------------------------------------------------------- #
# retries and re-seeding
# ---------------------------------------------------------------------- #
class TestRetries:
    def test_serial_retry_uses_fresh_deterministic_seed(self):
        spec = _flaky_spec()
        with pytest.raises(ExperimentError, match="transient"):
            ExperimentRunner(RunnerConfig(jobs=1)).run(spec)
        rows = ExperimentRunner(
            RunnerConfig(jobs=1, retries=1, retry_backoff=0.0)
        ).run(spec)
        assert [row["index"] for row in rows] == [0, 1, 2]
        assert [row["seed"] for row in rows] == [
            spec.retry_seed(index, 1) for index in range(3)
        ]

    def test_parallel_retry_matches_serial(self):
        spec = _flaky_spec()
        serial = ExperimentRunner(
            RunnerConfig(jobs=1, retries=2, retry_backoff=0.0)
        ).run(spec)
        parallel = ExperimentRunner(
            RunnerConfig(jobs=2, retries=2, retry_backoff=0.0)
        ).run(spec)
        assert serial == parallel

    def test_skip_records_failed_task_and_continues(self):
        grid = [{"x": x} for x in range(3)]
        spec = ExperimentSpec(
            name="mixed",
            task_fn=_always_failing_task,
            grid=grid,
            seed=1,
        )
        rows = ExperimentRunner(
            RunnerConfig(jobs=1, retries=1, retry_backoff=0.0, on_error="skip")
        ).run(spec)
        assert rows == []  # every task failed, zero rows, but no exception

    def test_raise_mode_propagates_after_retries(self):
        spec = _spec(_always_failing_task, [{"x": 0}])
        with pytest.raises(ExperimentError, match="permanent failure"):
            ExperimentRunner(
                RunnerConfig(jobs=1, retries=2, retry_backoff=0.0)
            ).run(spec)

    def test_backoff_is_exponential(self, monkeypatch):
        sleeps = []
        monkeypatch.setattr(time, "sleep", sleeps.append)
        spec = _spec(_always_failing_task, [{"x": 0}])
        runner = ExperimentRunner(
            RunnerConfig(jobs=1, retries=3, retry_backoff=0.1, on_error="skip")
        )
        runner.run(spec)
        assert sleeps == pytest.approx([0.1, 0.2, 0.4])


# ---------------------------------------------------------------------- #
# timeouts and worker crashes (jobs > 1)
# ---------------------------------------------------------------------- #
class TestPoolFaults:
    def test_timeout_fails_only_the_slow_task(self):
        grid = [{"slow_index": 0, "sleep": 30.0} for _ in range(3)]
        spec = _spec(_sleepy_task, grid, name="slow")
        rows = ExperimentRunner(
            RunnerConfig(jobs=2, timeout=1.0, on_error="skip")
        ).run(spec)
        assert [row["index"] for row in rows] == [1, 2]

    def test_timeout_raise_mode_names_the_task(self):
        grid = [{"slow_index": 0, "sleep": 30.0}]
        spec = _spec(_sleepy_task, grid + grid[:1], name="slow")
        with pytest.raises(ExperimentError, match="task 0 .* timed out"):
            ExperimentRunner(RunnerConfig(jobs=2, timeout=1.0)).run(spec)

    def test_crash_retry_keeps_original_seed(self, tmp_path):
        marker = tmp_path / "crash.marker"
        spec = _spec(_crash_once_task, [{"marker": str(marker)}] * 2,
                     name="crashy")
        rows = ExperimentRunner(
            RunnerConfig(jobs=2, retries=1, retry_backoff=0.0)
        ).run(spec)
        # both tasks complete, and the crashed attempt was re-run with the
        # original seed — the environment failed, not the task
        expected = {task.index: task.seed for task in spec.tasks()}
        assert {row["index"]: row["seed"] for row in rows} == expected

    def test_poisoned_task_is_skipped_and_neighbours_survive(self):
        spec = _spec(_always_crashing_task, [{"x": x} for x in range(4)],
                     name="poison")
        rows = ExperimentRunner(
            RunnerConfig(jobs=2, retries=1, retry_backoff=0.0, on_error="skip")
        ).run(spec)
        # task 0 SIGKILLs every worker that picks it up; after its retries are
        # exhausted it is dropped and the innocent tasks still produce rows
        assert [row["index"] for row in rows] == [1, 2, 3]
        expected = {task.index: task.seed for task in spec.tasks()}
        assert all(row["seed"] == expected[row["index"]] for row in rows)


# ---------------------------------------------------------------------- #
# checkpoint / resume
# ---------------------------------------------------------------------- #
class TestCheckpoint:
    def _counting_spec(self, ledger, seed=5):
        grid = [{"x": x, "ledger": str(ledger)} for x in range(4)]
        return ExperimentSpec(name="ckpt", task_fn=_counting_task,
                              grid=grid, seed=seed)

    def test_resume_replays_without_reexecuting(self, tmp_path):
        ledger = tmp_path / "ledger.txt"
        checkpoint = tmp_path / "ckpt.jsonl"
        spec = self._counting_spec(ledger)
        config = RunnerConfig(jobs=1, checkpoint_path=str(checkpoint))
        first = ExperimentRunner(config).run(spec)
        assert len(ledger.read_text().splitlines()) == 4
        second = ExperimentRunner(config).run(spec)
        assert second == first  # bit-identical replay
        assert len(ledger.read_text().splitlines()) == 4  # nothing re-ran

    def test_partial_checkpoint_runs_only_missing_tasks(self, tmp_path):
        ledger = tmp_path / "ledger.txt"
        checkpoint = tmp_path / "ckpt.jsonl"
        spec = self._counting_spec(ledger)
        config = RunnerConfig(jobs=1, checkpoint_path=str(checkpoint))
        full = ExperimentRunner(config).run(spec)
        # keep only the first two records, as if the sweep died after task 1
        lines = checkpoint.read_text(encoding="utf-8").splitlines(keepends=True)
        checkpoint.write_text("".join(lines[:2]), encoding="utf-8")
        ledger.unlink()
        resumed = ExperimentRunner(config).run(spec)
        assert resumed == full
        assert sorted(ledger.read_text().split()) == ["2", "3"]

    def test_torn_final_line_is_rerun(self, tmp_path):
        ledger = tmp_path / "ledger.txt"
        checkpoint = tmp_path / "ckpt.jsonl"
        spec = self._counting_spec(ledger)
        config = RunnerConfig(jobs=1, checkpoint_path=str(checkpoint))
        full = ExperimentRunner(config).run(spec)
        lines = checkpoint.read_text(encoding="utf-8").splitlines(keepends=True)
        torn = "".join(lines[:2]) + lines[2][: len(lines[2]) // 2]
        checkpoint.write_text(torn, encoding="utf-8")
        ledger.unlink()
        resumed = ExperimentRunner(config).run(spec)
        assert resumed == full
        assert sorted(ledger.read_text().split()) == ["2", "3"]

    def test_mid_file_corruption_raises(self, tmp_path):
        checkpoint = tmp_path / "ckpt.jsonl"
        spec = self._counting_spec(tmp_path / "ledger.txt")
        config = RunnerConfig(jobs=1, checkpoint_path=str(checkpoint))
        ExperimentRunner(config).run(spec)
        lines = checkpoint.read_text(encoding="utf-8").splitlines(keepends=True)
        lines[1] = "{broken json\n"
        checkpoint.write_text("".join(lines), encoding="utf-8")
        with pytest.raises(ExperimentError, match="corrupt checkpoint"):
            ExperimentRunner(config).run(spec)

    def test_checkpoint_from_other_seed_or_experiment_raises(self, tmp_path):
        checkpoint = tmp_path / "ckpt.jsonl"
        config = RunnerConfig(jobs=1, checkpoint_path=str(checkpoint))
        ExperimentRunner(config).run(self._counting_spec(tmp_path / "a.txt", seed=5))
        with pytest.raises(ExperimentError, match="seed mismatch"):
            ExperimentRunner(config).run(
                self._counting_spec(tmp_path / "b.txt", seed=6)
            )
        other = ExperimentSpec(
            name="different",
            task_fn=_counting_task,
            grid=[{"x": 0, "ledger": str(tmp_path / "c.txt")}],
            seed=5,
        )
        with pytest.raises(ExperimentError, match="belongs to experiment"):
            ExperimentRunner(config).run(other)

    def test_failed_tasks_are_not_checkpointed(self, tmp_path):
        checkpoint = tmp_path / "ckpt.jsonl"
        spec = _spec(_always_failing_task, [{"x": 0}, {"x": 1}], name="failing")
        config = RunnerConfig(
            jobs=1, on_error="skip", checkpoint_path=str(checkpoint)
        )
        assert ExperimentRunner(config).run(spec) == []
        records = [json.loads(line)
                   for line in checkpoint.read_text().splitlines() if line.strip()]
        assert records == []  # failed outcomes must be re-attempted on resume


# ---------------------------------------------------------------------- #
# heartbeat stream
# ---------------------------------------------------------------------- #
class TestHeartbeats:
    def test_heartbeats_carry_retries_and_status(self, tmp_path):
        metrics = tmp_path / "metrics.jsonl"
        spec = _flaky_spec(num_tasks=2)
        ExperimentRunner(
            RunnerConfig(jobs=1, retries=1, retry_backoff=0.0,
                         metrics_path=str(metrics))
        ).run(spec)
        beats = [record for record in read_metric_records(metrics)
                 if record.get("record") == "runner_heartbeat"]
        assert [b["task_index"] for b in beats] == [0, 1]
        assert all(b["retries"] == 1 and b["status"] == "ok" for b in beats)

    def test_failed_and_checkpointed_statuses(self, tmp_path):
        metrics = tmp_path / "metrics.jsonl"
        checkpoint = tmp_path / "ckpt.jsonl"
        ledger = tmp_path / "ledger.txt"
        grid = [{"x": x, "ledger": str(ledger)} for x in range(2)]
        spec = ExperimentSpec(name="hb", task_fn=_counting_task, grid=grid, seed=3)
        config = RunnerConfig(jobs=1, metrics_path=str(metrics),
                              checkpoint_path=str(checkpoint))
        ExperimentRunner(config).run(spec)
        ExperimentRunner(config).run(spec)  # resume: replayed from checkpoint
        beats = [record for record in read_metric_records(metrics)
                 if record.get("record") == "runner_heartbeat"]
        assert [b["status"] for b in beats] == ["ok", "ok",
                                                "checkpointed", "checkpointed"]

        failing = _spec(_always_failing_task, [{"x": 0}], name="hbfail")
        metrics2 = tmp_path / "metrics2.jsonl"
        ExperimentRunner(
            RunnerConfig(jobs=1, on_error="skip", metrics_path=str(metrics2))
        ).run(failing)
        beats2 = read_metric_records(metrics2)
        assert [b["status"] for b in beats2] == ["failed"]
        assert beats2[0]["rows_emitted"] == 0
