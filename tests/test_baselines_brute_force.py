"""Tests for repro.baselines.brute_force."""

from __future__ import annotations

import pytest

from repro.baselines import brute_force_optimal
from repro.core import OpportunisticLinkScheduler, Packet
from repro.exceptions import AnalysisError
from repro.network import TwoTierTopology, figure1_topology, figure2_topology
from repro.simulation import simulate
from repro.workloads import Instance, figure1_instance, figure2_instances


class TestBruteForceOptimal:
    def test_figure1_optimum_is_seven(self):
        result = brute_force_optimal(figure1_instance())
        assert result.cost == pytest.approx(7.0)

    def test_figure2_pi_optimum(self):
        instance = figure2_instances()["pi"]
        # p1 and p3 in slot 1, p2 in slot 2: cost 1*1 + 2*2 + 3*1 = 8.
        assert brute_force_optimal(instance).cost == pytest.approx(8.0)

    def test_single_packet(self, line_topology):
        instance = Instance(
            name="one", topology=line_topology, packets=[Packet(0, "s", "d", 2.0, 1)]
        )
        assert brute_force_optimal(instance).cost == pytest.approx(2.0)

    def test_prefers_fixed_link_when_cheaper(self):
        topo = TwoTierTopology()
        topo.add_source("s")
        topo.add_destination("d")
        topo.add_transmitter("t", "s")
        topo.add_receiver("r", "d")
        topo.add_reconfigurable_edge("t", "r", delay=5)
        topo.add_fixed_link("s", "d", delay=2)
        topo.freeze()
        instance = Instance(name="f", topology=topo, packets=[Packet(0, "s", "d", 1.0, 1)])
        result = brute_force_optimal(instance)
        assert result.cost == pytest.approx(2.0)
        assert result.routes[0] == ("fixed",)

    def test_never_exceeds_alg(self, fig1_instance):
        opt = brute_force_optimal(fig1_instance).cost
        alg = simulate(
            fig1_instance.topology, OpportunisticLinkScheduler(), fig1_instance.packets
        ).total_weighted_latency
        assert opt <= alg + 1e-9

    def test_route_combination_limit(self, fig1_instance):
        with pytest.raises(AnalysisError):
            brute_force_optimal(fig1_instance, max_route_combinations=1)

    def test_chunk_limit(self):
        topo = TwoTierTopology()
        topo.add_source("s")
        topo.add_destination("d")
        topo.add_transmitter("t", "s")
        topo.add_receiver("r", "d")
        topo.add_reconfigurable_edge("t", "r", delay=8)
        topo.freeze()
        packets = [Packet(i, "s", "d", 1.0, 1) for i in range(3)]
        instance = Instance(name="big", topology=topo, packets=packets)
        with pytest.raises(AnalysisError):
            brute_force_optimal(instance, max_total_chunks=10)

    def test_multi_chunk_scheduling(self):
        topo = TwoTierTopology()
        topo.add_source("s")
        topo.add_destination("d")
        topo.add_transmitter("t", "s")
        topo.add_receiver("r", "d")
        topo.add_reconfigurable_edge("t", "r", delay=2)
        topo.freeze()
        instance = Instance(name="two-chunk", topology=topo, packets=[Packet(0, "s", "d", 2.0, 1)])
        # Two chunks of weight 1 delivered at slots 1 and 2: cost 1 + 2 = 3.
        assert brute_force_optimal(instance).cost == pytest.approx(3.0)

    def test_arrival_offsets_respected(self, line_topology):
        packets = [Packet(0, "s", "d", 1.0, 1), Packet(1, "s", "d", 1.0, 3)]
        instance = Instance(name="offset", topology=line_topology, packets=packets)
        assert brute_force_optimal(instance).cost == pytest.approx(2.0)
