"""Tests for the synthetic / skewed / bursty workload generators."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.exceptions import WorkloadError
from repro.network import projector_fabric, single_tier_crossbar
from repro.workloads import (
    all_to_all_workload,
    bursty_workload,
    elephant_mice_workload,
    hotspot_workload,
    incast_workload,
    permutation_workload,
    routable_pairs,
    uniform_random_workload,
    uniform_weights,
    zipf_pair_probabilities,
    zipf_workload,
)


@pytest.fixture(scope="module")
def fabric():
    return projector_fabric(num_racks=4, lasers_per_rack=2, photodetectors_per_rack=2, seed=0)


def assert_valid_packets(packets, topology, expected_count=None):
    if expected_count is not None:
        assert len(packets) == expected_count
    ids = [p.packet_id for p in packets]
    assert len(set(ids)) == len(ids)
    for p in packets:
        assert p.weight > 0
        assert p.arrival >= 1
        assert topology.can_route(p.source, p.destination)
    arrivals = [p.arrival for p in sorted(packets, key=lambda q: q.packet_id)]
    assert all(b >= a for a, b in zip(arrivals, arrivals[1:]))


class TestUniformRandom:
    def test_valid_and_deterministic(self, fabric):
        a = uniform_random_workload(fabric, 50, seed=1)
        b = uniform_random_workload(fabric, 50, seed=1)
        assert_valid_packets(a, fabric, 50)
        assert [(p.source, p.destination, p.weight, p.arrival) for p in a] == [
            (p.source, p.destination, p.weight, p.arrival) for p in b
        ]

    def test_different_seed_differs(self, fabric):
        a = uniform_random_workload(fabric, 50, seed=1)
        b = uniform_random_workload(fabric, 50, seed=2)
        assert [(p.source, p.destination) for p in a] != [(p.source, p.destination) for p in b]

    def test_weight_sampler_used(self, fabric):
        packets = uniform_random_workload(fabric, 30, weight_sampler=uniform_weights(5, 6), seed=3)
        assert all(5 <= p.weight <= 6 for p in packets)

    def test_explicit_arrivals(self, fabric):
        packets = uniform_random_workload(fabric, 3, arrivals=[4, 4, 9], seed=0)
        assert sorted(p.arrival for p in packets) == [4, 4, 9]

    def test_arrival_length_mismatch(self, fabric):
        with pytest.raises(WorkloadError):
            uniform_random_workload(fabric, 3, arrivals=[1, 2], seed=0)

    def test_pair_restriction(self, fabric):
        pair = routable_pairs(fabric)[0]
        packets = uniform_random_workload(fabric, 10, pairs=[pair], seed=0)
        assert all((p.source, p.destination) == pair for p in packets)

    def test_invalid_pair_rejected(self, fabric):
        with pytest.raises(WorkloadError):
            uniform_random_workload(fabric, 5, pairs=[("rack0:src", "rack0:dst")], seed=0)


class TestPermutationAndAllToAll:
    def test_permutation_uses_one_destination_per_source(self, fabric):
        packets = permutation_workload(fabric, 80, seed=5)
        assert_valid_packets(packets, fabric, 80)
        per_source = {}
        for p in packets:
            per_source.setdefault(p.source, set()).add(p.destination)
        assert all(len(dests) == 1 for dests in per_source.values())

    def test_all_to_all_covers_every_pair(self, fabric):
        packets = all_to_all_workload(fabric, packets_per_pair=2)
        pairs = Counter((p.source, p.destination) for p in packets)
        assert set(pairs) == set(routable_pairs(fabric))
        assert all(count == 2 for count in pairs.values())

    def test_all_to_all_single_slot(self, fabric):
        packets = all_to_all_workload(fabric, packets_per_pair=1, arrival_slot=3)
        assert all(p.arrival == 3 for p in packets)

    def test_all_to_all_invalid_slot(self, fabric):
        with pytest.raises(WorkloadError):
            all_to_all_workload(fabric, arrival_slot=0)


class TestSkewedWorkloads:
    def test_zipf_probabilities_normalised_and_decreasing(self):
        probs = zipf_pair_probabilities(10, 1.2)
        assert probs.sum() == pytest.approx(1.0)
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_zipf_skews_traffic(self, fabric):
        packets = zipf_workload(fabric, 400, exponent=2.0, seed=7)
        assert_valid_packets(packets, fabric, 400)
        counts = Counter((p.source, p.destination) for p in packets)
        top = counts.most_common(1)[0][1]
        assert top > 400 / len(routable_pairs(fabric)) * 2  # clearly skewed

    def test_higher_exponent_more_skew(self, fabric):
        mild = Counter(
            (p.source, p.destination) for p in zipf_workload(fabric, 400, exponent=0.5, seed=9)
        )
        strong = Counter(
            (p.source, p.destination) for p in zipf_workload(fabric, 400, exponent=2.5, seed=9)
        )
        assert strong.most_common(1)[0][1] > mild.most_common(1)[0][1]

    def test_elephant_mice_weights(self, fabric):
        packets = elephant_mice_workload(
            fabric, 300, heavy_weight=30.0, light_weight=1.0, seed=11
        )
        assert_valid_packets(packets, fabric, 300)
        weights = {p.weight for p in packets}
        assert weights <= {1.0, 30.0}
        assert 30.0 in weights

    def test_elephant_mice_invalid_fraction(self, fabric):
        with pytest.raises(WorkloadError):
            elephant_mice_workload(fabric, 10, elephant_pair_fraction=0.0)


class TestBurstyAndIncast:
    def test_bursty_valid(self, fabric):
        packets = bursty_workload(fabric, 120, seed=13)
        assert_valid_packets(packets, fabric, 120)

    def test_incast_single_destination(self, fabric):
        packets = incast_workload(fabric, num_senders=3, packets_per_sender=4, seed=15)
        assert len(packets) == 12
        destinations = {p.destination for p in packets}
        assert len(destinations) == 1
        assert len({p.source for p in packets}) == 3

    def test_incast_explicit_destination(self, fabric):
        packets = incast_workload(fabric, num_senders=2, destination="rack1:dst", seed=15)
        assert all(p.destination == "rack1:dst" for p in packets)

    def test_incast_unknown_destination(self, fabric):
        with pytest.raises(WorkloadError):
            incast_workload(fabric, num_senders=2, destination="nowhere", seed=15)

    def test_incast_caps_senders(self):
        topo = single_tier_crossbar(3)
        packets = incast_workload(topo, num_senders=100, packets_per_sender=1, seed=1)
        assert len({p.source for p in packets}) <= 3
