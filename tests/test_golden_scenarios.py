"""Golden regression tests for the scenario registry.

Every scenario of the ``smoke`` grid (plus the deterministic worked
examples) has its per-policy ``summary()`` rows committed under
``tests/golden/scenarios.json`` at full float precision.  Any change to the
engine's cost accounting, a workload generator's RNG stream, a policy's
decision rule or the scenario recipes themselves shows up here as an exact
diff.

When a change is *intentional*, regenerate the fingerprints with::

    pytest tests/test_golden_scenarios.py --update-golden

and commit the rewritten JSON together with the change (and a CHANGES.md
note — seed-stability is part of the library's contract).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

import pytest

from repro.scenarios import scenario_matrix

GOLDEN_PATH = Path(__file__).parent / "golden" / "scenarios.json"

#: Scenarios pinned by golden fingerprints: the CI smoke grid, the
#: deterministic worked examples and the speed-augmentation grid (whose
#: variants must keep replaying *identical* cells to their base scenario —
#: a drift in the shared seed_key derivation shows up here).  Full-size
#: scenarios are excluded on purpose — goldens must stay fast enough to run
#: on every push.
GOLDEN_SCENARIOS = (
    "figure1", "figure2", "tiny-random", "priority-inversion-burst",
    "tiny-random@s1.5", "tiny-random@s2.5",
    "priority-inversion-burst@s1.5", "priority-inversion-burst@s2.5",
)


def _current_rows() -> Dict[str, List[Dict[str, Any]]]:
    """Run the golden scenarios serially and bucket their rows by scenario."""
    rows = scenario_matrix(GOLDEN_SCENARIOS, name="golden").run()
    by_scenario: Dict[str, List[Dict[str, Any]]] = {}
    for row in rows:
        by_scenario.setdefault(row["scenario"], []).append(row)
    return by_scenario


def test_scenario_summaries_match_golden(update_golden: bool) -> None:
    """Scenario rows are bit-identical to the committed fingerprints."""
    current = _current_rows()
    if update_golden:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"rewrote {GOLDEN_PATH}")
    assert GOLDEN_PATH.is_file(), (
        f"{GOLDEN_PATH} is missing; generate it with "
        "`pytest tests/test_golden_scenarios.py --update-golden`"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    assert sorted(golden) == sorted(current), (
        "golden scenario set changed; rerun with --update-golden"
    )
    for name in sorted(current):
        # Compare row-by-row so a drift names the exact (seed, policy) cell.
        assert len(golden[name]) == len(current[name]), name
        for expected, actual in zip(golden[name], current[name]):
            assert expected == actual, (
                f"scenario {name!r} drifted from its golden fingerprint\n"
                f"expected: {expected}\nactual:   {actual}\n"
                "If intentional, regenerate with --update-golden and note the "
                "seed break in CHANGES.md."
            )


#: Cross-engine subset: the committed goldens were produced under the
#: default ``engine="indexed"`` (incremental impact index + incremental
#: matching repairer), so replaying these scenarios under the *reference*
#: engine (O(n) adjacency scan, from-scratch greedy matching) must hit the
#: very same fingerprints — the engine knob is speed-only by contract.
#: Kept to the small deterministic scenarios so the slower reference scans
#: stay cheap on every push.
CROSS_ENGINE_SCENARIOS = (
    "figure1", "figure2", "tiny-random", "priority-inversion-burst",
)


def test_reference_engine_matches_golden() -> None:
    """Reference-engine rows equal the goldens the indexed engine produced."""
    if not GOLDEN_PATH.is_file():
        pytest.skip("golden file not generated yet")
    golden = json.loads(GOLDEN_PATH.read_text())
    rows = scenario_matrix(
        CROSS_ENGINE_SCENARIOS, name="golden-xengine"
    ).run(engine="reference")
    by_scenario: Dict[str, List[Dict[str, Any]]] = {}
    for row in rows:
        by_scenario.setdefault(row["scenario"], []).append(row)
    for name in CROSS_ENGINE_SCENARIOS:
        assert by_scenario[name] == golden[name], (
            f"scenario {name!r}: reference-engine rows diverged from the "
            "committed golden fingerprint — the indexed hot paths (impact "
            "index, matching repairer) and the reference scans must stay "
            "bit-identical"
        )


def test_golden_file_is_canonically_serialised() -> None:
    """Guard: the golden file is exactly what --update-golden would write.

    Catches hand edits, formatter rewrites or value rounding: the file text
    must equal the canonical re-dump of its own parsed content, byte for
    byte (full repr float precision, sorted keys, two-space indent).
    """
    if not GOLDEN_PATH.is_file():
        pytest.skip("golden file not generated yet")
    text = GOLDEN_PATH.read_text()
    canonical = json.dumps(json.loads(text), indent=2, sort_keys=True) + "\n"
    assert text == canonical, (
        f"{GOLDEN_PATH} is not in canonical --update-golden form; regenerate "
        "it instead of editing by hand"
    )
