"""Property-based tests for the dual-fitting analysis on random instances.

These are the numerical counterparts of Lemmas 1, 2, 4, 5 and Theorem 1: for
every randomly generated instance, the certificate extracted from an ALG run
must be internally consistent and the measured cost must respect the bounds.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    attach_decision_log,
    build_dual_solution,
    check_dual_feasibility,
    check_lemma2,
    verify_certificate,
)
from repro.core import OpportunisticLinkScheduler, Packet
from repro.network import random_bipartite
from repro.simulation import simulate
from repro.workloads import Instance


@st.composite
def small_instances(draw):
    """Random instances small enough for the full dual-feasibility scan."""
    topo_seed = draw(st.integers(min_value=0, max_value=5_000))
    delays = draw(st.sampled_from([(1,), (1, 2), (2, 3)]))
    topology = random_bipartite(
        draw(st.integers(min_value=2, max_value=3)),
        draw(st.integers(min_value=2, max_value=3)),
        transmitters_per_source=draw(st.integers(min_value=1, max_value=2)),
        receivers_per_destination=1,
        edge_probability=0.7,
        delay_choices=delays,
        seed=topo_seed,
    )
    pairs = [
        (s, d)
        for s in topology.sources
        for d in topology.destinations
        if topology.can_route(s, d)
    ]
    n = draw(st.integers(min_value=1, max_value=12))
    packets = []
    for pid in range(n):
        s, d = pairs[draw(st.integers(min_value=0, max_value=len(pairs) - 1))]
        packets.append(
            Packet(
                packet_id=pid,
                source=s,
                destination=d,
                weight=draw(
                    st.floats(min_value=0.5, max_value=10.0, allow_nan=False)
                ),
                arrival=draw(st.integers(min_value=1, max_value=5)),
            )
        )
    return Instance(name="dual-prop", topology=topology, packets=packets)


def run_traced(instance):
    policy = OpportunisticLinkScheduler(record_decisions=True)
    result = simulate(instance.topology, policy, instance.packets, record_trace=True)
    attach_decision_log(result, policy.impact_dispatcher)
    return result


class TestDualFittingProperties:
    @given(small_instances(), st.sampled_from([0.5, 1.0, 2.0]))
    @settings(max_examples=40, deadline=None)
    def test_certificate_always_valid(self, instance, epsilon):
        result = run_traced(instance)
        cert = verify_certificate(
            result, instance.topology, epsilon=epsilon, check_lemma4_constraints=True
        )
        assert cert.valid

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_lemma1_equalities(self, instance):
        result = run_traced(instance)
        dual = build_dual_solution(result)
        reconf = sum(r.weighted_latency for r in result if not r.used_fixed_link)
        assert abs(dual.total_beta_transmitter - reconf) < 1e-6
        assert abs(dual.total_beta_receiver - reconf) < 1e-6
        assert result.total_weighted_latency >= reconf - 1e-9

    @given(small_instances())
    @settings(max_examples=40, deadline=None)
    def test_lemma2_per_packet_charges(self, instance):
        result = run_traced(instance)
        report = check_lemma2(result)
        assert report.holds

    @given(small_instances())
    @settings(max_examples=30, deadline=None)
    def test_halved_dual_always_feasible(self, instance):
        result = run_traced(instance)
        assert check_dual_feasibility(result, instance.topology, scale=0.5) == []

    @given(small_instances(), st.sampled_from([0.5, 1.0, 4.0]))
    @settings(max_examples=30, deadline=None)
    def test_lemma3_bound(self, instance, epsilon):
        result = run_traced(instance)
        dual = build_dual_solution(result)
        lemma3_bound = (2.0 + epsilon) / epsilon * dual.objective(epsilon)
        assert result.total_weighted_latency <= lemma3_bound + 1e-6
