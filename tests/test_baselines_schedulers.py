"""Tests for repro.baselines.schedulers and policies."""

from __future__ import annotations

import pytest

from repro.baselines import (
    FIFOScheduler,
    ISLIPScheduler,
    MaxWeightMatchingScheduler,
    RandomOrderScheduler,
    ablation_policies,
    all_policies,
    standard_baselines,
)
from repro.core import OpportunisticLinkScheduler, Packet
from repro.core.packet import split_into_chunks
from repro.core.queues import PendingChunkPool
from repro.core.stable_matching import is_chunk_matching
from repro.network import figure2_topology, single_tier_crossbar
from repro.simulation import simulate
from repro.workloads import uniform_random_workload


def add_chunk(pool, pid, weight, edge, arrival=1):
    packet = Packet(pid, "s", "d", weight=weight, arrival=arrival)
    chunk = split_into_chunks(packet, edge[0], edge[1], edge_delay=1)[0]
    pool.add(chunk)
    return chunk


def conflict_pool():
    """Two conflicting chunks at one transmitter plus an independent one."""
    pool = PendingChunkPool()
    old_light = add_chunk(pool, 0, 1.0, ("t1", "r1"), arrival=1)
    new_heavy = add_chunk(pool, 1, 9.0, ("t1", "r2"), arrival=5)
    other = add_chunk(pool, 2, 2.0, ("t2", "r3"), arrival=2)
    return pool, old_light, new_heavy, other


class TestFIFOScheduler:
    def test_oldest_first(self):
        pool, old_light, new_heavy, other = conflict_pool()
        matching = FIFOScheduler().select_matching(pool, figure2_topology(), 10)
        assert old_light in matching and new_heavy not in matching and other in matching

    def test_is_matching(self):
        pool, *_ = conflict_pool()
        assert is_chunk_matching(FIFOScheduler().select_matching(pool, figure2_topology(), 10))


class TestRandomOrderScheduler:
    def test_is_matching_and_deterministic_after_reset(self):
        pool, *_ = conflict_pool()
        scheduler = RandomOrderScheduler(seed=7)
        first = scheduler.select_matching(pool, figure2_topology(), 10)
        scheduler.reset()
        second = scheduler.select_matching(pool, figure2_topology(), 10)
        assert is_chunk_matching(first)
        assert first == second

    def test_empty_pool(self):
        assert RandomOrderScheduler(seed=1).select_matching(PendingChunkPool(), figure2_topology(), 1) == []


class TestMaxWeightScheduler:
    def test_prefers_heavier_edge(self):
        pool, old_light, new_heavy, other = conflict_pool()
        matching = MaxWeightMatchingScheduler().select_matching(pool, figure2_topology(), 10)
        assert new_heavy in matching and other in matching

    def test_sum_mode_aggregates(self):
        pool = PendingChunkPool()
        # Edge A holds one chunk of weight 5; edge B holds three chunks of
        # weight 2 each (total 6).  Both edges share the transmitter.
        add_chunk(pool, 0, 5.0, ("t", "ra"))
        for pid in range(1, 4):
            add_chunk(pool, pid, 2.0, ("t", "rb"))
        max_mode = MaxWeightMatchingScheduler(mode="max").select_matching(pool, figure2_topology(), 1)
        sum_mode = MaxWeightMatchingScheduler(mode="sum").select_matching(pool, figure2_topology(), 1)
        assert max_mode[0].edge == ("t", "ra")
        assert sum_mode[0].edge == ("t", "rb")

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            MaxWeightMatchingScheduler(mode="bogus")

    def test_is_matching_on_dense_pool(self):
        pool = PendingChunkPool()
        pid = 0
        for t in range(3):
            for r in range(3):
                add_chunk(pool, pid, float(pid + 1), (f"t{t}", f"r{r}"))
                pid += 1
        matching = MaxWeightMatchingScheduler().select_matching(pool, figure2_topology(), 1)
        assert is_chunk_matching(matching)
        assert len(matching) == 3

    def test_eligibility_respected(self):
        pool = PendingChunkPool()
        packet = Packet(0, "s", "d", weight=1.0, arrival=1)
        late = split_into_chunks(packet, "t", "r", edge_delay=1, head_delay=9)[0]
        pool.add(late)
        assert MaxWeightMatchingScheduler().select_matching(pool, figure2_topology(), 1) == []


class TestISLIPScheduler:
    def test_is_matching(self):
        pool, *_ = conflict_pool()
        matching = ISLIPScheduler().select_matching(pool, figure2_topology(), 10)
        assert is_chunk_matching(matching)
        assert len(matching) == 2

    def test_empty_pool(self):
        assert ISLIPScheduler().select_matching(PendingChunkPool(), figure2_topology(), 1) == []

    def test_full_crossbar_gets_full_matching(self):
        pool = PendingChunkPool()
        pid = 0
        for t in range(4):
            for r in range(4):
                add_chunk(pool, pid, 1.0, (f"t{t}", f"r{r}"))
                pid += 1
        matching = ISLIPScheduler(iterations=4).select_matching(pool, figure2_topology(), 1)
        assert is_chunk_matching(matching)
        assert len(matching) == 4

    def test_pointers_desynchronise_round_robin(self):
        # Two transmitters both want the single receiver; over two consecutive
        # slots each should be served once.
        scheduler = ISLIPScheduler()
        served = []
        pool = PendingChunkPool()
        a = add_chunk(pool, 0, 1.0, ("tA", "r"))
        b = add_chunk(pool, 1, 1.0, ("tB", "r"))
        m1 = scheduler.select_matching(pool, figure2_topology(), 1)
        served.append(m1[0].transmitter)
        pool.remove(m1[0])
        m2 = scheduler.select_matching(pool, figure2_topology(), 2)
        served.append(m2[0].transmitter)
        assert set(served) == {"tA", "tB"}

    def test_invalid_iterations(self):
        with pytest.raises(ValueError):
            ISLIPScheduler(iterations=0)


class TestPolicyFactories:
    def test_standard_baseline_names(self):
        policies = standard_baselines(seed=0)
        assert set(policies) == {"fifo", "random", "maxweight", "islip", "shortest-path"}

    def test_ablation_names(self):
        assert set(ablation_policies()) == {"least-loaded+stable", "impact+fifo"}

    def test_all_policies_includes_alg(self):
        policies = all_policies(seed=0)
        assert "alg" in policies
        assert isinstance(policies["alg"], OpportunisticLinkScheduler)

    def test_every_policy_completes_a_run(self):
        topo = single_tier_crossbar(4)
        packets = uniform_random_workload(topo, 30, arrival_rate=3.0, seed=2)
        for name, policy in all_policies(seed=1).items():
            result = simulate(topo, policy, packets)
            assert result.all_delivered, name
            assert result.total_weighted_latency > 0
