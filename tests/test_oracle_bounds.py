"""Brute-force oracle bounds on tiny scenarios.

On instances small enough for :func:`repro.baselines.brute_force_optimal`
(≤ 6 packets, few route combinations) two ground truths must hold:

* **optimality floor** — the exhaustive offline optimum is a lower bound on
  every integral non-migratory schedule, so *every* policy's total weighted
  latency at speed 1 must be ≥ the brute-force cost;
* **Theorem 1** — ALG's empirically measured competitive ratio against the
  LP lower bound (capacity ``1/(2+ε)``) must respect the paper's
  speed-augmented bound ``2·(2/ε + 1)``.

The tiny instances are expressed as declarative :class:`Scenario` objects so
the oracle exercises the same materialisation path as the scenario matrix.
"""

from __future__ import annotations

from typing import List, Tuple

import pytest

from repro.analysis import evaluate_competitive_ratio
from repro.baselines import brute_force_optimal
from repro.scenarios import Scenario, TopologySpec, WorkloadSpec, get_scenario
from repro.simulation import simulate
from repro.workloads import Instance

#: Every registered policy runs against the oracle.
_ALL_POLICIES = (
    "alg",
    "fifo",
    "random",
    "maxweight",
    "islip",
    "shortest-path",
    "least-loaded+stable",
    "impact+fifo",
    "direct-first",
)

_TINY_TOPOLOGY = TopologySpec(
    "random-bipartite",
    {
        "num_sources": 2,
        "num_destinations": 2,
        "transmitters_per_source": 1,
        "receivers_per_destination": 1,
        "edge_probability": 0.5,
        "delay_choices": (1, 2),
    },
    fixed_link_delay=5,
)


def _tiny_cells() -> List[Tuple[Scenario, int]]:
    cells: List[Tuple[Scenario, int]] = [
        (get_scenario("figure1"), 0),
        (get_scenario("figure2"), 0),
    ]
    for seed in (0, 1, 2):
        cells.append(
            (
                Scenario(
                    name="oracle-tiny",
                    description="oracle-only: 6 packets on a 2x2 hybrid fabric",
                    topology=_TINY_TOPOLOGY,
                    workload=WorkloadSpec(
                        "uniform",
                        {"num_packets": 6, "arrival_rate": 1.0},
                        weights=("uniform", 1, 5),
                    ),
                    policies=_ALL_POLICIES,
                ),
                seed,
            )
        )
    return cells


_CELLS = _tiny_cells()
_CELL_IDS = [f"{scenario.name}-s{seed}" for scenario, seed in _CELLS]


def _materialise_instance(scenario: Scenario, seed: int) -> Tuple[Instance, dict]:
    topology, stream, policies = scenario.materialise(seed)
    packets = list(stream)
    assert len(packets) <= 6, "oracle instances must stay brute-forceable"
    instance = Instance(
        name=f"{scenario.name}-s{seed}", topology=topology, packets=packets
    )
    return instance, policies


@pytest.mark.parametrize("scenario,seed", _CELLS, ids=_CELL_IDS)
def test_every_policy_respects_the_offline_optimum(scenario: Scenario, seed: int) -> None:
    """No online policy may beat the exhaustive offline optimum at speed 1."""
    instance, policies = _materialise_instance(scenario, seed)
    optimum = brute_force_optimal(instance, max_total_chunks=20)
    assert optimum.cost > 0
    for name, policy in policies.items():
        result = simulate(instance.topology, policy, instance.packets)
        assert result.all_delivered, f"{name} left packets undelivered"
        assert result.total_weighted_latency >= optimum.cost - 1e-9, (
            f"policy {name!r} scored {result.total_weighted_latency} on "
            f"{instance.name}, below the offline optimum {optimum.cost} — "
            "either the oracle or the engine's cost accounting is wrong"
        )


@pytest.mark.parametrize("scenario,seed", _CELLS, ids=_CELL_IDS)
@pytest.mark.parametrize("epsilon", [1.0, 2.0])
def test_alg_respects_theorem1_on_tiny_instances(
    scenario: Scenario, seed: int, epsilon: float
) -> None:
    """ALG's empirical ratio stays within the speed-augmented Theorem 1 bound."""
    instance, _policies = _materialise_instance(scenario, seed)
    report = evaluate_competitive_ratio(instance, epsilon, use_lp=True)
    assert report.within_bound, (
        f"{instance.name}: empirical ratio {report.empirical_ratio:.3f} exceeds "
        f"the Theorem 1 bound {report.theoretical_bound:.3f} at epsilon={epsilon}"
    )


def test_brute_force_matches_figure1_reported_optimum() -> None:
    """The oracle itself reproduces the paper's stated optimal cost of 7."""
    instance, _ = _materialise_instance(get_scenario("figure1"), 0)
    assert brute_force_optimal(instance).cost == pytest.approx(7.0)
