"""Tests for the ``repro search`` CLI (list / run / resume / report)."""

from __future__ import annotations

import json

import pytest

from repro.cli import _SEARCH_BUDGETS, build_parser, main
from repro.experiments import read_json, read_jsonl
from repro.search import BUDGETS

#: Fast budget overrides shared by the run tests below.
FAST = ["--generations", "2", "--population", "4"]


class TestParser:
    def test_requires_search_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["search", "run"])
        assert args.budget == "smoke" and args.objective == "empirical"
        assert args.jobs == 1 and args.space is None

    def test_unknown_budget_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "run", "--budget", "galactic"])

    def test_cli_budget_names_mirror_search_budgets(self):
        # The CLI keeps a literal copy so parser construction stays light;
        # this pin keeps the two from drifting apart.
        assert set(_SEARCH_BUDGETS) == set(BUDGETS)


class TestSearchList:
    def test_lists_spaces_objectives_and_budgets(self, capsys):
        assert main(["search", "list"]) == 0
        out = capsys.readouterr().out
        assert "adversarial" in out and "tiny" in out
        assert "empirical" in out and "brute-force" in out
        for budget in _SEARCH_BUDGETS:
            assert budget in out


class TestSearchRun:
    def test_brute_force_smoke_run(self, capsys):
        assert main(["search", "run", "--objective", "brute-force", *FAST]) == 0
        out = capsys.readouterr().out
        assert "space 'tiny'" in out
        assert "hall of fame" in out and "best score per generation" in out

    def test_output_json_and_jsonl(self, capsys, tmp_path):
        json_path = tmp_path / "hof.json"
        assert main(["search", "run", "--objective", "brute-force", *FAST,
                     "--output", str(json_path)]) == 0
        rows = read_json(json_path)
        assert rows and {"key", "params", "score", "scenario_name"} <= set(rows[0])

        jsonl_path = tmp_path / "hof.jsonl"
        assert main(["search", "run", "--objective", "brute-force", *FAST,
                     "--output", str(jsonl_path)]) == 0
        assert read_jsonl(jsonl_path) == rows
        capsys.readouterr()

    def test_invalid_runner_args_rejected(self, capsys):
        assert main(["search", "run", "--jobs", "0"]) == 2
        assert "must be >= 1" in capsys.readouterr().err

    def test_unknown_space_rejected(self, capsys):
        assert main(["search", "run", "--space", "warp", *FAST]) == 2
        assert "unknown search space" in capsys.readouterr().err


class TestSearchResumeAndReport:
    @pytest.fixture
    def checkpoint(self, tmp_path, capsys):
        path = tmp_path / "ck.jsonl"
        assert main(["search", "run", "--objective", "brute-force", *FAST,
                     "--checkpoint", str(path)]) == 0
        capsys.readouterr()
        return path

    def test_resume_extends_the_budget(self, checkpoint, capsys):
        assert main(["search", "resume", "--checkpoint", str(checkpoint),
                     "--generations", "3", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "ran 3 generations" in out
        lines = [json.loads(line) for line in checkpoint.read_text().splitlines()]
        assert [l["generation"] for l in lines if l["type"] == "generation"] == [0, 1, 2]

    def test_report_summarises_checkpoint(self, checkpoint, capsys):
        assert main(["search", "report", "--checkpoint", str(checkpoint)]) == 0
        out = capsys.readouterr().out
        assert "space 'tiny'" in out and "progress" in out and "hall of fame" in out

    def test_resume_rejects_invalid_knobs_cleanly(self, checkpoint, capsys):
        assert main(["search", "resume", "--checkpoint", str(checkpoint),
                     "--jobs", "0"]) == 2
        assert main(["search", "resume", "--checkpoint", str(checkpoint),
                     "--generations", "0"]) == 2
        err = capsys.readouterr().err
        assert "--jobs must be >= 1" in err and "--generations must be >= 1" in err

    def test_resume_and_report_missing_checkpoint(self, tmp_path, capsys):
        absent = str(tmp_path / "absent.jsonl")
        assert main(["search", "resume", "--checkpoint", absent]) == 2
        assert main(["search", "report", "--checkpoint", absent]) == 2
        err = capsys.readouterr().err
        assert "does not exist" in err
