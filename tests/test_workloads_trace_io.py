"""Tests for repro.workloads.trace_io and paper_figures."""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import pytest

from repro.core import Packet
from repro.exceptions import WorkloadError
from repro.workloads import (
    figure1_instance,
    figure1_packets,
    figure1_reported_costs,
    figure2_instances,
    figure2_packets_pi,
    figure2_packets_pi_prime,
    figure2_reported_impacts,
    read_packet_trace,
    read_packet_trace_jsonl,
    uniform_random_workload,
    write_packet_trace,
    write_packet_trace_jsonl,
)
from repro.network import projector_fabric


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        topo = projector_fabric(num_racks=3, seed=1)
        packets = uniform_random_workload(topo, 25, seed=2)
        path = write_packet_trace(packets, tmp_path / "trace.csv")
        loaded = read_packet_trace(path)
        assert loaded == packets

    def test_roundtrip_preserves_float_weights(self, tmp_path):
        packets = [Packet(0, "a", "b", weight=0.12345678901234, arrival=1)]
        loaded = read_packet_trace(write_packet_trace(packets, tmp_path / "t.csv"))
        assert loaded[0].weight == packets[0].weight

    def test_non_ascii_node_names_roundtrip(self, tmp_path):
        packets = [
            Packet(0, "källa-1", "mål-π", weight=1.5, arrival=1),
            Packet(1, "källa-1", "mål-π", weight=2.0, arrival=2),
        ]
        loaded = read_packet_trace(write_packet_trace(packets, tmp_path / "t.csv"))
        assert loaded == packets
        loaded_jsonl = read_packet_trace_jsonl(
            write_packet_trace_jsonl(packets, tmp_path / "t.jsonl")
        )
        assert loaded_jsonl == packets

    def test_non_ascii_roundtrip_is_locale_independent(self, tmp_path):
        # Traces written on one machine must parse on another machine's
        # locale.  Force the POSIX C locale (whose default text encoding is
        # ASCII) in a subprocess: without the explicit encoding="utf-8" on
        # every text-mode open, writing or reading these node names raises
        # UnicodeEncodeError/UnicodeDecodeError.
        script = textwrap.dedent(
            """
            from repro.core import Packet
            from repro.workloads import (
                read_packet_trace,
                read_packet_trace_jsonl,
                write_packet_trace,
                write_packet_trace_jsonl,
            )

            packets = [Packet(0, "källa-1", "mål-π", weight=1.5, arrival=1)]
            assert read_packet_trace(write_packet_trace(packets, "t.csv")) == packets
            assert (
                read_packet_trace_jsonl(write_packet_trace_jsonl(packets, "t.jsonl"))
                == packets
            )
            print("roundtrip-ok")
            """
        )
        # The script goes through a file, not ``-c``: the C locale cannot
        # even pass non-ASCII argv through, while Python source files are
        # always decoded as UTF-8.
        script_path = tmp_path / "roundtrip_script.py"
        script_path.write_text(script, encoding="utf-8")
        env = dict(os.environ)
        env.update(
            {
                "LC_ALL": "C",
                "LANG": "C",
                "PYTHONUTF8": "0",
                "PYTHONCOERCECLOCALE": "0",
                "PYTHONIOENCODING": "utf-8",
                "PYTHONPATH": os.pathsep.join(sys.path),
            }
        )
        proc = subprocess.run(
            [sys.executable, str(script_path)],
            cwd=tmp_path,
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert "roundtrip-ok" in proc.stdout

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(WorkloadError):
            read_packet_trace(path)

    def test_bad_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("packet_id,source,destination,weight,arrival\n0,a,b,notanumber,1\n")
        with pytest.raises(WorkloadError):
            read_packet_trace(path)

    def test_duplicate_ids_rejected(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text(
            "packet_id,source,destination,weight,arrival\n0,a,b,1.0,1\n0,a,b,1.0,2\n"
        )
        with pytest.raises(WorkloadError):
            read_packet_trace(path)


class TestPaperFigures:
    def test_figure1_packets_table(self):
        packets = figure1_packets()
        assert len(packets) == 5
        assert [(p.source, p.destination, p.arrival) for p in packets] == [
            ("s1", "d1", 1),
            ("s1", "d2", 1),
            ("s2", "d2", 1),
            ("s2", "d2", 2),
            ("s2", "d3", 2),
        ]
        assert all(p.weight == 1.0 for p in packets)

    def test_figure1_instance_routable(self):
        instance = figure1_instance()
        instance.validate()
        assert instance.metadata["paper_optimal_cost"] == 7.0

    def test_figure1_reported_costs(self):
        costs = figure1_reported_costs()
        assert costs["feasible_solution"] == 9.0
        assert costs["optimal_solution"] == 7.0

    def test_figure2_packet_sets(self):
        pi = figure2_packets_pi()
        pi_prime = figure2_packets_pi_prime()
        assert [p.weight for p in pi] == [1.0, 2.0, 3.0]
        assert [p.weight for p in pi_prime] == [1.0, 2.0, 3.0, 4.0]
        assert pi_prime[:3] == pi

    def test_figure2_instances_validate(self):
        for instance in figure2_instances().values():
            instance.validate()

    def test_figure2_reported_impacts_shape(self):
        impacts = figure2_reported_impacts()
        assert impacts["pi"] == {0: 1.0, 1: 2.0, 2: 5.0}
        assert impacts["pi_prime"] == {0: 1.0, 1: 3.0, 2: 3.0, 3: 7.0}
