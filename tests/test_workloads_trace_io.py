"""Tests for repro.workloads.trace_io and paper_figures."""

from __future__ import annotations

import pytest

from repro.core import Packet
from repro.exceptions import WorkloadError
from repro.workloads import (
    figure1_instance,
    figure1_packets,
    figure1_reported_costs,
    figure2_instances,
    figure2_packets_pi,
    figure2_packets_pi_prime,
    figure2_reported_impacts,
    read_packet_trace,
    uniform_random_workload,
    write_packet_trace,
)
from repro.network import projector_fabric


class TestTraceIO:
    def test_roundtrip(self, tmp_path):
        topo = projector_fabric(num_racks=3, seed=1)
        packets = uniform_random_workload(topo, 25, seed=2)
        path = write_packet_trace(packets, tmp_path / "trace.csv")
        loaded = read_packet_trace(path)
        assert loaded == packets

    def test_roundtrip_preserves_float_weights(self, tmp_path):
        packets = [Packet(0, "a", "b", weight=0.12345678901234, arrival=1)]
        loaded = read_packet_trace(write_packet_trace(packets, tmp_path / "t.csv"))
        assert loaded[0].weight == packets[0].weight

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b,c\n1,2,3\n")
        with pytest.raises(WorkloadError):
            read_packet_trace(path)

    def test_bad_row_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("packet_id,source,destination,weight,arrival\n0,a,b,notanumber,1\n")
        with pytest.raises(WorkloadError):
            read_packet_trace(path)

    def test_duplicate_ids_rejected(self, tmp_path):
        path = tmp_path / "dup.csv"
        path.write_text(
            "packet_id,source,destination,weight,arrival\n0,a,b,1.0,1\n0,a,b,1.0,2\n"
        )
        with pytest.raises(WorkloadError):
            read_packet_trace(path)


class TestPaperFigures:
    def test_figure1_packets_table(self):
        packets = figure1_packets()
        assert len(packets) == 5
        assert [(p.source, p.destination, p.arrival) for p in packets] == [
            ("s1", "d1", 1),
            ("s1", "d2", 1),
            ("s2", "d2", 1),
            ("s2", "d2", 2),
            ("s2", "d3", 2),
        ]
        assert all(p.weight == 1.0 for p in packets)

    def test_figure1_instance_routable(self):
        instance = figure1_instance()
        instance.validate()
        assert instance.metadata["paper_optimal_cost"] == 7.0

    def test_figure1_reported_costs(self):
        costs = figure1_reported_costs()
        assert costs["feasible_solution"] == 9.0
        assert costs["optimal_solution"] == 7.0

    def test_figure2_packet_sets(self):
        pi = figure2_packets_pi()
        pi_prime = figure2_packets_pi_prime()
        assert [p.weight for p in pi] == [1.0, 2.0, 3.0]
        assert [p.weight for p in pi_prime] == [1.0, 2.0, 3.0, 4.0]
        assert pi_prime[:3] == pi

    def test_figure2_instances_validate(self):
        for instance in figure2_instances().values():
            instance.validate()

    def test_figure2_reported_impacts_shape(self):
        impacts = figure2_reported_impacts()
        assert impacts["pi"] == {0: 1.0, 1: 2.0, 2: 5.0}
        assert impacts["pi_prime"] == {0: 1.0, 1: 3.0, 2: 3.0, 3: 7.0}
