"""Tests for repro.workloads.base, arrival and weights."""

from __future__ import annotations

import pytest

from repro.core import Packet
from repro.exceptions import WorkloadError
from repro.network import figure1_topology, projector_fabric
from repro.workloads import (
    Instance,
    PacketSpec,
    batch_arrivals,
    bimodal_weights,
    build_packets,
    constant_weights,
    deterministic_arrivals,
    normalize_arrival,
    onoff_arrivals,
    pareto_weights,
    poisson_arrivals,
    routable_pairs,
    uniform_weights,
)
from repro.utils.rng import as_rng


class TestNormalizeArrival:
    def test_integer_kept(self):
        assert normalize_arrival(3) == 3

    def test_fractional_ceiled(self):
        assert normalize_arrival(2.1) == 3

    def test_clamped_to_first_slot(self):
        assert normalize_arrival(0.0) == 1
        assert normalize_arrival(-5) == 1

    def test_nan_rejected(self):
        with pytest.raises(WorkloadError):
            normalize_arrival(float("nan"))


class TestPacketSpecAndBuild:
    def test_spec_to_packet(self):
        spec = PacketSpec("s", "d", weight=2.0, arrival=1.5)
        packet = spec.to_packet(7)
        assert packet.packet_id == 7 and packet.arrival == 2

    def test_build_packets_ids_follow_arrival_order(self):
        specs = [
            PacketSpec("s", "d", 1.0, arrival=5),
            PacketSpec("s", "d", 1.0, arrival=1),
            PacketSpec("s", "d", 1.0, arrival=3),
        ]
        packets = build_packets(specs)
        assert [p.packet_id for p in packets] == [0, 1, 2]
        assert [p.arrival for p in packets] == [1, 3, 5]

    def test_build_packets_stable_within_slot(self):
        specs = [PacketSpec("s", f"d{i}", 1.0, arrival=1) for i in range(4)]
        packets = build_packets(specs)
        assert [p.destination for p in packets] == ["d0", "d1", "d2", "d3"]


class TestInstance:
    def test_properties(self, fig1_instance):
        assert fig1_instance.num_packets == 5
        assert fig1_instance.total_weight == pytest.approx(5.0)
        assert fig1_instance.max_arrival == 2

    def test_duplicate_ids_rejected(self, fig1_topology):
        packets = [Packet(0, "s1", "d1", 1.0, 1), Packet(0, "s1", "d2", 1.0, 1)]
        with pytest.raises(WorkloadError):
            Instance(name="dup", topology=fig1_topology, packets=packets)

    def test_validate_detects_unroutable(self, fig1_topology):
        packets = [Packet(0, "s1", "d3", 1.0, 1)]
        instance = Instance(name="bad", topology=fig1_topology, packets=packets)
        with pytest.raises(WorkloadError):
            instance.validate()

    def test_horizon_estimate_positive_and_scales(self, fig1_instance):
        h1 = fig1_instance.horizon_estimate(speed=1.0)
        h_half = fig1_instance.horizon_estimate(speed=0.5)
        assert h1 > fig1_instance.max_arrival
        assert h_half >= h1

    def test_subset(self, fig1_instance):
        sub = fig1_instance.subset(2)
        assert sub.num_packets == 2
        assert [p.packet_id for p in sub.packets] == [0, 1]

    def test_routable_pairs_figure1(self, fig1_topology):
        pairs = set(routable_pairs(fig1_topology))
        assert ("s1", "d1") in pairs and ("s2", "d3") in pairs
        assert ("s1", "d3") not in pairs

    def test_routable_pairs_projector_excludes_self(self):
        topo = projector_fabric(num_racks=3)
        pairs = routable_pairs(topo)
        assert all(s.split(":")[0] != d.split(":")[0] for (s, d) in pairs)
        assert len(pairs) == 6


class TestArrivalProcesses:
    def test_poisson_length_and_monotone(self):
        arr = poisson_arrivals(50, rate=2.0, seed=1)
        assert len(arr) == 50
        assert all(b >= a for a, b in zip(arr, arr[1:]))
        assert all(a >= 1 for a in arr)

    def test_poisson_rate_controls_span(self):
        fast = poisson_arrivals(200, rate=10.0, seed=2)
        slow = poisson_arrivals(200, rate=0.5, seed=2)
        assert max(slow) > max(fast)

    def test_deterministic_spacing(self):
        assert deterministic_arrivals(4, interval=2.0, start=1) == [1, 3, 5, 7]

    def test_deterministic_invalid_start(self):
        with pytest.raises(WorkloadError):
            deterministic_arrivals(3, interval=1.0, start=0)

    def test_batch_arrivals(self):
        arr = batch_arrivals(num_batches=3, batch_size=2, gap=5, start=1)
        assert arr == [1, 1, 6, 6, 11, 11]

    def test_onoff_has_gaps(self):
        arr = onoff_arrivals(100, on_rate=5.0, on_duration=3, off_duration=20, seed=4)
        assert len(arr) == 100
        gaps = [b - a for a, b in zip(arr, arr[1:])]
        assert max(gaps) >= 15  # silence between bursts is visible

    def test_poisson_requires_positive_rate(self):
        with pytest.raises(ValueError):
            poisson_arrivals(5, rate=0.0)


class TestWeightSamplers:
    def test_constant(self):
        sampler = constant_weights(3.5)
        assert sampler(as_rng(0)) == 3.5

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(WorkloadError):
            constant_weights(0.0)

    def test_uniform_range(self):
        sampler = uniform_weights(2.0, 4.0)
        rng = as_rng(1)
        values = [sampler(rng) for _ in range(100)]
        assert all(2.0 <= v <= 4.0 for v in values)

    def test_uniform_invalid_range(self):
        with pytest.raises(WorkloadError):
            uniform_weights(5.0, 1.0)

    def test_pareto_capped_and_positive(self):
        sampler = pareto_weights(shape=1.1, scale=1.0, cap=50.0)
        rng = as_rng(2)
        values = [sampler(rng) for _ in range(500)]
        assert all(0 < v <= 50.0 for v in values)

    def test_bimodal_values(self):
        sampler = bimodal_weights(heavy_weight=10.0, light_weight=1.0, heavy_fraction=0.5)
        rng = as_rng(3)
        values = {sampler(rng) for _ in range(200)}
        assert values == {1.0, 10.0}

    def test_bimodal_invalid_fraction(self):
        with pytest.raises(WorkloadError):
            bimodal_weights(heavy_fraction=1.5)
