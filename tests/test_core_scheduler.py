"""Tests for repro.core.scheduler and repro.core.algorithm."""

from __future__ import annotations

import pytest

from repro.core import (
    OpportunisticLinkScheduler,
    OrderedGreedyScheduler,
    StableMatchingScheduler,
    theoretical_competitive_ratio,
)
from repro.core.packet import Packet, split_into_chunks
from repro.core.queues import PendingChunkPool
from repro.core.stable_matching import is_stable_matching
from repro.network import figure2_topology


def add_chunk(pool, pid, weight, edge, arrival=1, delay=1, head_delay=0):
    packet = Packet(pid, "s", "d", weight=weight, arrival=arrival)
    chunks = split_into_chunks(packet, edge[0], edge[1], edge_delay=delay, head_delay=head_delay)
    pool.add_all(chunks)
    return chunks


class TestStableMatchingScheduler:
    def test_empty_pool_gives_empty_matching(self):
        scheduler = StableMatchingScheduler()
        assert scheduler.select_matching(PendingChunkPool(), figure2_topology(), 1) == []

    def test_selects_heaviest_on_conflict(self):
        pool = PendingChunkPool()
        add_chunk(pool, 0, 1.0, ("t", "r1"))
        heavy = add_chunk(pool, 1, 9.0, ("t", "r2"))[0]
        scheduler = StableMatchingScheduler()
        matching = scheduler.select_matching(pool, figure2_topology(), 1)
        assert matching == [heavy]

    def test_output_is_stable(self):
        pool = PendingChunkPool()
        for pid, (w, edge) in enumerate(
            [(3.0, ("t1", "r1")), (2.0, ("t1", "r2")), (5.0, ("t2", "r1")), (1.0, ("t3", "r3"))]
        ):
            add_chunk(pool, pid, w, edge)
        scheduler = StableMatchingScheduler()
        matching = scheduler.select_matching(pool, figure2_topology(), 1)
        assert is_stable_matching(matching, pool.eligible_chunks(1))

    def test_ineligible_chunks_not_scheduled(self):
        pool = PendingChunkPool()
        add_chunk(pool, 0, 5.0, ("t", "r"), head_delay=10)
        scheduler = StableMatchingScheduler()
        assert scheduler.select_matching(pool, figure2_topology(), 1) == []
        assert len(scheduler.select_matching(pool, figure2_topology(), 11)) == 1

    def test_one_chunk_per_edge(self):
        pool = PendingChunkPool()
        add_chunk(pool, 0, 2.0, ("t", "r"), delay=3)
        scheduler = StableMatchingScheduler()
        matching = scheduler.select_matching(pool, figure2_topology(), 1)
        assert len(matching) == 1

    def test_weight_tie_prefers_earlier_arrival(self):
        pool = PendingChunkPool()
        late = add_chunk(pool, 0, 2.0, ("t", "r1"), arrival=4)[0]
        early = add_chunk(pool, 1, 2.0, ("t", "r2"), arrival=1)[0]
        scheduler = StableMatchingScheduler()
        matching = scheduler.select_matching(pool, figure2_topology(), 5)
        assert matching == [early]


class TestOrderedGreedyScheduler:
    def test_custom_order_respected(self):
        pool = PendingChunkPool()
        old_light = add_chunk(pool, 0, 1.0, ("t", "r1"), arrival=1)[0]
        new_heavy = add_chunk(pool, 1, 9.0, ("t", "r2"), arrival=5)[0]
        fifo = OrderedGreedyScheduler(key=lambda c: (c.packet.arrival, c.packet.packet_id))
        matching = fifo.select_matching(pool, figure2_topology(), 10)
        assert matching == [old_light]
        assert new_heavy not in matching

    def test_name_override(self):
        sched = OrderedGreedyScheduler(key=lambda c: c.packet.arrival, name="custom")
        assert sched.name == "custom"


class TestAlgorithmFactory:
    def test_policy_components(self):
        alg = OpportunisticLinkScheduler()
        assert alg.dispatcher.name == "impact"
        assert alg.scheduler.name == "stable-matching"
        assert "stable-matching" in alg.name

    def test_record_decisions_forwarded(self):
        alg = OpportunisticLinkScheduler(record_decisions=True)
        assert alg.impact_dispatcher.record_decisions

    def test_reset_propagates(self):
        alg = OpportunisticLinkScheduler(record_decisions=True)
        alg.impact_dispatcher.decision_log.append({"dummy": 1})
        alg.reset()
        assert alg.impact_dispatcher.decision_log == []

    def test_theoretical_ratio_values(self):
        assert theoretical_competitive_ratio(2.0) == pytest.approx(4.0)
        assert theoretical_competitive_ratio(1.0) == pytest.approx(6.0)
        assert theoretical_competitive_ratio(0.5) == pytest.approx(10.0)

    def test_theoretical_ratio_requires_positive_epsilon(self):
        with pytest.raises(ValueError):
            theoretical_competitive_ratio(0.0)
        with pytest.raises(ValueError):
            theoretical_competitive_ratio(-1.0)

    def test_ratio_decreases_with_epsilon(self):
        assert theoretical_competitive_ratio(0.1) > theoretical_competitive_ratio(1.0) > theoretical_competitive_ratio(10.0)
