"""Tests for repro.baselines.dispatchers."""

from __future__ import annotations

import pytest

from repro.baselines import (
    DirectFirstDispatcher,
    LeastLoadedDispatcher,
    RandomDispatcher,
    ShortestPathDispatcher,
)
from repro.core import Packet
from repro.core.packet import EdgeAssignment, FixedLinkAssignment
from repro.core.queues import PendingChunkPool
from repro.exceptions import RoutingError
from repro.network import TwoTierTopology, figure1_topology, projector_fabric


def two_edge_topology(delays=(1, 3), fixed=None) -> TwoTierTopology:
    topo = TwoTierTopology()
    topo.add_source("s")
    topo.add_destination("d")
    topo.add_transmitter("ta", "s")
    topo.add_transmitter("tb", "s")
    topo.add_receiver("ra", "d")
    topo.add_receiver("rb", "d")
    topo.add_reconfigurable_edge("ta", "ra", delay=delays[0])
    topo.add_reconfigurable_edge("tb", "rb", delay=delays[1])
    if fixed is not None:
        topo.add_fixed_link("s", "d", delay=fixed)
    return topo.freeze()


class TestRandomDispatcher:
    def test_deterministic_after_reset(self):
        topo = two_edge_topology()
        dispatcher = RandomDispatcher(seed=3)
        picks1 = []
        for i in range(10):
            picks1.append(dispatcher.dispatch(Packet(i, "s", "d", 1.0, 1), topo, PendingChunkPool(), 1))
        dispatcher.reset()
        picks2 = []
        for i in range(10):
            picks2.append(dispatcher.dispatch(Packet(i, "s", "d", 1.0, 1), topo, PendingChunkPool(), 1))
        assert [getattr(a, "edge", "fixed") for a in picks1] == [
            getattr(a, "edge", "fixed") for a in picks2
        ]

    def test_uses_both_edges_eventually(self):
        topo = two_edge_topology()
        dispatcher = RandomDispatcher(seed=0)
        edges = {
            dispatcher.dispatch(Packet(i, "s", "d", 1.0, 1), topo, PendingChunkPool(), 1).edge
            for i in range(30)
        }
        assert edges == {("ta", "ra"), ("tb", "rb")}

    def test_fixed_link_is_a_candidate(self):
        topo = two_edge_topology(fixed=2)
        dispatcher = RandomDispatcher(seed=1)
        kinds = {
            dispatcher.dispatch(Packet(i, "s", "d", 1.0, 1), topo, PendingChunkPool(), 1).uses_fixed_link
            for i in range(50)
        }
        assert kinds == {True, False}

    def test_unroutable_raises(self):
        topo = figure1_topology()
        with pytest.raises(RoutingError):
            RandomDispatcher(seed=0).dispatch(Packet(0, "s1", "d3", 1.0, 1), topo, PendingChunkPool(), 1)

    def test_impact_recorded(self):
        topo = two_edge_topology()
        assignment = RandomDispatcher(seed=5).dispatch(
            Packet(0, "s", "d", 2.0, 1), topo, PendingChunkPool(), 1
        )
        assert assignment.impact > 0


class TestLeastLoadedDispatcher:
    def test_picks_unloaded_edge(self):
        topo = two_edge_topology(delays=(1, 1))
        dispatcher = LeastLoadedDispatcher()
        pool = PendingChunkPool()
        first = dispatcher.dispatch(Packet(0, "s", "d", 5.0, 1), topo, pool, 1)
        pool.add_all(first.chunks)
        second = dispatcher.dispatch(Packet(1, "s", "d", 1.0, 1), topo, pool, 1)
        assert first.edge != second.edge

    def test_tie_broken_by_path_delay(self):
        topo = two_edge_topology(delays=(3, 1))
        assignment = LeastLoadedDispatcher().dispatch(
            Packet(0, "s", "d", 1.0, 1), topo, PendingChunkPool(), 1
        )
        assert assignment.edge == ("tb", "rb")

    def test_fixed_only_when_no_edges(self):
        topo = TwoTierTopology()
        topo.add_source("s")
        topo.add_destination("d")
        topo.add_transmitter("t", "s")
        topo.add_receiver("r", "d")
        topo.add_fixed_link("s", "d", delay=2)
        topo.freeze()
        assignment = LeastLoadedDispatcher().dispatch(
            Packet(0, "s", "d", 1.0, 1), topo, PendingChunkPool(), 1
        )
        assert isinstance(assignment, FixedLinkAssignment)


class TestShortestPathDispatcher:
    def test_picks_smallest_delay_edge(self):
        topo = two_edge_topology(delays=(4, 2))
        assignment = ShortestPathDispatcher().dispatch(
            Packet(0, "s", "d", 1.0, 1), topo, PendingChunkPool(), 1
        )
        assert assignment.edge == ("tb", "rb")

    def test_fixed_link_when_strictly_faster(self):
        topo = two_edge_topology(delays=(4, 5), fixed=2)
        assignment = ShortestPathDispatcher().dispatch(
            Packet(0, "s", "d", 1.0, 1), topo, PendingChunkPool(), 1
        )
        assert isinstance(assignment, FixedLinkAssignment)

    def test_edge_preferred_on_tie(self):
        topo = two_edge_topology(delays=(2, 5), fixed=2)
        assignment = ShortestPathDispatcher().dispatch(
            Packet(0, "s", "d", 1.0, 1), topo, PendingChunkPool(), 1
        )
        assert isinstance(assignment, EdgeAssignment)

    def test_ignores_queue_state(self):
        topo = two_edge_topology(delays=(1, 2))
        dispatcher = ShortestPathDispatcher()
        pool = PendingChunkPool()
        first = dispatcher.dispatch(Packet(0, "s", "d", 5.0, 1), topo, pool, 1)
        pool.add_all(first.chunks)
        second = dispatcher.dispatch(Packet(1, "s", "d", 5.0, 1), topo, pool, 1)
        assert first.edge == second.edge == ("ta", "ra")


class TestDirectFirstDispatcher:
    def test_always_prefers_fixed(self):
        topo = two_edge_topology(delays=(1, 1), fixed=50)
        assignment = DirectFirstDispatcher().dispatch(
            Packet(0, "s", "d", 1.0, 1), topo, PendingChunkPool(), 1
        )
        assert isinstance(assignment, FixedLinkAssignment)
        assert assignment.impact == pytest.approx(50.0)

    def test_falls_back_to_impact_dispatch(self):
        topo = projector_fabric(num_racks=3, seed=0)
        assignment = DirectFirstDispatcher().dispatch(
            Packet(0, "rack0:src", "rack1:dst", 1.0, 1), topo, PendingChunkPool(), 1
        )
        assert isinstance(assignment, EdgeAssignment)
