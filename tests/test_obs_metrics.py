"""Unit tests for the observability layer (repro.obs).

Covers the registry's determinism contract (snapshots are pure functions of
the operations applied), histogram bucket edges, the shared no-op
singletons, the SpanTimer with a fake injectable clock, the PhaseTimings
adapter compatibility, and the MetricsWriter JSONL round-trip.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    MetricsWriter,
    NULL_REGISTRY,
    NullRegistry,
    SpanTimer,
    iter_metric_records,
    log_spaced_buckets,
    read_metric_records,
)


class FakeClock:
    """Deterministic clock: each call returns the next scripted reading."""

    def __init__(self, *readings: float) -> None:
        self._readings = list(readings)

    def __call__(self) -> float:
        return self._readings.pop(0)


class TestRegistry:
    def test_counter_gauge_histogram_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.counter("events").inc(4)
        registry.gauge("depth").set(3.5)
        registry.gauge("peak").set_max(2.0)
        registry.gauge("peak").set_max(1.0)  # lower: must not stick
        registry.histogram("sizes", buckets=(1.0, 2.0)).observe(1.5)
        snap = registry.snapshot()
        assert snap["counters"] == {"events": 5}
        assert snap["gauges"] == {"depth": 3.5, "peak": 2.0}
        assert snap["histograms"]["sizes"]["count"] == 1
        assert snap["histograms"]["sizes"]["sum"] == 1.5

    def test_same_series_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", policy="alg")
        b = registry.counter("hits", policy="alg")
        assert a is b
        assert registry.counter("hits", policy="fifo") is not a

    def test_labels_render_sorted_and_stringified(self):
        registry = MetricsRegistry()
        registry.counter("hits", policy="alg", group=3).inc()
        snap = registry.snapshot()
        assert snap["counters"] == {"hits{group=3,policy=alg}": 1}

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", a="x", b="y")
        b = registry.counter("hits", b="y", a="x")
        assert a is b

    def test_snapshot_order_independent_of_creation_order(self):
        forward = MetricsRegistry()
        forward.counter("alpha").inc()
        forward.counter("beta").inc()
        backward = MetricsRegistry()
        backward.counter("beta").inc()
        backward.counter("alpha").inc()
        assert forward.snapshot() == backward.snapshot()
        assert list(forward.snapshot()["counters"]) == ["alpha", "beta"]

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ObservabilityError, match="is a counter"):
            registry.gauge("x")

    def test_empty_snapshot_shape(self):
        assert MetricsRegistry().snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


class TestHistogramBuckets:
    def test_default_buckets_are_strictly_increasing(self):
        assert all(b > a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]))
        assert DEFAULT_BUCKETS[0] == pytest.approx(1e-6)
        assert DEFAULT_BUCKETS[-1] == pytest.approx(1e4)

    def test_log_spaced_buckets_closed_form(self):
        buckets = log_spaced_buckets(1.0, 100.0, per_decade=1)
        assert buckets == (1.0, 10.0, 100.0)

    def test_log_spaced_buckets_validation(self):
        with pytest.raises(ObservabilityError):
            log_spaced_buckets(0.0, 1.0)
        with pytest.raises(ObservabilityError):
            log_spaced_buckets(2.0, 1.0)
        with pytest.raises(ObservabilityError):
            log_spaced_buckets(1.0, 10.0, per_decade=0)

    def test_observation_lands_in_correct_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 4.0, 16.0))
        # At-bound observations land in the bucket whose upper bound they hit.
        for value in (0.5, 1.0):  # both <= 1.0
            hist.observe(value)
        hist.observe(4.0)       # second bucket (<= 4.0)
        hist.observe(5.0)       # third bucket (<= 16.0)
        hist.observe(100.0)     # overflow
        snap = registry.snapshot()["histograms"]["h"]
        assert snap["counts"] == [2, 1, 1, 1]
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(110.5)
        assert snap["buckets"] == [1.0, 4.0, 16.0]

    def test_non_increasing_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ObservabilityError, match="strictly increasing"):
            registry.histogram("bad", buckets=(1.0, 1.0, 2.0))
        with pytest.raises(ObservabilityError):
            registry.histogram("empty", buckets=())


class TestNullRegistry:
    def test_singletons_shared_and_inert(self):
        a = NULL_REGISTRY.counter("anything", policy="x")
        b = NULL_REGISTRY.counter("other")
        assert a is b
        a.inc(1000)
        NULL_REGISTRY.gauge("g").set(5.0)
        NULL_REGISTRY.gauge("g").set_max(5.0)
        NULL_REGISTRY.histogram("h").observe(1.0)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }
        assert a.value == 0

    def test_enabled_flags(self):
        assert MetricsRegistry().enabled is True
        assert NullRegistry().enabled is False
        assert NULL_REGISTRY.enabled is False


class TestSpanTimer:
    def test_start_stop_with_fake_clock(self):
        timer = SpanTimer(clock=FakeClock(10.0, 12.5, 20.0, 21.0))
        begin = timer.start()
        assert timer.stop("dispatch", begin) == pytest.approx(2.5)
        begin = timer.start()
        timer.stop("dispatch", begin)
        assert timer.total("dispatch") == pytest.approx(3.5)
        assert timer.counts["dispatch"] == 2

    def test_context_manager_form(self):
        timer = SpanTimer(clock=FakeClock(1.0, 4.0))
        with timer.span("phase"):
            pass
        assert timer.total("phase") == pytest.approx(3.0)

    def test_set_total_overwrites_without_count(self):
        timer = SpanTimer(clock=FakeClock())
        timer.set_total("transmit", 9.0)
        assert timer.total("transmit") == 9.0
        assert timer.counts["transmit"] == 0
        timer.add("transmit", 1.0)
        assert timer.total("transmit") == 10.0
        assert timer.counts["transmit"] == 1

    def test_reset_and_snapshot(self):
        timer = SpanTimer(clock=FakeClock())
        timer.add("b", 2.0)
        timer.add("a", 1.0)
        assert list(timer.snapshot()) == ["a", "b"]
        assert timer.snapshot()["b"] == {"total_s": 2.0, "count": 1}
        timer.reset()
        assert timer.snapshot() == {}
        assert timer.total("a") == 0.0


class TestPhaseTimingsAdapter:
    def test_adapter_reads_and_writes_through_spans(self):
        from repro.simulation.profiling import PhaseTimings

        timings = PhaseTimings()
        timings.spans.add("dispatch", 1.0)
        assert timings.dispatch_s == pytest.approx(1.0)
        timings.scheduler_s = 2.0
        assert timings.spans.total("scheduler") == pytest.approx(2.0)
        timings.transmit_s = 0.5
        breakdown = timings.breakdown(total_s=5.0)
        assert breakdown["bookkeeping_s"] == pytest.approx(1.5)
        timings.reset()
        assert timings.dispatch_s == 0.0

    def test_timed_policy_still_times_phases(self, line_topology):
        from repro.core import OpportunisticLinkScheduler, Packet
        from repro.simulation import simulate, timed_policy

        policy, timings = timed_policy(OpportunisticLinkScheduler())
        assert policy.phase_timings is timings
        packets = [Packet(i, "s", "d", 1.0, 1) for i in range(4)]
        result = simulate(line_topology, policy, packets)
        assert result.all_delivered
        assert timings.dispatch_s >= 0.0
        assert timings.scheduler_s >= 0.0
        assert timings.transmit_s > 0.0  # engine-timed, ran at least one slot


class TestMetricsWriter:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with MetricsWriter(path) as writer:
            writer.write({"record": "a", "value": 1})
            writer.write({"record": "b", "unicode": "départ→光"})
        records = read_metric_records(path)
        assert records == [
            {"record": "a", "value": 1},
            {"record": "b", "unicode": "départ→光"},
        ]

    def test_keys_are_sorted_per_line(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with MetricsWriter(path) as writer:
            writer.write({"zeta": 1, "alpha": 2})
        line = path.read_text(encoding="utf-8").splitlines()[0]
        assert line.index('"alpha"') < line.index('"zeta"')

    def test_append_mode_extends(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with MetricsWriter(path) as writer:
            writer.write({"n": 1})
        with MetricsWriter(path, mode="a") as writer:
            writer.write({"n": 2})
        assert [r["n"] for r in iter_metric_records(path)] == [1, 2]

    def test_bad_mode_rejected(self, tmp_path):
        with pytest.raises(ObservabilityError, match="mode"):
            MetricsWriter(tmp_path / "m.jsonl", mode="x")

    def test_write_outside_context_rejected(self, tmp_path):
        writer = MetricsWriter(tmp_path / "m.jsonl")
        with pytest.raises(ObservabilityError, match="outside its context"):
            writer.write({})

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "m.jsonl"
        # Malformed *final* lines are the tear a killed writer leaves behind
        # and are dropped; malformed lines followed by more data are real
        # corruption and still fail with a positioned error.
        path.write_text('{"ok": 1}\nnot json\n', encoding="utf-8")
        assert read_metric_records(path) == [{"ok": 1}]
        path.write_text('{"ok": 1}\nnot json\n{"ok": 2}\n', encoding="utf-8")
        with pytest.raises(ObservabilityError, match=":2"):
            read_metric_records(path)
        path.write_text('[1, 2]\n', encoding="utf-8")
        with pytest.raises(ObservabilityError, match="non-object"):
            read_metric_records(path)
