"""Tests for repro.network.topology."""

from __future__ import annotations

import pytest

from repro.exceptions import TopologyError
from repro.network import TwoTierTopology, figure1_topology


def build_basic() -> TwoTierTopology:
    topo = TwoTierTopology(name="basic")
    topo.add_source("s1")
    topo.add_destination("d1")
    topo.add_transmitter("t1", "s1", head_delay=1)
    topo.add_receiver("r1", "d1", tail_delay=2)
    topo.add_reconfigurable_edge("t1", "r1", delay=3)
    topo.add_fixed_link("s1", "d1", delay=7)
    return topo


class TestConstruction:
    def test_layers_recorded(self):
        topo = build_basic()
        assert topo.sources == ("s1",)
        assert topo.destinations == ("d1",)
        assert topo.transmitters == ("t1",)
        assert topo.receivers == ("r1",)

    def test_duplicate_node_rejected(self):
        topo = build_basic()
        with pytest.raises(TopologyError):
            topo.add_source("s1")
        with pytest.raises(TopologyError):
            topo.add_transmitter("t1", "s1")

    def test_transmitter_requires_known_source(self):
        topo = TwoTierTopology()
        topo.add_source("s1")
        topo.add_destination("d1")
        with pytest.raises(TopologyError):
            topo.add_transmitter("t1", "sX")

    def test_receiver_requires_known_destination(self):
        topo = TwoTierTopology()
        topo.add_source("s1")
        topo.add_destination("d1")
        with pytest.raises(TopologyError):
            topo.add_receiver("r1", "dX")

    def test_edge_delay_must_be_positive_int(self):
        topo = build_basic()
        topo.add_transmitter("t2", "s1")
        topo.add_receiver("r2", "d1")
        with pytest.raises(TopologyError):
            topo.add_reconfigurable_edge("t2", "r2", delay=0)
        with pytest.raises(TopologyError):
            topo.add_reconfigurable_edge("t2", "r2", delay=1.5)  # type: ignore[arg-type]

    def test_duplicate_edge_rejected(self):
        topo = build_basic()
        with pytest.raises(TopologyError):
            topo.add_reconfigurable_edge("t1", "r1", delay=1)

    def test_fixed_link_requires_valid_endpoints(self):
        topo = build_basic()
        with pytest.raises(TopologyError):
            topo.add_fixed_link("sX", "d1", delay=1)
        with pytest.raises(TopologyError):
            topo.add_fixed_link("s1", "d1", delay=2)  # duplicate

    def test_empty_node_name_rejected(self):
        topo = TwoTierTopology()
        with pytest.raises(TopologyError):
            topo.add_source("")

    def test_negative_head_delay_rejected(self):
        topo = TwoTierTopology()
        topo.add_source("s")
        with pytest.raises(TopologyError):
            topo.add_transmitter("t", "s", head_delay=-1)

    def test_freeze_prevents_mutation(self):
        topo = build_basic()
        topo.freeze()
        assert topo.frozen
        with pytest.raises(TopologyError):
            topo.add_source("s2")

    def test_validate_empty_topology_fails(self):
        with pytest.raises(TopologyError):
            TwoTierTopology().validate()


class TestQueries:
    def test_attachments(self):
        topo = build_basic().freeze()
        assert topo.source_of("t1") == "s1"
        assert topo.destination_of("r1") == "d1"
        assert topo.transmitters_of_source("s1") == ("t1",)
        assert topo.receivers_of_destination("d1") == ("r1",)

    def test_adjacency(self):
        topo = build_basic().freeze()
        assert topo.receivers_of("t1") == ("r1",)
        assert topo.transmitters_of("r1") == ("t1",)

    def test_delays(self):
        topo = build_basic().freeze()
        assert topo.edge_delay("t1", "r1") == 3
        assert topo.head_delay("t1") == 1
        assert topo.tail_delay("r1") == 2
        assert topo.path_delay("t1", "r1") == 6

    def test_edge_view(self):
        topo = build_basic().freeze()
        view = topo.edge_view("t1", "r1")
        assert view.edge == ("t1", "r1")
        assert view.path_delay == 6
        assert view.source == "s1" and view.destination == "d1"

    def test_candidate_edges(self):
        topo = build_basic().freeze()
        assert topo.candidate_edges("s1", "d1") == [("t1", "r1")]

    def test_candidate_edges_unknown_nodes(self):
        topo = build_basic().freeze()
        with pytest.raises(TopologyError):
            topo.candidate_edges("sX", "d1")
        with pytest.raises(TopologyError):
            topo.candidate_edges("s1", "dX")

    def test_fixed_link_queries(self):
        topo = build_basic().freeze()
        assert topo.has_fixed_link("s1", "d1")
        assert topo.fixed_link_delay("s1", "d1") == 7
        assert not topo.has_fixed_link("s1", "dX") is True  # missing pair is just False
        with pytest.raises(TopologyError):
            topo.fixed_link_delay("s1", "d2")

    def test_can_route(self):
        topo = figure1_topology()
        assert topo.can_route("s1", "d1")
        assert topo.can_route("s2", "d3")  # fixed link and edge
        assert not topo.can_route("s1", "d3")

    def test_unknown_node_queries_raise(self):
        topo = build_basic().freeze()
        with pytest.raises(TopologyError):
            topo.source_of("tX")
        with pytest.raises(TopologyError):
            topo.edge_delay("t1", "rX")
        with pytest.raises(TopologyError):
            topo.head_delay("tX")

    def test_num_nodes_and_stats(self):
        topo = figure1_topology()
        assert topo.num_nodes() == 2 + 3 + 3 + 4
        stats = topo.degree_statistics()
        assert stats["num_edges"] == 5
        assert stats["max_transmitter_degree"] >= 2

    def test_max_path_delay(self):
        topo = build_basic().freeze()
        assert topo.max_path_delay() == 6


class TestExportAndEquality:
    def test_to_networkx_layers_and_edges(self):
        g = figure1_topology().to_networkx()
        assert g.nodes["s1"]["layer"] == "source"
        assert g.nodes["r4"]["layer"] == "receiver"
        assert g.edges[("t1", "r1")]["kind"] == "reconfigurable"
        assert g.edges[("s2", "d3")]["kind"] == "fixed"
        # attachment edges exist
        assert g.has_edge("s1", "t1") and g.has_edge("r1", "d1")

    def test_bipartite_export(self):
        g = figure1_topology().reconfigurable_bipartite_graph()
        assert g.number_of_edges() == 5
        assert g.nodes["t1"]["bipartite"] == 0
        assert g.nodes["r1"]["bipartite"] == 1

    def test_equality_same_structure(self):
        assert figure1_topology() == figure1_topology()

    def test_equality_different_structure(self):
        a = build_basic().freeze()
        b = figure1_topology()
        assert a != b

    def test_repr_mentions_counts(self):
        assert "sources=2" in repr(figure1_topology())
