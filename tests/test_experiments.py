"""Tests for repro.experiments (generators, comparison, sweeps, report)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines import standard_baselines
from repro.core import OpportunisticLinkScheduler
from repro.experiments import (
    compare_policies_on_instance,
    compare_policies_on_suite,
    competitive_ratio_sweep,
    crossbar_instance,
    delay_heterogeneity_sweep,
    format_comparison_table,
    hybrid_fixed_link_sweep,
    hybrid_instance,
    rows_to_csv,
    rows_to_table,
    small_lp_instances,
    speedup_sweep,
    standard_projector_instances,
    two_tier_sweep,
    write_csv,
)
from repro.exceptions import ExperimentError


@pytest.fixture(scope="module")
def tiny_suite():
    """A reduced instance suite so experiment tests stay fast."""
    return standard_projector_instances(num_racks=4, lasers_per_rack=2, num_packets=40, seed=1)


class TestGenerators:
    def test_standard_suite_names_and_validity(self, tiny_suite):
        assert set(tiny_suite) == {
            "uniform", "zipf", "elephant-mice", "hotspot", "bursty", "incast",
        }
        for instance in tiny_suite.values():
            instance.validate()
            assert instance.num_packets > 0

    def test_standard_suite_deterministic(self):
        a = standard_projector_instances(num_racks=4, num_packets=20, seed=5)
        b = standard_projector_instances(num_racks=4, num_packets=20, seed=5)
        for key in a:
            assert a[key].packets == b[key].packets

    def test_small_lp_instances(self):
        instances = small_lp_instances(num_instances=2, num_packets=6, seed=3)
        assert len(instances) == 2
        for instance in instances.values():
            instance.validate()
            assert len(instance.topology.fixed_links) > 0

    def test_crossbar_instance(self):
        instance = crossbar_instance(num_ports=4, num_packets=30, seed=2)
        instance.validate()
        assert instance.topology.name == "crossbar"

    def test_hybrid_instance(self):
        instance = hybrid_instance(num_racks=4, num_packets=30, fixed_link_delay=3, seed=2)
        instance.validate()
        assert all(d == 3 for d in instance.topology.fixed_links.values())


class TestComparison:
    def test_single_policy_default(self, tiny_suite):
        rows = compare_policies_on_instance(tiny_suite["uniform"])
        assert len(rows) == 1
        assert rows[0].ratio_to_alg == pytest.approx(1.0)

    def test_multiple_policies_normalised_to_alg(self, tiny_suite):
        policies = {"alg": OpportunisticLinkScheduler(), **standard_baselines(seed=0)}
        rows = compare_policies_on_instance(tiny_suite["zipf"], policies)
        assert len(rows) == len(policies)
        alg_row = next(r for r in rows if r.policy == "alg")
        assert alg_row.ratio_to_alg == pytest.approx(1.0)
        assert rows == sorted(rows, key=lambda r: r.total_weighted_latency)

    def test_suite_cross_product(self, tiny_suite):
        two = {k: tiny_suite[k] for k in ("uniform", "incast")}
        policies = {"alg": OpportunisticLinkScheduler()}
        rows = compare_policies_on_suite(two, policies)
        assert {r.instance for r in rows} == {"uniform", "incast"}

    def test_format_table(self, tiny_suite):
        rows = compare_policies_on_instance(tiny_suite["uniform"])
        text = format_comparison_table(rows, title="E7")
        assert "E7" in text and "uniform" in text


class TestSweeps:
    def test_competitive_ratio_sweep_within_bounds(self):
        instances = small_lp_instances(num_instances=1, num_packets=8, seed=4)
        rows = competitive_ratio_sweep(instances, epsilons=(1.0, 2.0), use_lp=True)
        assert len(rows) == 2
        assert all(row.within_bound for row in rows)
        assert all(row.empirical_ratio <= row.theoretical_bound for row in rows)

    def test_speedup_sweep_monotone(self):
        instances = small_lp_instances(num_instances=1, num_packets=8, seed=6)
        instance = list(instances.values())[0]
        rows = speedup_sweep(instance, speeds=(1.0, 2.0, 3.0))
        costs = [row.algorithm_cost for row in rows]
        assert costs[0] >= costs[1] >= costs[2]
        # The LP value bounds the *speed-1* optimum, so only the speed-1 run
        # is guaranteed to sit above it; faster runs may beat it.
        assert rows[0].ratio >= 1.0 - 1e-9
        assert rows[0].ratio >= rows[1].ratio >= rows[2].ratio

    def test_delay_heterogeneity_sweep_shape(self):
        policies = {"alg": OpportunisticLinkScheduler()}
        rows = delay_heterogeneity_sweep(
            policies, delay_pools=((1,), (1, 4)), num_packets=30, seed=1
        )
        assert len(rows) == 2
        pools = {row.delay_pool for row in rows}
        assert pools == {"1", "1/4"}

    def test_hybrid_sweep_offload_shrinks_with_delay(self):
        rows = hybrid_fixed_link_sweep(
            fixed_link_delays=(1, 16), num_racks=4, num_packets=60, seed=2
        )
        assert len(rows) == 2
        fast, slow = rows[0], rows[1]
        assert fast.fixed_link_fraction >= slow.fixed_link_fraction
        assert fast.fixed_link_fraction > 0.5  # delay-1 fixed links absorb most traffic

    def test_two_tier_sweep_more_lasers_never_hurt(self):
        rows = two_tier_sweep(lasers_per_rack=(1, 3), num_racks=4, num_packets=60, seed=3)
        assert len(rows) == 2
        assert rows[1].total_weighted_latency <= rows[0].total_weighted_latency


class TestReport:
    def test_rows_to_table_dataclass(self):
        @dataclasses.dataclass
        class Row:
            a: int
            b: float

        text = rows_to_table([Row(1, 2.5), Row(3, 4.5)], title="T")
        assert "T" in text and "2.5" in text

    def test_rows_to_table_empty(self):
        assert rows_to_table([], title="nothing") == "nothing"

    def test_rows_to_csv_and_write(self, tmp_path):
        @dataclasses.dataclass
        class Row:
            a: int
            b: float

        path = write_csv([Row(1, 2.0)], tmp_path / "out.csv")
        assert path.read_text().startswith("a,b")

    def test_mixed_rows_rejected(self):
        @dataclasses.dataclass
        class RowA:
            a: int

        @dataclasses.dataclass
        class RowB:
            b: int

        with pytest.raises(ExperimentError):
            rows_to_table([RowA(1), RowB(2)])

    def test_non_dataclass_rejected(self):
        with pytest.raises(ExperimentError):
            rows_to_csv([object()])

    def test_dict_rows_accepted(self):
        text = rows_to_table([{"x": 1, "y": 2}])
        assert "x" in text and "y" in text
