"""Differential testing: naive reference loop vs fast path vs run_multi.

Three independently-implemented evaluation paths must agree bit-for-bit on
every ``summary()`` number:

1. a deliberately *naive* reference simulator defined in this file — a plain
   slot-by-slot walk (no slot skipping) over a pool with **no** maintained
   priority index (every query re-sorts a flat list), keeping full per-packet
   records;
2. the production engine's fast path (priority-indexed pool, slot skipping,
   full retention);
3. ``SimulationEngine.run_multi`` evaluating all policies of a scenario over
   one shared arrival stream (both retentions).

The scenarios come from the declarative registry, so the harness exercises
the same cells CI smokes, across every stateful policy (islip pointers,
seeded random, networkx max-weight matching).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import pytest

from repro.core.packet import Chunk, EdgeAssignment, FixedLinkAssignment, Packet
from repro.scenarios import Scenario, TopologySpec, WorkloadSpec, get_scenario
from repro.simulation import EngineConfig, SimulationEngine, simulate
from repro.simulation.accumulators import compensated_total
from repro.simulation.engine import _WORK_EPSILON
from repro.utils.ordering import chunk_priority_key


# ---------------------------------------------------------------------- #
# the naive reference implementation
# ---------------------------------------------------------------------- #
class NaiveChunkPool:
    """A pending-chunk pool with no maintained indexes.

    Duck-types :class:`repro.core.queues.PendingChunkPool` but stores chunks
    in one flat list and answers every query by scanning (and re-sorting)
    it.  Horribly slow — which is the point: any divergence between this and
    the production pool's binary-search-maintained indexes is a bug in the
    fast structure, not in the test.
    """

    def __init__(self) -> None:
        self._chunks: List[Chunk] = []

    # mutation ---------------------------------------------------------- #
    def add(self, chunk: Chunk) -> None:
        assert chunk not in self._chunks
        self._chunks.append(chunk)

    def add_all(self, chunks: Iterable[Chunk]) -> None:
        for chunk in chunks:
            self.add(chunk)

    def remove(self, chunk: Chunk) -> None:
        self._chunks.remove(chunk)

    def debit_work(self, amount: float) -> None:
        pass  # total_pending_work() recomputes from scratch

    # queries ----------------------------------------------------------- #
    def __len__(self) -> int:
        return len(self._chunks)

    def __contains__(self, chunk: Chunk) -> bool:
        return chunk in self._chunks

    def __iter__(self):
        return iter(list(self._chunks))

    def is_empty(self) -> bool:
        return not self._chunks

    def total_pending_work(self) -> float:
        return sum(c.remaining_work for c in self._chunks)

    def _sorted(self, predicate) -> List[Chunk]:
        return sorted((c for c in self._chunks if predicate(c)), key=chunk_priority_key)

    def chunks_on_edge(self, transmitter: str, receiver: str) -> List[Chunk]:
        return self._sorted(lambda c: c.edge == (transmitter, receiver))

    def chunks_at_transmitter(self, transmitter: str) -> List[Chunk]:
        return self._sorted(lambda c: c.transmitter == transmitter)

    def chunks_at_receiver(self, receiver: str) -> List[Chunk]:
        return self._sorted(lambda c: c.receiver == receiver)

    def adjacent_chunks(self, transmitter: str, receiver: str) -> List[Chunk]:
        return self._sorted(
            lambda c: c.transmitter == transmitter or c.receiver == receiver
        )

    def eligible_chunks(self, now: int) -> List[Chunk]:
        return self._sorted(lambda c: c.eligible_time <= now)

    def busy_transmitters(self) -> Set[str]:
        return {c.transmitter for c in self._chunks}

    def busy_receivers(self) -> Set[str]:
        return {c.receiver for c in self._chunks}

    def total_weight(self) -> float:
        return sum(c.weight for c in self._chunks)

    def weight_at_transmitter(self, transmitter: str) -> float:
        return sum(c.weight for c in self._chunks if c.transmitter == transmitter)

    def weight_at_receiver(self, receiver: str) -> float:
        return sum(c.weight for c in self._chunks if c.receiver == receiver)


def naive_simulate(topology, policy, packets: List[Packet], speed: float = 1.0,
                   slot_limit: int = 100_000) -> Dict[str, float]:
    """Slot-by-slot reference simulation; returns a ``summary()``-shaped dict.

    Replicates the engine's cost model operation-for-operation (same float
    expressions in the same order) but shares none of its machinery: no
    arrival sources, no recorders, no slot skipping, no indexed pool.
    """
    policy.reset()
    pool = NaiveChunkPool()
    by_slot: Dict[int, List[Packet]] = {}
    for packet in packets:
        by_slot.setdefault(packet.arrival, []).append(packet)
    remaining_slots = sorted(by_slot)

    # per-packet state, in dispatch order
    latencies: List[float] = []          # accumulated weighted latency per packet
    fixed_flags: List[bool] = []
    undelivered: Dict[int, int] = {}     # packet id -> chunks still in flight
    index_of: Dict[int, int] = {}        # packet id -> dispatch index
    matching_sizes: List[int] = []

    if not packets:
        return {
            "num_packets": 0.0,
            "total_weighted_latency": 0.0,
            "mean_weighted_latency": 0.0,
            "num_slots": 0.0,
            "fixed_link_fraction": 0.0,
            "mean_matching_size": 0.0,
        }

    slot = remaining_slots[0]
    first_slot = slot
    last_slot = slot
    steps = 0
    while remaining_slots or len(pool) > 0:
        steps += 1
        assert steps <= slot_limit, "naive reference exceeded its slot limit"

        # dispatch this slot's arrivals in input order
        if remaining_slots and remaining_slots[0] == slot:
            for packet in by_slot[remaining_slots.pop(0)]:
                assignment = policy.dispatcher.dispatch(packet, topology, pool, slot)
                index_of[packet.packet_id] = len(latencies)
                if isinstance(assignment, FixedLinkAssignment):
                    latencies.append(assignment.weighted_latency)
                    fixed_flags.append(True)
                else:
                    assert isinstance(assignment, EdgeAssignment)
                    latencies.append(0.0)
                    fixed_flags.append(False)
                    undelivered[packet.packet_id] = len(assignment.chunks)
                    pool.add_all(assignment.chunks)

        # select and transmit one matching, mirroring the engine's cost model
        matching = policy.scheduler.select_matching(pool, topology, slot)
        matching_sizes.append(len(matching))
        for head in matching:
            budget = speed
            queue = [head] + [
                c
                for c in pool.chunks_on_edge(*head.edge)
                if c is not head and c.eligible_time <= slot
            ]
            for chunk in queue:
                if budget <= _WORK_EPSILON:
                    break
                amount = min(budget, chunk.remaining_work)
                if amount <= 0:
                    continue
                budget -= amount
                chunk.remaining_work -= amount
                completed = chunk.remaining_work <= _WORK_EPSILON
                if completed:
                    chunk.remaining_work = 0.0
                    chunk.delivery_time = slot + 1 + chunk.tail_delay
                    pool.remove(chunk)
                packet = chunk.packet
                fraction = amount * chunk.size
                delivery_time = slot + 1 + chunk.tail_delay
                latencies[index_of[packet.packet_id]] += (
                    fraction * packet.weight * (delivery_time - packet.arrival)
                )
                if completed:
                    undelivered[packet.packet_id] -= 1
                    if undelivered[packet.packet_id] == 0:
                        del undelivered[packet.packet_id]
        last_slot = slot
        slot += 1

    assert not undelivered, "naive reference left packets undelivered"
    n = len(latencies)
    total = compensated_total(latencies)
    return {
        "num_packets": float(n),
        "total_weighted_latency": total,
        "mean_weighted_latency": total / n,
        "num_slots": float(last_slot - first_slot + 1),
        "fixed_link_fraction": sum(fixed_flags) / n,
        "mean_matching_size": sum(matching_sizes) / len(matching_sizes),
    }


# ---------------------------------------------------------------------- #
# the differential scenarios
# ---------------------------------------------------------------------- #
def _differential_scenarios() -> List[Tuple[Scenario, int]]:
    """Registry smoke cells plus extra seeded-random shapes defined inline."""
    cells: List[Tuple[Scenario, int]] = []
    for name in ("figure1", "tiny-random", "priority-inversion-burst"):
        scenario = get_scenario(name)
        for seed in scenario.seeds:
            cells.append((scenario, seed))
    # An ad-hoc cell with every stateful policy on skewed hybrid traffic.
    cells.append((
        Scenario(
            name="diff-zipf-hybrid",
            description="differential-only: zipf on a hybrid projector fabric",
            topology=TopologySpec(
                "projector",
                {"num_racks": 4, "lasers_per_rack": 2, "photodetectors_per_rack": 2},
                fixed_link_delay=3,
            ),
            workload=WorkloadSpec(
                "zipf", {"num_packets": 40, "exponent": 1.2, "arrival_rate": 2.0},
                weights=("pareto", 1.5),
            ),
            policies=("alg", "random", "maxweight", "islip", "direct-first",
                      "impact+fifo"),
        ),
        7,
    ))
    # Heterogeneous delays: multi-chunk packets exercise fractional work.
    cells.append((
        Scenario(
            name="diff-delays",
            description="differential-only: heterogeneous edge delays, speed tested at 1.7",
            topology=TopologySpec(
                "random-bipartite",
                {"num_sources": 3, "num_destinations": 3,
                 "transmitters_per_source": 2, "receivers_per_destination": 2,
                 "edge_probability": 0.7, "delay_choices": (1, 2, 4)},
            ),
            workload=WorkloadSpec(
                "uniform", {"num_packets": 30, "arrival_rate": 1.5},
                weights=("uniform", 1, 10),
            ),
            policies=("alg", "fifo", "least-loaded+stable", "impact+fifo"),
            speed=1.7,
        ),
        11,
    ))
    # Head-of-line delays: chunks enter the pool before they are eligible,
    # exercising the activation buckets and the jump-to-next-activation slot
    # skipping against the naive slot-by-slot walk.
    cells.append((
        Scenario(
            name="diff-head-delays",
            description="differential-only: head/tail delays delay chunk eligibility",
            topology=TopologySpec(
                "projector",
                {"num_racks": 4, "lasers_per_rack": 2, "photodetectors_per_rack": 2,
                 "head_delay": 2, "tail_delay": 1},
                fixed_link_delay=9,
            ),
            workload=WorkloadSpec(
                "uniform", {"num_packets": 30, "arrival_rate": 0.8},
                weights=("uniform", 1, 8),
            ),
            policies=("alg", "fifo", "islip", "impact+fifo"),
            speed=1.3,
        ),
        5,
    ))
    return cells


_CELLS = _differential_scenarios()
_CELL_IDS = [f"{scenario.name}-s{seed}" for scenario, seed in _CELLS]


@pytest.mark.parametrize("scenario,seed", _CELLS, ids=_CELL_IDS)
def test_naive_vs_fast_vs_run_multi(scenario: Scenario, seed: int) -> None:
    """All evaluation paths agree bit-for-bit on every summary number.

    The naive loop (which uses the reference adjacency scan by construction —
    its pool maintains no impact index) anchors the comparison; the
    production paths are exercised under the ``indexed``, ``reference`` and
    ``vectorized`` backends, and ``run_multi`` additionally under
    shared-dispatch lanes with the cross-lane invariant check enabled and
    under the PR 3 per-lane dispatch (sharing off).  Several cells pair
    ``alg`` with ``impact+fifo`` — two policies sharing the impact rule — so
    the memo genuinely activates, including at speed 1.7 (``diff-delays``).
    """
    topology, stream, policies = scenario.materialise(seed)
    packets = list(stream)

    # Path 1: the naive reference loop (fresh policy state per run).
    naive = {
        name: naive_simulate(topology, policy, packets, speed=scenario.speed)
        for name, policy in policies.items()
    }

    for engine_mode in ("indexed", "reference", "vectorized"):
        # Path 2: the production fast path, one policy at a time.
        fast = {
            name: simulate(
                topology, policy, packets, speed=scenario.speed, engine=engine_mode
            ).summary()
            for name, policy in policies.items()
        }

        # Path 3: shared-stream multi-policy passes — shared-dispatch lanes
        # with hit validation, the PR 3 per-lane dispatch, and aggregate
        # retention with sharing.
        multi_variants: Dict[str, Dict[str, Dict[str, float]]] = {}
        for label, config in {
            "run_multi(shared dispatch, validated)": EngineConfig(
                speed=scenario.speed, engine=engine_mode,
                validate_shared_dispatch=True,
            ),
            "run_multi(per-lane dispatch)": EngineConfig(
                speed=scenario.speed, engine=engine_mode, share_dispatch=False
            ),
            "run_multi(aggregate, shared dispatch)": EngineConfig(
                speed=scenario.speed, engine=engine_mode, retention="aggregate"
            ),
        }.items():
            engine = SimulationEngine(topology, config=config)
            multi_variants[label] = {
                name: result.summary()
                for name, result in engine.run_multi(iter(packets), policies).items()
            }

        for name in policies:
            assert naive[name] == fast[name], (
                f"{scenario.name}/{name} [{engine_mode}]: naive reference vs "
                f"fast path diverged\nnaive: {naive[name]}\nfast:  {fast[name]}"
            )
            for label, multi in multi_variants.items():
                assert fast[name] == multi[name], (
                    f"{scenario.name}/{name} [{engine_mode}]: fast path vs "
                    f"{label} diverged"
                )


@pytest.mark.parametrize("scenario,seed", _CELLS, ids=_CELL_IDS)
def test_engine_modes_trace_bit_identical(
    scenario: Scenario, seed: int, monkeypatch
) -> None:
    """All engine backends agree slot-by-slot, not just in summary.

    Every policy of every differential cell is replayed under every engine
    mode with full tracing; the per-slot traces must be equal
    object-for-object.  In particular each slot's ``matching`` lists edges in
    the scheduler's selection order and each transmission names its chunk by
    ``(packet_id, chunk_index)``, so this pins the incremental
    matching-repair path to the reference greedy pass chunk-for-chunk *and*
    order-for-order.  The vectorized backend is traced twice — once at the
    default crossover and once forced onto the numpy batch path — because
    the two paths emit their transmission events from different code.
    """
    from repro.simulation import vector_backend

    topology, stream, policies = scenario.materialise(seed)
    packets = list(stream)
    for name, policy in policies.items():
        traces = {}
        for engine_mode in ("indexed", "reference", "vectorized",
                            "vectorized-batch"):
            if engine_mode == "vectorized-batch":
                monkeypatch.setattr(vector_backend, "_VECTOR_MIN_BATCH", 0)
            result = simulate(
                topology, policy, packets, speed=scenario.speed,
                record_trace=True,
                engine=engine_mode.removesuffix("-batch"),
            )
            if engine_mode == "vectorized-batch":
                monkeypatch.undo()
            traces[engine_mode] = result.trace.slots
        for engine_mode in ("reference", "vectorized", "vectorized-batch"):
            assert traces["indexed"] == traces[engine_mode], (
                f"{scenario.name}/{name}: per-slot traces diverged between "
                f"the indexed and {engine_mode} engines"
            )


@pytest.mark.parametrize("min_batch", [0, 1 << 30], ids=["always-numpy", "always-scalar"])
@pytest.mark.parametrize("scenario,seed", _CELLS, ids=_CELL_IDS)
def test_vector_backend_both_paths_bit_identical(
    scenario: Scenario, seed: int, min_batch: int, monkeypatch
) -> None:
    """Both sides of the vectorized backend's scalar/numpy crossover agree.

    The backend routes matchings below ``_VECTOR_MIN_BATCH`` through a
    scalar loop and larger ones through the numpy batch; forcing the
    crossover to each extreme replays every differential cell entirely on
    one path, so neither can hide behind the other, and both must stay
    bit-identical to the indexed engine.
    """
    from repro.simulation import vector_backend

    monkeypatch.setattr(vector_backend, "_VECTOR_MIN_BATCH", min_batch)
    topology, stream, policies = scenario.materialise(seed)
    packets = list(stream)
    for name, policy in policies.items():
        expected = simulate(
            topology, policy, packets, speed=scenario.speed, engine="indexed"
        ).summary()
        actual = simulate(
            topology, policy, packets, speed=scenario.speed, engine="vectorized"
        ).summary()
        assert actual == expected, (
            f"{scenario.name}/{name} (min_batch={min_batch}): vectorized "
            f"backend diverged from the indexed engine\n"
            f"indexed:    {expected}\nvectorized: {actual}"
        )


def test_vector_backend_grows_capacity() -> None:
    """Row registration survives capacity doubling with state intact."""
    from repro.simulation.vector_backend import VectorTransmitBackend

    backend = VectorTransmitBackend(capacity=16)
    packets = [
        Packet(i, "a", "b", weight=1.0 + i, arrival=i + 1) for i in range(10)
    ]
    chunks = [
        Chunk(
            packet=p,
            index=j,
            size=0.25,
            weight=p.weight * 0.25,
            transmitter="a",
            receiver="b",
            eligible_time=p.arrival,
            tail_delay=1,
        )
        for p in packets
        for j in range(1, 5)
    ]
    backend.add_chunks(chunks)
    assert len(backend) == len(chunks)  # 40 rows through two doublings
    for chunk in chunks:
        row = backend._row_of[chunk]
        assert backend._chunks[row] is chunk
        assert backend._remaining[row] == chunk.remaining_work
        assert backend._size[row] == chunk.size
        assert backend._pweight[row] == chunk.packet.weight
        assert backend._arrival[row] == chunk.packet.arrival
        assert backend._tail[row] == chunk.tail_delay


def test_naive_pool_is_really_naive() -> None:
    """Guard: the reference pool must not share the production pool's code."""
    from repro.core.queues import PendingChunkPool

    assert not issubclass(NaiveChunkPool, PendingChunkPool)
    assert not hasattr(NaiveChunkPool, "_by_edge")


@pytest.mark.parametrize("scenario,seed", _CELLS, ids=_CELL_IDS)
def test_observability_never_perturbs_results(
    scenario: Scenario, seed: int, tmp_path
) -> None:
    """Instrumented runs are bit-identical to plain runs, per slot.

    Every differential cell is replayed under every engine backend twice —
    once plain, once with a live metrics registry, phase-span sampling
    (stride 2, so both the sampled and unsampled slot paths execute) and a
    metrics-snapshot file.  Summaries AND full slot traces must be equal:
    the observability layer only records, it never participates in the
    arithmetic or the ordering.
    """
    from repro.obs import MetricsRegistry

    topology, stream, policies = scenario.materialise(seed)
    packets = list(stream)
    for name, policy in policies.items():
        for engine_mode in ("indexed", "reference", "vectorized"):
            plain = simulate(
                topology, policy, packets, speed=scenario.speed,
                engine=engine_mode, record_trace=True,
            )
            registry = MetricsRegistry()
            observed = simulate(
                topology, policy, packets, speed=scenario.speed,
                engine=engine_mode, record_trace=True,
                obs=registry, span_stride=2,
                metrics_path=str(tmp_path / f"{name}-{engine_mode}.jsonl"),
            )
            assert observed.summary() == plain.summary(), (
                f"{scenario.name}/{name} [{engine_mode}]: observability "
                f"changed the summary"
            )
            assert observed.trace.slots == plain.trace.slots, (
                f"{scenario.name}/{name} [{engine_mode}]: observability "
                f"changed the slot trace"
            )
            counters = registry.snapshot()["counters"]
            arrived = [
                value for key, value in counters.items()
                if key.startswith("engine_packets_arrived{")
            ]
            assert arrived == [len(packets)]


# ---------------------------------------------------------------------- #
# fault injection: every engine backend must degrade identically
# ---------------------------------------------------------------------- #
# Only hybrid cells (uniform fixed links) are fault-safe under *arbitrary*
# schedules: even if every reconfigurable edge of a pair goes dark, the
# dispatcher still has a fixed-link route, so no schedule can make a packet
# unroutable.
_FAULT_CELLS = [
    (scenario, seed)
    for scenario, seed in _CELLS
    if scenario.topology.fixed_link_delay is not None
]
_FAULT_CELL_IDS = [f"{scenario.name}-s{seed}" for scenario, seed in _FAULT_CELLS]


def _fault_schedule_for(topology, seed: int):
    """A deterministic generated schedule plus handcrafted degrade events."""
    from repro.faults import FaultEvent, FaultSchedule, seeded_fault_schedule

    generated = seeded_fault_schedule(
        topology, seed=seed * 31 + 7, num_faults=4, horizon=48
    )
    # Always exercise the degraded-rate transmission path too: degrade the
    # first two reconfigurable edges for a window mid-run.
    edges = sorted(topology.reconfigurable_edges)[:2]
    extra = []
    for offset, edge in enumerate(edges):
        extra.append(FaultEvent(slot=2 + offset, action="degrade",
                                kind="edge", target=edge, rate=0.5))
        extra.append(FaultEvent(slot=20 + offset, action="recover",
                                kind="edge", target=edge))
    return FaultSchedule.from_events(list(generated.events) + extra)


@pytest.mark.parametrize("on_fail", ("requeue", "drop", "redispatch"))
@pytest.mark.parametrize("scenario,seed", _FAULT_CELLS, ids=_FAULT_CELL_IDS)
def test_engines_bit_identical_under_faults(
    scenario: Scenario, seed: int, on_fail: str
) -> None:
    """Fault schedules degrade every backend identically, slot for slot.

    Each fault-safe differential cell is replayed under a schedule mixing
    generated fail/recover events with handcrafted degraded-rate windows,
    for every stranded-chunk policy.  The indexed, reference and vectorized
    engines — and both retentions — must agree on every summary number, and
    the full-retention runs must also produce bit-identical slot traces.
    """
    topology, stream, policies = scenario.materialise(seed)
    packets = list(stream)
    faults = _fault_schedule_for(topology, seed)
    for name, policy in policies.items():
        summaries: Dict[str, Dict[str, float]] = {}
        traces: Dict[str, list] = {}
        for engine_mode in ("indexed", "reference", "vectorized"):
            for retention in ("full", "aggregate"):
                result = simulate(
                    topology, policy, packets, speed=scenario.speed,
                    engine=engine_mode, retention=retention,
                    record_trace=(retention == "full"),
                    faults=faults, on_fail=on_fail,
                )
                summaries[f"{engine_mode}/{retention}"] = result.summary()
                if retention == "full":
                    traces[engine_mode] = result.trace.slots
        baseline = summaries["indexed/full"]
        for label, summary in summaries.items():
            assert summary == baseline, (
                f"{scenario.name}/{name} [{label}, on_fail={on_fail}]: "
                f"summary diverged under faults\nindexed/full: {baseline}\n"
                f"{label}: {summary}"
            )
        for engine_mode in ("reference", "vectorized"):
            assert traces[engine_mode] == traces["indexed"], (
                f"{scenario.name}/{name} [{engine_mode}, on_fail={on_fail}]: "
                f"slot traces diverged under faults"
            )


@pytest.mark.parametrize("scenario,seed", _FAULT_CELLS, ids=_FAULT_CELL_IDS)
def test_run_multi_matches_simulate_under_faults(
    scenario: Scenario, seed: int
) -> None:
    """Shared-dispatch lanes stay sound when the fabric degrades.

    The shared-dispatch memo assumes every lane sees the same fault state at
    every slot; validation mode re-dispatches each memo hit against the
    lane's own (fault-masked) topology view and raises on any divergence.
    """
    from repro.simulation import simulate_multi

    topology, stream, policies = scenario.materialise(seed)
    packets = list(stream)
    faults = _fault_schedule_for(topology, seed)
    solo = {
        name: simulate(
            topology, policy, packets, speed=scenario.speed,
            faults=faults, on_fail="requeue",
        ).summary()
        for name, policy in policies.items()
    }
    for engine_mode in ("indexed", "reference", "vectorized"):
        engine = SimulationEngine(
            topology,
            config=EngineConfig(
                speed=scenario.speed, engine=engine_mode,
                faults=faults, on_fail="requeue",
                validate_shared_dispatch=True,
            ),
        )
        multi = engine.run_multi(iter(packets), policies)
        for name in policies:
            assert multi[name].summary() == solo[name], (
                f"{scenario.name}/{name} [{engine_mode}]: run_multi diverged "
                f"from simulate under faults"
            )
