"""Crash-robust I/O tests: atomic finalisation and torn-line tolerance.

These tests pin the two invariants every artifact writer in the repository
now honours:

* *documents* (runner JSON, bench histories, hall-of-fame files) are staged
  in a temp file and ``os.replace``d into place, so readers never observe a
  truncated document — even if the writer is SIGKILLed mid-write;
* *streams* (metrics, heartbeats, slot traces, checkpoints) are flushed per
  record, so a crash loses at most the final, possibly torn, line — and the
  readers tolerate exactly that tear and nothing else.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.baselines.policies import all_policies
from repro.bench import load_history, save_history
from repro.core.packet import Packet
from repro.exceptions import ExperimentError, ObservabilityError
from repro.experiments.runner import read_json, write_json, write_jsonl
from repro.network.builders import projector_fabric
from repro.obs import MetricsWriter, read_metric_records
from repro.simulation import simulate
from repro.simulation.trace import SlotTraceWriter, iter_slot_traces
from repro.utils.atomic import atomic_write_text, atomic_writer
from repro.utils.jsonl import iter_json_lines


def _no_temp_files(directory: Path) -> bool:
    return not [p for p in directory.iterdir() if p.name.endswith(".tmp")]


# ---------------------------------------------------------------------- #
# atomic_writer primitive
# ---------------------------------------------------------------------- #
class TestAtomicWriter:
    def test_success_replaces_target(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old", encoding="utf-8")
        with atomic_writer(target) as handle:
            handle.write("new")
            # the target still holds the old content until the writer exits
            assert target.read_text(encoding="utf-8") == "old"
        assert target.read_text(encoding="utf-8") == "new"
        assert _no_temp_files(tmp_path)

    def test_exception_preserves_old_content(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old", encoding="utf-8")
        with pytest.raises(RuntimeError):
            with atomic_writer(target) as handle:
                handle.write("half a docum")
                raise RuntimeError("writer died")
        assert target.read_text(encoding="utf-8") == "old"
        assert _no_temp_files(tmp_path)

    def test_exception_leaves_no_file_when_target_was_absent(self, tmp_path):
        target = tmp_path / "out.json"
        with pytest.raises(RuntimeError):
            with atomic_writer(target) as handle:
                handle.write("partial")
                raise RuntimeError("writer died")
        assert not target.exists()
        assert _no_temp_files(tmp_path)

    def test_atomic_write_text(self, tmp_path):
        target = tmp_path / "note.txt"
        assert atomic_write_text(target, "hello\n") == target
        assert target.read_text(encoding="utf-8") == "hello\n"
        assert _no_temp_files(tmp_path)

    def test_missing_parent_directories_are_created(self, tmp_path):
        target = tmp_path / "fresh" / "nested" / "history.json"
        with atomic_writer(target) as handle:
            handle.write("{}")
        assert target.read_text(encoding="utf-8") == "{}"
        assert _no_temp_files(target.parent)


_KILL_CHILD = """
import sys
from repro.experiments.runner import write_json

path = sys.argv[1]
rows = [{"i": i, "pad": "x" * 200} for i in range(20000)]
while True:
    write_json(rows, path)
    print("wrote", flush=True)
"""


class TestKillMidWrite:
    def test_sigkilled_writer_never_leaves_a_torn_document(self, tmp_path):
        """Regression for the pre-PR-10 truncation bug.

        A child process rewrites a large JSON document in a tight loop and is
        SIGKILLed without warning.  Whatever instant the kill lands at, the
        document on disk must parse — it is either the previous complete
        version or the next complete version, never a torn hybrid.
        """
        target = tmp_path / "rows.json"
        write_json([{"i": -1}], target)  # known-good previous version
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        child = subprocess.Popen(
            [sys.executable, "-c", _KILL_CHILD, str(target)],
            env=env,
            stdout=subprocess.PIPE,
        )
        try:
            child.stdout.readline()  # at least one full rewrite happened
            time.sleep(0.05)  # land the kill mid-loop, likely mid-write
            child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()
        rows = read_json(target)  # must parse: atomicity is the invariant
        assert rows == [{"i": -1}] or len(rows) == 20000


# ---------------------------------------------------------------------- #
# flushed streams stay readable mid-run
# ---------------------------------------------------------------------- #
class TestStreamFlushing:
    def _trace_slots(self):
        topology = projector_fabric(2)
        sources = sorted(topology.sources)
        destinations = sorted(topology.destinations)
        packets = [
            Packet(i, sources[i % len(sources)],
                   destinations[(i + 1) % len(destinations)],
                   weight=1.0, arrival=1 + i)
            for i in range(4)
        ]
        result = simulate(topology, all_policies(seed=0)["fifo"], packets,
                          record_trace=True)
        return result.trace.slots

    def test_slot_trace_writer_flushes_every_slot(self, tmp_path):
        slots = self._trace_slots()
        assert len(slots) >= 2
        path = tmp_path / "trace.jsonl"
        writer = SlotTraceWriter(path)
        try:
            for slot in slots[:2]:
                writer.write(slot)
            # the writer is still open — a concurrent reader (or a post-crash
            # inspection) already sees both completed slots
            recovered = list(iter_slot_traces(path))
            assert [s.slot for s in recovered] == [s.slot for s in slots[:2]]
            assert [s.to_dict() for s in recovered] == [
                s.to_dict() for s in slots[:2]
            ]
        finally:
            writer.close()

    def test_metrics_writer_flushes_before_exception(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with pytest.raises(RuntimeError):
            with MetricsWriter(path) as writer:
                writer.write({"record": "heartbeat", "n": 1})
                writer.write({"record": "heartbeat", "n": 2})
                raise RuntimeError("run crashed")
        assert [r["n"] for r in read_metric_records(path)] == [1, 2]

    def test_metrics_reader_tolerates_torn_final_line(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with MetricsWriter(path) as writer:
            writer.write({"n": 1})
            writer.write({"n": 2})
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"n": 3, "tr')  # the tear a SIGKILL leaves behind
        assert [r["n"] for r in read_metric_records(path)] == [1, 2]

    def test_metrics_reader_rejects_mid_file_corruption(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        path.write_text('{"n": 1}\n{broken\n{"n": 3}\n', encoding="utf-8")
        with pytest.raises(ObservabilityError, match=r"jsonl:2"):
            read_metric_records(path)


class TestTornTailPolicy:
    def test_tail_tear_is_dropped_only_when_truly_final(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text('{"n": 1}\n{"n": 2, "tr', encoding="utf-8")
        rows = [row for _n, row in
                iter_json_lines(path, ExperimentError, tolerate_torn_tail=True)]
        assert rows == [{"n": 1}]

    def test_tear_followed_by_data_still_raises(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text('{"n": 1}\n{torn\n{"n": 3}\n', encoding="utf-8")
        with pytest.raises(ExperimentError, match=r"jsonl:2"):
            list(iter_json_lines(path, ExperimentError, tolerate_torn_tail=True))

    def test_trailing_blank_lines_do_not_mask_a_tear(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text('{"n": 1}\n{torn\n\n  \n', encoding="utf-8")
        rows = [row for _n, row in
                iter_json_lines(path, ExperimentError, tolerate_torn_tail=True)]
        assert rows == [{"n": 1}]

    def test_default_mode_still_rejects_final_tears(self, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text('{"n": 1}\n{"n": 2, "tr', encoding="utf-8")
        with pytest.raises(ExperimentError, match=r"jsonl:2"):
            list(iter_json_lines(path, ExperimentError))


# ---------------------------------------------------------------------- #
# atomic document writers built on the primitive
# ---------------------------------------------------------------------- #
class TestAtomicDocuments:
    def test_write_jsonl_is_atomic(self, tmp_path):
        target = tmp_path / "rows.jsonl"
        write_jsonl([{"a": 1}], target)

        def rows_then_crash():
            yield {"a": 2}
            raise RuntimeError("producer died")

        with pytest.raises(RuntimeError):
            write_jsonl(rows_then_crash(), target)
        # the failed rewrite left the previous version untouched
        assert json.loads(target.read_text()) == {"a": 1}
        assert _no_temp_files(tmp_path)

    def test_bench_history_survives_interrupted_rewrite(self, tmp_path):
        target = tmp_path / "BENCH_demo.json"
        save_history(target, [{"slots_per_s": 100.0}], tag="demo")
        before = target.read_text(encoding="utf-8")
        with pytest.raises(RuntimeError):
            with atomic_writer(target) as handle:
                handle.write('{"benchmark": "demo", "history": [')
                raise RuntimeError("interrupted")
        assert target.read_text(encoding="utf-8") == before
        assert load_history(target) == [{"slots_per_s": 100.0}]
        assert _no_temp_files(tmp_path)
