"""Tests for repro.analysis.dual_fitting and competitive (Lemmas 1–5, Theorem 1)."""

from __future__ import annotations

import pytest

from repro.analysis import (
    attach_decision_log,
    check_dual_feasibility,
    check_lemma1,
    check_lemma2,
    check_lemma4,
    dual_lower_bound,
    evaluate_competitive_ratio,
    solve_lp_lower_bound,
    verify_certificate,
)
from repro.core import OpportunisticLinkScheduler, theoretical_competitive_ratio
from repro.exceptions import AnalysisError
from repro.simulation import simulate
from repro.workloads import figure1_instance, figure2_instances, uniform_random_workload
from repro.workloads.weights import uniform_weights
from repro.network import projector_fabric, random_bipartite
from repro.workloads import Instance


def run_traced_alg(instance):
    policy = OpportunisticLinkScheduler(record_decisions=True)
    result = simulate(instance.topology, policy, instance.packets, record_trace=True)
    attach_decision_log(result, policy.impact_dispatcher)
    return result


@pytest.fixture(scope="module")
def random_instances():
    instances = []
    for seed in range(3):
        topo = random_bipartite(
            3, 3, transmitters_per_source=2, receivers_per_destination=2,
            edge_probability=0.6, delay_choices=(1, 2), seed=seed,
        )
        packets = uniform_random_workload(
            topo, 25, arrival_rate=2.0, weight_sampler=uniform_weights(1, 10), seed=seed + 100
        )
        instances.append(Instance(name=f"rand{seed}", topology=topo, packets=packets))
    return instances


class TestLemmaChecks:
    def test_lemma1_on_figure1(self, fig1_instance):
        result = run_traced_alg(fig1_instance)
        report = check_lemma1(result)
        assert report.holds
        assert report.algorithm_cost == pytest.approx(7.0)

    def test_lemma1_on_random_instances(self, random_instances):
        for instance in random_instances:
            assert check_lemma1(run_traced_alg(instance)).holds

    def test_lemma2_on_figure2(self):
        for instance in figure2_instances().values():
            report = check_lemma2(run_traced_alg(instance))
            assert report.holds

    def test_lemma2_on_random_instances(self, random_instances):
        for instance in random_instances:
            report = check_lemma2(run_traced_alg(instance))
            assert report.holds
            assert report.total_charges == pytest.approx(report.algorithm_cost)

    def test_lemma4_no_violations(self, random_instances):
        for instance in random_instances:
            result = run_traced_alg(instance)
            assert check_lemma4(result, instance.topology) == []

    def test_lemma4_requires_decision_log(self, fig1_instance):
        result = simulate(
            fig1_instance.topology, OpportunisticLinkScheduler(), fig1_instance.packets
        )
        with pytest.raises(AnalysisError):
            check_lemma4(result, fig1_instance.topology)

    def test_halved_dual_feasible(self, random_instances):
        for instance in random_instances:
            result = run_traced_alg(instance)
            assert check_dual_feasibility(result, instance.topology, scale=0.5) == []

    def test_unhalved_dual_may_violate_but_within_factor_two(self, random_instances):
        # The raw dual assignment can violate constraints (that is why Lemma 5
        # halves it), but never by more than a factor 2 on the right-hand side
        # (Lemma 4).  We only assert that halving always repairs it.
        found_violation = False
        for instance in random_instances:
            result = run_traced_alg(instance)
            violations = check_dual_feasibility(result, instance.topology, scale=1.0)
            found_violation = found_violation or bool(violations)
            assert check_dual_feasibility(result, instance.topology, scale=0.5) == []
        # At least the machinery distinguishes the two scales on some instance.
        assert isinstance(found_violation, bool)


class TestCertificate:
    def test_certificate_valid_on_figure1(self, fig1_instance):
        result = run_traced_alg(fig1_instance)
        cert = verify_certificate(
            result, fig1_instance.topology, epsilon=1.0, check_lemma4_constraints=True
        )
        assert cert.valid
        assert cert.algorithm_cost == pytest.approx(7.0)
        assert cert.theorem1_ratio_bound == pytest.approx(6.0)

    def test_certificate_valid_on_random_instances(self, random_instances):
        for instance in random_instances:
            result = run_traced_alg(instance)
            for epsilon in (0.5, 1.0, 2.0):
                cert = verify_certificate(result, instance.topology, epsilon=epsilon)
                assert cert.valid, (instance.name, epsilon)
                assert cert.algorithm_cost <= cert.lemma3_bound + 1e-6

    def test_certificate_rejects_bad_epsilon(self, fig1_instance):
        result = run_traced_alg(fig1_instance)
        with pytest.raises(AnalysisError):
            verify_certificate(result, fig1_instance.topology, epsilon=0.0)

    def test_feasible_dual_is_lower_bound_on_lp(self, random_instances):
        # Lemma 5 numerically: the halved dual value never exceeds the LP
        # optimum with capacity 1/(2+eps).
        instance = random_instances[0]
        result = run_traced_alg(instance)
        for epsilon in (1.0, 2.0):
            dual_value = dual_lower_bound(result, epsilon)
            lp_value = solve_lp_lower_bound(
                instance, capacity=1.0 / (2.0 + epsilon)
            ).objective_value
            assert dual_value <= lp_value + 1e-6


class TestCompetitiveRatio:
    def test_theorem1_bound_respected_on_figure1(self, fig1_instance):
        for epsilon in (0.5, 1.0, 2.0):
            report = evaluate_competitive_ratio(fig1_instance, epsilon, use_lp=True)
            assert report.within_bound
            assert report.empirical_ratio <= report.theoretical_bound

    def test_theorem1_bound_respected_on_random_instance(self, random_instances):
        instance = random_instances[1]
        report = evaluate_competitive_ratio(instance, epsilon=1.0, use_lp=True)
        assert report.within_bound
        assert report.theoretical_bound == pytest.approx(theoretical_competitive_ratio(1.0))

    def test_dual_only_mode(self, random_instances):
        instance = random_instances[2]
        report = evaluate_competitive_ratio(instance, epsilon=1.0, use_lp=False)
        assert report.lp_lower_bound is None
        assert report.best_lower_bound == report.dual_lower_bound
        assert report.within_bound

    def test_invalid_epsilon(self, fig1_instance):
        with pytest.raises(AnalysisError):
            evaluate_competitive_ratio(fig1_instance, epsilon=-1.0)

    def test_lower_bound_positive(self, fig1_instance):
        report = evaluate_competitive_ratio(fig1_instance, epsilon=1.0, use_lp=False)
        assert report.dual_lower_bound > 0
