"""Tests for repro.core.packet."""

from __future__ import annotations

import pytest

from repro.core.packet import (
    EdgeAssignment,
    FixedLinkAssignment,
    Packet,
    split_into_chunks,
)
from repro.exceptions import DispatchError


class TestPacket:
    def test_valid_packet(self):
        p = Packet(0, "s", "d", weight=2.5, arrival=3)
        assert p.size == 1.0
        assert p.weight == 2.5

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            Packet(-1, "s", "d", weight=1.0, arrival=1)

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            Packet(0, "s", "d", weight=0.0, arrival=1)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Packet(0, "s", "d", weight=-2.0, arrival=1)

    def test_arrival_below_one_rejected(self):
        with pytest.raises(ValueError):
            Packet(0, "s", "d", weight=1.0, arrival=0)

    def test_packet_is_frozen(self):
        p = Packet(0, "s", "d", weight=1.0, arrival=1)
        with pytest.raises(AttributeError):
            p.weight = 2.0  # type: ignore[misc]

    def test_repr_contains_route(self):
        assert "s->d" in repr(Packet(0, "s", "d", weight=1.0, arrival=1))


class TestChunking:
    def test_split_counts_and_sizes(self):
        p = Packet(0, "s", "d", weight=6.0, arrival=2)
        chunks = split_into_chunks(p, "t", "r", edge_delay=3)
        assert len(chunks) == 3
        assert all(c.size == pytest.approx(1 / 3) for c in chunks)
        assert all(c.weight == pytest.approx(2.0) for c in chunks)

    def test_chunk_weights_sum_to_packet_weight(self):
        p = Packet(0, "s", "d", weight=5.0, arrival=1)
        chunks = split_into_chunks(p, "t", "r", edge_delay=4)
        assert sum(c.weight for c in chunks) == pytest.approx(5.0)

    def test_eligible_time_includes_head_delay(self):
        p = Packet(0, "s", "d", weight=1.0, arrival=2)
        chunks = split_into_chunks(p, "t", "r", edge_delay=1, head_delay=3)
        assert chunks[0].eligible_time == 5

    def test_tail_delay_stored(self):
        p = Packet(0, "s", "d", weight=1.0, arrival=1)
        chunks = split_into_chunks(p, "t", "r", edge_delay=1, tail_delay=2)
        assert chunks[0].tail_delay == 2

    def test_invalid_edge_delay(self):
        p = Packet(0, "s", "d", weight=1.0, arrival=1)
        with pytest.raises(DispatchError):
            split_into_chunks(p, "t", "r", edge_delay=0)

    def test_chunk_indices_are_one_based(self):
        p = Packet(0, "s", "d", weight=1.0, arrival=1)
        chunks = split_into_chunks(p, "t", "r", edge_delay=2)
        assert [c.index for c in chunks] == [1, 2]

    def test_chunk_state_transitions(self):
        p = Packet(0, "s", "d", weight=1.0, arrival=1)
        chunk = split_into_chunks(p, "t", "r", edge_delay=1)[0]
        assert chunk.pending and not chunk.delivered
        chunk.remaining_work = 0.0
        chunk.delivery_time = 2.0
        assert not chunk.pending and chunk.delivered
        assert chunk.latency() == pytest.approx(1.0)

    def test_latency_before_delivery_raises(self):
        p = Packet(0, "s", "d", weight=1.0, arrival=1)
        chunk = split_into_chunks(p, "t", "r", edge_delay=1)[0]
        with pytest.raises(DispatchError):
            chunk.latency()

    def test_chunk_edge_property(self):
        p = Packet(0, "s", "d", weight=1.0, arrival=1)
        chunk = split_into_chunks(p, "tx", "rx", edge_delay=1)[0]
        assert chunk.edge == ("tx", "rx")


class TestAssignments:
    def test_fixed_link_assignment_properties(self):
        p = Packet(0, "s", "d", weight=3.0, arrival=2)
        a = FixedLinkAssignment(packet=p, link_delay=4, impact=12.0)
        assert a.uses_fixed_link
        assert a.completion_time == 6
        assert a.weighted_latency == pytest.approx(12.0)

    def test_edge_assignment_properties(self):
        p = Packet(0, "s", "d", weight=3.0, arrival=2)
        chunks = split_into_chunks(p, "t", "r", edge_delay=2)
        a = EdgeAssignment(
            packet=p, transmitter="t", receiver="r", edge_delay=2, impact=5.0, chunks=chunks
        )
        assert not a.uses_fixed_link
        assert a.edge == ("t", "r")
        assert len(a.chunks) == 2
