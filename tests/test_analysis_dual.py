"""Tests for repro.analysis.dual and repro.analysis.charging."""

from __future__ import annotations

import pytest

from repro.analysis import build_dual_solution, compute_charges
from repro.baselines import make_fifo_policy
from repro.core import OpportunisticLinkScheduler, Packet
from repro.exceptions import AnalysisError
from repro.simulation import simulate
from repro.workloads import (
    figure1_instance,
    figure2_instances,
    figure2_reported_impacts,
    uniform_random_workload,
)


def run_alg(instance, record_trace=False, speed=1.0):
    return simulate(
        instance.topology,
        OpportunisticLinkScheduler(),
        instance.packets,
        record_trace=record_trace,
        speed=speed,
    )


class TestDualSolution:
    def test_alpha_matches_records(self, fig1_instance):
        result = run_alg(fig1_instance)
        dual = build_dual_solution(result)
        assert dual.alphas == {pid: result.record(pid).alpha for pid in result.records}

    def test_beta_totals_equal_reconfigurable_latency(self, fig1_instance):
        result = run_alg(fig1_instance)
        dual = build_dual_solution(result)
        reconf = sum(r.weighted_latency for r in result if not r.used_fixed_link)
        assert dual.total_beta_transmitter == pytest.approx(reconf)
        assert dual.total_beta_receiver == pytest.approx(reconf)

    def test_beta_lookup_zero_outside_active_interval(self, fig1_instance):
        result = run_alg(fig1_instance)
        dual = build_dual_solution(result)
        assert dual.beta_t("t1", 999) == 0.0
        assert dual.beta_r("no-such-node", 1) == 0.0

    def test_beta_positive_while_packet_waits(self, line_topology):
        packets = [Packet(0, "s", "d", 1.0, 1), Packet(1, "s", "d", 1.0, 1)]
        result = simulate(line_topology, OpportunisticLinkScheduler(), packets)
        dual = build_dual_solution(result)
        # Both chunks are active at slot 1, only the later one at slot 2.
        assert dual.beta_t("t", 1) == pytest.approx(2.0)
        assert dual.beta_t("t", 2) == pytest.approx(1.0)

    def test_objective_positive_and_halved(self, small_instance):
        result = run_alg(small_instance)
        dual = build_dual_solution(result)
        full = dual.objective(epsilon=1.0)
        half = dual.feasible_lower_bound(epsilon=1.0)
        assert full > 0
        assert half == pytest.approx(full / 2)

    def test_objective_requires_positive_epsilon(self, fig1_instance):
        dual = build_dual_solution(run_alg(fig1_instance))
        with pytest.raises(AnalysisError):
            dual.objective(0.0)

    def test_objective_decreasing_in_beta_coefficient(self, small_instance):
        dual = build_dual_solution(run_alg(small_instance))
        assert dual.objective(epsilon=0.5) <= dual.objective(epsilon=4.0) + 1e-9


class TestChargingScheme:
    @pytest.mark.parametrize("key", ["pi", "pi_prime"])
    def test_figure2_impacts_reproduced(self, key):
        instance = figure2_instances()[key]
        result = run_alg(instance, record_trace=True)
        charges = compute_charges(result)
        expected = figure2_reported_impacts()[key]
        for pid, value in expected.items():
            assert charges.charge(pid) == pytest.approx(value), (key, pid)

    def test_total_charges_equal_algorithm_cost(self, fig1_instance):
        result = run_alg(fig1_instance, record_trace=True)
        charges = compute_charges(result)
        assert charges.total == pytest.approx(result.total_weighted_latency)

    def test_total_charges_equal_cost_on_random_instance(self, small_instance):
        result = run_alg(small_instance, record_trace=True)
        charges = compute_charges(result)
        assert charges.total == pytest.approx(result.total_weighted_latency)

    def test_per_packet_charge_at_most_alpha(self, small_instance):
        result = run_alg(small_instance, record_trace=True)
        charges = compute_charges(result)
        for pid, record in result.records.items():
            assert charges.charge(pid) <= record.alpha + 1e-6

    def test_requires_trace(self, fig1_instance):
        result = run_alg(fig1_instance, record_trace=False)
        with pytest.raises(AnalysisError):
            compute_charges(result)

    def test_requires_speed_one(self, fig1_instance):
        result = run_alg(fig1_instance, record_trace=True, speed=2.0)
        with pytest.raises(AnalysisError):
            compute_charges(result)

    def test_transit_plus_blocking_equals_total(self, small_instance):
        result = run_alg(small_instance, record_trace=True)
        charges = compute_charges(result)
        for pid in result.records:
            assert charges.charges[pid] == pytest.approx(
                charges.transit_charges[pid] + charges.blocking_charges[pid]
            )

    def test_fifo_policy_rejected_when_not_stable(self):
        # The FIFO scheduler can leave an eligible chunk waiting without a
        # heavier blocking chunk; the charging scheme must refuse such runs
        # rather than silently produce wrong numbers.  (We search a few seeds
        # for a workload where this actually happens.)
        from repro.network import projector_fabric
        from repro.workloads import uniform_weights

        for seed in range(12):
            topo = projector_fabric(num_racks=3, seed=seed)
            packets = uniform_random_workload(
                topo, 30, arrival_rate=4.0, seed=seed, weight_sampler=uniform_weights(1, 10)
            )
            result = simulate(topo, make_fifo_policy(), packets, record_trace=True)
            try:
                compute_charges(result)
            except AnalysisError:
                return  # observed the expected rejection
        pytest.skip("FIFO happened to produce stable-like schedules on all seeds")
