"""Tests for repro.analysis.lp (the Figure 3 primal LP)."""

from __future__ import annotations

import pytest

from repro.analysis import build_primal_lp, solve_lp_lower_bound
from repro.baselines import brute_force_optimal
from repro.core import OpportunisticLinkScheduler, Packet
from repro.exceptions import LPError
from repro.simulation import simulate
from repro.workloads import Instance, figure1_instance, figure2_instances, uniform_random_workload
from repro.network import random_bipartite


class TestLPConstruction:
    def test_variable_and_constraint_counts(self, fig1_instance):
        lp = build_primal_lp(fig1_instance, capacity=1.0, horizon=6)
        # x variables: every (packet, candidate edge, slot in [arrival, 6]).
        expected_x = 6 + 6 + 6 + 5 + 5  # p1..p5 (p4, p5 arrive at slot 2)
        assert lp.num_variables == expected_x + 1  # + one y variable for p5
        assert lp.num_constraints > len(fig1_instance.packets)

    def test_invalid_capacity(self, fig1_instance):
        with pytest.raises(LPError):
            build_primal_lp(fig1_instance, capacity=0.0)
        with pytest.raises(LPError):
            build_primal_lp(fig1_instance, capacity=1.5)

    def test_horizon_too_small(self, fig1_instance):
        with pytest.raises(LPError):
            build_primal_lp(fig1_instance, horizon=1)

    def test_empty_instance_rejected(self, line_topology):
        with pytest.raises(LPError):
            build_primal_lp(Instance(name="empty", topology=line_topology, packets=[]))


class TestLPLowerBound:
    def test_figure1_value(self, fig1_instance):
        solution = solve_lp_lower_bound(fig1_instance, capacity=1.0)
        assert solution.optimal
        assert solution.objective_value == pytest.approx(7.0, abs=1e-6)

    def test_single_packet_exact(self, line_topology):
        instance = Instance(
            name="one", topology=line_topology, packets=[Packet(0, "s", "d", 3.0, 1)]
        )
        solution = solve_lp_lower_bound(instance, capacity=1.0)
        assert solution.objective_value == pytest.approx(3.0, abs=1e-6)

    def test_lower_bound_never_exceeds_brute_force(self):
        for key, instance in figure2_instances().items():
            lp = solve_lp_lower_bound(instance, capacity=1.0).objective_value
            opt = brute_force_optimal(instance).cost
            assert lp <= opt + 1e-6, key

    def test_lower_bound_never_exceeds_alg(self):
        topo = random_bipartite(3, 3, transmitters_per_source=2, seed=8)
        packets = uniform_random_workload(topo, 12, arrival_rate=2.0, seed=9)
        instance = Instance(name="rand", topology=topo, packets=packets)
        lp = solve_lp_lower_bound(instance, capacity=1.0).objective_value
        alg = simulate(topo, OpportunisticLinkScheduler(), packets).total_weighted_latency
        assert lp <= alg + 1e-6

    def test_smaller_capacity_larger_bound(self, fig1_instance):
        full = solve_lp_lower_bound(fig1_instance, capacity=1.0).objective_value
        slowed = solve_lp_lower_bound(fig1_instance, capacity=0.25).objective_value
        assert slowed >= full - 1e-9

    def test_capacity_monotonicity_chain(self, fig1_instance):
        values = [
            solve_lp_lower_bound(fig1_instance, capacity=c).objective_value
            for c in (1.0, 0.5, 1.0 / 3.0)
        ]
        assert values[0] <= values[1] + 1e-9 <= values[2] + 2e-9

    def test_keep_solution_returns_fractions(self, fig1_instance):
        solution = solve_lp_lower_bound(fig1_instance, capacity=1.0, keep_solution=True)
        total_per_packet = {}
        for (pid, _edge, _slot), value in solution.x_values.items():
            total_per_packet[pid] = total_per_packet.get(pid, 0.0) + value
        for pid, y in solution.y_values.items():
            total_per_packet[pid] = total_per_packet.get(pid, 0.0) + y
        assert all(total == pytest.approx(1.0, abs=1e-5) for total in total_per_packet.values())
        assert set(total_per_packet) == {0, 1, 2, 3, 4}

    def test_infeasible_horizon_raises(self, fig1_instance):
        with pytest.raises(LPError):
            solve_lp_lower_bound(fig1_instance, capacity=0.25, horizon=2)


class TestObjectiveVariants:
    @pytest.fixture(scope="class")
    def delayed_instance(self):
        topo = random_bipartite(
            3, 3, transmitters_per_source=2, edge_probability=0.6,
            delay_choices=(1, 2, 3), seed=21,
        )
        packets = uniform_random_workload(topo, 12, arrival_rate=2.0, seed=22)
        return Instance(name="delayed", topology=topo, packets=packets)

    def test_invalid_objective_rejected(self, fig1_instance):
        with pytest.raises(LPError):
            build_primal_lp(fig1_instance, objective="bogus")

    def test_variants_coincide_on_unit_delays(self, fig1_instance):
        paper = solve_lp_lower_bound(fig1_instance, objective="paper").objective_value
        frac = solve_lp_lower_bound(fig1_instance, objective="fractional").objective_value
        assert paper == pytest.approx(frac, abs=1e-6)

    def test_paper_objective_at_least_fractional(self, delayed_instance):
        paper = solve_lp_lower_bound(delayed_instance, objective="paper").objective_value
        frac = solve_lp_lower_bound(delayed_instance, objective="fractional").objective_value
        assert paper >= frac - 1e-6

    def test_fractional_lower_bounds_alg_with_multi_slot_delays(self, delayed_instance):
        frac = solve_lp_lower_bound(delayed_instance, objective="fractional").objective_value
        alg = simulate(
            delayed_instance.topology,
            OpportunisticLinkScheduler(),
            delayed_instance.packets,
        ).total_weighted_latency
        assert frac <= alg + 1e-6

    def test_objective_kind_recorded(self, fig1_instance):
        solution = solve_lp_lower_bound(fig1_instance, objective="fractional")
        assert solution.objective_kind == "fractional"
