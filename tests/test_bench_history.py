"""Tests for the benchmark-history migration in scripts/bench_dispatch.py."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "bench_dispatch.py"
_spec = importlib.util.spec_from_file_location("bench_dispatch", _SCRIPT)
bench_dispatch = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_dispatch)


class TestLoadHistory:
    def test_missing_file_starts_empty(self, tmp_path):
        assert bench_dispatch.load_history(tmp_path / "absent.json") == []

    def test_current_history_shape_passes_through(self, tmp_path):
        points = [{"recorded_at": "2026-01-01T00:00:00+00:00"}, {"recorded_at": "b"}]
        path = tmp_path / "bench.json"
        path.write_text(
            json.dumps({"benchmark": "dispatch-hot-path", "history": points}),
            encoding="utf-8",
        )
        assert bench_dispatch.load_history(path) == points

    def test_legacy_single_point_is_migrated(self, tmp_path):
        # A pre-history file is one benchmark point at the top level; it must
        # become the first history entry (minus the document-level tag), not
        # crash or get overwritten.
        legacy = {
            "benchmark": "dispatch-hot-path",
            "recorded_at": "2025-12-31T00:00:00+00:00",
            "single_run": {"speedup": 3.1},
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(legacy), encoding="utf-8")
        history = bench_dispatch.load_history(path)
        assert history == [
            {
                "recorded_at": "2025-12-31T00:00:00+00:00",
                "single_run": {"speedup": 3.1},
            }
        ]
        # Migration must not mutate the file itself (only a bench run writes).
        assert json.loads(path.read_text(encoding="utf-8")) == legacy

    def test_corrupt_json_raises_instead_of_overwriting(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ValueError, match="not valid JSON"):
            bench_dispatch.load_history(path)

    def test_non_dict_document_raises(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ValueError, match="top-level list"):
            bench_dispatch.load_history(path)

    def test_non_list_history_raises(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"history": {"oops": 1}}), encoding="utf-8")
        with pytest.raises(ValueError, match="non-list 'history'"):
            bench_dispatch.load_history(path)
