"""Regression tests for the engine's slot-skipping fast path.

The fast path (``EngineConfig.slot_skipping``) jumps over empty slots instead
of walking them one by one.  These tests pin the contract that the ISSUE and
the E11b benchmark rely on: the produced :class:`SimulationResult` — records,
per-slot aggregates and full event traces — is *bit-identical* to the
slot-by-slot walk on the paper's worked examples and on sparse synthetic
workloads.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.baselines import all_policies
from repro.core import OpportunisticLinkScheduler, Packet
from repro.exceptions import SimulationError
from repro.network import projector_fabric
from repro.simulation import EngineConfig, SimulationEngine
from repro.network import TwoTierTopology
from repro.workloads import (
    figure1_instance,
    figure2_instances,
    uniform_weights,
    zipf_workload,
)


def _line_topology() -> TwoTierTopology:
    """One source, one destination, a single edge of delay 1."""
    topo = TwoTierTopology(name="line")
    topo.add_source("s")
    topo.add_destination("d")
    topo.add_transmitter("t", "s")
    topo.add_receiver("r", "d")
    topo.add_reconfigurable_edge("t", "r", delay=1)
    return topo.freeze()


def _packet(packet_id: int, arrival: int) -> Packet:
    return Packet(
        packet_id=packet_id, source="s", destination="d", weight=1.0, arrival=arrival
    )


def _fingerprint(result):
    """Every observable field of a SimulationResult, as a comparable value."""
    records = {
        pid: (
            rec.completion_time,
            rec.weighted_latency,
            rec.assignment.impact,
            rec.used_fixed_link,
            tuple(
                (c.remaining_work, c.completed_slot, c.delivery_time) for c in rec.chunks
            ),
        )
        for pid, rec in result.records.items()
    }
    trace = None
    if result.trace is not None:
        trace = [
            (
                slot.slot,
                list(slot.arrivals),
                [dataclasses.astuple(e) for e in slot.dispatches],
                list(slot.matching),
                [dataclasses.astuple(e) for e in slot.transmissions],
            )
            for slot in result.trace.slots
        ]
    return (
        result.first_slot,
        result.last_slot,
        tuple(result.matching_sizes),
        records,
        trace,
    )


def _run(topology, policy, packets, slot_skipping, record_trace=True):
    engine = SimulationEngine(
        topology,
        policy,
        EngineConfig(record_trace=record_trace, slot_skipping=slot_skipping),
    )
    return engine.run(packets)


class TestBitIdentityOnPaperInstances:
    def test_figure1(self):
        instance = figure1_instance()
        skip = _run(instance.topology, OpportunisticLinkScheduler(), instance.packets, True)
        walk = _run(instance.topology, OpportunisticLinkScheduler(), instance.packets, False)
        assert _fingerprint(skip) == _fingerprint(walk)

    @pytest.mark.parametrize("key", sorted(figure2_instances()))
    def test_figure2(self, key):
        instance = figure2_instances()[key]
        skip = _run(instance.topology, OpportunisticLinkScheduler(), instance.packets, True)
        walk = _run(instance.topology, OpportunisticLinkScheduler(), instance.packets, False)
        assert _fingerprint(skip) == _fingerprint(walk)


class TestBitIdentityOnSparseWorkloads:
    @pytest.fixture(scope="class")
    def sparse(self):
        topo = projector_fabric(
            num_racks=4, lasers_per_rack=2, photodetectors_per_rack=2, seed=9
        )
        packets = zipf_workload(
            topo, 60, exponent=1.2, weight_sampler=uniform_weights(1, 10),
            arrival_rate=0.05, seed=10,
        )
        return topo, packets

    def test_alg_bit_identical(self, sparse):
        topo, packets = sparse
        skip = _run(topo, OpportunisticLinkScheduler(), packets, True)
        walk = _run(topo, OpportunisticLinkScheduler(), packets, False)
        assert skip.all_delivered
        assert _fingerprint(skip) == _fingerprint(walk)

    @pytest.mark.parametrize("name", ["fifo", "random", "maxweight", "islip"])
    def test_baselines_bit_identical(self, sparse, name):
        topo, packets = sparse
        skip = _run(topo, all_policies(seed=3)[name], packets, True, record_trace=False)
        walk = _run(topo, all_policies(seed=3)[name], packets, False, record_trace=False)
        assert _fingerprint(skip) == _fingerprint(walk)

    def test_skipped_slots_keep_aggregates(self, sparse):
        """matching_sizes and the trace still cover every slot of the horizon."""
        topo, packets = sparse
        result = _run(topo, OpportunisticLinkScheduler(), packets, True)
        assert len(result.matching_sizes) == result.num_slots
        assert [s.slot for s in result.trace.slots] == list(
            range(result.first_slot, result.last_slot + 1)
        )


class TestSlotSkippingSemantics:
    def test_huge_gap_is_constant_work(self):
        """A million-slot arrival gap must not need a million iterations."""
        topo = _line_topology()
        packets = [_packet(0, arrival=1), _packet(1, arrival=100_000)]
        engine = SimulationEngine(
            topo, OpportunisticLinkScheduler(), EngineConfig(max_slots=1_000_000)
        )
        result = engine.run(packets)
        assert result.all_delivered
        assert len(result.matching_sizes) == result.num_slots

    def test_gap_still_counts_toward_max_slots(self):
        """Skipped slots consume slot budget exactly like walked slots."""
        topo = _line_topology()
        packets = [_packet(0, arrival=1), _packet(1, arrival=500)]
        for slot_skipping in (True, False):
            engine = SimulationEngine(
                topo,
                OpportunisticLinkScheduler(),
                EngineConfig(max_slots=100, slot_skipping=slot_skipping),
            )
            with pytest.raises(SimulationError, match="max_slots"):
                engine.run(packets)
