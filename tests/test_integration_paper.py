"""Integration tests tying the paper's worked examples and claims together.

These tests are the executable form of the EXPERIMENTS.md entries: Figure 1's
costs, Figure 2's impact tables, the stable matchings of both figures, and the
Theorem 1 bound on the standard workload suite (via the dual lower bound).
"""

from __future__ import annotations

import pytest

from repro.analysis import compute_charges, dual_lower_bound, solve_lp_lower_bound
from repro.baselines import brute_force_optimal, standard_baselines
from repro.core import OpportunisticLinkScheduler, theoretical_competitive_ratio
from repro.experiments import compare_policies_on_instance, standard_projector_instances
from repro.simulation import simulate
from repro.workloads import (
    figure1_instance,
    figure1_reported_costs,
    figure2_instances,
    figure2_reported_impacts,
)


class TestFigure1Reproduction:
    """E1: the Figure 1 worked example."""

    def test_optimal_cost_is_seven(self):
        assert brute_force_optimal(figure1_instance()).cost == pytest.approx(
            figure1_reported_costs()["optimal_solution"]
        )

    def test_lp_relaxation_matches_integral_optimum(self):
        assert solve_lp_lower_bound(figure1_instance(), capacity=1.0).objective_value == pytest.approx(
            7.0, abs=1e-6
        )

    def test_paper_feasible_schedule_costs_nine(self):
        # The schedule tabulated in Figure 1 routes p5 over the fixed link
        # (latency 4) and p1..p4 over the reconfigurable network in two slots.
        instance = figure1_instance()
        packets = {p.packet_id: p for p in instance.packets}
        reconfig_latencies = {0: 1, 1: 2, 2: 1, 3: 1}
        fixed_latency = instance.topology.fixed_link_delay("s2", "d3")
        cost = sum(
            packets[pid].weight * latency for pid, latency in reconfig_latencies.items()
        ) + packets[4].weight * fixed_latency
        assert cost == pytest.approx(figure1_reported_costs()["feasible_solution"])

    def test_alg_achieves_optimal_cost_on_figure1(self):
        instance = figure1_instance()
        result = simulate(instance.topology, OpportunisticLinkScheduler(), instance.packets)
        assert result.total_weighted_latency == pytest.approx(7.0)
        assert result.all_delivered

    def test_alg_routes_p5_over_reconfigurable_network(self):
        instance = figure1_instance()
        result = simulate(instance.topology, OpportunisticLinkScheduler(), instance.packets)
        # The optimal choice from the paper: p5 goes over (t3, r4), not the fixed link.
        record = result.record(4)
        assert not record.used_fixed_link
        assert record.assignment.edge == ("t3", "r4")

    def test_alg_schedule_slot_by_slot(self):
        instance = figure1_instance()
        result = simulate(
            instance.topology, OpportunisticLinkScheduler(), instance.packets, record_trace=True
        )
        assert result.trace.slot(1).matching_size == 2
        assert result.trace.slot(2).matching_size == 2
        assert result.trace.slot(3).matching_size == 1
        assert result.num_slots == 3


class TestFigure2Reproduction:
    """E2: the Figure 2 dispatcher-impact example."""

    @pytest.mark.parametrize("key", ["pi", "pi_prime"])
    def test_realised_impacts_match_paper_table(self, key):
        instance = figure2_instances()[key]
        result = simulate(
            instance.topology, OpportunisticLinkScheduler(), instance.packets, record_trace=True
        )
        charges = compute_charges(result)
        for pid, expected in figure2_reported_impacts()[key].items():
            assert charges.charge(pid) == pytest.approx(expected)

    def test_stable_matching_changes_with_p4(self):
        # Without p4, packets p1 and p3 are transmitted in slot 1; with p4,
        # the slot-1 stable matching becomes {p4, p2} (Figure 2's point).
        instances = figure2_instances()
        res_pi = simulate(
            instances["pi"].topology,
            OpportunisticLinkScheduler(),
            instances["pi"].packets,
            record_trace=True,
        )
        res_prime = simulate(
            instances["pi_prime"].topology,
            OpportunisticLinkScheduler(),
            instances["pi_prime"].packets,
            record_trace=True,
        )
        slot1_pi = {ev.packet_id for ev in res_pi.trace.slot(1).transmissions}
        slot1_prime = {ev.packet_id for ev in res_prime.trace.slot(1).transmissions}
        assert slot1_pi == {0, 2}
        assert slot1_prime == {1, 3}

    def test_total_cost_matches_hand_computation(self):
        instances = figure2_instances()
        res_pi = simulate(
            instances["pi"].topology, OpportunisticLinkScheduler(), instances["pi"].packets
        )
        res_prime = simulate(
            instances["pi_prime"].topology,
            OpportunisticLinkScheduler(),
            instances["pi_prime"].packets,
        )
        # Π: p1, p3 in slot 1, p2 in slot 2 -> 1 + 3 + 4 = 8.
        assert res_pi.total_weighted_latency == pytest.approx(8.0)
        # Π′: p2, p4 in slot 1, p1, p3 in slot 2 -> 2 + 4 + 2 + 6 = 14.
        assert res_prime.total_weighted_latency == pytest.approx(14.0)


class TestTheorem1OnWorkloadSuite:
    """E5 (dual-bound variant): the guarantee holds on realistic workloads."""

    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_bound_holds_on_every_suite_instance(self, epsilon):
        suite = standard_projector_instances(num_racks=4, num_packets=60, seed=7)
        bound = theoretical_competitive_ratio(epsilon)
        for name, instance in suite.items():
            result = simulate(
                instance.topology, OpportunisticLinkScheduler(), instance.packets
            )
            lower = dual_lower_bound(result, epsilon)
            assert lower > 0, name
            assert result.total_weighted_latency / lower <= bound + 1e-6, name


class TestBaselineOrdering:
    """E7 sanity: ALG is never the worst policy on the skewed suite."""

    def test_alg_not_worst_on_skewed_traffic(self):
        suite = standard_projector_instances(num_racks=4, num_packets=80, seed=3)
        policies = {"alg": OpportunisticLinkScheduler(), **standard_baselines(seed=0)}
        for name in ("zipf", "elephant-mice"):
            rows = compare_policies_on_instance(suite[name], policies)
            ordered = [row.policy for row in rows]
            assert ordered.index("alg") < len(ordered) - 1, rows
