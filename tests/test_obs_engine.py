"""Engine instrumentation tests: the obs= / metrics_path= / span_stride= knobs.

The bit-identity guarantee itself lives in tests/test_differential_engine.py;
this file pins what the instruments *record* — counter values that must
match the run's own summary, the metrics-snapshot JSONL side channel, the
sampled phase spans, the subsystem counters (shared-dispatch memo, matching
index, impact index, vector backend) and the zero-cost disabled default.
"""

from __future__ import annotations

import pytest

from repro.core import OpportunisticLinkScheduler
from repro.network import projector_fabric
from repro.obs import NULL_REGISTRY, MetricsRegistry, read_metric_records
from repro.simulation import EngineConfig, SimulationEngine, simulate
from repro.workloads import uniform_weights
from repro.workloads.adversarial import iter_contention_hotspot_workload


@pytest.fixture(scope="module")
def cell():
    """A small dense-contention cell with heterogeneous weights.

    The weight spread keeps the impact index's consolidation path and the
    matching repairer's eviction paths busy, so the subsystem counters have
    something to count.
    """
    topology = projector_fabric(
        num_racks=6, lasers_per_rack=2, photodetectors_per_rack=2, seed=3
    )
    packets = list(
        iter_contention_hotspot_workload(
            topology,
            num_packets=120,
            side="receiver",
            hot_fraction=0.9,
            arrival_rate=6.0,
            weight_sampler=uniform_weights(1, 10),
            seed=4,
        )
    )
    return topology, packets


def _one(series: dict, name: str):
    """The single ``policy``-labeled series of ``name`` in a snapshot section."""
    matches = {k: v for k, v in series.items() if k.startswith(f"{name}{{policy=")}
    assert len(matches) == 1, (name, sorted(series))
    return next(iter(matches.values()))


def _run_with_registry(topology, packets, **kwargs):
    registry = MetricsRegistry()
    result = simulate(
        topology, OpportunisticLinkScheduler(), packets, obs=registry, **kwargs
    )
    return result, registry.snapshot()


class TestEngineCounters:
    def test_counters_match_the_summary(self, cell):
        topology, packets = cell
        result, snap = _run_with_registry(topology, packets)
        counters = snap["counters"]
        assert _one(counters, "engine_packets_arrived") == len(packets)
        assert _one(counters, "engine_packets_delivered") == len(packets)
        assert result.all_delivered
        # Every dispatched chunk was eventually matched and completed.
        dispatched = _one(counters, "engine_chunks_dispatched")
        assert dispatched > 0
        assert _one(counters, "engine_chunks_completed") == dispatched
        assert _one(counters, "engine_chunks_matched") >= dispatched
        simulated = _one(counters, "engine_slots_simulated")
        skipped = _one(counters, "engine_slots_skipped")
        assert 0 <= skipped < simulated
        assert simulated >= result.last_slot

    def test_matching_histogram_covers_executed_slots(self, cell):
        topology, packets = cell
        _result, snap = _run_with_registry(topology, packets)
        hist = _one(snap["histograms"], "engine_matching_size")
        counters = snap["counters"]
        executed = _one(counters, "engine_slots_simulated") - _one(
            counters, "engine_slots_skipped"
        )
        assert hist["count"] == executed
        assert hist["sum"] == _one(counters, "engine_chunks_matched")

    def test_pool_peak_gauges(self, cell):
        topology, packets = cell
        _result, snap = _run_with_registry(topology, packets)
        assert _one(snap["gauges"], "engine_pool_peak_chunks") >= 1
        assert _one(snap["gauges"], "engine_pool_peak_pending_work") > 0.0

    def test_impact_and_matching_index_counters(self, cell):
        topology, packets = cell
        _result, snap = _run_with_registry(topology, packets)
        counters = snap["counters"]
        # The indexed engine maintains both structures on this cell, and the
        # weight spread forces lazy prefix-sum repairs in the impact index.
        assert _one(counters, "impact_index_consolidations") > 0
        assert _one(counters, "matching_index_tasks") > 0
        assert _one(counters, "matching_index_evictions") >= 0

    def test_vector_backend_counters(self, cell):
        topology, packets = cell
        result, snap = _run_with_registry(topology, packets, engine="vectorized")
        counters = snap["counters"]
        routed = (
            _one(counters, "vector_fast_path_slots")
            + _one(counters, "vector_fallback_slots")
            + _one(counters, "vector_scalar_slots")
        )
        assert routed > 0
        assert result.all_delivered


class TestSpans:
    def test_span_stride_times_all_three_phases(self, cell):
        topology, packets = cell
        _result, snap = _run_with_registry(topology, packets, span_stride=1)
        gauges = snap["gauges"]
        for phase in ("dispatch", "scheduler", "transmit"):
            matches = [
                v for k, v in gauges.items()
                if k.startswith(f"engine_phase_seconds{{phase={phase},")
            ]
            assert matches and matches[0] >= 0.0, phase
        assert _one(snap["counters"], "engine_span_sampled_slots") > 0

    def test_larger_stride_samples_fewer_slots(self, cell):
        topology, packets = cell
        _result, dense = _run_with_registry(topology, packets, span_stride=1)
        _result, sparse = _run_with_registry(topology, packets, span_stride=8)
        assert _one(sparse["counters"], "engine_span_sampled_slots") < _one(
            dense["counters"], "engine_span_sampled_slots"
        )

    def test_zero_stride_records_no_spans(self, cell):
        topology, packets = cell
        _result, snap = _run_with_registry(topology, packets, span_stride=0)
        assert not any(
            k.startswith("engine_span_sampled_slots") for k in snap["counters"]
        )
        assert not any(
            k.startswith("engine_phase_seconds") for k in snap["gauges"]
        )

    def test_negative_stride_rejected(self):
        with pytest.raises(ValueError, match="span_stride"):
            EngineConfig(span_stride=-1)


class TestMetricsPath:
    def test_snapshot_written_as_jsonl(self, cell, tmp_path):
        topology, packets = cell
        path = tmp_path / "metrics.jsonl"
        registry = MetricsRegistry()
        simulate(
            topology, OpportunisticLinkScheduler(), packets,
            obs=registry, metrics_path=str(path),
        )
        records = read_metric_records(path)
        assert len(records) == 1
        assert records[0]["record"] == "metrics_snapshot"
        assert records[0]["snapshot"] == registry.snapshot()

    def test_metrics_path_alone_enables_a_registry(self, cell, tmp_path):
        topology, packets = cell
        path = tmp_path / "metrics.jsonl"
        simulate(
            topology, OpportunisticLinkScheduler(), packets, metrics_path=str(path)
        )
        (record,) = read_metric_records(path)
        counters = record["snapshot"]["counters"]
        assert _one(counters, "engine_packets_arrived") == len(packets)


class TestDisabledDefault:
    def test_engine_defaults_to_the_null_singleton(self, crossbar4):
        engine = SimulationEngine(crossbar4)
        assert engine.metrics is NULL_REGISTRY
        assert engine.metrics.enabled is False

    def test_disabled_run_records_nothing(self, cell):
        topology, packets = cell
        engine = SimulationEngine(topology, OpportunisticLinkScheduler())
        result = engine.run(packets)
        assert result.all_delivered
        assert engine.metrics.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }


class TestRunMulti:
    def test_shared_dispatch_memo_counters(self, cell):
        topology, packets = cell
        registry = MetricsRegistry()
        engine = SimulationEngine(topology, config=EngineConfig(obs=registry))
        policies = {
            "alg_a": OpportunisticLinkScheduler(),
            "alg_b": OpportunisticLinkScheduler(),
        }
        engine.run_multi(packets, policies)
        counters = registry.snapshot()["counters"]
        stats = engine.last_shared_dispatch_stats[0]
        assert counters["shared_dispatch_hits{group=0}"] == stats["hits"]
        assert counters["shared_dispatch_misses{group=0}"] == stats["misses"]
        assert stats["hits"] > 0  # both lanes share the impact rule
        # Per-lane engine counters carry the policy label.
        assert counters["engine_packets_arrived{policy=alg_a}"] == len(packets)
        assert counters["engine_packets_arrived{policy=alg_b}"] == len(packets)


class TestPoolOccupancy:
    def test_occupancy_counts_eligible_and_future(self):
        from repro.core.packet import Packet, split_into_chunks
        from repro.core.queues import PendingChunkPool

        pool = PendingChunkPool()
        now_packet = Packet(0, "s", "d", weight=2.0, arrival=1)
        pool.add_all(split_into_chunks(now_packet, "t1", "r1", edge_delay=2))
        future_packet = Packet(1, "s", "d", weight=1.0, arrival=9)
        pool.add_all(split_into_chunks(future_packet, "t2", "r2", edge_delay=1))
        occupancy = pool.occupancy()
        assert occupancy["pending_chunks"] == 3
        assert occupancy["eligible_chunks"] + occupancy["future_chunks"] == 3
        assert occupancy["future_chunks"] >= 1
        assert occupancy["pending_work"] == pytest.approx(
            pool.total_pending_work()
        )
