"""Tests for the parallel experiment runner (repro.experiments.runner)."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ExperimentError
from repro.experiments import (
    ExperimentRunner,
    ExperimentSpec,
    ExperimentTask,
    RunnerConfig,
    competitive_ratio_sweep,
    compare_policies_on_suite,
    read_json,
    rows_to_json,
    run_experiment,
    small_lp_instances,
    speedup_sweep,
    write_json,
)


# Module-level task functions so they can be pickled to worker processes.
def _echo_task(task: ExperimentTask) -> dict:
    return {"index": task.index, "x": task.params["x"], "seed": task.seed}


def _multi_row_task(task: ExperimentTask) -> list:
    return [{"index": task.index, "copy": i} for i in range(task.params["copies"])]


def _failing_task(task: ExperimentTask) -> dict:
    raise RuntimeError("boom")


def _make_spec(n: int = 4, seed: int = 11) -> ExperimentSpec:
    return ExperimentSpec(
        name="echo", task_fn=_echo_task, grid=[{"x": i * 10} for i in range(n)], seed=seed
    )


class TestSpec:
    def test_tasks_are_indexed_in_grid_order(self):
        tasks = _make_spec(3).tasks()
        assert [t.index for t in tasks] == [0, 1, 2]
        assert [t.params["x"] for t in tasks] == [0, 10, 20]

    def test_task_seeds_deterministic_and_distinct(self):
        first, second = _make_spec().tasks(), _make_spec().tasks()
        assert [t.seed for t in first] == [t.seed for t in second]
        assert len({t.seed for t in first}) == len(first)

    def test_task_seeds_namespaced_by_spec_name(self):
        a = ExperimentSpec(name="a", task_fn=_echo_task, grid=[{"x": 0}], seed=1)
        b = ExperimentSpec(name="b", task_fn=_echo_task, grid=[{"x": 0}], seed=1)
        assert a.tasks()[0].seed != b.tasks()[0].seed


class TestRunner:
    def test_serial_rows_in_grid_order(self):
        rows = run_experiment(_make_spec(5))
        assert [row["index"] for row in rows] == list(range(5))

    def test_parallel_rows_identical_to_serial(self):
        spec = _make_spec(6)
        assert run_experiment(spec, jobs=1) == run_experiment(spec, jobs=3)

    def test_list_outputs_are_flattened_in_order(self):
        spec = ExperimentSpec(
            name="multi", task_fn=_multi_row_task, grid=[{"copies": 2}, {"copies": 3}]
        )
        rows = run_experiment(spec)
        assert [(r["index"], r["copy"]) for r in rows] == [
            (0, 0), (0, 1), (1, 0), (1, 1), (1, 2),
        ]

    def test_task_failure_reports_grid_context(self):
        spec = ExperimentSpec(name="bad", task_fn=_failing_task, grid=[{"x": 42}])
        with pytest.raises(ExperimentError, match=r"experiment 'bad'.*'x': 42"):
            run_experiment(spec)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            RunnerConfig(jobs=0)
        with pytest.raises(ValueError):
            RunnerConfig(chunksize=0)

    def test_runner_writes_json(self, tmp_path):
        spec = _make_spec(2)
        path = tmp_path / "rows.json"
        rows = ExperimentRunner(RunnerConfig(jobs=2)).run(spec, output_path=path)
        document = json.loads(path.read_text())
        assert document["experiment"] == "echo"
        assert document["grid_size"] == 2
        assert document["rows"] == rows


class TestJson:
    def test_round_trip(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.5}]
        path = write_json(rows, tmp_path / "out.json")
        assert read_json(path) == rows

    def test_rejects_non_row_objects(self):
        with pytest.raises(ExperimentError):
            rows_to_json([object()])

    def test_rejects_non_runner_files(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ExperimentError):
            read_json(path)


class TestSweepDeterminism:
    """Serial and parallel sweep executions must produce identical rows."""

    @pytest.fixture(scope="class")
    def lp_instances(self):
        return small_lp_instances(num_instances=2, num_packets=8, seed=4)

    def test_competitive_ratio_sweep_jobs_invariant(self, lp_instances):
        serial = competitive_ratio_sweep(lp_instances, epsilons=(1.0, 2.0), use_lp=False)
        parallel = competitive_ratio_sweep(
            lp_instances, epsilons=(1.0, 2.0), use_lp=False, jobs=2
        )
        assert serial == parallel

    def test_speedup_sweep_jobs_invariant(self, lp_instances):
        instance = next(iter(lp_instances.values()))
        serial = speedup_sweep(instance, speeds=(1.0, 2.0, 3.0))
        parallel = speedup_sweep(instance, speeds=(1.0, 2.0, 3.0), jobs=2)
        assert serial == parallel

    def test_comparison_suite_jobs_invariant(self, lp_instances):
        from repro.core import OpportunisticLinkScheduler
        from repro.baselines import standard_baselines

        policies = {"alg": OpportunisticLinkScheduler(), **standard_baselines(seed=0)}
        serial = compare_policies_on_suite(lp_instances, policies)
        parallel = compare_policies_on_suite(lp_instances, policies, jobs=2)
        assert serial == parallel
