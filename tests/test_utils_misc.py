"""Tests for repro.utils.ordering, validation and tables."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet, split_into_chunks
from repro.utils.ordering import chunk_outranks, chunk_priority_key, packet_priority_key
from repro.utils.tables import format_csv, format_table
from repro.utils.validation import (
    check_finite,
    check_non_negative,
    check_positive,
    check_positive_int,
    check_probability,
)


def _chunk(weight: float, arrival: int, pid: int = 0, delay: int = 1):
    packet = Packet(packet_id=pid, source="s", destination="d", weight=weight * delay, arrival=arrival)
    return split_into_chunks(packet, "t", "r", edge_delay=delay)[0]


class TestOrdering:
    def test_heavier_chunk_first(self):
        heavy = _chunk(5.0, arrival=3, pid=1)
        light = _chunk(1.0, arrival=1, pid=0)
        assert chunk_priority_key(heavy) < chunk_priority_key(light)

    def test_tie_broken_by_arrival(self):
        early = _chunk(2.0, arrival=1, pid=1)
        late = _chunk(2.0, arrival=5, pid=0)
        assert chunk_priority_key(early) < chunk_priority_key(late)

    def test_tie_broken_by_packet_id(self):
        first = _chunk(2.0, arrival=1, pid=0)
        second = _chunk(2.0, arrival=1, pid=1)
        assert chunk_priority_key(first) < chunk_priority_key(second)

    def test_chunk_outranks(self):
        heavy = _chunk(5.0, arrival=3, pid=1)
        light = _chunk(1.0, arrival=1, pid=0)
        assert chunk_outranks(heavy, light)
        assert not chunk_outranks(light, heavy)

    def test_packet_priority_key(self):
        heavy = Packet(0, "s", "d", weight=9.0, arrival=4)
        light = Packet(1, "s", "d", weight=1.0, arrival=1)
        assert packet_priority_key(heavy) < packet_priority_key(light)

    def test_chunk_index_breaks_final_tie(self):
        packet = Packet(0, "s", "d", weight=4.0, arrival=1)
        chunks = split_into_chunks(packet, "t", "r", edge_delay=2)
        assert chunk_priority_key(chunks[0]) < chunk_priority_key(chunks[1])


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive(2.5) == 2.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive(0)

    def test_check_non_negative_accepts_zero(self):
        assert check_non_negative(0) == 0.0

    def test_check_non_negative_rejects_negative(self):
        with pytest.raises(ValueError):
            check_non_negative(-1)

    def test_check_finite_rejects_nan(self):
        with pytest.raises(ValueError):
            check_finite(float("nan"))

    def test_check_finite_rejects_inf(self):
        with pytest.raises(ValueError):
            check_finite(float("inf"))

    def test_check_positive_int_accepts(self):
        assert check_positive_int(3) == 3

    def test_check_positive_int_rejects_float(self):
        with pytest.raises(ValueError):
            check_positive_int(2.5)

    def test_check_positive_int_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True)

    def test_check_positive_int_accepts_integral_float(self):
        assert check_positive_int(4.0) == 4

    def test_check_probability_bounds(self):
        assert check_probability(0.5) == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5)


class TestTables:
    def test_basic_table_contains_values(self):
        text = format_table(["a", "b"], [[1, 2.5], [3, 4.0]])
        assert "a" in text and "2.5" in text and "4" in text

    def test_title_rendered(self):
        text = format_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_csv_roundtrip_fields(self):
        text = format_csv(["a", "b"], [[1, 2]])
        assert text.splitlines() == ["a,b", "1,2"]

    def test_csv_rejects_commas(self):
        with pytest.raises(ValueError):
            format_csv(["a"], [["x,y"]])

    def test_column_alignment_consistent_width(self):
        text = format_table(["name", "v"], [["long-name", 1], ["s", 22]])
        lines = text.splitlines()
        assert len(lines[0]) == len(lines[2]) == len(lines[3])
