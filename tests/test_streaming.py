"""Tests for the streaming workload → engine → metrics data path.

Covers the three layers of the streaming pipeline:

* every workload generator's lazy ``iter_*`` form yields exactly the packets
  its materialising wrapper returns (fixed seed ⇒ identical sequences);
* ``retention="aggregate"`` produces bit-identical summary numbers to
  ``retention="full"`` on the paper's Figure 1/2 instances (E1/E2) and on
  generated workloads, while refusing per-packet accessors;
* packet traces and slot traces stream to/from disk (CSV lazy reader, JSONL
  writer/chunked reader) without changing the replayed packets.

Plus the satellite regressions: compensated summation vs ``math.fsum`` and
the pending-chunk pool's incremental counters.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines.policies import make_fifo_policy
from repro.core import OpportunisticLinkScheduler
from repro.core.packet import Packet, split_into_chunks
from repro.core.queues import PendingChunkPool
from repro.exceptions import SimulationError, WorkloadError
from repro.network import projector_fabric
from repro.simulation import (
    CompensatedSum,
    EngineConfig,
    SimulationEngine,
    compensated_total,
    matching_occupancy,
    read_simulation_trace,
    simulate,
)
from repro.workloads import (
    PacketSpec,
    batch_arrivals,
    bursty_workload,
    deterministic_arrivals,
    elephant_mice_workload,
    figure1_instance,
    figure1_packets,
    figure2_instances,
    figure2_packets_pi,
    figure2_packets_pi_prime,
    hotspot_workload,
    incast_workload,
    all_to_all_workload,
    iter_all_to_all_workload,
    iter_batch_arrivals,
    iter_bursty_workload,
    iter_deterministic_arrivals,
    iter_elephant_mice_workload,
    iter_figure1_packets,
    iter_figure2_packets_pi,
    iter_figure2_packets_pi_prime,
    iter_hotspot_workload,
    iter_incast_workload,
    iter_onoff_arrivals,
    iter_packet_trace,
    iter_packet_trace_chunks,
    iter_packet_trace_jsonl,
    iter_permutation_workload,
    iter_poisson_arrivals,
    iter_uniform_random_workload,
    iter_zipf_workload,
    onoff_arrivals,
    permutation_workload,
    poisson_arrivals,
    read_packet_trace_jsonl,
    stream_packets,
    uniform_random_workload,
    uniform_weights,
    write_packet_trace,
    write_packet_trace_jsonl,
    zipf_workload,
)

from itertools import islice


@pytest.fixture(scope="module")
def topo():
    return projector_fabric(num_racks=4, lasers_per_rack=2, photodetectors_per_rack=2, seed=3)


# ---------------------------------------------------------------------- #
# lazy generators match their materialising wrappers
# ---------------------------------------------------------------------- #
class TestGeneratorDeterminism:
    """iter_* and the list wrapper yield identical sequences for a fixed seed."""

    def test_arrival_processes(self):
        assert list(islice(iter_poisson_arrivals(2.0, seed=11), 500)) == poisson_arrivals(
            500, 2.0, seed=11
        )
        assert list(islice(iter_deterministic_arrivals(0.5, start=2), 100)) == (
            deterministic_arrivals(100, 0.5, start=2)
        )
        assert list(islice(iter_batch_arrivals(3, gap=2), 12)) == batch_arrivals(4, 3, gap=2)
        assert list(islice(iter_onoff_arrivals(3.0, 5, 10, seed=7), 400)) == onoff_arrivals(
            400, 3.0, 5, 10, seed=7
        )

    @pytest.mark.parametrize(
        "iter_fn,list_fn,kwargs",
        [
            (iter_uniform_random_workload, uniform_random_workload, {"num_packets": 300, "arrival_rate": 1.5}),
            (iter_uniform_random_workload, uniform_random_workload, {"num_packets": 120}),
            (iter_permutation_workload, permutation_workload, {"num_packets": 200, "arrival_rate": 2.0}),
            (iter_hotspot_workload, hotspot_workload, {"num_packets": 150, "num_hotspots": 2, "arrival_rate": 1.0}),
            (iter_zipf_workload, zipf_workload, {"num_packets": 250, "exponent": 1.3, "arrival_rate": 2.0}),
            (iter_elephant_mice_workload, elephant_mice_workload, {"num_packets": 180, "arrival_rate": 1.5}),
            (iter_bursty_workload, bursty_workload, {"num_packets": 220}),
        ],
        ids=["uniform-poisson", "uniform-deterministic", "permutation", "hotspot", "zipf", "elephant-mice", "bursty"],
    )
    def test_random_generators(self, topo, iter_fn, list_fn, kwargs):
        lazy = list(iter_fn(topo, seed=42, **kwargs))
        materialised = list_fn(topo, seed=42, **kwargs)
        assert lazy == materialised
        arrivals = [p.arrival for p in lazy]
        assert arrivals == sorted(arrivals)
        assert [p.packet_id for p in lazy] == list(range(len(lazy)))

    def test_structured_generators(self, topo):
        assert list(
            iter_all_to_all_workload(topo, packets_per_pair=2, weight_sampler=uniform_weights(1, 5), seed=9)
        ) == all_to_all_workload(topo, packets_per_pair=2, weight_sampler=uniform_weights(1, 5), seed=9)
        assert list(iter_incast_workload(topo, num_senders=3, packets_per_sender=2, seed=9)) == (
            incast_workload(topo, num_senders=3, packets_per_sender=2, seed=9)
        )

    def test_standard_projector_workload_matches_instances(self):
        """The CLI's streaming workload factory reproduces the E7 suite exactly."""
        from repro.experiments import standard_projector_instances, standard_projector_workload

        instances = standard_projector_instances(num_racks=4, lasers_per_rack=2, num_packets=60, seed=9)
        for pattern, instance in instances.items():
            topo, stream = standard_projector_workload(
                pattern, num_racks=4, lasers_per_rack=2, num_packets=60, seed=9
            )
            assert topo.name == instance.topology.name
            assert list(stream) == instance.packets

    def test_standard_projector_workload_rejects_unknown_pattern(self):
        from repro.exceptions import ExperimentError
        from repro.experiments import standard_projector_workload

        with pytest.raises(ExperimentError, match="unknown workload pattern"):
            standard_projector_workload("nope")

    def test_paper_figures(self):
        assert list(iter_figure1_packets()) == figure1_packets()
        assert list(iter_figure2_packets_pi()) == figure2_packets_pi()
        assert list(iter_figure2_packets_pi_prime()) == figure2_packets_pi_prime()

    def test_explicit_unsorted_arrivals_still_sorted(self, topo):
        """Explicit out-of-order arrival lists keep the historical build_packets order."""
        packets = uniform_random_workload(topo, 3, arrivals=[5, 3, 4], seed=0)
        assert [p.arrival for p in packets] == [3, 4, 5]
        assert [p.packet_id for p in packets] == [0, 1, 2]
        assert packets == list(iter_uniform_random_workload(topo, 3, arrivals=[5, 3, 4], seed=0))

    def test_stream_packets_rejects_out_of_order_arrivals(self):
        specs = [
            PacketSpec(source="s", destination="d", weight=1.0, arrival=5),
            PacketSpec(source="s", destination="d", weight=1.0, arrival=2),
        ]
        with pytest.raises(WorkloadError, match="non-decreasing"):
            list(stream_packets(specs))

    def test_generators_are_lazy(self, topo):
        """Pulling k packets must not consume the whole stream."""
        stream = iter_uniform_random_workload(topo, 10**9, arrival_rate=2.0, seed=1)
        head = list(islice(stream, 5))
        assert [p.packet_id for p in head] == [0, 1, 2, 3, 4]


# ---------------------------------------------------------------------- #
# aggregate retention matches full retention bit-for-bit
# ---------------------------------------------------------------------- #
class TestAggregateRetention:
    def _check_instance(self, instance, policy_factory):
        full = simulate(instance.topology, policy_factory(), instance.packets)
        agg = simulate(
            instance.topology, policy_factory(), instance.iter_packets(), retention="aggregate"
        )
        assert agg.all_delivered
        assert agg.summary() == full.summary()
        assert agg.total_weighted_latency == full.total_weighted_latency
        assert agg.total_alpha == full.total_alpha
        assert agg.mean_flow_completion_time == full.mean_flow_completion_time
        assert matching_occupancy(agg) == matching_occupancy(full)
        assert len(agg) == len(full)
        assert agg.num_slots == full.num_slots

    def test_e1_figure1(self):
        self._check_instance(figure1_instance(), OpportunisticLinkScheduler)

    def test_e2_figure2(self):
        for instance in figure2_instances().values():
            self._check_instance(instance, OpportunisticLinkScheduler)

    def test_generated_workload_both_policies(self, topo):
        packets = uniform_random_workload(
            topo, 2000, weight_sampler=uniform_weights(1, 10), arrival_rate=1.5, seed=5
        )
        for factory in (OpportunisticLinkScheduler, make_fifo_policy):
            full = simulate(topo, factory(), packets)
            agg = simulate(topo, factory(), iter(packets), retention="aggregate")
            assert agg.summary() == full.summary()

    def test_streaming_end_to_end_without_materialising(self, topo):
        """Engine consumes the lazy generator directly."""
        result = simulate(
            topo,
            OpportunisticLinkScheduler(),
            iter_uniform_random_workload(topo, 1500, arrival_rate=1.5, seed=8),
            retention="aggregate",
        )
        reference = simulate(
            topo,
            OpportunisticLinkScheduler(),
            uniform_random_workload(topo, 1500, arrival_rate=1.5, seed=8),
        )
        assert result.summary() == reference.summary()

    def test_aggregate_refuses_per_packet_accessors(self):
        instance = figure1_instance()
        agg = simulate(
            instance.topology, OpportunisticLinkScheduler(), instance.iter_packets(),
            retention="aggregate",
        )
        for call in (agg.weighted_latencies, agg.flow_completion_times, agg.chunk_records):
            with pytest.raises(ValueError, match="retention"):
                call()
        with pytest.raises(ValueError, match="retention"):
            agg.record(0)

    def test_aggregate_rejects_out_of_order_stream(self, topo):
        packets = uniform_random_workload(topo, 20, seed=3)
        shuffled = [packets[1], packets[0]] + packets[2:]
        with pytest.raises(SimulationError, match="strictly increasing"):
            simulate(topo, OpportunisticLinkScheduler(), iter(shuffled), retention="aggregate")

    def test_aggregate_rejects_unroutable_packet(self, topo):
        # Same-rack pairs have no edges on the projector fabric.
        bad = Packet(packet_id=0, source="rack0:src", destination="rack0:dst", weight=1.0, arrival=1)
        with pytest.raises(SimulationError, match="cannot be routed"):
            simulate(topo, OpportunisticLinkScheduler(), iter([bad]), retention="aggregate")

    def test_invalid_retention_rejected(self):
        with pytest.raises(ValueError, match="retention"):
            EngineConfig(retention="bogus")

    def test_aggregate_with_slot_skipping_disabled(self, topo):
        """The walk and the skip agree in aggregate mode too."""
        packets = uniform_random_workload(topo, 200, arrival_rate=0.05, seed=13)
        skip = SimulationEngine(
            topo, OpportunisticLinkScheduler(), EngineConfig(retention="aggregate")
        ).run(iter(packets))
        walk = SimulationEngine(
            topo,
            OpportunisticLinkScheduler(),
            EngineConfig(retention="aggregate", slot_skipping=False),
        ).run(iter(packets))
        assert skip.summary() == walk.summary()


# ---------------------------------------------------------------------- #
# compensated summation (satellite regression)
# ---------------------------------------------------------------------- #
class TestCompensatedSummation:
    def test_matches_fsum_where_naive_sum_drifts(self):
        # One cancellation cycle: Neumaier recovers the exact (fsum) total,
        # a naive running sum loses the small addends entirely.
        values = [1e16, 1.0, -1e16, 1.0]
        assert compensated_total(values) == math.fsum(values) == 2.0
        assert sum(values) == 1.0  # the drift the satellite fixes

    def test_stays_close_to_fsum_under_repeated_cancellation(self):
        values = [1e16, 1.0, -1e16, 1.0] * 500 + [0.1] * 1000
        exact = math.fsum(values)
        compensated_error = abs(compensated_total(values) - exact)
        naive_error = abs(sum(values) - exact)
        assert compensated_error <= 1e-11 * abs(exact)
        assert naive_error > 100 * max(compensated_error, 1e-30)

    def test_large_n_weighted_latency_total_matches_fsum(self, topo):
        packets = uniform_random_workload(
            topo, 3000, weight_sampler=uniform_weights(1, 10), arrival_rate=2.0, seed=21
        )
        result = simulate(topo, OpportunisticLinkScheduler(), packets)
        per_packet = result.weighted_latencies()
        # records iterate in dispatch order == packet-id order for canonical instances
        assert result.total_weighted_latency == math.fsum(per_packet)

    def test_compensated_sum_incremental(self):
        acc = CompensatedSum()
        for v in (1e16, 1.0, -1e16):
            acc.add(v)
        assert acc.value == 1.0
        assert float(acc) == 1.0


# ---------------------------------------------------------------------- #
# pending-chunk pool incremental counters (satellite)
# ---------------------------------------------------------------------- #
class TestPoolCounters:
    def _chunks(self, n, delay=2):
        packet = Packet(packet_id=0, source="s", destination="d", weight=2.0, arrival=1)
        return split_into_chunks(packet, "t", "r", edge_delay=delay)[:n]

    def test_len_and_pending_work_incremental(self):
        pool = PendingChunkPool()
        assert len(pool) == 0
        assert pool.total_pending_work() == 0.0
        chunks = self._chunks(2)
        pool.add_all(chunks)
        assert len(pool) == 2
        assert pool.total_pending_work() == pytest.approx(2.0)
        # engine protocol: mutate remaining_work, report via debit_work
        chunks[0].remaining_work -= 0.5
        pool.debit_work(0.5)
        assert pool.total_pending_work() == pytest.approx(1.5)
        chunks[0].remaining_work = 0.0
        pool.debit_work(0.5)
        pool.remove(chunks[0])
        assert len(pool) == 1
        assert pool.total_pending_work() == pytest.approx(1.0)
        chunks[1].remaining_work = 0.0
        pool.debit_work(1.0)
        pool.remove(chunks[1])
        assert len(pool) == 0
        assert pool.total_pending_work() == 0.0  # exact reset when empty

    def test_clear_resets_counters(self):
        pool = PendingChunkPool()
        pool.add_all(self._chunks(2))
        pool.clear()
        assert len(pool) == 0
        assert pool.total_pending_work() == 0.0

    def test_counters_track_engine_run(self, topo):
        packets = uniform_random_workload(topo, 300, arrival_rate=2.0, seed=2)
        result = simulate(topo, OpportunisticLinkScheduler(), packets)
        assert result.all_delivered  # run drains the pool through debit/remove


# ---------------------------------------------------------------------- #
# streamed trace IO
# ---------------------------------------------------------------------- #
class TestTraceStreaming:
    def test_csv_lazy_reader_roundtrip(self, topo, tmp_path):
        packets = uniform_random_workload(topo, 100, arrival_rate=2.0, seed=4)
        path = write_packet_trace(packets, tmp_path / "trace.csv")
        assert list(iter_packet_trace(path)) == packets

    def test_jsonl_roundtrip_streaming_writer(self, topo, tmp_path):
        path = tmp_path / "trace.jsonl"
        write_packet_trace_jsonl(
            iter_uniform_random_workload(topo, 200, arrival_rate=1.5, seed=6), path
        )
        expected = uniform_random_workload(topo, 200, arrival_rate=1.5, seed=6)
        assert read_packet_trace_jsonl(path) == expected
        assert list(iter_packet_trace_jsonl(path, chunk_size=17)) == expected
        chunks = list(iter_packet_trace_chunks(path, chunk_size=64))
        assert [len(c) for c in chunks] == [64, 64, 64, 8]
        assert [p for chunk in chunks for p in chunk] == expected

    def test_jsonl_reader_rejects_out_of_order(self, topo, tmp_path):
        packets = uniform_random_workload(topo, 5, seed=1)
        path = write_packet_trace_jsonl(reversed(packets), tmp_path / "bad.jsonl")
        with pytest.raises(WorkloadError, match="strictly increasing"):
            list(iter_packet_trace_jsonl(path))

    def test_slot_trace_jsonl_stream_matches_in_memory(self, tmp_path):
        instance = figure1_instance()
        path = tmp_path / "slots.jsonl"
        streamed = simulate(
            instance.topology,
            OpportunisticLinkScheduler(),
            instance.packets,
            record_trace=True,
            trace_path=str(path),
        )
        replayed = read_simulation_trace(path)
        assert len(replayed) == len(streamed.trace)
        for disk, memory in zip(replayed, streamed.trace):
            assert disk == memory

    def test_slot_trace_streaming_without_in_memory_trace(self, topo, tmp_path):
        """trace_path alone streams slots to disk while result.trace stays None."""
        packets = uniform_random_workload(topo, 50, arrival_rate=1.0, seed=9)
        path = tmp_path / "slots.jsonl"
        result = simulate(
            topo, OpportunisticLinkScheduler(), packets, trace_path=str(path)
        )
        assert result.trace is None
        trace = read_simulation_trace(path)
        assert len(trace) == result.num_slots
        transmitted = sum(len(s.transmissions) for s in trace)
        assert transmitted > 0
