"""Tests for repro.network.serialization."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import TopologyError
from repro.network import (
    figure1_topology,
    load_topology,
    projector_fabric,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)


class TestDictRoundTrip:
    def test_roundtrip_equality_figure1(self):
        topo = figure1_topology()
        assert topology_from_dict(topology_to_dict(topo)) == topo

    def test_roundtrip_equality_projector(self):
        topo = projector_fabric(num_racks=3, seed=4)
        assert topology_from_dict(topology_to_dict(topo)) == topo

    def test_dict_is_json_compatible(self):
        data = topology_to_dict(figure1_topology())
        json.dumps(data)  # must not raise

    def test_roundtrip_preserves_delays(self):
        topo = figure1_topology()
        clone = topology_from_dict(topology_to_dict(topo))
        assert clone.fixed_link_delay("s2", "d3") == 4
        assert clone.edge_delay("t1", "r1") == 1

    def test_unknown_version_rejected(self):
        data = topology_to_dict(figure1_topology())
        data["format_version"] = 99
        with pytest.raises(TopologyError):
            topology_from_dict(data)

    def test_missing_field_rejected(self):
        data = topology_to_dict(figure1_topology())
        del data["transmitters"]
        with pytest.raises(TopologyError):
            topology_from_dict(data)

    def test_roundtrip_result_is_frozen(self):
        clone = topology_from_dict(topology_to_dict(figure1_topology()))
        assert clone.frozen


class TestFileRoundTrip:
    def test_save_and_load(self, tmp_path):
        topo = figure1_topology()
        path = save_topology(topo, tmp_path / "topo.json")
        assert load_topology(path) == topo

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TopologyError):
            load_topology(path)
