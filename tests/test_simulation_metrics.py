"""Tests for repro.simulation.metrics and repro.simulation.results."""

from __future__ import annotations

import pytest

from repro.core import OpportunisticLinkScheduler, Packet
from repro.simulation import (
    compare_policies,
    completion_time_statistics,
    latency_statistics,
    matching_occupancy,
    per_source_latency,
    recompute_weighted_latency,
    simulate,
)
from repro.baselines import make_fifo_policy
from repro.workloads import figure1_instance, uniform_random_workload


@pytest.fixture
def fig1_result(fig1_instance):
    return simulate(fig1_instance.topology, OpportunisticLinkScheduler(), fig1_instance.packets)


class TestResultAccessors:
    def test_summary_fields(self, fig1_result):
        summary = fig1_result.summary()
        assert summary["num_packets"] == 5
        assert summary["total_weighted_latency"] == pytest.approx(7.0)
        assert 0 <= summary["fixed_link_fraction"] <= 1

    def test_total_alpha(self, fig1_result):
        assert fig1_result.total_alpha == pytest.approx(sum(r.alpha for r in fig1_result))

    def test_packets_sorted_by_id(self, fig1_result):
        ids = [p.packet_id for p in fig1_result.packets]
        assert ids == sorted(ids)

    def test_flow_completion_times(self, fig1_result):
        fct = fig1_result.flow_completion_times()
        assert len(fct) == 5
        assert all(v >= 1 for v in fct)

    def test_chunk_records_only_reconfigurable(self, fig1_result):
        chunks = fig1_result.chunk_records()
        assert len(chunks) == 5  # all five packets used delay-1 edges
        assert all(c.delivered for c in chunks)

    def test_record_lookup(self, fig1_result):
        assert fig1_result.record(4).packet.packet_id == 4
        with pytest.raises(KeyError):
            fig1_result.record(99)

    def test_incomplete_record_raises_on_fct(self):
        from repro.core.packet import EdgeAssignment, split_into_chunks
        from repro.simulation.results import PacketRecord

        p = Packet(0, "s", "d", 1.0, 1)
        rec = PacketRecord(
            packet=p,
            assignment=EdgeAssignment(p, "t", "r", 1, 1.0, split_into_chunks(p, "t", "r", 1)),
        )
        assert not rec.delivered
        with pytest.raises(ValueError):
            _ = rec.flow_completion_time


class TestMetrics:
    def test_latency_statistics_consistency(self, fig1_result):
        stats = latency_statistics(fig1_result)
        assert stats.count == 5
        assert stats.total == pytest.approx(7.0)
        assert stats.maximum >= stats.median >= 0
        assert stats.as_dict()["total"] == pytest.approx(7.0)

    def test_completion_time_statistics(self, fig1_result):
        stats = completion_time_statistics(fig1_result)
        assert stats.count == 5
        assert stats.maximum == pytest.approx(2.0)

    def test_empty_statistics(self, line_topology):
        result = simulate(line_topology, OpportunisticLinkScheduler(), [])
        stats = latency_statistics(result)
        assert stats.count == 0 and stats.total == 0.0

    def test_matching_occupancy(self, fig1_result):
        occ = matching_occupancy(fig1_result)
        assert 0 < occ["mean"] <= occ["max"] <= 4
        assert occ["nonempty_fraction"] == 1.0

    def test_recompute_matches_engine_accounting(self, small_instance):
        result = simulate(
            small_instance.topology, OpportunisticLinkScheduler(), small_instance.packets
        )
        assert recompute_weighted_latency(result) == pytest.approx(
            result.total_weighted_latency
        )

    def test_recompute_matches_on_figure1(self, fig1_result):
        assert recompute_weighted_latency(fig1_result) == pytest.approx(7.0)

    def test_per_source_latency_sums_to_total(self, fig1_result):
        by_source = per_source_latency(fig1_result)
        assert sum(by_source.values()) == pytest.approx(7.0)
        assert set(by_source) == {"s1", "s2"}

    def test_compare_policies_ratios(self, small_instance):
        alg = simulate(
            small_instance.topology, OpportunisticLinkScheduler(), small_instance.packets
        )
        fifo = simulate(small_instance.topology, make_fifo_policy(), small_instance.packets)
        rows = compare_policies([alg, fifo])
        assert len(rows) == 2
        best = min(r["total_weighted_latency"] for r in rows)
        assert all(r["ratio_to_best"] >= 1.0 - 1e-12 for r in rows)
        assert any(r["total_weighted_latency"] == best for r in rows)

    def test_compare_policies_empty(self):
        assert compare_policies([]) == []
