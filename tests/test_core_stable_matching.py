"""Tests for repro.core.stable_matching."""

from __future__ import annotations

import pytest

from repro.core.packet import Packet, split_into_chunks
from repro.core.stable_matching import (
    blocking_chunk,
    greedy_stable_matching,
    greedy_stable_matching_on_edges,
    is_chunk_matching,
    is_stable_edge_matching,
    is_stable_matching,
)


def chunk(pid: int, weight: float, edge, arrival: int = 1):
    packet = Packet(pid, "s", "d", weight=weight, arrival=arrival)
    return split_into_chunks(packet, edge[0], edge[1], edge_delay=1)[0]


class TestGreedyStableMatching:
    def test_empty_input(self):
        assert greedy_stable_matching([]) == []

    def test_single_chunk_selected(self):
        c = chunk(0, 1.0, ("t", "r"))
        assert greedy_stable_matching([c]) == [c]

    def test_conflict_resolved_by_weight(self):
        heavy = chunk(0, 5.0, ("t", "r1"))
        light = chunk(1, 1.0, ("t", "r2"))
        selected = greedy_stable_matching([light, heavy])
        assert heavy in selected and light not in selected

    def test_non_conflicting_chunks_all_selected(self):
        a = chunk(0, 1.0, ("t1", "r1"))
        b = chunk(1, 2.0, ("t2", "r2"))
        assert set(greedy_stable_matching([a, b])) == {a, b}

    def test_weight_tie_broken_by_arrival(self):
        early = chunk(1, 2.0, ("t", "r1"), arrival=1)
        late = chunk(0, 2.0, ("t", "r2"), arrival=3)
        selected = greedy_stable_matching([late, early])
        assert early in selected and late not in selected

    def test_result_is_matching_and_stable(self):
        chunks = [
            chunk(0, 3.0, ("t1", "r1")),
            chunk(1, 2.0, ("t1", "r2")),
            chunk(2, 5.0, ("t2", "r1")),
            chunk(3, 1.0, ("t2", "r2")),
            chunk(4, 4.0, ("t3", "r3")),
        ]
        selected = greedy_stable_matching(chunks)
        assert is_chunk_matching(selected)
        assert is_stable_matching(selected, chunks)

    def test_receiver_conflict(self):
        a = chunk(0, 3.0, ("t1", "r"))
        b = chunk(1, 2.0, ("t2", "r"))
        selected = greedy_stable_matching([a, b])
        assert selected == [a]


class TestStabilityVerifiers:
    def test_non_matching_rejected(self):
        a = chunk(0, 3.0, ("t", "r1"))
        b = chunk(1, 2.0, ("t", "r2"))
        assert not is_chunk_matching([a, b])
        assert not is_stable_matching([a, b], [a, b])

    def test_unstable_matching_detected(self):
        heavy = chunk(0, 5.0, ("t1", "r1"))
        light = chunk(1, 1.0, ("t2", "r2"))
        # Selecting only the light chunk leaves the heavy one unblocked.
        assert not is_stable_matching([light], [heavy, light])

    def test_blocking_chunk_found(self):
        heavy = chunk(0, 5.0, ("t", "r1"))
        light = chunk(1, 1.0, ("t", "r2"))
        assert blocking_chunk(light, [heavy]) is heavy

    def test_blocking_chunk_none_for_disjoint(self):
        a = chunk(0, 5.0, ("t1", "r1"))
        b = chunk(1, 1.0, ("t2", "r2"))
        assert blocking_chunk(b, [a]) is None

    def test_lighter_chunk_does_not_block(self):
        light = chunk(1, 1.0, ("t", "r2"))
        heavy = chunk(0, 5.0, ("t", "r1"))
        assert blocking_chunk(heavy, [light]) is None


class TestEdgeLevelMatching:
    def test_matches_figure2_pi(self):
        # Edge weights as in Figure 2 for Π: (s1,d1)=1, (s1,d2)=2, (s2,d2)=3.
        weights = {("t1", "r1"): 1.0, ("t1", "r2"): 2.0, ("t2", "r2"): 3.0}
        matching = greedy_stable_matching_on_edges(weights)
        assert ("t2", "r2") in matching and ("t1", "r1") in matching
        assert ("t1", "r2") not in matching

    def test_matches_figure2_pi_prime(self):
        weights = {
            ("t1", "r1"): 1.0,
            ("t1", "r2"): 2.0,
            ("t2", "r2"): 3.0,
            ("t2", "r3"): 4.0,
        }
        matching = greedy_stable_matching_on_edges(weights)
        assert set(matching) == {("t2", "r3"), ("t1", "r2")}

    def test_stability_of_greedy_edge_matching(self):
        weights = {(f"t{i}", f"r{j}"): float(i * 3 + j + 1) for i in range(3) for j in range(3)}
        matching = greedy_stable_matching_on_edges(weights)
        assert is_stable_edge_matching(matching, weights)

    def test_unstable_edge_matching_detected(self):
        weights = {("t1", "r1"): 1.0, ("t2", "r2"): 5.0}
        assert not is_stable_edge_matching([("t1", "r1")], weights)

    def test_non_matching_edge_set_detected(self):
        weights = {("t1", "r1"): 1.0, ("t1", "r2"): 2.0}
        assert not is_stable_edge_matching([("t1", "r1"), ("t1", "r2")], weights)
