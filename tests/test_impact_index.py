"""Differential tests for the incremental impact index.

The index must reproduce the reference adjacency scan **bit for bit** — the
engine's ``indexed``/``reference`` knob is only sound because both paths
compute identical floats.  The tests here attack that claim directly:

* a property-based random walk of insert/debit/complete operations compares
  ``(num_heavier, num_lighter, lighter_weight)`` against a naive recount at
  every step, across every key the walk has touched;
* dedicated tie-weight cases pin the ``>=`` (ties count as heavier) rule;
* pool integration tests check that :func:`compute_edge_impact_indexed`
  equals :func:`compute_edge_impact` on live pools, that backfilled indexes
  match incrementally built ones, and that the impact fingerprint is a true
  multiset invariant.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dispatcher import compute_edge_impact, compute_edge_impact_indexed
from repro.core.impact_index import ImpactIndex, WeightStats
from repro.core.packet import Chunk, Packet
from repro.core.queues import PendingChunkPool
from repro.exceptions import SimulationError
from repro.network.builders import single_tier_crossbar


def make_chunk(
    packet_id: int, weight: float, transmitter: str, receiver: str
) -> Chunk:
    """A standalone pending chunk (the index reads only t, r and weight)."""
    packet = Packet(
        packet_id=packet_id, source="s", destination="d", weight=weight, arrival=1
    )
    return Chunk(
        packet=packet,
        index=1,
        size=1.0,
        weight=weight,
        transmitter=transmitter,
        receiver=receiver,
        eligible_time=1,
        tail_delay=0,
    )


def naive_stats(
    chunks: List[Chunk], transmitter: str, receiver: str, weight: float
) -> Tuple[int, int, float]:
    """The canonical answer: scan + tie rule + correctly rounded exact sum."""
    adjacent = [
        c for c in chunks if c.transmitter == transmitter or c.receiver == receiver
    ]
    heavier = sum(1 for c in adjacent if c.weight >= weight)
    lighter = [c.weight for c in adjacent if c.weight < weight]
    return heavier, len(lighter), math.fsum(lighter)


# ---------------------------------------------------------------------- #
# WeightStats: the per-key multiset
# ---------------------------------------------------------------------- #
def test_weight_stats_tie_counts_as_heavier() -> None:
    stats = WeightStats()
    for w in (2.0, 2.0, 1.0, 3.0):
        stats.insert(w)
    heavier, lighter, mantissa = stats.query(2.0)
    assert (heavier, lighter) == (3, 1)  # both 2.0s and the 3.0 are "heavier"
    assert mantissa / (1 << stats.scale) == 1.0


def test_weight_stats_interleaved_mutations_and_queries() -> None:
    stats = WeightStats()
    stats.insert(5.0)
    stats.insert(1.0)
    assert stats.query(3.0)[:2] == (1, 1)
    stats.insert(2.0)  # invalidates the cached prefix below rank 2
    assert stats.query(3.0)[:2] == (1, 2)
    stats.remove(1.0)
    heavier, lighter, mantissa = stats.query(10.0)
    assert (heavier, lighter) == (0, 2)
    assert mantissa / (1 << stats.scale) == 7.0


def test_weight_stats_scale_widens_for_fine_mantissas() -> None:
    stats = WeightStats()
    stats.insert(3.0)            # integral: scale stays 0
    assert stats.scale == 0
    tiny = 2.0**-40
    stats.insert(tiny)           # needs 40 fractional bits
    assert stats.scale == 40
    heavier, lighter, mantissa = stats.query(1.0)
    assert (heavier, lighter) == (1, 1)
    assert mantissa / (1 << stats.scale) == tiny


# ---------------------------------------------------------------------- #
# property-based differential walk
# ---------------------------------------------------------------------- #
_NODES = ("t0", "t1", "t2")
_RECEIVERS = ("r0", "r1", "r2")

# Weights drawn from a mix of "nice" values (forcing exact ties) and raw
# positive floats (forcing inexact sums where addition order would matter).
_WEIGHTS = st.one_of(
    st.sampled_from([1.0, 2.0, 2.0, 0.5, 10.0, 1 / 3, 0.1, 7.7]),
    st.floats(
        min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "query"]),
        st.sampled_from(_NODES),
        st.sampled_from(_RECEIVERS),
        _WEIGHTS,
    ),
    min_size=1,
    max_size=120,
)


@settings(max_examples=120, deadline=None)
@given(ops=_OPS)
def test_index_matches_naive_scan_on_random_walks(ops) -> None:
    """Random mutations + queries: the index equals the recount at every step."""
    index = ImpactIndex()
    live: List[Chunk] = []
    next_id = 0
    for op, transmitter, receiver, weight in ops:
        if op == "add" or (op == "remove" and not live):
            chunk = make_chunk(next_id, weight, transmitter, receiver)
            next_id += 1
            live.append(chunk)
            index.add(chunk)
        elif op == "remove":
            chunk = live.pop(next_id % len(live))
            index.discard(chunk)
        # After every mutation (and for explicit queries), cross-check every
        # (transmitter, receiver) pair against the naive recount.
        for t in _NODES:
            for r in _RECEIVERS:
                expected = naive_stats(live, t, r, weight)
                assert index.query(t, r, weight) == expected, (op, t, r, weight)


@settings(max_examples=60, deadline=None)
@given(
    weights=st.lists(_WEIGHTS, min_size=1, max_size=40),
    query=_WEIGHTS,
)
def test_lighter_sum_is_order_independent_and_exact(weights, query) -> None:
    """Insertion order never changes the exact lighter-weight sum."""
    forward = WeightStats()
    for w in weights:
        forward.insert(w)
    backward = WeightStats()
    for w in reversed(weights):
        backward.insert(w)
    f = forward.query(query)
    b = backward.query(query)
    assert f[:2] == b[:2]
    assert f[2] / (1 << forward.scale) == b[2] / (1 << backward.scale)
    assert f[2] / (1 << forward.scale) == math.fsum(w for w in weights if w < query)


# ---------------------------------------------------------------------- #
# pool integration
# ---------------------------------------------------------------------- #
def _crossbar_pool_fixture() -> Tuple[PendingChunkPool, List[Chunk]]:
    pool = PendingChunkPool(impact_index=True)
    chunks = [
        make_chunk(0, 4.0, "t:in1", "r:out1"),
        make_chunk(1, 4.0, "t:in1", "r:out2"),
        make_chunk(2, 1.5, "t:in2", "r:out1"),
        make_chunk(3, 0.25, "t:in2", "r:out2"),
    ]
    pool.add_all(chunks)
    return pool, chunks


def test_pool_indexed_impact_equals_reference_scan() -> None:
    topo = single_tier_crossbar(3)
    pool = PendingChunkPool(impact_index=True)
    packets = [
        Packet(packet_id=i, source=f"s{i % 3}", destination=f"d{(i + 1) % 3}",
               weight=1.0 + 0.7 * i, arrival=1)
        for i in range(9)
    ]
    from repro.core.dispatcher import ImpactDispatcher

    dispatcher = ImpactDispatcher()
    for packet in packets:
        # Compare every candidate's breakdown before committing the packet.
        for (t, r) in topo.candidate_edges(packet.source, packet.destination):
            assert compute_edge_impact_indexed(packet, t, r, topo, pool) == \
                compute_edge_impact(packet, t, r, topo, pool)
        assignment = dispatcher.dispatch(packet, topo, pool, packet.arrival)
        if not assignment.uses_fixed_link:
            pool.add_all(assignment.chunks)


def test_indexed_impact_requires_enabled_index() -> None:
    topo = single_tier_crossbar(2)
    pool = PendingChunkPool()
    packet = Packet(packet_id=0, source="in1", destination="out1", weight=1.0, arrival=1)
    with pytest.raises(SimulationError, match="impact index"):
        compute_edge_impact_indexed(packet, "t:in1", "r:out1", topo, pool)


def test_enable_impact_index_backfills_existing_chunks() -> None:
    pool, chunks = _crossbar_pool_fixture()
    late = PendingChunkPool()
    late.add_all(chunks2 := [make_chunk(10 + i, c.weight, c.transmitter, c.receiver)
                             for i, c in enumerate(chunks)])
    assert late.impact_index is None
    index = late.enable_impact_index()
    assert late.impact_index is index
    assert late.enable_impact_index() is index  # idempotent
    for t in ("t:in1", "t:in2"):
        for r in ("r:out1", "r:out2"):
            for w in (0.2, 1.5, 4.0, 9.0):
                assert index.query(t, r, w) == pool.impact_index.query(t, r, w)
    # Later mutations keep a backfilled index in sync.
    late.remove(chunks2[0])
    extra = make_chunk(99, 2.5, "t:in1", "r:out1")
    late.add(extra)
    reference = [c for c in chunks2[1:]] + [extra]
    for t in ("t:in1", "t:in2"):
        for r in ("r:out1", "r:out2"):
            assert index.query(t, r, 2.0) == naive_stats(reference, t, r, 2.0)


def test_pool_clear_resets_index_and_fingerprint() -> None:
    pool, _ = _crossbar_pool_fixture()
    assert pool.impact_fingerprint != 0
    pool.clear()
    assert pool.impact_fingerprint == 0
    assert pool.impact_index.query("t:in1", "r:out1", 1.0) == (0, 0, 0.0)


def test_impact_fingerprint_is_a_multiset_invariant() -> None:
    a = PendingChunkPool()
    b = PendingChunkPool()
    chunks_a = [make_chunk(i, w, t, r) for i, (w, t, r) in enumerate(
        [(1.0, "t0", "r0"), (2.0, "t1", "r1"), (1.0, "t0", "r1")]
    )]
    # Same (t, r, weight) multiset, different packet ids and insertion order.
    chunks_b = [make_chunk(50 + i, w, t, r) for i, (w, t, r) in enumerate(
        [(1.0, "t0", "r1"), (1.0, "t0", "r0"), (2.0, "t1", "r1")]
    )]
    a.add_all(chunks_a)
    b.add_all(chunks_b)
    assert a.impact_fingerprint == b.impact_fingerprint
    # Removing a chunk changes it; re-adding an equivalent one restores it.
    removed = chunks_a[0]
    a.remove(removed)
    assert a.impact_fingerprint != b.impact_fingerprint
    a.add(make_chunk(77, removed.weight, removed.transmitter, removed.receiver))
    assert a.impact_fingerprint == b.impact_fingerprint


def test_index_discard_drops_empty_keys() -> None:
    index = ImpactIndex()
    chunk = make_chunk(0, 1.0, "t0", "r0")
    index.add(chunk)
    assert index.query("t0", "r0", 2.0) == (0, 1, 1.0)
    index.discard(chunk)
    assert index._tx == {} and index._rx == {} and index._edge == {}
    assert index.query("t0", "r0", 2.0) == (0, 0, 0.0)
