"""E1 — Figure 1 worked example.

Regenerates the costs the paper states for the Figure 1 instance: the
tabulated feasible schedule costs 9 (packet p5 over the fixed link), the
optimal schedule costs 7 (p5 over edge (t3, r4) in the third slot), and the
paper's online algorithm ALG attains the optimal cost 7 on this instance.
"""

from __future__ import annotations

import pytest


from repro.analysis import solve_lp_lower_bound
from repro.baselines import brute_force_optimal
from repro.core import OpportunisticLinkScheduler
from repro.simulation import simulate
from repro.utils.tables import format_table
from repro.workloads import figure1_instance, figure1_reported_costs


def regenerate_figure1():
    instance = figure1_instance()
    alg = simulate(instance.topology, OpportunisticLinkScheduler(), instance.packets)
    optimum = brute_force_optimal(instance)
    lp = solve_lp_lower_bound(instance, capacity=1.0)
    packets = {p.packet_id: p for p in instance.packets}
    paper_feasible = (
        sum(packets[pid].weight * latency for pid, latency in {0: 1, 1: 2, 2: 1, 3: 1}.items())
        + packets[4].weight * instance.topology.fixed_link_delay("s2", "d3")
    )
    return {
        "paper_feasible": paper_feasible,
        "optimal": optimum.cost,
        "lp": lp.objective_value,
        "alg": alg.total_weighted_latency,
    }


def test_e01_figure1_costs(benchmark, run_once, report):
    values = run_once(regenerate_figure1)
    expected = figure1_reported_costs()
    report(
        "E1: Figure 1 worked example",
        format_table(
            ["quantity", "paper", "measured"],
            [
                ["feasible schedule (p5 on fixed link)", expected["feasible_solution"], values["paper_feasible"]],
                ["optimal schedule", expected["optimal_solution"], values["optimal"]],
                ["LP relaxation (Figure 3, capacity 1)", "<= 7", values["lp"]],
                ["ALG (this paper, speed 1)", "n/a", values["alg"]],
            ],
        ),
    )
    assert values["paper_feasible"] == pytest.approx(9.0)
    assert values["optimal"] == pytest.approx(7.0)
    assert values["lp"] == pytest.approx(7.0, abs=1e-6)
    assert values["alg"] == pytest.approx(7.0)
