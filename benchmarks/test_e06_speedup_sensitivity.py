"""E6 — speedup sensitivity (why resource augmentation is necessary).

Runs ALG at speeds 1.0 … 3.0 on a small hybrid instance and normalises its
cost by the speed-1 fractional LP lower bound.  The cost is non-increasing in
the speed, and the gap to the lower bound narrows markedly between speed 1
and speed 2+ε — the regime Theorem 1 needs.
"""

from __future__ import annotations

import pytest

from repro.experiments import small_lp_instances, speedup_sweep
from repro.utils.tables import format_table


SPEEDS = (1.0, 1.5, 2.0, 2.5, 3.0)


def regenerate_speedup_sweep():
    instance = list(small_lp_instances(num_instances=1, num_packets=12, seed=29).values())[0]
    return speedup_sweep(instance, speeds=SPEEDS)


def test_e06_speedup_sensitivity(benchmark, run_once, report):
    rows = run_once(regenerate_speedup_sweep)
    report(
        "E6: ALG cost vs speed (normalised by the speed-1 LP lower bound)",
        format_table(
            ["instance", "speed", "ALG cost", "LP lower bound", "cost / LP"],
            [[r.instance, r.speed, r.algorithm_cost, r.lp_lower_bound, r.ratio] for r in rows],
        ),
    )
    costs = [r.algorithm_cost for r in rows]
    assert costs == sorted(costs, reverse=True)
    # At speed 1 ALG sits at or above the lower bound; extra speed closes the gap.
    assert rows[0].ratio >= 1.0 - 1e-9
    assert rows[-1].ratio <= rows[0].ratio + 1e-9
