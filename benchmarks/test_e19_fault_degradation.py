"""E19 — graceful degradation under hardware faults, and crash-tolerant sweeps.

PR 10's fault subsystem makes two promises this benchmark pins:

* **bounded degradation** — on a hybrid fabric (uniform fixed links as the
  escape hatch) with ``REPRO_E19_FAILED_LASERS`` lasers knocked out for a
  recovery window, the ``on_fail="requeue"`` engine still delivers every
  packet and the weighted-latency ratio versus the fault-free run stays
  under ``REPRO_E19_MAX_DEGRADATION``: a partial outage degrades service,
  it does not collapse it;
* **crash-tolerant sweeps** — a checkpointed experiment sweep whose process
  is SIGKILLed mid-grid resumes from its JSONL checkpoint and produces rows
  bit-identical to an uninterrupted run, re-executing only the missing grid
  points.

Environment knobs (the CI smoke step shrinks the cell; the defaults are the
full-size assertions):

* ``REPRO_E19_PACKETS`` — workload size per run;
* ``REPRO_E19_RACKS`` — fabric size;
* ``REPRO_E19_FAILED_LASERS`` — lasers failed in the outage window;
* ``REPRO_E19_MAX_DEGRADATION`` — maximum weighted-latency ratio;
* ``REPRO_E19_GRID`` — grid points in the crash/resume sweep.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.core import OpportunisticLinkScheduler
from repro.experiments.runner import ExperimentRunner, ExperimentSpec, RunnerConfig
from repro.faults import FaultEvent, FaultSchedule
from repro.network import add_uniform_fixed_links, projector_fabric
from repro.simulation import simulate
from repro.workloads import iter_uniform_random_workload, uniform_weights

E19_PACKETS = int(os.environ.get("REPRO_E19_PACKETS", "2000"))
E19_RACKS = int(os.environ.get("REPRO_E19_RACKS", "24"))
E19_FAILED_LASERS = int(os.environ.get("REPRO_E19_FAILED_LASERS", "8"))
E19_MAX_DEGRADATION = float(os.environ.get("REPRO_E19_MAX_DEGRADATION", "3.0"))
E19_GRID = int(os.environ.get("REPRO_E19_GRID", "6"))


def _hybrid_cell(seed: int = 19):
    fabric = projector_fabric(
        num_racks=E19_RACKS, lasers_per_rack=2, photodetectors_per_rack=2,
        seed=seed,
    )
    topology = add_uniform_fixed_links(fabric, delay=12)
    packets = list(
        iter_uniform_random_workload(
            topology,
            num_packets=E19_PACKETS,
            arrival_rate=4.0,
            weight_sampler=uniform_weights(1, 10),
            seed=seed + 1,
        )
    )
    return topology, packets


def _outage_schedule(topology, k: int) -> FaultSchedule:
    """Fail the first ``k`` lasers at slot 5 and recover them at slot 60."""
    lasers = sorted(topology.transmitters)[:k]
    events = [FaultEvent(slot=5, action="fail", kind="laser", target=name)
              for name in lasers]
    events += [FaultEvent(slot=60, action="recover", kind="laser", target=name)
               for name in lasers]
    return FaultSchedule.from_events(events)


def test_e19_degradation_is_bounded(run_once, report) -> None:
    """k failed lasers slow the fabric down but never strand traffic."""
    topology, packets = _hybrid_cell()
    faults = _outage_schedule(topology, E19_FAILED_LASERS)

    def compare():
        clean = simulate(
            topology, OpportunisticLinkScheduler(), packets,
            engine="indexed", max_slots=10_000_000,
        )
        faulted = simulate(
            topology, OpportunisticLinkScheduler(), packets,
            engine="indexed", max_slots=10_000_000,
            faults=faults, on_fail="requeue",
        )
        return clean.summary(), faulted.summary()

    clean, faulted = run_once(compare)
    ratio = faulted["total_weighted_latency"] / clean["total_weighted_latency"]
    report(
        "E19 fault degradation",
        f"cell: {E19_RACKS} racks, {len(packets)} packets, "
        f"{E19_FAILED_LASERS} lasers failed slots 5-60\n"
        f"clean latency:   {clean['total_weighted_latency']:.1f} "
        f"({clean['num_slots']:.0f} slots)\n"
        f"faulted latency: {faulted['total_weighted_latency']:.1f} "
        f"({faulted['num_slots']:.0f} slots)\n"
        f"ratio: {ratio:.3f} (bound {E19_MAX_DEGRADATION:.1f})",
    )
    assert faulted["num_packets"] == clean["num_packets"] == float(len(packets))
    assert ratio >= 1.0, "an outage cannot make service cheaper"
    assert ratio <= E19_MAX_DEGRADATION, (
        f"degradation ratio {ratio:.3f} exceeds the "
        f"{E19_MAX_DEGRADATION:.1f} bound — graceful degradation regressed"
    )


# ------------------------------------------------------------------ #
# crash-tolerant sweep: SIGKILL mid-grid, resume bit-identically
# ------------------------------------------------------------------ #
def _faulted_sweep_task(task):
    """One grid point: a small faulted simulation keyed on the task params."""
    topology, packets = _hybrid_cell(seed=task.params["cell_seed"])
    packets = packets[: task.params["num_packets"]]
    faults = _outage_schedule(topology, task.params["failed_lasers"])
    result = simulate(
        topology, OpportunisticLinkScheduler(), packets,
        engine="indexed", max_slots=10_000_000,
        faults=faults, on_fail="requeue",
    )
    row = {"index": task.index, "seed": task.seed,
           "failed_lasers": task.params["failed_lasers"]}
    row.update(result.summary())
    return row


def _sweep_spec() -> ExperimentSpec:
    grid = [
        {"cell_seed": 19, "num_packets": max(20, E19_PACKETS // 20),
         "failed_lasers": 1 + (i % max(1, E19_FAILED_LASERS))}
        for i in range(E19_GRID)
    ]
    return ExperimentSpec(name="e19-sweep", task_fn=_faulted_sweep_task,
                          grid=grid, seed=19)


_CRASH_CHILD = """
import sys
sys.path.insert(0, {src!r})
sys.path.insert(0, {bench!r})
import os, signal
from test_e19_fault_degradation import _sweep_spec
from repro.experiments.runner import ExperimentRunner, RunnerConfig

checkpoint = sys.argv[1]
kill_after = int(sys.argv[2])
spec = _sweep_spec()
runner = ExperimentRunner(RunnerConfig(jobs=1, checkpoint_path=checkpoint))
completed = 0
for row in runner.iter_rows(spec):
    completed += 1
    print("row", completed, flush=True)
    if completed >= kill_after:
        os.kill(os.getpid(), signal.SIGKILL)
"""


def test_e19_killed_sweep_resumes_bit_identical(
    run_once, report, tmp_path
) -> None:
    """A SIGKILLed checkpointed sweep resumes to exactly the fresh rows."""
    spec = _sweep_spec()
    checkpoint = tmp_path / "e19.ckpt.jsonl"
    kill_after = max(1, E19_GRID // 2)
    repo = Path(__file__).resolve().parents[1]
    child_code = _CRASH_CHILD.format(src=str(repo / "src"),
                                     bench=str(repo / "benchmarks"))

    def crash_then_resume():
        child = subprocess.run(
            [sys.executable, "-c", child_code, str(checkpoint), str(kill_after)],
            stdout=subprocess.PIPE,
            timeout=600,
        )
        resumed = ExperimentRunner(
            RunnerConfig(jobs=1, checkpoint_path=str(checkpoint))
        ).run(spec)
        fresh = ExperimentRunner(RunnerConfig(jobs=1)).run(spec)
        return child, resumed, fresh

    child, resumed, fresh = run_once(crash_then_resume)
    checkpointed = len(child.stdout.decode().splitlines())
    report(
        "E19 crash-tolerant sweep",
        f"grid: {E19_GRID} tasks; child SIGKILLed after {checkpointed} "
        f"completed task(s)\nresumed rows == fresh rows: {resumed == fresh}",
    )
    assert child.returncode == -signal.SIGKILL
    assert 1 <= checkpointed < E19_GRID
    # JSON round-trips floats exactly, so replayed checkpoint rows must be
    # bit-identical to the rows an undisturbed run produces.
    assert resumed == fresh
