"""E2 — Figure 2 dispatcher-impact example.

Regenerates the per-packet impact tables of Figure 2: (1, 2, 5) for the
packet set Π and (1, 3, 3, 7) for Π′, by running ALG and applying the
Section IV-C charging scheme.
"""

from __future__ import annotations

import pytest


from repro.analysis import compute_charges
from repro.core import OpportunisticLinkScheduler
from repro.simulation import simulate
from repro.utils.tables import format_table
from repro.workloads import figure2_instances, figure2_reported_impacts


def regenerate_figure2():
    measured = {}
    for key, instance in figure2_instances().items():
        result = simulate(
            instance.topology, OpportunisticLinkScheduler(), instance.packets, record_trace=True
        )
        charges = compute_charges(result)
        measured[key] = {pid: charges.charge(pid) for pid in sorted(charges.charges)}
    return measured


def test_e02_figure2_impacts(benchmark, run_once, report):
    measured = run_once(regenerate_figure2)
    expected = figure2_reported_impacts()
    rows = []
    for key in ("pi", "pi_prime"):
        for pid in sorted(expected[key]):
            rows.append([key, f"p{pid + 1}", expected[key][pid], measured[key][pid]])
    report(
        "E2: Figure 2 realised impacts (charging scheme)",
        format_table(["packet set", "packet", "paper", "measured"], rows),
    )
    for key in expected:
        for pid, value in expected[key].items():
            assert measured[key][pid] == pytest.approx(value)
