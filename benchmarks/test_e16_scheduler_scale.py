"""E16 — scheduler scalability: incremental stable-matching repair.

The per-slot hot path of the paper's algorithm is the greedy stable-matching
pass over all eligible chunks.  This benchmark pins the incremental matching
repairer (``repro.core.matching_index``) against the from-scratch greedy
pass on a dense 64-rack receiver-hotspot cell whose long edge delay splits
every packet into ``d(e)`` chunks — a deep, long-lived pending pool, the
worst case for a per-slot full pass and the best case for delta repair.

Both configurations run under ``engine="indexed"`` and differ *only* in the
scheduler (``OpportunisticLinkScheduler(incremental_scheduler=...)``), so the
end-to-end ratio isolates the scheduler change; a phase breakdown from
:func:`repro.simulation.timed_policy` additionally pins the speedup of the
``select_matching`` phase itself.  Summaries must be bit-identical — the
repairer replays exactly the matchings the from-scratch pass would produce.

Environment knobs (the CI smoke step shrinks the cell and relaxes the
thresholds; the defaults are the full-size assertions):

* ``REPRO_E16_PACKETS`` — workload size;
* ``REPRO_E16_RACKS`` — fabric size (≥64 by default);
* ``REPRO_E16_DELAY`` — uniform reconfigurable-edge delay (chunks/packet);
* ``REPRO_E16_MIN_SPEEDUP`` / ``REPRO_E16_PHASE_MIN_SPEEDUP`` — thresholds.
"""

from __future__ import annotations

import os
import time

from repro.core import OpportunisticLinkScheduler
from repro.network import projector_fabric
from repro.simulation import simulate, timed_policy
from repro.workloads import uniform_weights
from repro.workloads.adversarial import iter_contention_hotspot_workload

E16_PACKETS = int(os.environ.get("REPRO_E16_PACKETS", "5000"))
E16_RACKS = int(os.environ.get("REPRO_E16_RACKS", "64"))
E16_DELAY = int(os.environ.get("REPRO_E16_DELAY", "4"))
E16_MIN_SPEEDUP = float(os.environ.get("REPRO_E16_MIN_SPEEDUP", "2.0"))
E16_PHASE_MIN_SPEEDUP = float(os.environ.get("REPRO_E16_PHASE_MIN_SPEEDUP", "2.5"))


def _dense_cell(num_packets: int, num_racks: int = E16_RACKS, seed: int = 16):
    """A receiver-hotspot cell with ``d(e) = E16_DELAY`` chunks per packet.

    The hotspot's photodetectors drain the pool two chunks per slot while
    arrivals outpace them, so the eligible set grows into the tens of
    thousands and persists across thousands of slots — every from-scratch
    greedy pass walks all of it, while the repairer touches only the slot's
    completions and activations.
    """
    topology = projector_fabric(
        num_racks=num_racks,
        lasers_per_rack=2,
        photodetectors_per_rack=2,
        delay=E16_DELAY,
        seed=seed,
    )
    packets = list(
        iter_contention_hotspot_workload(
            topology,
            num_packets=num_packets,
            side="receiver",
            hot_fraction=0.95,
            arrival_rate=8.0,
            weight_sampler=uniform_weights(1, 10),
            seed=seed + 1,
        )
    )
    return topology, packets


def test_e16_incremental_vs_flat_scheduler(run_once, report) -> None:
    """The matching repairer is ≥Nx faster than the full pass, bit-identically."""
    topology, packets = _dense_cell(E16_PACKETS)

    def compare():
        out = {}
        for label, incremental in (("flat", False), ("incremental", True)):
            policy, timings = timed_policy(
                OpportunisticLinkScheduler(incremental_scheduler=incremental)
            )
            start = time.perf_counter()
            result = simulate(
                topology, policy, packets, engine="indexed", max_slots=10_000_000
            )
            total = time.perf_counter() - start
            out[label] = (total, timings, result.summary())
        return out

    out = run_once(compare)
    flat_total, flat_phases, flat_summary = out["flat"]
    incr_total, incr_phases, incr_summary = out["incremental"]
    e2e_speedup = flat_total / incr_total
    phase_speedup = flat_phases.scheduler_s / incr_phases.scheduler_s
    report(
        "E16 scheduler scale: incremental repair vs from-scratch pass",
        f"cell: {E16_RACKS} racks, {len(packets)} packets, edge delay {E16_DELAY}\n"
        f"end-to-end      : flat {flat_total:.2f}s   incremental {incr_total:.2f}s   "
        f"speedup {e2e_speedup:.1f}x\n"
        f"scheduler phase : flat {flat_phases.scheduler_s:.2f}s   "
        f"incremental {incr_phases.scheduler_s:.2f}s   speedup {phase_speedup:.1f}x\n"
        f"phase breakdown (incremental): {incr_phases.breakdown(incr_total)}",
    )
    # Bit-identity comes first: a fast scheduler that schedules differently
    # is a bug, not a win.
    assert incr_summary == flat_summary, (
        "incremental matching repair diverged from the from-scratch pass\n"
        f"flat:        {flat_summary}\nincremental: {incr_summary}"
    )
    assert e2e_speedup >= E16_MIN_SPEEDUP, (
        f"incremental scheduler only {e2e_speedup:.2f}x faster end-to-end "
        f"(needed {E16_MIN_SPEEDUP}x) on a {E16_RACKS}-rack dense cell"
    )
    assert phase_speedup >= E16_PHASE_MIN_SPEEDUP, (
        f"select_matching phase only {phase_speedup:.2f}x faster "
        f"(needed {E16_PHASE_MIN_SPEEDUP}x) on a {E16_RACKS}-rack dense cell"
    )
