"""E13 — single-pass multi-policy evaluation of a scenario grid.

Engineering benchmark for the scenario-matrix subsystem: a 5-policy ×
3-workload grid on a large ProjecToR fabric is evaluated twice —

* ``mode="per-policy"``: one runner task per (cell, policy), each rebuilding
  the topology and regenerating the workload from seeds (the pre-scenario
  architecture and the shape every sweep used to have);
* ``mode="shared"``: one task per cell whose policies all run through
  ``SimulationEngine.run_multi`` over one shared arrival stream, so the
  topology is built and the workload generated exactly once per cell.

The rows must be bit-identical; the shared pass must be at least 2× faster
wall-clock (measured best-of-3, as E11b does, so one scheduler hiccup on a
loaded CI runner cannot fail the build).
"""

from __future__ import annotations

import time

from repro.scenarios import Scenario, ScenarioMatrix, TopologySpec, WorkloadSpec

#: ALG and the four standard baselines — the E7 comparison set.
_POLICIES = ("alg", "fifo", "maxweight", "islip", "shortest-path")

#: A deliberately large fabric: cell setup (topology build + pair table +
#: workload generation) dominates the 100-packet simulations, which is the
#: regime the shared-stream pass is designed for.
_TOPOLOGY = TopologySpec(
    "projector", {"num_racks": 40, "lasers_per_rack": 2, "photodetectors_per_rack": 2}
)


def _matrix() -> ScenarioMatrix:
    scenarios = tuple(
        Scenario(
            name=f"e13-{kind}",
            description=f"E13 benchmark cell: {kind} on a 40-rack fabric",
            topology=_TOPOLOGY,
            workload=WorkloadSpec(kind, params, weights=("uniform", 1, 10)),
            policies=_POLICIES,
        )
        for kind, params in (
            ("zipf", {"num_packets": 100, "exponent": 1.2, "arrival_rate": 3.0}),
            ("hotspot", {"num_packets": 100, "num_hotspots": 2,
                         "hotspot_fraction": 0.6, "arrival_rate": 3.0}),
            ("bursty", {"num_packets": 100, "on_rate": 4.0}),
        )
    )
    return ScenarioMatrix(name="e13", scenarios=scenarios)


def test_e13_scenario_matrix_single_pass_speedup(report):
    """run_multi grid ≥2× faster than the per-policy loop, identical rows."""
    matrix = _matrix()

    def timed(mode: str):
        start = time.perf_counter()
        rows = matrix.run(mode=mode)
        return time.perf_counter() - start, rows

    # Warm-up pair so first-import costs don't skew either side.
    timed("shared")
    timed("per-policy")

    pairs = []
    rows_shared = rows_per_policy = None
    for _ in range(3):
        elapsed_shared, rows_shared = timed("shared")
        elapsed_per_policy, rows_per_policy = timed("per-policy")
        pairs.append((elapsed_per_policy, elapsed_shared))

    assert rows_shared == rows_per_policy, (
        "shared-stream grid rows differ from the per-policy loop"
    )
    assert len(rows_shared) == len(_POLICIES) * 3

    best_per_policy, best_shared = max(pairs, key=lambda pair: pair[0] / pair[1])
    speedup = best_per_policy / best_shared
    report(
        "E13 scenario matrix: single-pass multi-policy grid",
        f"grid=5 policies x 3 workloads on 40 racks  "
        f"per-policy={best_per_policy * 1e3:.0f}ms  shared={best_shared * 1e3:.0f}ms  "
        f"best-of-3 speedup={speedup:.1f}x",
    )
    assert speedup >= 2.0, (
        f"shared-stream pass gave only {speedup:.2f}x (best of 3) over the "
        f"per-policy loop ({best_per_policy * 1e3:.0f}ms -> {best_shared * 1e3:.0f}ms)"
    )


def test_e13_rows_are_jobs_invariant(report):
    """The same grid fanned out over 4 worker processes yields identical rows."""
    matrix = _matrix()
    serial = matrix.run(mode="shared")
    parallel = matrix.run(mode="shared", jobs=4)
    assert serial == parallel
    winners = {
        (row["scenario"], row["seed"]): min(
            (r for r in serial if (r["scenario"], r["seed"]) == (row["scenario"], row["seed"])),
            key=lambda r: r["total_weighted_latency"],
        )["policy"]
        for row in serial
    }
    report(
        "E13 per-cell winners",
        "\n".join(f"{cell[0]}: {policy}" for cell, policy in sorted(winners.items())),
    )
