"""E18 — observability overhead: metrics + spans must be (nearly) free.

PR 9's instrumentation promises two things the engine's hot loops depend on:

* **bit-identity** — a run with a live :class:`~repro.obs.MetricsRegistry`,
  slot-sampled phase spans and a metrics-snapshot file produces exactly the
  same summary as a plain run (the instruments only record);
* **bounded cost** — the enabled instrumentation adds at most
  ``REPRO_E18_MAX_OVERHEAD`` fractional wall-clock overhead on a dense
  cell, and the disabled default (the shared ``NULL_REGISTRY``) costs
  nothing measurable because every hot-path hook hides behind one boolean.

The comparison reuses the E15 receiver-hotspot cell so the overhead is
measured where the per-slot loop is genuinely busy, under the indexed
engine (the production default).  Both configurations are timed
back-to-back on the same process and inputs; the plain run goes first so a
cold allocator penalises the *uninstrumented* side if anything.

Environment knobs (the CI smoke step shrinks the cell and relaxes the
threshold; the defaults are the full-size assertions):

* ``REPRO_E18_PACKETS`` — workload size;
* ``REPRO_E18_RACKS`` — fabric size;
* ``REPRO_E18_SPAN_STRIDE`` — phase-span sampling stride (0 disables spans);
* ``REPRO_E18_MAX_OVERHEAD`` — maximum fractional slowdown with obs on.
"""

from __future__ import annotations

import os
import time

from repro.core import OpportunisticLinkScheduler
from repro.network import projector_fabric
from repro.obs import MetricsRegistry, read_metric_records
from repro.simulation import simulate
from repro.workloads import uniform_weights
from repro.workloads.adversarial import iter_contention_hotspot_workload

E18_PACKETS = int(os.environ.get("REPRO_E18_PACKETS", "3000"))
E18_RACKS = int(os.environ.get("REPRO_E18_RACKS", "48"))
E18_SPAN_STRIDE = int(os.environ.get("REPRO_E18_SPAN_STRIDE", "16"))
E18_MAX_OVERHEAD = float(os.environ.get("REPRO_E18_MAX_OVERHEAD", "0.25"))


def _dense_cell(num_packets: int = E18_PACKETS, num_racks: int = E18_RACKS,
                seed: int = 15):
    topology = projector_fabric(
        num_racks=num_racks, lasers_per_rack=2, photodetectors_per_rack=2, seed=seed
    )
    packets = list(
        iter_contention_hotspot_workload(
            topology,
            num_packets=num_packets,
            side="receiver",
            hot_fraction=0.95,
            arrival_rate=8.0,
            weight_sampler=uniform_weights(1, 10),
            seed=seed + 1,
        )
    )
    return topology, packets


def test_e18_obs_overhead_bounded_and_bit_identical(
    run_once, report, tmp_path
) -> None:
    """Full instrumentation stays under the overhead bound, bit-identically."""
    topology, packets = _dense_cell()
    metrics_path = tmp_path / "metrics.jsonl"

    def compare():
        start = time.perf_counter()
        plain = simulate(
            topology, OpportunisticLinkScheduler(), packets,
            engine="indexed", max_slots=10_000_000,
        )
        plain_s = time.perf_counter() - start

        registry = MetricsRegistry()
        start = time.perf_counter()
        observed = simulate(
            topology, OpportunisticLinkScheduler(), packets,
            engine="indexed", max_slots=10_000_000,
            obs=registry, span_stride=E18_SPAN_STRIDE,
            metrics_path=str(metrics_path),
        )
        observed_s = time.perf_counter() - start
        return plain_s, plain.summary(), observed_s, observed.summary(), registry

    plain_s, plain_summary, observed_s, observed_summary, registry = run_once(compare)
    overhead = observed_s / plain_s - 1.0
    counters = registry.snapshot()["counters"]
    arrived = sum(
        value for key, value in counters.items()
        if key.startswith("engine_packets_arrived{")
    )
    report(
        "E18 observability overhead",
        f"cell: {E18_RACKS} racks, {len(packets)} packets (receiver hotspot)\n"
        f"plain: {plain_s:.2f}s   instrumented: {observed_s:.2f}s   "
        f"overhead: {overhead * 100:+.1f}% (bound {E18_MAX_OVERHEAD * 100:.0f}%)\n"
        f"recorded: {len(counters)} counter series, "
        f"{arrived} packets counted, span stride {E18_SPAN_STRIDE}",
    )
    assert observed_summary == plain_summary, (
        "instrumented run diverged from the plain run\n"
        f"plain:      {plain_summary}\ninstrumented: {observed_summary}"
    )
    assert arrived == len(packets)
    (record,) = read_metric_records(metrics_path)
    assert record["snapshot"] == registry.snapshot()
    assert overhead <= E18_MAX_OVERHEAD, (
        f"observability overhead {overhead * 100:.1f}% exceeds the "
        f"{E18_MAX_OVERHEAD * 100:.0f}% bound "
        f"(plain {plain_s:.2f}s vs instrumented {observed_s:.2f}s)"
    )
