"""Shared helpers for the benchmark/experiment harness.

Every benchmark regenerates one experiment from DESIGN.md / EXPERIMENTS.md:
it runs the experiment once inside ``benchmark.pedantic`` (so pytest-benchmark
reports the wall-clock cost of regenerating it), prints the table or series
the experiment produces, and asserts the qualitative shape the paper implies
(exact numbers for the worked examples, bound satisfaction and who-wins
orderings for the simulation studies).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run a zero-argument callable exactly once under pytest-benchmark."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run


@pytest.fixture
def report(capsys):
    """Print a report section that survives pytest's output capture."""

    def _print(title: str, body: str) -> None:
        with capsys.disabled():
            print(f"\n===== {title} =====")
            print(body)

    return _print
