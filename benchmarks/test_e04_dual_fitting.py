"""E4 — Figure 4 dual LP and the dual-fitting certificate (Lemmas 1–5).

Runs ALG on random hybrid instances, extracts the Section IV-B dual solution
and verifies the entire dual-fitting certificate numerically: Lemma 1's
equalities, Lemma 2's per-packet charges, Lemma 4's constraints for every
candidate edge, Lemma 5's halved-dual feasibility, and the Lemma 3 relation
``ALG ≤ (2+ε)/ε · D``.
"""

from __future__ import annotations

import pytest

from repro.analysis import attach_decision_log, verify_certificate
from repro.core import OpportunisticLinkScheduler
from repro.experiments import small_lp_instances
from repro.simulation import simulate
from repro.utils.tables import format_table


EPSILONS = (0.5, 1.0, 2.0, 4.0)


def regenerate_certificates():
    rows = []
    certificates = []
    instances = small_lp_instances(num_instances=3, num_packets=12, seed=11)
    for instance in instances.values():
        policy = OpportunisticLinkScheduler(record_decisions=True)
        result = simulate(instance.topology, policy, instance.packets, record_trace=True)
        attach_decision_log(result, policy.impact_dispatcher)
        for epsilon in EPSILONS:
            cert = verify_certificate(
                result, instance.topology, epsilon=epsilon, check_lemma4_constraints=True
            )
            certificates.append(cert)
            rows.append(
                [
                    instance.name,
                    epsilon,
                    cert.algorithm_cost,
                    cert.dual_objective,
                    cert.feasible_dual_value,
                    cert.lemma3_bound,
                    len(cert.dual_violations),
                    len(cert.lemma4_violations),
                    cert.valid,
                ]
            )
    return rows, certificates


def test_e04_dual_fitting_certificate(benchmark, run_once, report):
    rows, certificates = run_once(regenerate_certificates)
    report(
        "E4: dual-fitting certificate (Figure 4, Lemmas 1-5)",
        format_table(
            [
                "instance",
                "epsilon",
                "ALG cost",
                "dual D",
                "feasible D/2",
                "(2+eps)/eps * D",
                "dual violations",
                "lemma4 violations",
                "valid",
            ],
            rows,
        ),
    )
    assert all(cert.valid for cert in certificates)
    assert all(cert.lemma1.holds for cert in certificates)
    assert all(cert.lemma2 is not None and cert.lemma2.holds for cert in certificates)
    assert all(not cert.dual_violations and not cert.lemma4_violations for cert in certificates)
    assert all(cert.algorithm_cost <= cert.lemma3_bound + 1e-6 for cert in certificates)
