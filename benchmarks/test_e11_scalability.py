"""E11 — simulator and algorithm scalability.

Engineering benchmark: wall-clock cost of running ALG on growing ProjecToR
fabrics and packet counts, plus the per-slot scheduling throughput.  This is
the benchmark to watch when optimising the engine; the assertions only check
that the runs complete and deliver everything.
"""

from __future__ import annotations

import time

import pytest

from repro.core import OpportunisticLinkScheduler
from repro.network import projector_fabric
from repro.simulation import EngineConfig, SimulationEngine, simulate
from repro.workloads import uniform_weights, zipf_workload


def _run(num_racks: int, num_packets: int, seed: int = 51):
    topo = projector_fabric(num_racks=num_racks, lasers_per_rack=2, photodetectors_per_rack=2, seed=seed)
    packets = zipf_workload(
        topo, num_packets, exponent=1.2, weight_sampler=uniform_weights(1, 10),
        arrival_rate=max(2.0, num_racks / 2.0), seed=seed + 1,
    )
    return simulate(topo, OpportunisticLinkScheduler(), packets)


@pytest.mark.parametrize(
    "num_racks,num_packets",
    [(4, 200), (8, 400), (12, 800), (16, 1200)],
    ids=["4racks-200pkts", "8racks-400pkts", "12racks-800pkts", "16racks-1200pkts"],
)
def test_e11_scalability(benchmark, num_racks, num_packets):
    result = benchmark.pedantic(
        _run, args=(num_racks, num_packets), rounds=1, iterations=1
    )
    assert result.all_delivered
    assert len(result) == num_packets


# ---------------------------------------------------------------------- #
# E11b — sparse-arrival fast path
# ---------------------------------------------------------------------- #
def _sparse_workload(num_racks: int = 8, num_packets: int = 300, seed: int = 51):
    """A trickle workload: long idle gaps between packet bursts.

    With ``arrival_rate=0.005`` consecutive arrivals are typically hundreds of
    slots apart, so almost every slot of the slot-by-slot walk is empty — the
    regime the engine's slot-skipping fast path targets.
    """
    topo = projector_fabric(
        num_racks=num_racks, lasers_per_rack=2, photodetectors_per_rack=2, seed=seed
    )
    packets = zipf_workload(
        topo, num_packets, exponent=1.2, weight_sampler=uniform_weights(1, 10),
        arrival_rate=0.005, seed=seed + 1,
    )
    return topo, packets


def _result_fingerprint(result):
    """Everything a SimulationResult observes, as a comparable value."""
    return (
        result.first_slot,
        result.last_slot,
        tuple(result.matching_sizes),
        {
            pid: (
                rec.completion_time,
                rec.weighted_latency,
                rec.assignment.impact,
                rec.used_fixed_link,
            )
            for pid, rec in result.records.items()
        },
    )


def test_e11b_sparse_arrival_fast_path(report):
    """Slot skipping must be ≥2× faster on sparse arrivals, with identical results."""
    topo, packets = _sparse_workload()

    def timed(slot_skipping: bool):
        engine = SimulationEngine(
            topo, OpportunisticLinkScheduler(), EngineConfig(slot_skipping=slot_skipping)
        )
        start = time.perf_counter()
        result = engine.run(packets)
        return time.perf_counter() - start, result

    # Warm-up run so import/JIT-free interpreter effects don't skew either side.
    timed(True)
    # Best-of-3 pairs: a single scheduler pause on a loaded CI runner can
    # deflate one measurement; the best ratio is what the code can do.
    pairs = []
    for _ in range(3):
        elapsed_skip, result_skip = timed(True)
        elapsed_walk, result_walk = timed(False)
        pairs.append((elapsed_walk, elapsed_skip))

    assert result_skip.all_delivered
    assert _result_fingerprint(result_skip) == _result_fingerprint(result_walk)

    best_walk, best_skip = max(pairs, key=lambda pair: pair[0] / pair[1])
    speedup = best_walk / best_skip
    report(
        "E11b sparse-arrival fast path",
        f"slots={result_skip.num_slots}  walk={best_walk * 1e3:.1f}ms  "
        f"skip={best_skip * 1e3:.1f}ms  best-of-3 speedup={speedup:.1f}x",
    )
    assert speedup >= 2.0, (
        f"slot skipping gave only {speedup:.2f}x (best of 3) on a sparse-arrival "
        f"workload ({best_walk * 1e3:.1f}ms -> {best_skip * 1e3:.1f}ms)"
    )
