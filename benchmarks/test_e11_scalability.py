"""E11 — simulator and algorithm scalability.

Engineering benchmark: wall-clock cost of running ALG on growing ProjecToR
fabrics and packet counts, plus the per-slot scheduling throughput.  This is
the benchmark to watch when optimising the engine; the assertions only check
that the runs complete and deliver everything.
"""

from __future__ import annotations

import pytest

from repro.core import OpportunisticLinkScheduler
from repro.network import projector_fabric
from repro.simulation import simulate
from repro.workloads import uniform_weights, zipf_workload


def _run(num_racks: int, num_packets: int, seed: int = 51):
    topo = projector_fabric(num_racks=num_racks, lasers_per_rack=2, photodetectors_per_rack=2, seed=seed)
    packets = zipf_workload(
        topo, num_packets, exponent=1.2, weight_sampler=uniform_weights(1, 10),
        arrival_rate=max(2.0, num_racks / 2.0), seed=seed + 1,
    )
    return simulate(topo, OpportunisticLinkScheduler(), packets)


@pytest.mark.parametrize(
    "num_racks,num_packets",
    [(4, 200), (8, 400), (12, 800), (16, 1200)],
    ids=["4racks-200pkts", "8racks-400pkts", "12racks-800pkts", "16racks-1200pkts"],
)
def test_e11_scalability(benchmark, num_racks, num_packets):
    result = benchmark.pedantic(
        _run, args=(num_racks, num_packets), rounds=1, iterations=1
    )
    assert result.all_delivered
    assert len(result) == num_packets
