"""E7 — ALG versus online baselines on the datacenter workload suite.

Runs the paper's algorithm, the classic comparators (FIFO, iSLIP, MaxWeight,
random, queue-oblivious shortest path) and the two single-component ablations
on the ProjecToR-style workload suite (uniform, Zipf, elephant-mice, hotspot,
bursty, incast).  Absolute numbers depend on the simulator, but the ordering
— ALG at or near the front, never the worst — is the reproduction target.
"""

from __future__ import annotations

import pytest

from repro.baselines import ablation_policies, standard_baselines
from repro.core import OpportunisticLinkScheduler
from repro.experiments import (
    compare_policies_on_suite,
    format_comparison_table,
    standard_projector_instances,
)


def regenerate_baseline_comparison():
    instances = standard_projector_instances(num_racks=6, lasers_per_rack=2, num_packets=150, seed=2021)
    policies = {
        "alg": OpportunisticLinkScheduler(),
        **standard_baselines(seed=0),
        **ablation_policies(),
    }
    return compare_policies_on_suite(instances, policies)


def test_e07_baseline_comparison(benchmark, run_once, report):
    rows = run_once(regenerate_baseline_comparison)
    report("E7: ALG vs baselines (total weighted latency, lower is better)",
           format_comparison_table(rows))

    by_instance = {}
    for row in rows:
        by_instance.setdefault(row.instance, []).append(row)
    for instance, instance_rows in by_instance.items():
        ordered = sorted(instance_rows, key=lambda r: r.total_weighted_latency)
        names = [r.policy for r in ordered]
        # ALG is never the worst policy, and on every instance its cost is
        # within 10% of the best policy observed.
        assert names.index("alg") < len(names) - 1, instance
        best = ordered[0].total_weighted_latency
        alg_cost = next(r.total_weighted_latency for r in instance_rows if r.policy == "alg")
        assert alg_cost <= 1.10 * best + 1e-9, (instance, alg_cost, best)

    # On the skewed workloads (the paper's motivating scenario) ALG beats the
    # weight-oblivious FIFO and random policies outright.
    for skewed in ("zipf", "elephant-mice", "hotspot"):
        instance_rows = {r.policy: r.total_weighted_latency for r in by_instance[skewed]}
        assert instance_rows["alg"] <= instance_rows["fifo"] + 1e-9
        assert instance_rows["alg"] <= instance_rows["random"] + 1e-9
