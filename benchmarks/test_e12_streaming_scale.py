"""E12 — streaming scalability: million-packet runs in bounded memory.

The scalability benchmark unlocked by the streaming data path: ALG and the
FIFO baseline each consume a lazily generated ≥10⁶-packet workload through
``retention="aggregate"`` with memory bounded by the in-flight state, not the
packet count.  Three layers of assertions:

* **correctness** — on a 10k-packet cross-check instance, the aggregate-mode
  summary is bit-identical to the materialised in-memory run;
* **boundedness** — the Python-heap peak (tracemalloc) of an aggregate run
  stays within one fixed budget at two workload sizes 8× apart, i.e. peak
  memory is independent of the packet count;
* **scale** — the full ≥10⁶-packet runs complete, deliver everything, and
  add less RSS than a fixed budget.

``REPRO_E12_PACKETS`` overrides the full-scale packet count (the CI memory
smoke job sets it to 50k to keep the job fast); the cross-check and
boundedness assertions always run at their fixed sizes.
"""

from __future__ import annotations

import os
import resource
import sys
import time
import tracemalloc

import pytest

from repro.baselines.policies import make_fifo_policy
from repro.core import OpportunisticLinkScheduler
from repro.network import projector_fabric
from repro.simulation import simulate
from repro.workloads import iter_uniform_random_workload, uniform_weights

#: Full-scale packet count (≥10⁶ by default; CI smoke mode shrinks it).
E12_PACKETS = int(os.environ.get("REPRO_E12_PACKETS", str(1_000_000)))
#: Cross-check size at which full and aggregate retention are both affordable.
CROSS_CHECK_PACKETS = 10_000
#: Fixed Python-heap budget for an aggregate run, independent of packet count.
HEAP_BUDGET_BYTES = 64 * 1024 * 1024
#: Fixed RSS-growth budget for the full-scale runs.
RSS_GROWTH_BUDGET_BYTES = 256 * 1024 * 1024

_POLICIES = {"alg": OpportunisticLinkScheduler, "fifo": make_fifo_policy}


def _topology(seed: int = 51):
    return projector_fabric(
        num_racks=4, lasers_per_rack=2, photodetectors_per_rack=2, seed=seed
    )


def _stream(topo, num_packets: int, seed: int = 52):
    """A lazily generated near-critically-loaded uniform workload."""
    return iter_uniform_random_workload(
        topo,
        num_packets,
        weight_sampler=uniform_weights(1, 10),
        arrival_rate=1.5,
        seed=seed,
    )


def _rss_bytes() -> int:
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    return rss if sys.platform == "darwin" else rss * 1024


@pytest.mark.parametrize("policy_name", sorted(_POLICIES))
def test_e12_cross_check_bit_identical(policy_name):
    """Aggregate-mode summaries match the in-memory path bit-for-bit at 10k packets."""
    topo = _topology()
    factory = _POLICIES[policy_name]
    full = simulate(topo, factory(), list(_stream(topo, CROSS_CHECK_PACKETS)))
    agg = simulate(
        topo, factory(), _stream(topo, CROSS_CHECK_PACKETS), retention="aggregate"
    )
    assert full.all_delivered and agg.all_delivered
    assert agg.summary() == full.summary()
    assert agg.total_weighted_latency == full.total_weighted_latency
    assert agg.mean_flow_completion_time == full.mean_flow_completion_time


def test_e12_peak_memory_independent_of_packet_count(report):
    """tracemalloc peak stays under one fixed budget as the workload grows 8x."""
    topo = _topology()
    peaks = {}
    for n in (25_000, 200_000):
        tracemalloc.start()
        result = simulate(
            topo, OpportunisticLinkScheduler(), _stream(topo, n), retention="aggregate"
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert result.all_delivered
        assert len(result) == n
        peaks[n] = peak
        assert peak < HEAP_BUDGET_BYTES, (
            f"aggregate-mode heap peak {peak / 2**20:.1f} MiB at {n} packets "
            f"exceeds the fixed {HEAP_BUDGET_BYTES / 2**20:.0f} MiB budget"
        )
    report(
        "E12 memory boundedness",
        "  ".join(f"{n // 1000}k pkts -> heap peak {p / 2**10:.0f} KiB" for n, p in peaks.items()),
    )
    # 8x the packets must not cost 8x the memory; allow slack for pool churn.
    assert peaks[200_000] < 3 * peaks[25_000] + 8 * 2**20


@pytest.mark.parametrize("policy_name", sorted(_POLICIES))
def test_e12_million_packet_scale(report, policy_name):
    """ALG and FIFO each push >=10^6 packets through the streaming pipeline."""
    topo = _topology()
    factory = _POLICIES[policy_name]
    rss_before = _rss_bytes()
    start = time.perf_counter()
    result = simulate(
        topo,
        factory(),
        _stream(topo, E12_PACKETS),
        max_slots=10 * E12_PACKETS + 1_000,
        retention="aggregate",
    )
    elapsed = time.perf_counter() - start
    rss_growth = _rss_bytes() - rss_before
    assert result.all_delivered
    assert len(result) == E12_PACKETS
    assert result.total_weighted_latency > 0
    report(
        f"E12 streaming scale [{policy_name}]",
        f"packets={E12_PACKETS:,}  slots={result.num_slots:,}  "
        f"cost={result.total_weighted_latency:.6g}  "
        f"throughput={E12_PACKETS / elapsed:,.0f} pkts/s  "
        f"rss growth={max(rss_growth, 0) / 2**20:.1f} MiB",
    )
    assert rss_growth < RSS_GROWTH_BUDGET_BYTES, (
        f"aggregate-mode run of {E12_PACKETS:,} packets grew RSS by "
        f"{rss_growth / 2**20:.1f} MiB (budget "
        f"{RSS_GROWTH_BUDGET_BYTES / 2**20:.0f} MiB) — the streaming path is "
        "retaining per-packet state"
    )
