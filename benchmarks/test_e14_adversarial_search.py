"""E14 — automated adversarial search rediscovers (and outdoes) the
hand-derived charging-argument stressors.

The competitive analysis leans on three hand-derived adversarial workloads
(the ``adversarial`` scenario grid) as empirical evidence that Theorem 1's
bound has bite.  This benchmark shows the search subsystem replaces that
manual derivation: starting from uniform random samples of the
``adversarial`` parameter space, the smoke-budget evolutionary search must —
within its fixed generation budget (≤ 10 generations) and with the default
seed — find a scenario whose empirical ALG ratio at speed 1.0 is **at least
as bad** as the best hand-derived stressor's, where both sides are measured
by the same protocol (same replicate seeds, same min-across-replicates
confidence filter, same shared-stream ``run_multi`` evaluation).

A second test pins the subsystem's reproducibility contract end to end at
benchmark scale: the hall-of-fame archive is bit-identical across
``jobs=1``/``jobs=4`` and across a checkpoint/resume split.
"""

from __future__ import annotations

import dataclasses
import time

from repro.scenarios import grid_matrix
from repro.search import (
    BUDGETS,
    AdversarialSearch,
    EmpiricalRatioObjective,
    adversarial_space,
    hall_of_fame_to_scenarios,
    resume_search,
)

#: The acceptance budget: the default seed on the smoke preset.
_CONFIG = BUDGETS["smoke"]
assert _CONFIG.generations <= 10, "the E14 contract allows at most 10 generations"


def _hand_derived_scores(objective: EmpiricalRatioObjective) -> dict:
    """Score every hand-derived stressor with the search's own protocol."""
    scores = {}
    for scenario in grid_matrix("adversarial").scenarios:
        probe = dataclasses.replace(
            scenario,
            seeds=_CONFIG.replicate_seeds,
            policies=objective.scenario_policies(),
        )
        scores[scenario.name] = objective.evaluate(probe).score
    return scores


def test_e14_search_rediscovers_worst_cases(report):
    """Smoke-budget search ≥ the best hand-derived stressor, at speed 1.0."""
    objective = EmpiricalRatioObjective()
    space = adversarial_space()  # speed knob fixed at 1.0
    hand = _hand_derived_scores(objective)
    best_hand = max(hand.values())

    start = time.perf_counter()
    result = AdversarialSearch(space, objective, _CONFIG).run()
    elapsed = time.perf_counter() - start

    assert result.hall_of_fame, "search produced an empty hall of fame"
    best = result.best
    assert all(
        entry.params["speed"] == 1.0 for entry in result.hall_of_fame
    ), "the acceptance contract is at speed 1.0"

    report(
        "E14 adversarial search vs hand-derived stressors",
        "\n".join(
            [f"hand-derived {name}: score={score:.6f}" for name, score in sorted(hand.items())]
            + [
                f"search best: score={best.score:.6f} mean={best.mean_ratio:.6f} "
                f"kind={best.params['kind']} ({best.scenario_name})",
                f"generations={result.generations_run}  "
                f"evaluations={result.evaluations}  wall={elapsed:.1f}s",
            ]
        ),
    )
    assert best.score >= best_hand, (
        f"search best {best.score:.6f} did not reach the best hand-derived "
        f"stressor {best_hand:.6f} within {_CONFIG.generations} generations"
    )

    # The bridge rebuilds the discovered cell as a first-class scenario that
    # materialises the exact instances the objective scored.
    promoted = hall_of_fame_to_scenarios(
        result.hall_of_fame, space, seeds=_CONFIG.replicate_seeds,
        policies=objective.scenario_policies(), limit=1,
    )[0]
    assert objective.evaluate(promoted).score == best.score


def test_e14_archive_is_jobs_and_resume_invariant(report, tmp_path):
    """Hall of fame bit-identical across jobs=1/jobs=4 and checkpoint/resume."""
    objective = EmpiricalRatioObjective()
    space = adversarial_space()

    serial = AdversarialSearch(space, objective, _CONFIG).run()
    parallel = AdversarialSearch(
        space, objective, dataclasses.replace(_CONFIG, jobs=4)
    ).run()
    assert parallel.hall_of_fame == serial.hall_of_fame
    assert parallel.best_history == serial.best_history

    # Interrupt after 2 generations, then resume to the full budget.
    checkpoint = tmp_path / "e14.jsonl"
    AdversarialSearch(
        space, objective, dataclasses.replace(_CONFIG, generations=2)
    ).run(checkpoint_path=checkpoint)
    _search, resumed = resume_search(
        checkpoint, generations=_CONFIG.generations, jobs=4
    )
    assert resumed.hall_of_fame == serial.hall_of_fame
    assert resumed.best_history == serial.best_history

    report(
        "E14 reproducibility",
        f"archive of {len(serial.hall_of_fame)} entries bit-identical across "
        f"jobs=1/jobs=4 and across a 2-generation checkpoint/resume split; "
        f"best score {serial.best.score:.6f}",
    )
