"""E10 — the value of the second tier (multiple lasers per rack).

With one laser/photodetector per rack the model collapses to the classic
single-tier switch-scheduling setting; adding opportunistic links per rack is
exactly what the two-tier model of this paper enables.  The experiment varies
the per-rack laser count under skewed traffic and reports ALG's cost and the
mean per-slot matching size.
"""

from __future__ import annotations

import pytest

from repro.experiments import two_tier_sweep
from repro.utils.tables import format_table


LASERS = (1, 2, 3, 4)


def regenerate_tier_sweep():
    return two_tier_sweep(lasers_per_rack=LASERS, num_racks=6, num_packets=150, seed=41)


def test_e10_two_tier_vs_single_tier(benchmark, run_once, report):
    rows = run_once(regenerate_tier_sweep)
    report(
        "E10: lasers per rack vs ALG cost (skewed traffic)",
        format_table(
            ["lasers/rack", "total weighted latency", "mean matching size", "slots"],
            [[r.lasers_per_rack, r.total_weighted_latency, r.mean_matching_size, r.num_slots] for r in rows],
        ),
    )
    costs = [r.total_weighted_latency for r in rows]
    # More opportunistic links never hurt, and going from 1 to 4 lasers per
    # rack yields a clear improvement on skewed traffic.
    assert all(a >= b - 1e-9 for a, b in zip(costs, costs[1:]))
    assert costs[-1] < costs[0]
    # The schedule finishes no later with more links available.
    assert rows[-1].num_slots <= rows[0].num_slots
