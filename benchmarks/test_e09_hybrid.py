"""E9 — hybrid topologies (fixed + reconfigurable links).

Sweeps the delay of the static source→destination links of a hybrid
ProjecToR fabric.  With fast fixed links the impact dispatcher offloads most
packets to the static network; as the fixed links slow down the traffic moves
onto the opportunistic links.  This is the behaviour the dispatcher's
``w_p·d_l(p) ≤ Δ_p(e)`` rule encodes.
"""

from __future__ import annotations

import pytest

from repro.experiments import hybrid_fixed_link_sweep
from repro.utils.tables import format_table


DELAYS = (1, 2, 4, 8, 16)


def regenerate_hybrid_sweep():
    return hybrid_fixed_link_sweep(fixed_link_delays=DELAYS, num_racks=6, num_packets=150, seed=37)


def test_e09_hybrid_topologies(benchmark, run_once, report):
    rows = run_once(regenerate_hybrid_sweep)
    report(
        "E9: hybrid fabric — traffic split vs fixed-link delay",
        format_table(
            ["fixed-link delay", "total weighted latency", "fixed-link fraction", "reconfigurable fraction"],
            [
                [r.fixed_link_delay, r.total_weighted_latency, r.fixed_link_fraction, r.reconfigurable_fraction]
                for r in rows
            ],
        ),
    )
    fractions = [r.fixed_link_fraction for r in rows]
    # Offload to the static network shrinks (weakly) as its links get slower,
    # and spans the full range: almost everything on delay-1 links, almost
    # nothing on delay-16 links.
    assert all(a >= b - 1e-9 for a, b in zip(fractions, fractions[1:]))
    assert fractions[0] > 0.8
    assert fractions[-1] < 0.2
