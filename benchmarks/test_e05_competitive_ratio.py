"""E5 — Theorem 1: empirical competitive ratio versus the 2·(2/ε+1) bound.

For each ε, ALG (at speed 1) is compared against the LP lower bound on an
optimum restricted to capacity 1/(2+ε) — the paper's resource-augmentation
model.  The measured ratio must stay below the Theorem 1 bound for every ε
and every instance, and the bound itself shrinks as ε grows.
"""

from __future__ import annotations

import pytest

from repro.experiments import competitive_ratio_sweep, small_lp_instances
from repro.utils.tables import format_table


EPSILONS = (0.5, 1.0, 2.0, 4.0)


def regenerate_ratio_sweep():
    instances = small_lp_instances(num_instances=3, num_packets=10, seed=19)
    return competitive_ratio_sweep(instances, epsilons=EPSILONS, use_lp=True)


def test_e05_competitive_ratio(benchmark, run_once, report):
    rows = run_once(regenerate_ratio_sweep)
    report(
        "E5: Theorem 1 — empirical competitive ratio vs 2*(2/eps+1)",
        format_table(
            ["instance", "epsilon", "ALG cost", "lower bound", "ratio", "bound", "within"],
            [
                [
                    r.instance,
                    r.epsilon,
                    r.algorithm_cost,
                    r.lower_bound,
                    r.empirical_ratio,
                    r.theoretical_bound,
                    r.within_bound,
                ]
                for r in rows
            ],
        ),
    )
    assert all(r.within_bound for r in rows)
    assert all(r.empirical_ratio <= r.theoretical_bound for r in rows)
    # The theoretical bound is decreasing in epsilon.
    by_eps = sorted({r.epsilon for r in rows})
    bounds = [next(r.theoretical_bound for r in rows if r.epsilon == e) for e in by_eps]
    assert bounds == sorted(bounds, reverse=True)
