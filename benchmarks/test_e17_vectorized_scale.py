"""E17 — transmission scalability: the numpy-batched vectorized backend.

After PR 5 (dispatch) and PR 7 (scheduling), the remaining per-slot loop
with super-constant cost is the transmission step: the reference/indexed
engine builds a ``[head] + eligible others`` snapshot of every matched
edge's full priority queue, an O(queue length) list build per matched edge
per slot even though at speed ``s ≈ 1`` the head chunk absorbs the whole
budget.  This benchmark pins ``engine="vectorized"`` — per-chunk state in
parallel numpy arrays, each slot's matching applied as a masked
scatter-subtract (:mod:`repro.simulation.vector_backend`) — against
``engine="indexed"`` on a dense 64-rack saturated-pairs cell
(:func:`repro.workloads.saturated_pairs_workload`): eight node-disjoint
hot edges the matching serves every slot, each carrying a pending queue
hundreds of chunks deep.  The per-edge snapshot walks those queues in
full every slot; the vectorized fast path touches only the matched head
rows — the worst case for one, the best case for the other.

Both configurations run the identical dispatcher and (incremental)
scheduler, so the ratio isolates the transmission backend; the phase
breakdown from :func:`repro.simulation.timed_policy` (whose
``transmit_s`` is timed by the engine itself) pins the transmit phase
directly.  Summaries must be bit-identical first — the backend replays the
reference arithmetic expression-for-expression.

Environment knobs (the CI smoke step shrinks the cell and relaxes the
thresholds; the defaults are the full-size assertions):

* ``REPRO_E17_PACKETS`` — workload size;
* ``REPRO_E17_RACKS`` — fabric size (≥64 by default);
* ``REPRO_E17_PAIRS`` — number of node-disjoint saturated pairs;
* ``REPRO_E17_DELAY`` — uniform reconfigurable-edge delay (chunks/packet);
* ``REPRO_E17_MIN_SPEEDUP`` — minimum transmit-phase speedup.
"""

from __future__ import annotations

import os
import time

from repro.core import OpportunisticLinkScheduler
from repro.network import projector_fabric
from repro.simulation import simulate, timed_policy
from repro.workloads import uniform_weights
from repro.workloads.adversarial import iter_saturated_pairs_workload

E17_PACKETS = int(os.environ.get("REPRO_E17_PACKETS", "10000"))
E17_RACKS = int(os.environ.get("REPRO_E17_RACKS", "64"))
E17_PAIRS = int(os.environ.get("REPRO_E17_PAIRS", "8"))
E17_DELAY = int(os.environ.get("REPRO_E17_DELAY", "4"))
E17_MIN_SPEEDUP = float(os.environ.get("REPRO_E17_MIN_SPEEDUP", "2.0"))


def _dense_cell(num_packets: int, num_racks: int = E17_RACKS, seed: int = 17):
    """A saturated-pairs cell: few hot edges, each with a very deep queue.

    Arrivals outpace the drain on the eight node-disjoint hot edges, so
    each accumulates a pending queue hundreds of chunks deep while the
    matching keeps serving all of them every slot — every indexed-transmit
    slot snapshots those queues in full, while the vectorized fast path
    touches only the matched head rows.
    """
    topology = projector_fabric(
        num_racks=num_racks,
        lasers_per_rack=2,
        photodetectors_per_rack=2,
        delay=E17_DELAY,
        seed=seed,
    )
    packets = list(
        iter_saturated_pairs_workload(
            topology,
            num_packets=num_packets,
            num_pairs=E17_PAIRS,
            hot_fraction=0.95,
            arrival_rate=8.0,
            weight_sampler=uniform_weights(1, 10),
            seed=seed + 1,
        )
    )
    return topology, packets


def test_e17_vectorized_vs_indexed_transmit(run_once, report) -> None:
    """The vectorized backend is ≥Nx faster on the transmit phase, bit-identically."""
    topology, packets = _dense_cell(E17_PACKETS)

    def compare():
        out = {}
        for engine_mode in ("indexed", "vectorized"):
            policy, timings = timed_policy(OpportunisticLinkScheduler())
            start = time.perf_counter()
            result = simulate(
                topology, policy, packets, engine=engine_mode, max_slots=10_000_000
            )
            total = time.perf_counter() - start
            out[engine_mode] = (total, timings, result.summary())
        return out

    out = run_once(compare)
    indexed_total, indexed_phases, indexed_summary = out["indexed"]
    vector_total, vector_phases, vector_summary = out["vectorized"]
    e2e_speedup = indexed_total / vector_total
    phase_speedup = indexed_phases.transmit_s / vector_phases.transmit_s
    report(
        "E17 transmission scale: vectorized numpy backend vs indexed budget walk",
        f"cell: {E17_RACKS} racks, {E17_PAIRS} saturated pairs, "
        f"{len(packets)} packets, edge delay {E17_DELAY}\n"
        f"end-to-end     : indexed {indexed_total:.2f}s   vectorized "
        f"{vector_total:.2f}s   speedup {e2e_speedup:.1f}x\n"
        f"transmit phase : indexed {indexed_phases.transmit_s:.2f}s   "
        f"vectorized {vector_phases.transmit_s:.2f}s   speedup {phase_speedup:.1f}x\n"
        f"phase breakdown (vectorized): {vector_phases.breakdown(vector_total)}",
    )
    # Bit-identity comes first: a fast backend that transmits differently is
    # a bug, not a win.
    assert vector_summary == indexed_summary, (
        "vectorized transmission backend diverged from the indexed engine\n"
        f"indexed:    {indexed_summary}\nvectorized: {vector_summary}"
    )
    assert phase_speedup >= E17_MIN_SPEEDUP, (
        f"vectorized backend only {phase_speedup:.2f}x faster on the transmit "
        f"phase (needed {E17_MIN_SPEEDUP}x) on a {E17_RACKS}-rack dense cell"
    )
