"""E3 — Figure 3 LP relaxation.

Builds and solves the primal LP on the Figure 1 instance and on small random
hybrid instances, for the unaugmented optimum (capacity 1) and the
slowed-down optimum (capacity 1/(2+ε)), in both objective variants.  The LP
value must lower-bound the brute-force integral optimum and increase as the
capacity shrinks.
"""

from __future__ import annotations

import pytest

from repro.analysis import solve_lp_lower_bound
from repro.baselines import brute_force_optimal
from repro.experiments import small_lp_instances
from repro.utils.tables import format_table
from repro.workloads import figure1_instance


def regenerate_lp_study():
    rows = []
    fig1 = figure1_instance()
    for capacity, label in ((1.0, "1"), (1.0 / 3.0, "1/(2+ε), ε=1")):
        for objective in ("paper", "fractional"):
            solution = solve_lp_lower_bound(fig1, capacity=capacity, objective=objective)
            rows.append(
                [
                    "figure1",
                    label,
                    objective,
                    solution.objective_value,
                    solution.num_variables,
                    solution.num_constraints,
                ]
            )
    instances = small_lp_instances(num_instances=2, num_packets=8, seed=7)
    for instance in instances.values():
        for objective in ("paper", "fractional"):
            solution = solve_lp_lower_bound(instance, capacity=1.0, objective=objective)
            rows.append(
                [
                    instance.name,
                    "1",
                    objective,
                    solution.objective_value,
                    solution.num_variables,
                    solution.num_constraints,
                ]
            )
    fig1_opt = brute_force_optimal(fig1).cost
    return rows, fig1_opt


def test_e03_lp_relaxation(benchmark, run_once, report):
    rows, fig1_opt = run_once(regenerate_lp_study)
    report(
        "E3: Figure 3 LP relaxation (lower bounds on OPT)",
        format_table(["instance", "capacity", "objective", "LP value", "vars", "constraints"], rows),
    )
    fig1_rows = [r for r in rows if r[0] == "figure1"]
    cap1 = [r for r in fig1_rows if r[1] == "1"]
    slowed = [r for r in fig1_rows if r[1] != "1"]
    # The LP never exceeds the integral optimum, and shrinking the capacity
    # can only increase its value.
    assert all(r[3] <= fig1_opt + 1e-6 for r in cap1)
    assert min(r[3] for r in slowed) >= max(r[3] for r in cap1) - 1e-6
    # The paper objective dominates the fractional objective on every instance.
    by_key = {(r[0], r[1], r[2]): r[3] for r in rows}
    for (name, cap, obj), value in by_key.items():
        if obj == "fractional":
            assert by_key[(name, cap, "paper")] >= value - 1e-6
