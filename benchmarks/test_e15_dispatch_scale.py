"""E15 — dispatch scalability: incremental impact index + shared-dispatch lanes.

The per-packet hot path of the paper's algorithm is the impact evaluation of
every candidate edge.  This benchmark pins the two optimisations that make it
sublinear on dense-contention fabrics:

* **indexed vs reference** — one ALG run over a ≥64-rack receiver-hotspot
  cell (deep adjacency lists, the worst case for the O(n) scan) must be at
  least ``REPRO_E15_MIN_SPEEDUP``× faster with ``engine="indexed"`` than with
  the reference scan, with a bit-identical summary;
* **shared-dispatch lanes** — ``run_multi`` racing four impact-dispatch
  lanes with sharing enabled must beat PR 3's per-lane dispatch (reference
  scan, no sharing) by ``REPRO_E15_MULTI_MIN_SPEEDUP``×, again with
  summaries bit-identical to a single reference run, and with the memo
  showing the perfect hit pattern identical lanes imply.

Environment knobs (the CI smoke step shrinks the cell and relaxes the
thresholds; the defaults are the full-size assertions):

* ``REPRO_E15_PACKETS`` / ``REPRO_E15_MULTI_PACKETS`` — workload sizes;
* ``REPRO_E15_RACKS`` — fabric size (≥64 by default);
* ``REPRO_E15_MIN_SPEEDUP`` / ``REPRO_E15_MULTI_MIN_SPEEDUP`` — thresholds.
"""

from __future__ import annotations

import os
import time

from repro.core import OpportunisticLinkScheduler
from repro.network import projector_fabric
from repro.simulation import EngineConfig, SimulationEngine, simulate
from repro.workloads import uniform_weights
from repro.workloads.adversarial import iter_contention_hotspot_workload

E15_PACKETS = int(os.environ.get("REPRO_E15_PACKETS", "5000"))
E15_MULTI_PACKETS = int(os.environ.get("REPRO_E15_MULTI_PACKETS", "3000"))
E15_RACKS = int(os.environ.get("REPRO_E15_RACKS", "64"))
E15_MIN_SPEEDUP = float(os.environ.get("REPRO_E15_MIN_SPEEDUP", "3.0"))
E15_MULTI_MIN_SPEEDUP = float(os.environ.get("REPRO_E15_MULTI_MIN_SPEEDUP", "1.5"))

#: Lanes raced in the shared-dispatch comparison.
NUM_LANES = 4


def _dense_cell(num_packets: int, num_racks: int = E15_RACKS, seed: int = 15):
    """A receiver-hotspot cell: traffic from many racks converges on one.

    The hotspot's photodetectors accumulate hundreds of pending chunks, so
    every candidate-edge evaluation of the reference scan walks a long
    adjacency list — exactly the regime the impact index collapses to rank
    lookups.
    """
    topology = projector_fabric(
        num_racks=num_racks, lasers_per_rack=2, photodetectors_per_rack=2, seed=seed
    )
    packets = list(
        iter_contention_hotspot_workload(
            topology,
            num_packets=num_packets,
            side="receiver",
            hot_fraction=0.95,
            arrival_rate=8.0,
            weight_sampler=uniform_weights(1, 10),
            seed=seed + 1,
        )
    )
    return topology, packets


def test_e15_indexed_vs_reference_scan(run_once, report) -> None:
    """The indexed engine is ≥Nx faster than the scan, bit-identically."""
    topology, packets = _dense_cell(E15_PACKETS)

    def compare():
        timings = {}
        summaries = {}
        for mode in ("reference", "indexed"):
            start = time.perf_counter()
            result = simulate(
                topology,
                OpportunisticLinkScheduler(),
                packets,
                engine=mode,
                max_slots=10_000_000,
            )
            timings[mode] = time.perf_counter() - start
            summaries[mode] = result.summary()
        return timings, summaries

    timings, summaries = run_once(compare)
    speedup = timings["reference"] / timings["indexed"]
    rate = len(packets) / timings["indexed"]
    report(
        "E15 dispatch scale: indexed vs reference",
        f"cell: {E15_RACKS} racks, {len(packets)} packets (receiver hotspot)\n"
        f"reference scan: {timings['reference']:.2f}s   "
        f"indexed: {timings['indexed']:.2f}s   "
        f"speedup: {speedup:.1f}x   ({rate:,.0f} packets/s indexed)",
    )
    assert summaries["indexed"] == summaries["reference"], (
        "indexed engine diverged from the reference scan\n"
        f"reference: {summaries['reference']}\nindexed:   {summaries['indexed']}"
    )
    assert speedup >= E15_MIN_SPEEDUP, (
        f"indexed engine only {speedup:.2f}x faster than the reference scan "
        f"(needed {E15_MIN_SPEEDUP}x) on a {E15_RACKS}-rack dense cell"
    )


def test_e15_shared_lanes_vs_per_lane_dispatch(run_once, report) -> None:
    """4 impact-sharing lanes beat PR 3's per-lane dispatch, bit-identically."""
    topology, packets = _dense_cell(E15_MULTI_PACKETS)

    def lanes():
        return {f"alg{i}": OpportunisticLinkScheduler() for i in range(NUM_LANES)}

    def compare():
        # Ground truth: one single-policy run under the reference scan.
        single = simulate(
            topology,
            OpportunisticLinkScheduler(),
            packets,
            engine="reference",
            max_slots=10_000_000,
        ).summary()

        per_lane_engine = SimulationEngine(
            topology,
            config=EngineConfig(
                engine="reference", share_dispatch=False, max_slots=10_000_000
            ),
        )
        start = time.perf_counter()
        per_lane = per_lane_engine.run_multi(packets, lanes())
        per_lane_time = time.perf_counter() - start

        shared_engine = SimulationEngine(
            topology,
            config=EngineConfig(engine="indexed", max_slots=10_000_000),
        )
        start = time.perf_counter()
        shared = shared_engine.run_multi(packets, lanes())
        shared_time = time.perf_counter() - start

        return (
            single,
            {name: res.summary() for name, res in per_lane.items()},
            {name: res.summary() for name, res in shared.items()},
            per_lane_time,
            shared_time,
            shared_engine.last_shared_dispatch_stats,
        )

    single, per_lane, shared, per_lane_time, shared_time, stats = run_once(compare)
    speedup = per_lane_time / shared_time
    report(
        "E15 dispatch scale: shared-dispatch lanes vs PR 3 per-lane",
        f"cell: {E15_RACKS} racks, {len(packets)} packets, {NUM_LANES} ALG lanes\n"
        f"per-lane (PR 3): {per_lane_time:.2f}s   shared: {shared_time:.2f}s   "
        f"speedup: {speedup:.1f}x   memo: {stats}",
    )
    for name in per_lane:
        assert per_lane[name] == single, f"{name}: per-lane run diverged"
        assert shared[name] == single, f"{name}: shared-dispatch run diverged"
    # Identical ALG lanes keep identical pools, so after the first lane's
    # miss every other lane must hit: the memo serves each arrival exactly
    # NUM_LANES times.
    (memo_stats,) = stats
    assert memo_stats["misses"] == len(packets)
    assert memo_stats["hits"] == (NUM_LANES - 1) * len(packets)
    assert memo_stats["pending"] == 0
    assert speedup >= E15_MULTI_MIN_SPEEDUP, (
        f"shared-dispatch lanes only {speedup:.2f}x faster than per-lane "
        f"dispatch (needed {E15_MULTI_MIN_SPEEDUP}x)"
    )
