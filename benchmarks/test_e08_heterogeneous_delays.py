"""E8 — heterogeneous reconfigurable-link delays.

The paper's algorithm and analysis explicitly support different link delays
(Section I-A).  This experiment widens the delay distribution of a random
two-tier fabric and compares ALG against the delay-oblivious FIFO baseline
and the ablation that keeps the stable-matching scheduler but drops the
impact dispatcher.
"""

from __future__ import annotations

import pytest

from repro.baselines import make_fifo_policy, make_least_loaded_stable_policy
from repro.core import OpportunisticLinkScheduler
from repro.experiments import delay_heterogeneity_sweep
from repro.utils.tables import format_table


DELAY_POOLS = ((1,), (1, 2), (1, 2, 4), (2, 4, 8))


def regenerate_delay_sweep():
    policies = {
        "alg": OpportunisticLinkScheduler(),
        "fifo": make_fifo_policy(),
        "least-loaded+stable": make_least_loaded_stable_policy(),
    }
    return delay_heterogeneity_sweep(policies, delay_pools=DELAY_POOLS, num_packets=120, seed=31)


def test_e08_heterogeneous_delays(benchmark, run_once, report):
    rows = run_once(regenerate_delay_sweep)
    report(
        "E8: heterogeneous edge delays (total weighted latency per policy)",
        format_table(
            ["delay pool", "policy", "total weighted latency", "mean FCT"],
            [[r.delay_pool, r.policy, r.total_weighted_latency, r.mean_completion_time] for r in rows],
        ),
    )
    by_pool = {}
    for row in rows:
        by_pool.setdefault(row.delay_pool, {})[row.policy] = row
    for pool, policies in by_pool.items():
        # ALG never loses to the weight-oblivious FIFO baseline.
        assert (
            policies["alg"].total_weighted_latency
            <= policies["fifo"].total_weighted_latency + 1e-9
        ), pool
    # Wider delays mean strictly more work per packet, so ALG's cost grows
    # monotonically from the uniform-delay pool to the slowest pool.
    alg_costs = [by_pool[p]["alg"].total_weighted_latency for p in ("1", "2/4/8")]
    assert alg_costs[0] <= alg_costs[1]
