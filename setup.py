"""Setup shim.

The project is fully described by ``pyproject.toml``; this file exists so the
package can also be installed in environments whose tooling predates PEP 660
editable installs (legacy ``pip install -e .`` / ``setup.py develop``).
"""

from setuptools import setup

setup()
