"""Two-tier hybrid network topologies (the paper's Section II substrate).

Public surface:

* :class:`~repro.network.topology.TwoTierTopology` — the four-layer graph
  ``G = (S ∪ T ∪ R ∪ D, E, d)`` with reconfigurable transmitter–receiver
  edges and optional fixed source–destination links.
* Builders for crossbars, ProjecToR-style fabrics, random bipartite
  topologies, hybrid extensions, and the paper's Figure 1 / Figure 2 graphs.
* JSON serialization helpers.
"""

from repro.network.builders import (
    add_uniform_fixed_links,
    figure1_topology,
    figure2_topology,
    projector_fabric,
    random_bipartite,
    single_tier_crossbar,
)
from repro.network.serialization import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.network.topology import Edge, EdgeView, TwoTierTopology

__all__ = [
    "TwoTierTopology",
    "Edge",
    "EdgeView",
    "single_tier_crossbar",
    "projector_fabric",
    "random_bipartite",
    "add_uniform_fixed_links",
    "figure1_topology",
    "figure2_topology",
    "topology_to_dict",
    "topology_from_dict",
    "save_topology",
    "load_topology",
]
