"""Two-tier hybrid datacenter topology model.

This module implements the graph model of Section II of the paper:

* the vertex set is partitioned into four layers — sources ``S``,
  transmitters ``T``, receivers ``R`` and destinations ``D``;
* each transmitter is attached to exactly one source and each receiver to
  exactly one destination (a source/destination may own several
  transmitters/receivers — e.g. a ToR with several lasers / photodetectors);
* transmitter–receiver edges form the *reconfigurable* (opportunistic)
  network; each such edge has an integer delay ``d(e) >= 1``;
* an optional set of *fixed* direct source–destination links with delay
  ``d_l`` models the hybrid part of the topology;
* source→transmitter and receiver→destination attachment edges may carry a
  (possibly zero) delay.

The class :class:`TwoTierTopology` is an immutable-after-``freeze`` container
with O(1) lookups for the queries the algorithm needs at runtime:
``R(t)``, ``T(r)``, the candidate edge set ``E_p`` of a (source, destination)
pair, the fixed-link delay ``d_l(p)``, and the end-to-end path delay
``d_hat(e)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Tuple

import networkx as nx

from repro.exceptions import TopologyError

__all__ = ["Edge", "TwoTierTopology", "EdgeView"]

#: A reconfigurable edge is identified by its (transmitter, receiver) pair.
Edge = Tuple[str, str]


@dataclass(frozen=True)
class EdgeView:
    """Read-only view of a reconfigurable edge and its delays.

    Attributes
    ----------
    transmitter, receiver:
        Endpoint node names.
    delay:
        The transmitter→receiver delay ``d(e)`` (>= 1).
    source, destination:
        The source owning the transmitter and the destination owning the
        receiver.
    head_delay:
        Source→transmitter delay ``d(src, t)``.
    tail_delay:
        Receiver→destination delay ``d(r, dest)``.
    """

    transmitter: str
    receiver: str
    delay: int
    source: str
    destination: str
    head_delay: int
    tail_delay: int

    @property
    def edge(self) -> Edge:
        """The ``(transmitter, receiver)`` pair identifying this edge."""
        return (self.transmitter, self.receiver)

    @property
    def path_delay(self) -> int:
        """End-to-end path delay ``d_hat(e) = d(src,t) + d(e) + d(r,dest)``."""
        return self.head_delay + self.delay + self.tail_delay


class TwoTierTopology:
    """The two-tier hybrid network ``G = (S ∪ T ∪ R ∪ D, E, d)``.

    Nodes are identified by strings.  The four layers must be disjoint.
    Construction is incremental (``add_source``, ``add_transmitter``, …);
    calling :meth:`freeze` (or any query method) validates the topology and
    switches it to read-only mode.

    Examples
    --------
    >>> topo = TwoTierTopology()
    >>> topo.add_source("s1"); topo.add_destination("d1")
    >>> topo.add_transmitter("t1", "s1"); topo.add_receiver("r1", "d1")
    >>> topo.add_reconfigurable_edge("t1", "r1", delay=1)
    >>> topo.freeze()
    TwoTierTopology(name='two-tier', sources=1, transmitters=1, receivers=1, destinations=1, edges=1, fixed_links=0)
    >>> topo.candidate_edges("s1", "d1")
    [('t1', 'r1')]
    """

    def __init__(self, name: str = "two-tier") -> None:
        self.name = name
        self._frozen = False

        self._sources: Dict[str, None] = {}
        self._destinations: Dict[str, None] = {}
        self._transmitters: Dict[str, str] = {}  # t -> source
        self._receivers: Dict[str, str] = {}  # r -> destination
        self._source_transmitters: Dict[str, List[str]] = {}
        self._destination_receivers: Dict[str, List[str]] = {}

        self._edge_delay: Dict[Edge, int] = {}
        self._receivers_of_transmitter: Dict[str, List[str]] = {}
        self._transmitters_of_receiver: Dict[str, List[str]] = {}

        self._fixed_links: Dict[Tuple[str, str], int] = {}
        self._head_delay: Dict[str, int] = {}  # transmitter -> d(src, t)
        self._tail_delay: Dict[str, int] = {}  # receiver -> d(r, dest)

        self._candidate_cache: Dict[Tuple[str, str], Tuple[Edge, ...]] = {}

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _require_mutable(self) -> None:
        if self._frozen:
            raise TopologyError(f"topology {self.name!r} is frozen and cannot be modified")

    def _require_new_node(self, node: str) -> None:
        if not isinstance(node, str) or not node:
            raise TopologyError(f"node names must be non-empty strings, got {node!r}")
        if node in self._sources or node in self._destinations or node in self._transmitters or node in self._receivers:
            raise TopologyError(f"node {node!r} already exists in topology {self.name!r}")

    def add_source(self, source: str) -> None:
        """Add a source (e.g. a sending ToR switch)."""
        self._require_mutable()
        self._require_new_node(source)
        self._sources[source] = None
        self._source_transmitters[source] = []

    def add_destination(self, destination: str) -> None:
        """Add a destination (e.g. a receiving ToR switch)."""
        self._require_mutable()
        self._require_new_node(destination)
        self._destinations[destination] = None
        self._destination_receivers[destination] = []

    def add_transmitter(self, transmitter: str, source: str, head_delay: int = 0) -> None:
        """Attach transmitter ``transmitter`` (e.g. a laser) to ``source``.

        Parameters
        ----------
        head_delay:
            Delay ``d(src, t)`` of the attachment edge (non-negative integer,
            default 0 as in the paper's Figure 1 example).
        """
        self._require_mutable()
        self._require_new_node(transmitter)
        if source not in self._sources:
            raise TopologyError(f"unknown source {source!r} for transmitter {transmitter!r}")
        if not isinstance(head_delay, int) or head_delay < 0:
            raise TopologyError(f"head_delay must be a non-negative integer, got {head_delay!r}")
        self._transmitters[transmitter] = source
        self._source_transmitters[source].append(transmitter)
        self._receivers_of_transmitter[transmitter] = []
        self._head_delay[transmitter] = head_delay

    def add_receiver(self, receiver: str, destination: str, tail_delay: int = 0) -> None:
        """Attach receiver ``receiver`` (e.g. a photodetector) to ``destination``."""
        self._require_mutable()
        self._require_new_node(receiver)
        if destination not in self._destinations:
            raise TopologyError(f"unknown destination {destination!r} for receiver {receiver!r}")
        if not isinstance(tail_delay, int) or tail_delay < 0:
            raise TopologyError(f"tail_delay must be a non-negative integer, got {tail_delay!r}")
        self._receivers[receiver] = destination
        self._destination_receivers[destination].append(receiver)
        self._transmitters_of_receiver[receiver] = []
        self._tail_delay[receiver] = tail_delay

    def add_reconfigurable_edge(self, transmitter: str, receiver: str, delay: int = 1) -> None:
        """Add an opportunistic transmitter→receiver edge with delay ``d(e) >= 1``."""
        self._require_mutable()
        if transmitter not in self._transmitters:
            raise TopologyError(f"unknown transmitter {transmitter!r}")
        if receiver not in self._receivers:
            raise TopologyError(f"unknown receiver {receiver!r}")
        if not isinstance(delay, int) or delay < 1:
            raise TopologyError(
                f"reconfigurable edge delay must be an integer >= 1, got {delay!r}"
            )
        edge = (transmitter, receiver)
        if edge in self._edge_delay:
            raise TopologyError(f"edge {edge!r} already exists")
        self._edge_delay[edge] = delay
        self._receivers_of_transmitter[transmitter].append(receiver)
        self._transmitters_of_receiver[receiver].append(transmitter)

    def add_fixed_link(self, source: str, destination: str, delay: int) -> None:
        """Add a direct (fixed-network) source→destination link with delay ``delay >= 1``."""
        self._require_mutable()
        if source not in self._sources:
            raise TopologyError(f"unknown source {source!r} for fixed link")
        if destination not in self._destinations:
            raise TopologyError(f"unknown destination {destination!r} for fixed link")
        if not isinstance(delay, int) or delay < 1:
            raise TopologyError(f"fixed link delay must be an integer >= 1, got {delay!r}")
        key = (source, destination)
        if key in self._fixed_links:
            raise TopologyError(f"fixed link {key!r} already exists")
        self._fixed_links[key] = delay

    def freeze(self) -> "TwoTierTopology":
        """Validate the topology and make it read-only.  Returns ``self``."""
        if not self._frozen:
            self.validate()
            self._frozen = True
        return self

    @property
    def frozen(self) -> bool:
        """Whether the topology has been frozen (made read-only)."""
        return self._frozen

    def validate(self) -> None:
        """Check structural invariants, raising :class:`TopologyError` on failure."""
        if not self._sources:
            raise TopologyError("topology has no sources")
        if not self._destinations:
            raise TopologyError("topology has no destinations")
        for t, s in self._transmitters.items():
            if s not in self._sources:
                raise TopologyError(f"transmitter {t!r} attached to unknown source {s!r}")
        for r, d in self._receivers.items():
            if d not in self._destinations:
                raise TopologyError(f"receiver {r!r} attached to unknown destination {d!r}")
        for (t, r), delay in self._edge_delay.items():
            if delay < 1:
                raise TopologyError(f"edge {(t, r)!r} has delay {delay} < 1")

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def sources(self) -> Tuple[str, ...]:
        """All source nodes, in insertion order."""
        return tuple(self._sources)

    @property
    def destinations(self) -> Tuple[str, ...]:
        """All destination nodes, in insertion order."""
        return tuple(self._destinations)

    @property
    def transmitters(self) -> Tuple[str, ...]:
        """All transmitter nodes, in insertion order."""
        return tuple(self._transmitters)

    @property
    def receivers(self) -> Tuple[str, ...]:
        """All receiver nodes, in insertion order."""
        return tuple(self._receivers)

    @property
    def reconfigurable_edges(self) -> Tuple[Edge, ...]:
        """All transmitter→receiver edges, in insertion order."""
        return tuple(self._edge_delay)

    @property
    def fixed_links(self) -> Mapping[Tuple[str, str], int]:
        """Mapping ``(source, destination) -> delay`` of direct links."""
        return dict(self._fixed_links)

    def num_nodes(self) -> int:
        """Total number of nodes across all four layers."""
        return (
            len(self._sources)
            + len(self._destinations)
            + len(self._transmitters)
            + len(self._receivers)
        )

    def source_of(self, transmitter: str) -> str:
        """The source a transmitter is attached to."""
        try:
            return self._transmitters[transmitter]
        except KeyError:
            raise TopologyError(f"unknown transmitter {transmitter!r}") from None

    def destination_of(self, receiver: str) -> str:
        """The destination a receiver is attached to."""
        try:
            return self._receivers[receiver]
        except KeyError:
            raise TopologyError(f"unknown receiver {receiver!r}") from None

    def transmitters_of_source(self, source: str) -> Tuple[str, ...]:
        """All transmitters attached to ``source``."""
        try:
            return tuple(self._source_transmitters[source])
        except KeyError:
            raise TopologyError(f"unknown source {source!r}") from None

    def receivers_of_destination(self, destination: str) -> Tuple[str, ...]:
        """All receivers attached to ``destination``."""
        try:
            return tuple(self._destination_receivers[destination])
        except KeyError:
            raise TopologyError(f"unknown destination {destination!r}") from None

    def receivers_of(self, transmitter: str) -> Tuple[str, ...]:
        """``R(t)``: receivers adjacent to ``transmitter`` in the reconfigurable network."""
        try:
            return tuple(self._receivers_of_transmitter[transmitter])
        except KeyError:
            raise TopologyError(f"unknown transmitter {transmitter!r}") from None

    def transmitters_of(self, receiver: str) -> Tuple[str, ...]:
        """``T(r)``: transmitters adjacent to ``receiver`` in the reconfigurable network."""
        try:
            return tuple(self._transmitters_of_receiver[receiver])
        except KeyError:
            raise TopologyError(f"unknown receiver {receiver!r}") from None

    def has_edge(self, transmitter: str, receiver: str) -> bool:
        """Whether the reconfigurable edge ``(transmitter, receiver)`` exists."""
        return (transmitter, receiver) in self._edge_delay

    def edge_delay(self, transmitter: str, receiver: str) -> int:
        """Delay ``d(e)`` of a reconfigurable edge."""
        try:
            return self._edge_delay[(transmitter, receiver)]
        except KeyError:
            raise TopologyError(f"unknown reconfigurable edge {(transmitter, receiver)!r}") from None

    def head_delay(self, transmitter: str) -> int:
        """Delay ``d(src, t)`` of the source→transmitter attachment edge."""
        try:
            return self._head_delay[transmitter]
        except KeyError:
            raise TopologyError(f"unknown transmitter {transmitter!r}") from None

    def tail_delay(self, receiver: str) -> int:
        """Delay ``d(r, dest)`` of the receiver→destination attachment edge."""
        try:
            return self._tail_delay[receiver]
        except KeyError:
            raise TopologyError(f"unknown receiver {receiver!r}") from None

    def path_delay(self, transmitter: str, receiver: str) -> int:
        """End-to-end delay ``d_hat(e) = d(src,t) + d(e) + d(r,dest)`` of edge ``e``."""
        return (
            self.head_delay(transmitter)
            + self.edge_delay(transmitter, receiver)
            + self.tail_delay(receiver)
        )

    def edge_view(self, transmitter: str, receiver: str) -> EdgeView:
        """Return an :class:`EdgeView` for the edge ``(transmitter, receiver)``."""
        return EdgeView(
            transmitter=transmitter,
            receiver=receiver,
            delay=self.edge_delay(transmitter, receiver),
            source=self.source_of(transmitter),
            destination=self.destination_of(receiver),
            head_delay=self.head_delay(transmitter),
            tail_delay=self.tail_delay(receiver),
        )

    def iter_edge_views(self) -> Iterator[EdgeView]:
        """Iterate over :class:`EdgeView` objects for all reconfigurable edges."""
        for (t, r) in self._edge_delay:
            yield self.edge_view(t, r)

    def candidate_edges(self, source: str, destination: str) -> List[Edge]:
        """``E_p``: reconfigurable edges usable by a (source, destination) packet.

        These are all ``(t, r)`` pairs with ``src(t) = source``,
        ``dest(r) = destination`` and an existing reconfigurable edge.
        The result is cached after the first query for a pair.
        """
        if source not in self._sources:
            raise TopologyError(f"unknown source {source!r}")
        if destination not in self._destinations:
            raise TopologyError(f"unknown destination {destination!r}")
        key = (source, destination)
        cached = self._candidate_cache.get(key)
        if cached is None:
            edges: List[Edge] = []
            for t in self._source_transmitters[source]:
                for r in self._receivers_of_transmitter[t]:
                    if self._receivers[r] == destination:
                        edges.append((t, r))
            cached = tuple(edges)
            if self._frozen:
                self._candidate_cache[key] = cached
        return list(cached)

    def has_fixed_link(self, source: str, destination: str) -> bool:
        """Whether a direct source→destination link exists."""
        return (source, destination) in self._fixed_links

    def fixed_link_delay(self, source: str, destination: str) -> int:
        """Delay ``d_l`` of the direct source→destination link."""
        try:
            return self._fixed_links[(source, destination)]
        except KeyError:
            raise TopologyError(f"no fixed link between {source!r} and {destination!r}") from None

    def can_route(self, source: str, destination: str) -> bool:
        """Whether *any* path (reconfigurable or fixed) exists for the pair."""
        return bool(self.candidate_edges(source, destination)) or self.has_fixed_link(
            source, destination
        )

    # ------------------------------------------------------------------ #
    # aggregate properties / export
    # ------------------------------------------------------------------ #
    def max_path_delay(self) -> int:
        """Maximum over reconfigurable edges of ``d_hat(e)`` (0 if no edges)."""
        best = 0
        for view in self.iter_edge_views():
            best = max(best, view.path_delay)
        return best

    def degree_statistics(self) -> Dict[str, float]:
        """Simple degree statistics of the reconfigurable bipartite graph."""
        t_degrees = [len(v) for v in self._receivers_of_transmitter.values()] or [0]
        r_degrees = [len(v) for v in self._transmitters_of_receiver.values()] or [0]
        return {
            "num_transmitters": float(len(self._transmitters)),
            "num_receivers": float(len(self._receivers)),
            "num_edges": float(len(self._edge_delay)),
            "max_transmitter_degree": float(max(t_degrees)),
            "max_receiver_degree": float(max(r_degrees)),
            "mean_transmitter_degree": float(sum(t_degrees)) / max(len(t_degrees), 1),
            "mean_receiver_degree": float(sum(r_degrees)) / max(len(r_degrees), 1),
        }

    def to_networkx(self) -> nx.DiGraph:
        """Export the full four-layer graph as a :class:`networkx.DiGraph`.

        Node attribute ``layer`` is one of ``source``, ``transmitter``,
        ``receiver``, ``destination``; edge attribute ``kind`` is one of
        ``attach``, ``reconfigurable``, ``fixed``; edge attribute ``delay``
        carries the delay.
        """
        g = nx.DiGraph(name=self.name)
        for s in self._sources:
            g.add_node(s, layer="source")
        for d in self._destinations:
            g.add_node(d, layer="destination")
        for t, s in self._transmitters.items():
            g.add_node(t, layer="transmitter")
            g.add_edge(s, t, kind="attach", delay=self._head_delay[t])
        for r, d in self._receivers.items():
            g.add_node(r, layer="receiver")
            g.add_edge(r, d, kind="attach", delay=self._tail_delay[r])
        for (t, r), delay in self._edge_delay.items():
            g.add_edge(t, r, kind="reconfigurable", delay=delay)
        for (s, d), delay in self._fixed_links.items():
            g.add_edge(s, d, kind="fixed", delay=delay)
        return g

    def reconfigurable_bipartite_graph(self) -> nx.Graph:
        """Export only the transmitter–receiver bipartite graph (undirected)."""
        g = nx.Graph(name=f"{self.name}-reconfigurable")
        g.add_nodes_from(self._transmitters, bipartite=0)
        g.add_nodes_from(self._receivers, bipartite=1)
        for (t, r), delay in self._edge_delay.items():
            g.add_edge(t, r, delay=delay)
        return g

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TwoTierTopology(name={self.name!r}, sources={len(self._sources)}, "
            f"transmitters={len(self._transmitters)}, receivers={len(self._receivers)}, "
            f"destinations={len(self._destinations)}, edges={len(self._edge_delay)}, "
            f"fixed_links={len(self._fixed_links)})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TwoTierTopology):
            return NotImplemented
        return (
            self._sources == other._sources
            and self._destinations == other._destinations
            and self._transmitters == other._transmitters
            and self._receivers == other._receivers
            and self._edge_delay == other._edge_delay
            and self._fixed_links == other._fixed_links
            and self._head_delay == other._head_delay
            and self._tail_delay == other._tail_delay
        )

    def __hash__(self) -> int:  # topologies are mutable until frozen
        return id(self)
