"""Topology builders for common experimental setups.

Each builder returns a frozen :class:`~repro.network.topology.TwoTierTopology`.
The builders cover:

* the classic single-tier crossbar switch (one transmitter per source, one
  receiver per destination, complete bipartite connectivity) — the setting of
  classic switch-scheduling papers that Section V relates to;
* ProjecToR-style rack fabrics with ``k`` lasers and photodetectors per rack
  and configurable (possibly partial) laser→photodetector connectivity;
* random bipartite reconfigurable networks;
* hybrid variants of the above with fixed source→destination links;
* the exact example graphs of Figure 1 and Figure 2 of the paper.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.exceptions import TopologyError
from repro.network.topology import TwoTierTopology
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int, check_probability

__all__ = [
    "single_tier_crossbar",
    "projector_fabric",
    "random_bipartite",
    "add_uniform_fixed_links",
    "figure1_topology",
    "figure2_topology",
]


def single_tier_crossbar(
    num_ports: int,
    delay: int = 1,
    name: str = "crossbar",
) -> TwoTierTopology:
    """Build an ``n x n`` single-tier crossbar switch.

    Every input port ``i`` is a source with exactly one transmitter, every
    output port ``j`` is a destination with exactly one receiver, and every
    transmitter is connected to every receiver with the same delay.  This is
    the classic input-queued switch model (McKeown; Chuang et al.) that the
    paper's two-tier model generalises.

    Parameters
    ----------
    num_ports:
        Number of input ports (= number of output ports).
    delay:
        Uniform reconfigurable-edge delay ``d(e)`` (default 1).
    """
    n = check_positive_int(num_ports, "num_ports")
    topo = TwoTierTopology(name=name)
    for i in range(n):
        topo.add_source(f"s{i}")
        topo.add_destination(f"d{i}")
    for i in range(n):
        topo.add_transmitter(f"t{i}", f"s{i}")
        topo.add_receiver(f"r{i}", f"d{i}")
    for i in range(n):
        for j in range(n):
            topo.add_reconfigurable_edge(f"t{i}", f"r{j}", delay=delay)
    return topo.freeze()


def projector_fabric(
    num_racks: int,
    lasers_per_rack: int = 2,
    photodetectors_per_rack: int = 2,
    delay: int = 1,
    connectivity: float = 1.0,
    head_delay: int = 0,
    tail_delay: int = 0,
    seed: RngLike = None,
    name: str = "projector",
) -> TwoTierTopology:
    """Build a ProjecToR-style two-tier rack fabric.

    Each rack appears both as a source (its sending side) and as a destination
    (its receiving side).  Rack ``i`` owns ``lasers_per_rack`` transmitters and
    ``photodetectors_per_rack`` receivers.  A laser can reach a photodetector
    of any *other* rack; with ``connectivity < 1`` only a random subset of
    those laser→photodetector pairs is available (modelling limited steering
    range of free-space optics).

    Parameters
    ----------
    num_racks:
        Number of racks (>= 2).
    lasers_per_rack, photodetectors_per_rack:
        Transmitters / receivers per rack.
    delay:
        Uniform reconfigurable-edge delay.
    connectivity:
        Probability that a cross-rack laser→photodetector pair is connected.
        ``1.0`` yields full connectivity; the builder guarantees every
        cross-rack (source, destination) pair keeps at least one candidate
        edge so all traffic remains routable.
    head_delay, tail_delay:
        Attachment-edge delays.
    seed:
        RNG seed used only when ``connectivity < 1``.
    """
    racks = check_positive_int(num_racks, "num_racks")
    if racks < 2:
        raise TopologyError("projector_fabric requires at least 2 racks")
    lasers = check_positive_int(lasers_per_rack, "lasers_per_rack")
    photos = check_positive_int(photodetectors_per_rack, "photodetectors_per_rack")
    p_connect = check_probability(connectivity, "connectivity")
    rng = as_rng(seed)

    topo = TwoTierTopology(name=name)
    for i in range(racks):
        topo.add_source(f"rack{i}:src")
        topo.add_destination(f"rack{i}:dst")
    for i in range(racks):
        for l in range(lasers):
            topo.add_transmitter(f"rack{i}:laser{l}", f"rack{i}:src", head_delay=head_delay)
        for p in range(photos):
            topo.add_receiver(f"rack{i}:photo{p}", f"rack{i}:dst", tail_delay=tail_delay)

    for i in range(racks):
        for j in range(racks):
            if i == j:
                continue
            pair_edges = []
            for l in range(lasers):
                for p in range(photos):
                    pair_edges.append((f"rack{i}:laser{l}", f"rack{j}:photo{p}"))
            if p_connect >= 1.0:
                chosen = pair_edges
            else:
                mask = rng.random(len(pair_edges)) < p_connect
                chosen = [e for e, keep in zip(pair_edges, mask) if keep]
                if not chosen:
                    # Keep the pair routable: retain one uniformly random edge.
                    chosen = [pair_edges[int(rng.integers(len(pair_edges)))]]
            for (t, r) in chosen:
                topo.add_reconfigurable_edge(t, r, delay=delay)
    return topo.freeze()


def random_bipartite(
    num_sources: int,
    num_destinations: int,
    transmitters_per_source: int = 1,
    receivers_per_destination: int = 1,
    edge_probability: float = 0.5,
    delay_choices: Sequence[int] = (1,),
    seed: RngLike = None,
    name: str = "random-bipartite",
) -> TwoTierTopology:
    """Build a random two-tier topology with heterogeneous edge delays.

    Each (source, destination) pair is guaranteed at least one candidate edge
    so that every possible packet is routable through the reconfigurable
    network.

    Parameters
    ----------
    edge_probability:
        Probability of each candidate transmitter→receiver edge existing.
    delay_choices:
        Pool of integer delays (each >= 1); each created edge draws its delay
        uniformly from this pool.
    """
    ns = check_positive_int(num_sources, "num_sources")
    nd = check_positive_int(num_destinations, "num_destinations")
    tps = check_positive_int(transmitters_per_source, "transmitters_per_source")
    rpd = check_positive_int(receivers_per_destination, "receivers_per_destination")
    prob = check_probability(edge_probability, "edge_probability")
    delays = [int(d) for d in delay_choices]
    if not delays or any(d < 1 for d in delays):
        raise TopologyError(f"delay_choices must be non-empty integers >= 1, got {delay_choices!r}")
    rng = as_rng(seed)

    topo = TwoTierTopology(name=name)
    for i in range(ns):
        topo.add_source(f"s{i}")
    for j in range(nd):
        topo.add_destination(f"d{j}")
    for i in range(ns):
        for k in range(tps):
            topo.add_transmitter(f"s{i}:t{k}", f"s{i}")
    for j in range(nd):
        for k in range(rpd):
            topo.add_receiver(f"d{j}:r{k}", f"d{j}")

    for i in range(ns):
        for j in range(nd):
            pair_edges = [
                (f"s{i}:t{a}", f"d{j}:r{b}") for a in range(tps) for b in range(rpd)
            ]
            mask = rng.random(len(pair_edges)) < prob
            chosen = [e for e, keep in zip(pair_edges, mask) if keep]
            if not chosen:
                chosen = [pair_edges[int(rng.integers(len(pair_edges)))]]
            for (t, r) in chosen:
                delay = delays[int(rng.integers(len(delays)))]
                topo.add_reconfigurable_edge(t, r, delay=delay)
    return topo.freeze()


def add_uniform_fixed_links(
    topology: TwoTierTopology,
    delay: int,
    pair_filter: Optional[Callable[[str, str], bool]] = None,
) -> TwoTierTopology:
    """Return a copy of ``topology`` with fixed links added between all pairs.

    The input topology is not modified.  A fixed link of delay ``delay`` is
    added between every (source, destination) pair accepted by
    ``pair_filter`` (default: all pairs whose source and destination differ in
    name).  This converts a purely reconfigurable topology into a hybrid one
    (Section II's set ``E_l``).
    """
    if delay < 1:
        raise TopologyError(f"fixed link delay must be >= 1, got {delay!r}")
    clone = TwoTierTopology(name=f"{topology.name}+fixed")
    for s in topology.sources:
        clone.add_source(s)
    for d in topology.destinations:
        clone.add_destination(d)
    for t in topology.transmitters:
        clone.add_transmitter(t, topology.source_of(t), head_delay=topology.head_delay(t))
    for r in topology.receivers:
        clone.add_receiver(r, topology.destination_of(r), tail_delay=topology.tail_delay(r))
    for (t, r) in topology.reconfigurable_edges:
        clone.add_reconfigurable_edge(t, r, delay=topology.edge_delay(t, r))
    for (s, d), existing_delay in topology.fixed_links.items():
        clone.add_fixed_link(s, d, existing_delay)

    existing = set(topology.fixed_links)
    for s in topology.sources:
        for d in topology.destinations:
            if (s, d) in existing:
                continue
            if pair_filter is not None and not pair_filter(s, d):
                continue
            if pair_filter is None and s == d:
                continue
            clone.add_fixed_link(s, d, delay)
    return clone.freeze()


def figure1_topology() -> TwoTierTopology:
    """The topology of Figure 1 of the paper.

    Two sources ``s1, s2``; transmitters ``t1`` (of ``s1``), ``t2`` and ``t3``
    (of ``s2``); receivers ``r1`` (of ``d1``), ``r2, r3`` (of ``d2``), ``r4``
    (of ``d3``); destinations ``d1, d2, d3``.  All reconfigurable-edge delays
    are 1, a fixed link ``(s2, d3)`` with delay 4 models the double line, and
    all attachment edges have delay 0.

    The paper shows the dashed (available) reconfigurable connections only as
    a drawing; the edge set used here —
    ``(t1,r1), (t1,r2), (t2,r1), (t3,r3), (t3,r4)`` — is the one consistent
    with every number stated in the example: the tabulated feasible schedule
    (packets ``p1..p4`` over ``(t1,r1), (t1,r2), (t3,r3)`` and ``p5`` over the
    fixed link) costs 9, and the optimal schedule (``p5`` in the third slot
    via ``(t3,r4)``) costs 7.  In particular ``s2 → d2`` traffic has a single
    candidate edge ``(t3,r3)``, which is what makes 7 optimal.
    """
    topo = TwoTierTopology(name="figure1")
    for s in ("s1", "s2"):
        topo.add_source(s)
    for d in ("d1", "d2", "d3"):
        topo.add_destination(d)
    topo.add_transmitter("t1", "s1")
    topo.add_transmitter("t2", "s2")
    topo.add_transmitter("t3", "s2")
    topo.add_receiver("r1", "d1")
    topo.add_receiver("r2", "d2")
    topo.add_receiver("r3", "d2")
    topo.add_receiver("r4", "d3")
    for (t, r) in (("t1", "r1"), ("t1", "r2"), ("t2", "r1"), ("t3", "r3"), ("t3", "r4")):
        topo.add_reconfigurable_edge(t, r, delay=1)
    topo.add_fixed_link("s2", "d3", delay=4)
    return topo.freeze()


def figure2_topology() -> TwoTierTopology:
    """The exact topology of Figure 2 of the paper.

    Two sources ``s1, s2`` and three destinations ``d1, d2, d3``.  Each source
    has exactly one transmitter and each destination exactly one receiver
    (the figure omits them).  The available reconfigurable edges connect
    ``s1``'s transmitter with the receivers of ``d1`` and ``d2`` and ``s2``'s
    transmitter with the receivers of ``d2`` and ``d3``; all delays are 1 and
    there are no fixed links.
    """
    topo = TwoTierTopology(name="figure2")
    for s in ("s1", "s2"):
        topo.add_source(s)
    for d in ("d1", "d2", "d3"):
        topo.add_destination(d)
    topo.add_transmitter("t(s1)", "s1")
    topo.add_transmitter("t(s2)", "s2")
    for d in ("d1", "d2", "d3"):
        topo.add_receiver(f"r({d})", d)
    for (t, r) in (
        ("t(s1)", "r(d1)"),
        ("t(s1)", "r(d2)"),
        ("t(s2)", "r(d2)"),
        ("t(s2)", "r(d3)"),
    ):
        topo.add_reconfigurable_edge(t, r, delay=1)
    return topo.freeze()
