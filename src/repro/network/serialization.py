"""Serialization of topologies to and from plain dictionaries / JSON files.

The dictionary format is stable and versioned so topologies used in
experiments can be stored alongside results and reloaded later.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.exceptions import TopologyError
from repro.network.topology import TwoTierTopology

__all__ = ["topology_to_dict", "topology_from_dict", "save_topology", "load_topology"]

FORMAT_VERSION = 1


def topology_to_dict(topology: TwoTierTopology) -> Dict[str, Any]:
    """Serialise ``topology`` into a JSON-compatible dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "name": topology.name,
        "sources": list(topology.sources),
        "destinations": list(topology.destinations),
        "transmitters": [
            {
                "name": t,
                "source": topology.source_of(t),
                "head_delay": topology.head_delay(t),
            }
            for t in topology.transmitters
        ],
        "receivers": [
            {
                "name": r,
                "destination": topology.destination_of(r),
                "tail_delay": topology.tail_delay(r),
            }
            for r in topology.receivers
        ],
        "reconfigurable_edges": [
            {"transmitter": t, "receiver": r, "delay": topology.edge_delay(t, r)}
            for (t, r) in topology.reconfigurable_edges
        ],
        "fixed_links": [
            {"source": s, "destination": d, "delay": delay}
            for (s, d), delay in topology.fixed_links.items()
        ],
    }


def topology_from_dict(data: Dict[str, Any]) -> TwoTierTopology:
    """Rebuild a frozen :class:`TwoTierTopology` from :func:`topology_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise TopologyError(
            f"unsupported topology format version {version!r}; expected {FORMAT_VERSION}"
        )
    try:
        topo = TwoTierTopology(name=data.get("name", "two-tier"))
        for s in data["sources"]:
            topo.add_source(s)
        for d in data["destinations"]:
            topo.add_destination(d)
        for t in data["transmitters"]:
            topo.add_transmitter(t["name"], t["source"], head_delay=int(t.get("head_delay", 0)))
        for r in data["receivers"]:
            topo.add_receiver(
                r["name"], r["destination"], tail_delay=int(r.get("tail_delay", 0))
            )
        for e in data["reconfigurable_edges"]:
            topo.add_reconfigurable_edge(
                e["transmitter"], e["receiver"], delay=int(e["delay"])
            )
        for link in data["fixed_links"]:
            topo.add_fixed_link(link["source"], link["destination"], delay=int(link["delay"]))
    except KeyError as exc:
        raise TopologyError(f"missing field in topology dictionary: {exc}") from exc
    return topo.freeze()


def save_topology(topology: TwoTierTopology, path: Union[str, Path]) -> Path:
    """Write ``topology`` to ``path`` as JSON and return the path."""
    path = Path(path)
    path.write_text(
        json.dumps(topology_to_dict(topology), indent=2, sort_keys=True),
        encoding="utf-8",
    )
    return path


def load_topology(path: Union[str, Path]) -> TwoTierTopology:
    """Load a topology previously written by :func:`save_topology`."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise TopologyError(f"file {path} is not valid JSON: {exc}") from exc
    return topology_from_dict(data)
