"""Construction of the dual solution of Figure 4 from a simulation run.

Section IV-B of the paper defines the dual assignment used by the analysis:

* ``α_p`` is the worst-case impact estimated by the dispatcher when packet
  ``p`` arrived (``Δ_p(e_p)`` for packets routed over the reconfigurable
  network, ``w_p · d_l(p)`` for fixed-link packets) — the simulation engine
  records exactly this value on every assignment;
* ``β_{t,τ}`` (resp. ``β_{r,τ}``) is the total weight of chunks assigned to an
  edge incident to transmitter ``t`` (receiver ``r``) that have arrived but
  not yet reached their destination at slot ``τ``.

The dual objective for augmentation parameter ``ε`` is

.. math::

    D = Σ_p α_p − \\frac{1}{2+ε} ( Σ_{t,τ} β_{t,τ} + Σ_{r,τ} β_{r,τ} ).

Halving every variable yields a feasible dual solution (Lemma 5), whose value
is therefore a valid lower bound on the slowed-down OPT.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.exceptions import AnalysisError
from repro.simulation.results import SimulationResult

__all__ = ["DualSolution", "build_dual_solution"]


@dataclass
class DualSolution:
    """The paper's dual assignment extracted from one simulation run."""

    alphas: Dict[int, float]
    beta_transmitter: Dict[Tuple[str, int], float]
    beta_receiver: Dict[Tuple[str, int], float]
    max_slot: int

    # ------------------------------------------------------------------ #
    @property
    def total_alpha(self) -> float:
        """``Σ_p α_p``."""
        return sum(self.alphas.values())

    @property
    def total_beta_transmitter(self) -> float:
        """``Σ_t Σ_τ β_{t,τ}``."""
        return sum(self.beta_transmitter.values())

    @property
    def total_beta_receiver(self) -> float:
        """``Σ_r Σ_τ β_{r,τ}``."""
        return sum(self.beta_receiver.values())

    def beta_t(self, transmitter: str, slot: int) -> float:
        """``β_{t,τ}`` (0 when no chunk assigned to ``t`` is active at ``τ``)."""
        return self.beta_transmitter.get((transmitter, slot), 0.0)

    def beta_r(self, receiver: str, slot: int) -> float:
        """``β_{r,τ}``."""
        return self.beta_receiver.get((receiver, slot), 0.0)

    def objective(self, epsilon: float, scale: float = 1.0) -> float:
        """Dual objective with every variable multiplied by ``scale``.

        ``scale = 1`` gives the raw (possibly infeasible) assignment of
        Section IV-B; ``scale = 0.5`` gives the provably feasible halved
        solution of Lemma 5.
        """
        if epsilon <= 0:
            raise AnalysisError(f"epsilon must be > 0, got {epsilon}")
        beta_sum = self.total_beta_transmitter + self.total_beta_receiver
        return scale * (self.total_alpha - beta_sum / (2.0 + epsilon))

    def feasible_lower_bound(self, epsilon: float) -> float:
        """The Lemma 5 lower bound on the slowed-down OPT: the halved objective."""
        return self.objective(epsilon, scale=0.5)


def build_dual_solution(result: SimulationResult) -> DualSolution:
    """Extract the Section IV-B dual assignment from ``result``.

    Requires a completed run (every chunk delivered); the ``β`` variables are
    reconstructed from each chunk's active interval ``[a_p, delivery_time)``.
    """
    alphas: Dict[int, float] = {}
    beta_t: Dict[Tuple[str, int], float] = {}
    beta_r: Dict[Tuple[str, int], float] = {}
    max_slot = 0

    for record in result:
        alphas[record.packet.packet_id] = record.alpha
        if record.used_fixed_link:
            continue
        arrival = record.packet.arrival
        for chunk in record.chunks:
            if chunk.delivery_time is None:
                raise AnalysisError(
                    f"chunk {chunk!r} was never delivered; dual construction needs a "
                    "completed run"
                )
            end = int(math.ceil(chunk.delivery_time))
            for slot in range(arrival, end):
                beta_t[(chunk.transmitter, slot)] = (
                    beta_t.get((chunk.transmitter, slot), 0.0) + chunk.weight
                )
                beta_r[(chunk.receiver, slot)] = (
                    beta_r.get((chunk.receiver, slot), 0.0) + chunk.weight
                )
            max_slot = max(max_slot, end)

    return DualSolution(
        alphas=alphas,
        beta_transmitter=beta_t,
        beta_receiver=beta_r,
        max_slot=max_slot,
    )
