"""Numerical verification of the dual-fitting analysis (Lemmas 1–5, Theorem 1).

The paper's competitive analysis rests on a handful of structural facts about
any run of ALG.  This module checks every one of them *numerically* on a
concrete run, producing a :class:`DualFittingCertificate`:

* **Lemma 1** — the ``β`` variables summed over transmitters (equivalently,
  receivers) equal the weighted latency of the packets routed over the
  reconfigurable network, which is at most ALG's total cost.
* **Lemma 2** — the charging scheme assigns every packet at most ``α_p``.
* **Lemma 4** — for every packet ``p``, candidate edge ``e`` and slot ``τ``:
  ``Δ_p(e) − d(e)(β_{t,τ}+β_{r,τ}) ≤ 2·w_p·(τ + d_hat(e) − a_p)``.
* **Lemma 5** — the halved dual solution is feasible for the dual LP of
  Figure 4.
* **Lemma 3 / Theorem 1** — ``ALG ≤ (2+ε)/ε · D`` and, consequently,
  ``ALG ≤ 2·(2/ε + 1) · OPT`` where OPT is lower-bounded by the LP optimum
  with capacity ``1/(2+ε)`` (or by the feasible dual value).

These checks back the property-based tests and the E4 benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.charging import compute_charges
from repro.analysis.dual import DualSolution, build_dual_solution
from repro.core.dispatcher import EdgeImpact, ImpactDispatcher
from repro.exceptions import AnalysisError
from repro.network.topology import TwoTierTopology
from repro.simulation.results import SimulationResult

__all__ = [
    "ConstraintViolation",
    "Lemma1Report",
    "Lemma2Report",
    "DualFittingCertificate",
    "check_lemma1",
    "check_lemma2",
    "check_lemma4",
    "check_dual_feasibility",
    "verify_certificate",
    "attach_decision_log",
]

_TOL = 1e-6


@dataclass(frozen=True)
class ConstraintViolation:
    """A violated dual constraint (packet, edge, slot) with its slack."""

    packet_id: int
    edge: Optional[Tuple[str, str]]
    slot: Optional[int]
    lhs: float
    rhs: float

    @property
    def violation(self) -> float:
        """Positive amount by which the constraint is violated."""
        return self.lhs - self.rhs


@dataclass
class Lemma1Report:
    """Outcome of the Lemma 1 check."""

    beta_transmitter_total: float
    beta_receiver_total: float
    reconfigurable_latency: float
    algorithm_cost: float

    @property
    def holds(self) -> bool:
        """Whether the equalities and the upper bound of Lemma 1 hold."""
        return (
            abs(self.beta_transmitter_total - self.reconfigurable_latency) <= _TOL
            and abs(self.beta_receiver_total - self.reconfigurable_latency) <= _TOL
            and self.algorithm_cost >= self.reconfigurable_latency - _TOL
        )


@dataclass
class Lemma2Report:
    """Outcome of the Lemma 2 (charging scheme) check."""

    per_packet_slack: Dict[int, float]
    total_charges: float
    algorithm_cost: float

    @property
    def holds(self) -> bool:
        """Whether every packet is charged at most ``α_p`` and charges cover ALG."""
        return (
            all(slack >= -_TOL for slack in self.per_packet_slack.values())
            and abs(self.total_charges - self.algorithm_cost) <= _TOL
        )


@dataclass
class DualFittingCertificate:
    """Aggregate result of every dual-fitting check on one ALG run."""

    epsilon: float
    algorithm_cost: float
    dual_objective: float
    feasible_dual_value: float
    lemma1: Lemma1Report
    lemma2: Optional[Lemma2Report]
    lemma4_violations: List[ConstraintViolation] = field(default_factory=list)
    dual_violations: List[ConstraintViolation] = field(default_factory=list)
    lemma4_checked: bool = False

    @property
    def lemma3_bound(self) -> float:
        """The Lemma 3 bound ``(2+ε)/ε · D`` on ALG's cost."""
        return (2.0 + self.epsilon) / self.epsilon * self.dual_objective

    @property
    def theorem1_ratio_bound(self) -> float:
        """The Theorem 1 competitive-ratio bound ``2·(2/ε + 1)``."""
        return 2.0 * (2.0 / self.epsilon + 1.0)

    @property
    def valid(self) -> bool:
        """Whether every performed check passed."""
        checks = [
            self.lemma1.holds,
            not self.dual_violations,
            self.algorithm_cost <= self.lemma3_bound + _TOL,
        ]
        if self.lemma2 is not None:
            checks.append(self.lemma2.holds)
        if self.lemma4_checked:
            checks.append(not self.lemma4_violations)
        return all(checks)


# ---------------------------------------------------------------------- #
# individual checks
# ---------------------------------------------------------------------- #
def check_lemma1(result: SimulationResult, dual: Optional[DualSolution] = None) -> Lemma1Report:
    """Verify Lemma 1 on ``result``."""
    dual = dual or build_dual_solution(result)
    reconf_latency = sum(
        rec.weighted_latency for rec in result if not rec.used_fixed_link
    )
    return Lemma1Report(
        beta_transmitter_total=dual.total_beta_transmitter,
        beta_receiver_total=dual.total_beta_receiver,
        reconfigurable_latency=reconf_latency,
        algorithm_cost=result.total_weighted_latency,
    )


def check_lemma2(result: SimulationResult) -> Lemma2Report:
    """Verify Lemma 2 (per-packet charge ≤ α_p) on a traced speed-1 ALG run."""
    breakdown = compute_charges(result)
    slack = {
        pid: result.records[pid].alpha - breakdown.charge(pid) for pid in result.records
    }
    return Lemma2Report(
        per_packet_slack=slack,
        total_charges=breakdown.total,
        algorithm_cost=result.total_weighted_latency,
    )


def check_lemma4(
    result: SimulationResult,
    topology: TwoTierTopology,
    dual: Optional[DualSolution] = None,
    max_violations: int = 100,
) -> List[ConstraintViolation]:
    """Verify Lemma 4 for every recorded candidate-edge impact.

    Requires the run to have used an :class:`ImpactDispatcher` with
    ``record_decisions=True``; every candidate edge evaluated at dispatch time
    is checked against every slot of the dual solution's horizon.
    """
    dual = dual or build_dual_solution(result)
    violations: List[ConstraintViolation] = []
    decision_log = _decision_log(result)
    for decision in decision_log:
        pid = decision["packet_id"]
        record = result.records[pid]
        packet = record.packet
        for impact in decision["candidates"]:
            assert isinstance(impact, EdgeImpact)
            t, r = impact.edge
            d_e = impact.edge_delay
            d_hat = topology.path_delay(t, r)
            for slot in range(packet.arrival, dual.max_slot + 1):
                lhs = impact.total - d_e * (dual.beta_t(t, slot) + dual.beta_r(r, slot))
                rhs = 2.0 * packet.weight * (slot + d_hat - packet.arrival)
                if lhs > rhs + _TOL:
                    violations.append(
                        ConstraintViolation(pid, (t, r), slot, lhs=lhs, rhs=rhs)
                    )
                    if len(violations) >= max_violations:
                        return violations
    return violations


def _decision_log(result: SimulationResult) -> List[Dict[str, object]]:
    """Fetch the dispatcher decision log attached to the run's policy, if any."""
    log = getattr(result, "_decision_log", None)
    if log is not None:
        return log
    raise AnalysisError(
        "Lemma 4 requires the dispatcher decision log; run the engine with an "
        "ImpactDispatcher(record_decisions=True) policy and attach its "
        "decision_log to the result via attach_decision_log()"
    )


def attach_decision_log(result: SimulationResult, dispatcher: ImpactDispatcher) -> SimulationResult:
    """Attach an impact dispatcher's decision log to ``result`` for Lemma 4 checks."""
    result._decision_log = list(dispatcher.decision_log)  # type: ignore[attr-defined]
    return result


def check_dual_feasibility(
    result: SimulationResult,
    topology: TwoTierTopology,
    dual: Optional[DualSolution] = None,
    scale: float = 0.5,
    max_violations: int = 100,
) -> List[ConstraintViolation]:
    """Check the Figure 4 dual constraints for the scaled dual solution.

    With ``scale = 0.5`` this is exactly the Lemma 5 claim (the halved dual
    solution is feasible); with ``scale = 1.0`` it checks the raw assignment,
    which the paper notes may violate constraints by up to a factor 2.
    """
    dual = dual or build_dual_solution(result)
    violations: List[ConstraintViolation] = []
    for record in result:
        packet = record.packet
        alpha = scale * record.alpha
        # Fixed-link constraint: α_p ≤ w_p · d_l(p).
        if topology.has_fixed_link(packet.source, packet.destination):
            rhs = packet.weight * topology.fixed_link_delay(packet.source, packet.destination)
            if alpha > rhs + _TOL:
                violations.append(ConstraintViolation(packet.packet_id, None, None, alpha, rhs))
                if len(violations) >= max_violations:
                    return violations
        # Reconfigurable-edge constraints.
        for (t, r) in topology.candidate_edges(packet.source, packet.destination):
            d_e = topology.edge_delay(t, r)
            d_hat = topology.path_delay(t, r)
            for slot in range(packet.arrival, dual.max_slot + 1):
                lhs = alpha - scale * d_e * (dual.beta_t(t, slot) + dual.beta_r(r, slot))
                rhs = packet.weight * (slot + d_hat - packet.arrival)
                if lhs > rhs + _TOL:
                    violations.append(
                        ConstraintViolation(packet.packet_id, (t, r), slot, lhs, rhs)
                    )
                    if len(violations) >= max_violations:
                        return violations
    return violations


def verify_certificate(
    result: SimulationResult,
    topology: TwoTierTopology,
    epsilon: float,
    check_charging: bool = True,
    check_lemma4_constraints: bool = False,
) -> DualFittingCertificate:
    """Run every dual-fitting check on ``result`` and bundle the outcome.

    Parameters
    ----------
    result:
        A completed run of the paper's algorithm at speed 1.
    topology:
        The topology the run used.
    epsilon:
        Augmentation parameter ``ε > 0`` for the dual objective and bounds.
    check_charging:
        Include the Lemma 2 charging check (requires a recorded trace).
    check_lemma4_constraints:
        Include the Lemma 4 check (requires an attached dispatcher decision
        log, see :func:`attach_decision_log`).
    """
    if epsilon <= 0:
        raise AnalysisError(f"epsilon must be > 0, got {epsilon}")
    dual = build_dual_solution(result)
    lemma1 = check_lemma1(result, dual)
    lemma2 = check_lemma2(result) if check_charging else None
    lemma4_violations: List[ConstraintViolation] = []
    lemma4_checked = False
    if check_lemma4_constraints:
        lemma4_violations = check_lemma4(result, topology, dual)
        lemma4_checked = True
    dual_violations = check_dual_feasibility(result, topology, dual, scale=0.5)
    return DualFittingCertificate(
        epsilon=epsilon,
        algorithm_cost=result.total_weighted_latency,
        dual_objective=dual.objective(epsilon),
        feasible_dual_value=dual.feasible_lower_bound(epsilon),
        lemma1=lemma1,
        lemma2=lemma2,
        lemma4_violations=lemma4_violations,
        dual_violations=dual_violations,
        lemma4_checked=lemma4_checked,
    )
