"""The primal LP relaxation of Figure 3 and its solver.

The LP describes every (fractional, preemptive, migratory) schedule that
transmits all packets while respecting a per-transmitter and per-receiver
capacity of ``capacity`` units of transmission time per slot.  With
``capacity = 1`` its optimum lower-bounds the unaugmented offline optimum;
with ``capacity = 1/(2+ε)`` it lower-bounds the slowed-down OPT that
Theorem 1 compares against (the paper's resource-augmentation model).

Variables
---------
``x[p, e, τ]``
    Fraction of packet ``p`` sent over reconfigurable edge ``e = (t, r)``
    starting at slot ``τ >= a_p``; contributes
    ``w_p · x · (τ + d_hat(e) − a_p)`` to the objective.
``y[p]``
    Fraction of packet ``p`` sent over its direct fixed link (only for
    ``p ∈ Π_l``); contributes ``w_p · d_l(p) · y``.

Objective variants
------------------
The Figure 3 objective (``objective="paper"``, the default) charges every
transmitted fraction the *full* path delay ``d_hat(e)``, i.e. it accounts for
packets as if they complete only when the whole packet would have crossed the
edge.  Under the paper's weighted *fractional* latency (Section II), a
fraction crossing a multi-slot edge is credited as soon as it arrives, so on
topologies with ``d(e) > 1`` the Figure 3 optimum can exceed the fractional
optimum.  For experiments that need a certified lower bound on the fractional
objective (the one the simulator and the algorithm optimise), pass
``objective="fractional"``: each fraction transmitted during slot ``τ`` is
charged ``w_p · x · (τ + 1 + d(r,dest) − a_p)`` and may only be scheduled once
the packet has reached the transmitter (``τ >= a_p + d(src,t)``).  Every
schedule the simulation engine can produce (and every preemptive, migratory
schedule) maps to a feasible solution of this variant with the same cost, so
its optimum is a valid lower bound.  With unit edge delays and zero
attachment delays the two variants coincide.

Constraints
-----------
* every packet is fully transmitted (reconfigurable fractions plus, when
  available, the fixed-link fraction sum to at least 1);
* for every slot and transmitter: ``Σ d(e) · x ≤ capacity``;
* for every slot and receiver: ``Σ d(e) · x ≤ capacity``.

The solver uses :func:`scipy.optimize.linprog` (HiGHS) on sparse matrices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from repro.exceptions import LPError
from repro.workloads.base import Instance

__all__ = ["PrimalLP", "LPSolution", "build_primal_lp", "solve_lp_lower_bound"]

#: Key of an x-variable: (packet_id, (transmitter, receiver), slot).
XKey = Tuple[int, Tuple[str, str], int]


@dataclass
class PrimalLP:
    """A fully materialised instance of the Figure 3 LP (standard ``linprog`` form)."""

    instance_name: str
    capacity: float
    horizon: int
    objective_kind: str
    objective: np.ndarray
    a_ub: sparse.csr_matrix
    b_ub: np.ndarray
    x_index: Dict[XKey, int]
    y_index: Dict[int, int]

    @property
    def num_variables(self) -> int:
        """Total number of LP variables."""
        return int(self.objective.size)

    @property
    def num_constraints(self) -> int:
        """Total number of inequality constraints."""
        return int(self.b_ub.size)


@dataclass
class LPSolution:
    """Solution of the Figure 3 LP."""

    objective_value: float
    status: str
    capacity: float
    horizon: int
    num_variables: int
    num_constraints: int
    objective_kind: str = "paper"
    x_values: Dict[XKey, float] = field(default_factory=dict)
    y_values: Dict[int, float] = field(default_factory=dict)

    @property
    def optimal(self) -> bool:
        """Whether the solver reported an optimal solution."""
        return self.status == "optimal"


def build_primal_lp(
    instance: Instance,
    capacity: float = 1.0,
    horizon: Optional[int] = None,
    objective: str = "paper",
) -> PrimalLP:
    """Construct the Figure 3 LP for ``instance`` in ``scipy.linprog`` form.

    Parameters
    ----------
    capacity:
        Per-node transmission-time budget per slot (``1`` for the unaugmented
        optimum, ``1/(2+ε)`` for the paper's slowed-down OPT).
    horizon:
        Last slot at which transmissions may start.  Defaults to the
        instance's work-conserving horizon estimate at speed ``capacity``;
        too small a horizon makes the LP infeasible.
    objective:
        ``"paper"`` for the verbatim Figure 3 objective, ``"fractional"`` for
        the fractional-latency lower-bound variant (see the module docstring).
    """
    if not 0 < capacity <= 1:
        raise LPError(f"capacity must lie in (0, 1], got {capacity}")
    if objective not in ("paper", "fractional"):
        raise LPError(f"objective must be 'paper' or 'fractional', got {objective!r}")
    if not instance.packets:
        raise LPError("cannot build an LP for an empty instance")
    instance.validate()
    topology = instance.topology
    if horizon is None:
        horizon = instance.horizon_estimate(speed=capacity)
    if horizon < instance.max_arrival:
        raise LPError(
            f"horizon {horizon} is smaller than the latest arrival {instance.max_arrival}"
        )

    x_index: Dict[XKey, int] = {}
    y_index: Dict[int, int] = {}
    objective_coeffs: List[float] = []

    # --- variables -----------------------------------------------------
    for packet in instance.packets:
        edges = topology.candidate_edges(packet.source, packet.destination)
        for (t, r) in edges:
            d_hat = topology.path_delay(t, r)
            head = topology.head_delay(t)
            tail = topology.tail_delay(r)
            first_slot = packet.arrival if objective == "paper" else packet.arrival + head
            for tau in range(first_slot, horizon + 1):
                x_index[(packet.packet_id, (t, r), tau)] = len(objective_coeffs)
                if objective == "paper":
                    coeff = packet.weight * (tau + d_hat - packet.arrival)
                else:
                    coeff = packet.weight * (tau + 1 + tail - packet.arrival)
                objective_coeffs.append(coeff)
        if topology.has_fixed_link(packet.source, packet.destination):
            y_index[packet.packet_id] = len(objective_coeffs)
            objective_coeffs.append(
                packet.weight * topology.fixed_link_delay(packet.source, packet.destination)
            )

    num_vars = len(objective_coeffs)
    rows: List[int] = []
    cols: List[int] = []
    vals: List[float] = []
    b_ub: List[float] = []

    def add_entry(row: int, col: int, value: float) -> None:
        rows.append(row)
        cols.append(col)
        vals.append(value)

    # --- coverage constraints:  -(Σ x + y) <= -1 ------------------------
    row = 0
    packet_columns: Dict[int, List[int]] = {}
    for (pid, _edge, _tau), col in x_index.items():
        packet_columns.setdefault(pid, []).append(col)
    for packet in instance.packets:
        any_var = False
        for col in packet_columns.get(packet.packet_id, ()):
            add_entry(row, col, -1.0)
            any_var = True
        if packet.packet_id in y_index:
            add_entry(row, y_index[packet.packet_id], -1.0)
            any_var = True
        if not any_var:  # pragma: no cover - instance.validate() prevents this
            raise LPError(f"packet {packet.packet_id} has no variables")
        b_ub.append(-1.0)
        row += 1

    # --- capacity constraints -------------------------------------------
    # Group the x-variables by (transmitter, slot) and by (receiver, slot).
    tx_rows: Dict[Tuple[str, int], int] = {}
    rx_rows: Dict[Tuple[str, int], int] = {}
    for (pid, (t, r), tau), col in x_index.items():
        delay = topology.edge_delay(t, r)
        key_t = (t, tau)
        if key_t not in tx_rows:
            tx_rows[key_t] = row
            b_ub.append(capacity)
            row += 1
        add_entry(tx_rows[key_t], col, float(delay))
        key_r = (r, tau)
        if key_r not in rx_rows:
            rx_rows[key_r] = row
            b_ub.append(capacity)
            row += 1
        add_entry(rx_rows[key_r], col, float(delay))

    a_ub = sparse.coo_matrix((vals, (rows, cols)), shape=(row, num_vars)).tocsr()
    return PrimalLP(
        instance_name=instance.name,
        capacity=capacity,
        horizon=horizon,
        objective_kind=objective,
        objective=np.asarray(objective_coeffs, dtype=float),
        a_ub=a_ub,
        b_ub=np.asarray(b_ub, dtype=float),
        x_index=x_index,
        y_index=y_index,
    )


def solve_lp_lower_bound(
    instance: Instance,
    capacity: float = 1.0,
    horizon: Optional[int] = None,
    keep_solution: bool = False,
    value_threshold: float = 1e-9,
    objective: str = "paper",
) -> LPSolution:
    """Solve the Figure 3 LP and return its optimum (a lower bound on OPT).

    Use ``objective="fractional"`` whenever the value is compared against the
    simulator's fractional-latency costs on topologies with edge delays above
    1 (see the module docstring).

    Parameters
    ----------
    capacity, horizon, objective:
        See :func:`build_primal_lp`.
    keep_solution:
        When set, the nonzero primal variable values are returned as well
        (useful for inspecting what the fractional optimum does).
    value_threshold:
        Variables below this magnitude are dropped from the returned solution.

    Raises
    ------
    LPError
        If the LP cannot be built or the solver does not reach optimality.
    """
    lp = build_primal_lp(instance, capacity=capacity, horizon=horizon, objective=objective)
    result = linprog(
        c=lp.objective,
        A_ub=lp.a_ub,
        b_ub=lp.b_ub,
        bounds=(0, None),
        method="highs",
    )
    status = "optimal" if result.status == 0 else result.message
    if result.status != 0:
        raise LPError(
            f"LP for instance {instance.name!r} did not solve to optimality: {result.message} "
            f"(horizon={lp.horizon}, capacity={capacity}); "
            "a larger horizon usually fixes infeasibility"
        )
    solution = LPSolution(
        objective_value=float(result.fun),
        status=status,
        capacity=capacity,
        horizon=lp.horizon,
        num_variables=lp.num_variables,
        num_constraints=lp.num_constraints,
        objective_kind=objective,
    )
    if keep_solution:
        values = np.asarray(result.x)
        for key, col in lp.x_index.items():
            if values[col] > value_threshold:
                solution.x_values[key] = float(values[col])
        for pid, col in lp.y_index.items():
            if values[col] > value_threshold:
                solution.y_values[pid] = float(values[col])
    return solution
