"""Competitive-ratio evaluation helpers (Theorem 1, experiment E5).

Theorem 1 states that ALG, run ``2+ε`` times faster than the offline optimum,
has cost at most ``2·(2/ε + 1)`` times the optimum.  Equivalently — and this
is how both the paper's analysis and this module operate — ALG at speed 1 is
compared against an optimum restricted to ``1/(2+ε)`` units of transmission
time per node per slot.

Two lower bounds on that slowed-down optimum are available:

* the Figure 3 LP optimum with capacity ``1/(2+ε)`` (tight but requires
  solving an LP whose size grows with packets × edges × horizon), and
* the feasible (halved) dual value extracted from the ALG run itself
  (Lemma 5) — free to compute and available at any scale, but weaker.

The ratio of ALG's cost to either lower bound can only over-estimate the true
competitive ratio, so observing it below the Theorem 1 bound is a sound
empirical validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.dual import build_dual_solution
from repro.analysis.lp import solve_lp_lower_bound
from repro.core.algorithm import OpportunisticLinkScheduler, theoretical_competitive_ratio
from repro.core.interfaces import Policy
from repro.exceptions import AnalysisError
from repro.simulation.engine import simulate
from repro.simulation.results import SimulationResult
from repro.workloads.base import Instance

__all__ = ["CompetitiveRatioReport", "evaluate_competitive_ratio", "dual_lower_bound"]


@dataclass(frozen=True)
class CompetitiveRatioReport:
    """Empirical competitive-ratio measurement for one instance and one ε."""

    instance_name: str
    epsilon: float
    algorithm_cost: float
    lp_lower_bound: Optional[float]
    dual_lower_bound: float
    theoretical_bound: float

    @property
    def best_lower_bound(self) -> float:
        """The largest available lower bound on the slowed-down OPT."""
        if self.lp_lower_bound is None:
            return self.dual_lower_bound
        return max(self.lp_lower_bound, self.dual_lower_bound)

    @property
    def empirical_ratio(self) -> float:
        """ALG cost divided by the best lower bound (an upper bound on the true ratio)."""
        lower = self.best_lower_bound
        if lower <= 0:
            return float("inf")
        return self.algorithm_cost / lower

    @property
    def within_bound(self) -> bool:
        """Whether the measured ratio respects the Theorem 1 guarantee."""
        return self.empirical_ratio <= self.theoretical_bound + 1e-6


def dual_lower_bound(result: SimulationResult, epsilon: float) -> float:
    """Lemma 5 lower bound on the slowed-down OPT, from an ALG run at speed 1."""
    if epsilon <= 0:
        raise AnalysisError(f"epsilon must be > 0, got {epsilon}")
    return build_dual_solution(result).feasible_lower_bound(epsilon)


def evaluate_competitive_ratio(
    instance: Instance,
    epsilon: float,
    policy: Optional[Policy] = None,
    use_lp: bool = True,
    lp_horizon: Optional[int] = None,
    max_slots: int = 1_000_000,
) -> CompetitiveRatioReport:
    """Measure the empirical competitive ratio of ALG on ``instance``.

    Parameters
    ----------
    instance:
        The workload instance.
    epsilon:
        Augmentation parameter ``ε > 0``; the optimum is restricted to
        capacity ``1/(2+ε)``.
    policy:
        The online policy to evaluate (defaults to the paper's ALG).
    use_lp:
        Solve the Figure 3 LP for the lower bound (exact but expensive); when
        ``False`` only the dual lower bound is used.
    lp_horizon:
        Optional horizon override forwarded to the LP builder.
    """
    if epsilon <= 0:
        raise AnalysisError(f"epsilon must be > 0, got {epsilon}")
    instance.validate()
    policy = policy or OpportunisticLinkScheduler()
    result = simulate(
        instance.topology, policy, instance.packets, speed=1.0, max_slots=max_slots
    )
    if not result.all_delivered:
        raise AnalysisError(f"policy {policy.name!r} did not deliver every packet")

    capacity = 1.0 / (2.0 + epsilon)
    lp_value: Optional[float] = None
    if use_lp:
        # The "fractional" objective variant is a certified lower bound on the
        # slowed-down OPT under the paper's weighted fractional latency (the
        # verbatim Figure 3 objective can exceed it on multi-slot edges).
        lp_value = solve_lp_lower_bound(
            instance, capacity=capacity, horizon=lp_horizon, objective="fractional"
        ).objective_value

    return CompetitiveRatioReport(
        instance_name=instance.name,
        epsilon=epsilon,
        algorithm_cost=result.total_weighted_latency,
        lp_lower_bound=lp_value,
        dual_lower_bound=dual_lower_bound(result, epsilon),
        theoretical_bound=theoretical_competitive_ratio(epsilon),
    )
