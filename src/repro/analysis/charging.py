"""The ALG-to-α charging scheme of Section IV-C.

The analysis charges every unit of weighted latency accumulated by ALG to
some packet, and Lemma 2 shows each packet ``p`` is charged at most ``α_p``.
The rules are, per chunk ``c`` of packet ``p`` and per slot ``τ`` of its
active interval:

* slots spent traversing an edge of the graph (the source→transmitter head,
  the transmission slot on the reconfigurable edge, and the
  receiver→destination tail) are charged to ``p`` itself;
* slots spent waiting because another chunk ``c'`` *blocked* ``c`` (``c'`` was
  transmitted that slot, shares a transmitter or receiver with ``c``'s edge,
  and outranks ``c`` in the priority order) are charged to ``p`` when the
  blocker belongs to ``p`` or to an earlier-arrived packet, and to the
  blocker's packet when that packet arrived later.

Packets transmitted over the fixed network are charged their full latency
``w_p · d_l(p)``.

Figure 2 of the paper tabulates exactly these per-packet charges for two
small inputs; the reproduction benchmark E2 recomputes them with this module.

The computation requires a run of the *paper's* algorithm at speed 1 with the
event trace enabled (the stable-matching property guarantees a blocker exists
for every waiting slot; other schedulers may violate this, in which case an
:class:`~repro.exceptions.AnalysisError` is raised).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Set, Tuple

from repro.core.packet import Chunk
from repro.exceptions import AnalysisError
from repro.simulation.results import SimulationResult
from repro.utils.ordering import chunk_priority_key

__all__ = ["ChargingBreakdown", "compute_charges"]


@dataclass
class ChargingBreakdown:
    """Per-packet charges assigned by the Section IV-C charging scheme."""

    charges: Dict[int, float]
    transit_charges: Dict[int, float]
    blocking_charges: Dict[int, float]

    @property
    def total(self) -> float:
        """Total charged latency (equals ALG's objective by construction)."""
        return sum(self.charges.values())

    def charge(self, packet_id: int) -> float:
        """The total charge received by packet ``packet_id``."""
        return self.charges.get(packet_id, 0.0)


def _packet_order_key(chunk: Chunk) -> Tuple[int, int]:
    """Arrival order of a chunk's packet (earlier slot, then earlier dispatch)."""
    return (chunk.packet.arrival, chunk.packet.packet_id)


def compute_charges(result: SimulationResult) -> ChargingBreakdown:
    """Compute the charging-scheme values for a completed ALG run.

    Requires ``result.trace`` (run the engine with ``record_trace=True``) and
    speed 1 (so every chunk is transmitted in exactly one slot and the notion
    of "the slot in which a chunk was transmitted" is well defined).
    """
    if result.trace is None:
        raise AnalysisError("charging requires a run recorded with record_trace=True")
    if abs(result.speed - 1.0) > 1e-12:
        raise AnalysisError(
            f"charging is defined for speed-1 runs; this run used speed {result.speed}"
        )

    charges: Dict[int, float] = {pid: 0.0 for pid in result.records}
    transit: Dict[int, float] = {pid: 0.0 for pid in result.records}
    blocking: Dict[int, float] = {pid: 0.0 for pid in result.records}

    # Chunks transmitted in each slot, resolved back to Chunk objects.
    chunk_of: Dict[Tuple[int, int], Chunk] = {}
    for record in result:
        for chunk in record.chunks:
            chunk_of[(record.packet.packet_id, chunk.index)] = chunk
    transmitted_per_slot: Dict[int, List[Chunk]] = {}
    for slot_trace in result.trace:
        transmitted_per_slot[slot_trace.slot] = [
            chunk_of[(ev.packet_id, ev.chunk_index)] for ev in slot_trace.transmissions
        ]

    for record in result:
        pid = record.packet.packet_id
        if record.used_fixed_link:
            charges[pid] += record.assignment.weighted_latency
            transit[pid] += record.assignment.weighted_latency
            continue

        arrival = record.packet.arrival
        for chunk in record.chunks:
            if chunk.completed_slot is None or chunk.delivery_time is None:
                raise AnalysisError(f"chunk {chunk!r} was never delivered")
            # Head traversal (source → transmitter) and tail traversal
            # (receiver → destination): charged to the packet itself.
            head_slots = chunk.eligible_time - arrival
            tail_slots = int(math.ceil(chunk.delivery_time)) - (chunk.completed_slot + 1)
            transit_amount = chunk.weight * (head_slots + 1 + tail_slots)
            charges[pid] += transit_amount
            transit[pid] += transit_amount

            # Waiting slots: every slot in [eligible, completed) where the
            # chunk was pending but not transmitted.
            key_c = chunk_priority_key(chunk)
            for slot in range(chunk.eligible_time, chunk.completed_slot):
                blockers = [
                    other
                    for other in transmitted_per_slot.get(slot, ())
                    if other is not chunk
                    and (
                        other.transmitter == chunk.transmitter
                        or other.receiver == chunk.receiver
                    )
                    and chunk_priority_key(other) < key_c
                ]
                if not blockers:
                    raise AnalysisError(
                        f"chunk {chunk!r} waited at slot {slot} without a blocking chunk; "
                        "the charging scheme applies only to the stable-matching scheduler"
                    )
                # Own-packet blockers take precedence (the Lemma 2 accounting
                # folds those slots into the packet's self-latency term).
                own = [b for b in blockers if b.packet.packet_id == pid]
                if own:
                    charges[pid] += chunk.weight
                    transit[pid] += chunk.weight
                    continue
                blocker = min(blockers, key=chunk_priority_key)
                if _packet_order_key(blocker) < (arrival, pid):
                    # Blocker arrived earlier: the charge stays with this packet.
                    target = pid
                else:
                    # Blocker arrived later: it pays for the delay it causes.
                    target = blocker.packet.packet_id
                charges[target] += chunk.weight
                blocking[target] += chunk.weight

    return ChargingBreakdown(charges=charges, transit_charges=transit, blocking_charges=blocking)
