"""LP relaxation, dual fitting and competitive-ratio analysis (Figures 3–4, Lemmas 1–5)."""

from repro.analysis.charging import ChargingBreakdown, compute_charges
from repro.analysis.competitive import (
    CompetitiveRatioReport,
    dual_lower_bound,
    evaluate_competitive_ratio,
)
from repro.analysis.dual import DualSolution, build_dual_solution
from repro.analysis.dual_fitting import (
    ConstraintViolation,
    DualFittingCertificate,
    Lemma1Report,
    Lemma2Report,
    attach_decision_log,
    check_dual_feasibility,
    check_lemma1,
    check_lemma2,
    check_lemma4,
    verify_certificate,
)
from repro.analysis.lp import (
    LPSolution,
    PrimalLP,
    build_primal_lp,
    solve_lp_lower_bound,
)

__all__ = [
    "ChargingBreakdown",
    "compute_charges",
    "DualSolution",
    "build_dual_solution",
    "ConstraintViolation",
    "DualFittingCertificate",
    "Lemma1Report",
    "Lemma2Report",
    "attach_decision_log",
    "check_dual_feasibility",
    "check_lemma1",
    "check_lemma2",
    "check_lemma4",
    "verify_certificate",
    "LPSolution",
    "PrimalLP",
    "build_primal_lp",
    "solve_lp_lower_bound",
    "CompetitiveRatioReport",
    "dual_lower_bound",
    "evaluate_competitive_ratio",
]
