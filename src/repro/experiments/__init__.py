"""Experiment harness: instance catalogues, comparisons, sweeps and reports."""

from repro.experiments.comparison import (
    PolicyComparisonRow,
    compare_policies_on_instance,
    compare_policies_on_suite,
    format_comparison_table,
    run_policy,
)
from repro.experiments.generators import (
    crossbar_instance,
    hybrid_instance,
    small_lp_instances,
    standard_projector_instances,
)
from repro.experiments.report import rows_to_csv, rows_to_table, write_csv
from repro.experiments.runner import (
    ExperimentRunner,
    ExperimentSpec,
    ExperimentTask,
    RunnerConfig,
    read_json,
    rows_to_json,
    run_experiment,
    write_json,
)
from repro.experiments.sweeps import (
    CompetitiveRatioRow,
    DelaySweepRow,
    HybridSweepRow,
    SpeedupRow,
    TierSweepRow,
    competitive_ratio_sweep,
    delay_heterogeneity_sweep,
    hybrid_fixed_link_sweep,
    speedup_sweep,
    two_tier_sweep,
)

__all__ = [
    "run_policy",
    "compare_policies_on_instance",
    "compare_policies_on_suite",
    "format_comparison_table",
    "PolicyComparisonRow",
    "standard_projector_instances",
    "small_lp_instances",
    "crossbar_instance",
    "hybrid_instance",
    "rows_to_table",
    "rows_to_csv",
    "write_csv",
    "ExperimentRunner",
    "ExperimentSpec",
    "ExperimentTask",
    "RunnerConfig",
    "run_experiment",
    "rows_to_json",
    "write_json",
    "read_json",
    "competitive_ratio_sweep",
    "speedup_sweep",
    "delay_heterogeneity_sweep",
    "hybrid_fixed_link_sweep",
    "two_tier_sweep",
    "CompetitiveRatioRow",
    "SpeedupRow",
    "DelaySweepRow",
    "HybridSweepRow",
    "TierSweepRow",
]
