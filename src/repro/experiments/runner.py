"""Parallel, fault-tolerant experiment runner.

Every sweep and comparison in :mod:`repro.experiments` is a *grid* of
self-contained measurements: each grid point can be evaluated knowing only its
own parameters and a deterministic seed.  This module turns that observation
into a small subsystem:

* :class:`ExperimentSpec` names an experiment and pairs a picklable task
  function with the grid of parameter dictionaries it should be evaluated on;
* :class:`ExperimentTask` is one materialised grid point, carrying its own
  deterministic seed derived from the spec's root seed through
  :class:`~repro.utils.rng.SeedSequenceFactory`;
* :class:`RunnerConfig` selects serial or multi-process execution (``jobs``)
  without changing the produced rows, and configures the fault-tolerance
  envelope: per-task ``timeout``, bounded ``retries`` with deterministic
  re-seeding and exponential backoff, ``on_error`` policy, and a JSONL
  ``checkpoint_path`` for crash-resumable sweeps;
* :class:`ExperimentRunner` executes the grid and returns rows in grid order,
  optionally persisting them as JSON for later analysis.

The contract that makes parallelism safe is the same one the
splitnn-emulator's partitioner uses for its per-partition fan-out: tasks share
*no* mutable state, their inputs are deterministic, and the runner reassembles
outputs in the deterministic grid order, so ``jobs=1`` and ``jobs=N`` produce
identical row lists.

Fault tolerance
---------------
Long sweeps die for boring reasons — a worker segfaults, one grid point hangs,
the host reboots.  The runner degrades gracefully instead of losing the sweep:

* a task that raises is retried up to ``retries`` times, each attempt with a
  fresh deterministic seed (``integer_seed("retry", name, index, attempt)``)
  and exponentially backed-off delay;
* a worker process that dies (``BrokenProcessPool``) or a task that exceeds
  ``timeout`` tears the pool down, re-creates it, and resubmits every
  unfinished task; only the blamed task consumes a retry — crash and timeout
  retries keep the *original* task seed, so a transient crash reproduces the
  exact rows an undisturbed run would have produced;
* with ``on_error="skip"`` a task that exhausts its retries yields zero rows
  (status ``"failed"`` in the heartbeat stream) instead of failing the sweep;
* with ``checkpoint_path`` set, each completed task's rows are appended to a
  JSONL checkpoint (flushed per record, torn final lines tolerated); re-running
  the same spec against the same path replays completed tasks from the
  checkpoint — bit-identical rows — and executes only the missing ones.

Examples
--------
>>> from repro.experiments.runner import ExperimentSpec, ExperimentRunner, RunnerConfig
>>> def square(task):
...     return {"x": task.params["x"], "seed": task.seed, "y": task.params["x"] ** 2}
>>> spec = ExperimentSpec(name="squares", task_fn=square,
...                       grid=[{"x": x} for x in (1, 2, 3)], seed=7)
>>> rows = ExperimentRunner(RunnerConfig(jobs=1)).run(spec)
>>> [row["y"] for row in rows]
[1, 4, 9]
>>> rows == ExperimentRunner(RunnerConfig(jobs=1)).run(spec)   # reproducible
True

(``RunnerConfig(jobs=2)`` produces the same rows; the task function must then
be a module-level — hence picklable — function rather than a local one like
``square`` above.)
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import time
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool, ProcessPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.exceptions import ExperimentError
from repro.utils.atomic import atomic_writer
from repro.utils.jsonl import iter_json_lines
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "ExperimentTask",
    "ExperimentSpec",
    "RunnerConfig",
    "ExperimentRunner",
    "run_experiment",
    "rows_to_json",
    "write_json",
    "read_json",
    "write_jsonl",
    "iter_jsonl",
    "read_jsonl",
]

#: A task function maps one :class:`ExperimentTask` to a row (dataclass or
#: mapping) or to a list of rows.  It must be picklable (a module-level
#: function) for ``jobs > 1``.
TaskFn = Callable[["ExperimentTask"], Any]

#: Valid ``RunnerConfig.on_error`` policies.
ON_ERROR_MODES = ("raise", "skip")


@dataclass(frozen=True)
class ExperimentTask:
    """One self-contained grid point of an :class:`ExperimentSpec`.

    Attributes
    ----------
    spec_name:
        Name of the owning spec (used in error messages and JSON output).
    index:
        Position of this task in the spec's grid; rows are always returned in
        index order regardless of execution order.
    params:
        The grid point's parameters, passed verbatim to the task function.
    seed:
        Deterministic 63-bit seed derived from the spec's root seed and the
        task index; independent across tasks, reproducible across runs and
        processes.
    """

    spec_name: str
    index: int
    params: Dict[str, Any]
    seed: int


@dataclass(frozen=True)
class ExperimentSpec:
    """A named experiment expressed as a grid of self-contained tasks.

    Attributes
    ----------
    name:
        Experiment name (e.g. ``"speedup"``); also namespaces the per-task
        seed derivation, so two specs with the same root seed but different
        names get independent task seeds.
    task_fn:
        Module-level callable evaluating one :class:`ExperimentTask`.
    grid:
        One parameter dictionary per task, in output order.
    seed:
        Root seed for per-task seed derivation (``None`` still yields a
        deterministic derivation keyed only on the name and index).
    """

    name: str
    task_fn: TaskFn
    grid: Sequence[Dict[str, Any]] = field(default_factory=tuple)
    seed: Optional[int] = None

    def tasks(self) -> List[ExperimentTask]:
        """Materialise the grid into tasks with deterministic per-task seeds."""
        seeds = SeedSequenceFactory(self.seed)
        return [
            ExperimentTask(
                spec_name=self.name,
                index=index,
                params=dict(params),
                seed=seeds.integer_seed("task", self.name, index),
            )
            for index, params in enumerate(self.grid)
        ]

    def retry_seed(self, index: int, attempt: int) -> int:
        """Deterministic seed for retry ``attempt`` (>= 1) of task ``index``.

        Derived through a ``"retry"``-namespaced key so it never collides with
        the first-attempt task seeds, yet is reproducible across processes.
        """
        return SeedSequenceFactory(self.seed).integer_seed(
            "retry", self.name, index, attempt
        )


@dataclass(frozen=True)
class RunnerConfig:
    """Execution configuration of an :class:`ExperimentRunner`.

    Attributes
    ----------
    jobs:
        Number of worker processes; ``1`` (the default) runs tasks serially in
        the calling process, ``N > 1`` fans tasks out over a
        :class:`concurrent.futures.ProcessPoolExecutor`.  The produced rows
        are identical either way.
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); ``None`` uses the platform default.
    chunksize:
        Retained for API compatibility.  The fault-tolerant executor path
        dispatches one task per submission so that per-task timeouts, retries
        and crash recovery are possible; ``chunksize`` therefore no longer
        batches IPC but is still validated.
    metrics_path:
        When set, the runner appends one ``{"record": "runner_heartbeat"}``
        JSONL line per completed task (task index, rows so far, elapsed
        seconds, retry count and completion status) to this file, so long
        sweeps are observable from outside the process.  Heartbeats never
        change the produced rows.
    timeout:
        Per-task wall-clock budget in seconds for ``jobs > 1``; a task whose
        result does not arrive in time consumes a retry (the worker pool is
        recycled so the stuck worker cannot wedge the sweep).  ``None``
        (default) waits forever.  Serial execution cannot interrupt a running
        task, so ``timeout`` is ignored for ``jobs == 1``.
    retries:
        Number of times a failing task is re-attempted before the ``on_error``
        policy applies.  Retries triggered by an in-task exception use a fresh
        deterministic seed; retries triggered by a worker crash or timeout
        keep the original seed (the task itself never observed a failure).
    retry_backoff:
        Base delay in seconds before retry ``k``; the actual sleep is
        ``retry_backoff * 2**(k-1)``.  ``0`` disables backoff.
    on_error:
        ``"raise"`` (default) propagates the failure once retries are
        exhausted; ``"skip"`` records the task as failed (zero rows, heartbeat
        status ``"failed"``) and continues with the rest of the grid.
    checkpoint_path:
        When set, each successfully completed task's rows are appended to this
        JSONL file (one flushed record per task).  Running the same spec again
        with the same path resumes: completed tasks are replayed bit-identically
        from the checkpoint and only missing or previously failed tasks are
        executed.
    """

    jobs: int = 1
    start_method: Optional[str] = None
    chunksize: int = 1
    metrics_path: Optional[str] = None
    timeout: Optional[float] = None
    retries: int = 0
    retry_backoff: float = 0.05
    on_error: str = "raise"
    checkpoint_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {self.chunksize}")
        if self.timeout is not None and not self.timeout > 0:
            raise ValueError(f"timeout must be positive, got {self.timeout}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.retry_backoff < 0:
            raise ValueError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"on_error must be one of {ON_ERROR_MODES}, got {self.on_error!r}"
            )


def _execute_task(task_fn: TaskFn, task: ExperimentTask) -> List[Any]:
    """Evaluate one task and normalise its output to a list of rows."""
    try:
        output = task_fn(task)
    except Exception as exc:  # re-raise with grid context, keep the original chained
        raise ExperimentError(
            f"task {task.index} of experiment {task.spec_name!r} failed "
            f"(params={task.params!r}): {exc}"
        ) from exc
    if output is None:
        return []
    if isinstance(output, list):
        return output
    return [output]


def _reseeded(spec: ExperimentSpec, task: ExperimentTask, attempt: int) -> ExperimentTask:
    """Task to submit for ``attempt``: the original at 0, re-seeded afterwards."""
    if attempt == 0:
        return task
    return dataclasses.replace(task, seed=spec.retry_seed(task.index, attempt))


@dataclass
class _TaskOutcome:
    """Result of one grid point: its rows plus how the runner got them.

    ``status`` is ``"ok"`` (executed this run), ``"checkpointed"`` (replayed
    from the checkpoint file) or ``"failed"`` (retries exhausted under
    ``on_error="skip"``); ``retries`` counts extra attempts consumed.
    """

    index: int
    rows: List[Any]
    status: str
    retries: int


def _load_checkpoint(
    path: Path, spec: ExperimentSpec, tasks: Sequence[ExperimentTask]
) -> Dict[int, _TaskOutcome]:
    """Read completed-task records back from a runner checkpoint file.

    A torn *final* line (crash mid-append) is tolerated — that task is simply
    re-run; corruption anywhere else, or a record written by a different
    experiment or root seed, raises :class:`ExperimentError` so a sweep can
    never silently mix rows from two different specs.
    """
    if not path.exists():
        return {}
    done: Dict[int, _TaskOutcome] = {}
    lines = path.read_text(encoding="utf-8").splitlines()
    for number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped:
            continue
        try:
            record = json.loads(stripped)
        except json.JSONDecodeError as exc:
            if number == len(lines):
                break  # torn final record from a crash mid-write; re-run it
            raise ExperimentError(
                f"{path}:{number}: corrupt checkpoint record: {exc}"
            ) from exc
        if not isinstance(record, dict) or record.get("record") != "task":
            raise ExperimentError(
                f"{path}:{number}: not a runner checkpoint record"
            )
        if record.get("experiment") != spec.name:
            raise ExperimentError(
                f"{path}:{number}: checkpoint belongs to experiment "
                f"{record.get('experiment')!r}, not {spec.name!r}"
            )
        index = record.get("task_index")
        if not isinstance(index, int) or not 0 <= index < len(tasks):
            raise ExperimentError(
                f"{path}:{number}: task_index {index!r} outside the "
                f"{len(tasks)}-point grid"
            )
        if record.get("seed") != tasks[index].seed:
            raise ExperimentError(
                f"{path}:{number}: task {index} seed mismatch — checkpoint "
                f"was written with a different root seed or grid"
            )
        done[index] = _TaskOutcome(
            index=index,
            rows=list(record.get("rows", [])),
            status="checkpointed",
            retries=int(record.get("retries", 0)),
        )
    return done


class ExperimentRunner:
    """Executes an :class:`ExperimentSpec` serially or over a process pool."""

    def __init__(self, config: Optional[RunnerConfig] = None) -> None:
        self.config = config or RunnerConfig()

    def run(
        self,
        spec: ExperimentSpec,
        output_path: Optional[Union[str, Path]] = None,
    ) -> List[Any]:
        """Run every task of ``spec`` and return the rows in grid order.

        When ``output_path`` is given the rows are also persisted: paths
        ending in ``.jsonl`` are written as JSON Lines (streamed row by row
        as tasks finish), anything else as one JSON document (plus the spec
        name, root seed and grid size).  Both formats are finalised
        atomically (temp file + ``os.replace``), so a crash mid-write never
        leaves a truncated artifact behind.
        """
        if output_path is not None and str(output_path).endswith(".jsonl"):
            rows: List[Any] = []

            def tee() -> Iterator[Any]:
                for row in self.iter_rows(spec):
                    rows.append(row)
                    yield row

            write_jsonl(tee(), output_path)
            return rows
        rows = list(self.iter_rows(spec))
        if output_path is not None:
            write_json(rows, output_path, spec=spec)
        return rows

    def iter_rows(self, spec: ExperimentSpec) -> Iterator[Any]:
        """Lazily yield the rows of ``spec`` in grid order.

        The streaming counterpart of :meth:`run`: with ``jobs == 1`` each
        task is evaluated only when its rows are pulled; with ``jobs > 1``
        tasks are fanned out over a process pool and reassembled in grid
        order, so at most completed-but-unyielded task outputs — not the
        whole grid — are buffered in the parent process.
        """
        outcomes = self._iter_outcomes(spec)
        if self.config.metrics_path is None:
            for outcome in outcomes:
                yield from outcome.rows
            return
        # Heartbeats are written by the parent as each task's rows arrive, so
        # the stream is ordered and works identically for jobs == 1 and > 1.
        from repro.obs import MetricsWriter

        started = time.perf_counter()
        rows_emitted = 0
        tasks_total = len(spec.grid)
        with MetricsWriter(self.config.metrics_path, mode="a") as writer:
            for outcome in outcomes:
                rows_emitted += len(outcome.rows)
                writer.write(
                    {
                        "record": "runner_heartbeat",
                        "experiment": spec.name,
                        "task_index": outcome.index,
                        "tasks_total": tasks_total,
                        "rows_emitted": rows_emitted,
                        "elapsed_s": round(time.perf_counter() - started, 6),
                        "retries": outcome.retries,
                        "status": outcome.status,
                    }
                )
                yield from outcome.rows

    # ------------------------------------------------------------------ #
    # outcome production: checkpointing wrapper over execution
    # ------------------------------------------------------------------ #
    def _iter_outcomes(self, spec: ExperimentSpec) -> Iterator[_TaskOutcome]:
        """Yield one :class:`_TaskOutcome` per grid point, in grid order."""
        tasks = spec.tasks()
        if self.config.checkpoint_path is None:
            yield from self._iter_fresh_outcomes(tasks, spec)
            return
        path = Path(self.config.checkpoint_path)
        done = _load_checkpoint(path, spec, tasks)
        to_run = [task for task in tasks if task.index not in done]
        fresh = self._iter_fresh_outcomes(to_run, spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Mirrors repro.search's checkpoint writer: append mode, one JSON
        # record per line, flushed immediately so a later crash loses at most
        # the record being written (and _load_checkpoint tolerates that tear).
        with path.open("a", encoding="utf-8") as handle:
            for task in tasks:
                if task.index in done:
                    yield done[task.index]
                    continue
                outcome = next(fresh)
                if outcome.status == "ok":
                    record = {
                        "record": "task",
                        "experiment": spec.name,
                        "task_index": outcome.index,
                        "seed": tasks[outcome.index].seed,
                        "retries": outcome.retries,
                        "rows": [_row_to_jsonable(row) for row in outcome.rows],
                    }
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
                    handle.flush()
                yield outcome

    def _iter_fresh_outcomes(
        self, tasks: Sequence[ExperimentTask], spec: ExperimentSpec
    ) -> Iterator[_TaskOutcome]:
        if not tasks:
            return
        if self.config.jobs == 1 or len(tasks) <= 1:
            for task in tasks:
                yield self._run_task_serial(spec, task)
            return
        yield from self._iter_parallel_outcomes(tasks, spec)

    # ------------------------------------------------------------------ #
    # serial execution with retries
    # ------------------------------------------------------------------ #
    def _run_task_serial(
        self, spec: ExperimentSpec, task: ExperimentTask
    ) -> _TaskOutcome:
        attempt = 0
        while True:
            try:
                rows = _execute_task(spec.task_fn, _reseeded(spec, task, attempt))
            except ExperimentError:
                if attempt >= self.config.retries:
                    if self.config.on_error == "skip":
                        return _TaskOutcome(task.index, [], "failed", attempt)
                    raise
                attempt += 1
                self._backoff(attempt)
            else:
                return _TaskOutcome(task.index, rows, "ok", attempt)

    def _backoff(self, attempt: int) -> None:
        delay = self.config.retry_backoff * (2 ** (attempt - 1))
        if delay > 0:
            time.sleep(delay)

    # ------------------------------------------------------------------ #
    # parallel execution: timeouts, retries, worker-crash recovery
    # ------------------------------------------------------------------ #
    def _iter_parallel_outcomes(
        self, tasks: Sequence[ExperimentTask], spec: ExperimentSpec
    ) -> Iterator[_TaskOutcome]:
        """Fan tasks out over a :class:`ProcessPoolExecutor`, in grid order.

        The pool is treated as expendable: a timeout or a dead worker tears
        it down and re-creates it, resubmitting every unfinished task.  Only
        the task being waited on is blamed (consumes a retry); the rest are
        resubmitted at their current attempt, so an innocent neighbour of a
        crashing task never loses determinism.
        """
        config = self.config
        context = multiprocessing.get_context(config.start_method)
        call = partial(_execute_task, spec.task_fn)
        remaining: Dict[int, ExperimentTask] = {task.index: task for task in tasks}
        attempts: Dict[int, int] = {task.index: 0 for task in tasks}
        # Seed attempts advance only on *in-task* exceptions: a crash or a
        # timeout is the environment's fault, so the retry keeps the original
        # seed and reproduces exactly the rows an undisturbed run would have.
        seed_attempts: Dict[int, int] = {task.index: 0 for task in tasks}
        finished: Dict[int, _TaskOutcome] = {}
        order = [task.index for task in tasks]

        executor: Optional[ProcessPoolExecutor] = None
        futures: Dict[int, Any] = {}

        def start_executor() -> None:
            nonlocal executor, futures
            executor = ProcessPoolExecutor(
                max_workers=min(config.jobs, len(remaining)),
                mp_context=context,
            )
            futures = {
                index: executor.submit(
                    call, _reseeded(spec, task, seed_attempts[index])
                )
                for index, task in sorted(remaining.items())
            }

        def stop_executor() -> None:
            nonlocal executor, futures
            if executor is not None:
                for future in futures.values():
                    future.cancel()
                executor.shutdown(wait=False)
            executor = None
            futures = {}

        def blame(index: int, reason: str) -> None:
            """Charge a pool-level disruption (timeout/crash) to ``index``."""
            if attempts[index] >= config.retries:
                task = remaining.pop(index)
                if config.on_error == "skip":
                    finished[index] = _TaskOutcome(index, [], "failed", attempts[index])
                    return
                raise ExperimentError(
                    f"task {index} of experiment {spec.name!r} {reason} after "
                    f"{attempts[index] + 1} attempt(s) (params={task.params!r})"
                )
            attempts[index] += 1
            self._backoff(attempts[index])

        start_executor()
        try:
            for index in order:
                while index not in finished:
                    future = futures[index]
                    try:
                        rows = future.result(timeout=config.timeout)
                    except _FutureTimeout:
                        blame(index, "timed out")
                        stop_executor()
                        if remaining:
                            start_executor()
                    except BrokenProcessPool:
                        blame(index, "crashed (worker process died)")
                        stop_executor()
                        if remaining:
                            start_executor()
                    except ExperimentError:
                        # The task itself raised inside the worker: the pool is
                        # healthy, so only this task is re-submitted — with a
                        # fresh deterministic retry seed.
                        if attempts[index] >= config.retries:
                            if config.on_error != "skip":
                                raise
                            remaining.pop(index)
                            finished[index] = _TaskOutcome(
                                index, [], "failed", attempts[index]
                            )
                        else:
                            attempts[index] += 1
                            seed_attempts[index] += 1
                            self._backoff(attempts[index])
                            assert executor is not None
                            futures[index] = executor.submit(
                                call,
                                _reseeded(
                                    spec, remaining[index], seed_attempts[index]
                                ),
                            )
                    else:
                        finished[index] = _TaskOutcome(
                            index, rows, "ok", attempts[index]
                        )
                        remaining.pop(index)
                yield finished.pop(index)
        finally:
            stop_executor()


def run_experiment(
    spec: ExperimentSpec,
    jobs: int = 1,
    output_path: Optional[Union[str, Path]] = None,
    chunksize: int = 1,
) -> List[Any]:
    """One-call convenience wrapper: run ``spec`` with ``jobs`` workers.

    ``chunksize`` is retained for API compatibility (see
    :class:`RunnerConfig`).
    """
    return ExperimentRunner(RunnerConfig(jobs=jobs, chunksize=chunksize)).run(
        spec, output_path=output_path
    )


# ---------------------------------------------------------------------- #
# JSON persistence
# ---------------------------------------------------------------------- #
def _row_to_jsonable(row: object) -> Dict[str, Any]:
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        return dataclasses.asdict(row)
    if isinstance(row, dict):
        return dict(row)
    raise ExperimentError(f"cannot serialise row of type {type(row).__name__} to JSON")


def rows_to_json(rows: Sequence[object], spec: Optional[ExperimentSpec] = None) -> str:
    """Render rows (and optional spec metadata) as a JSON document."""
    document: Dict[str, Any] = {}
    if spec is not None:
        document["experiment"] = spec.name
        document["seed"] = spec.seed
        document["grid_size"] = len(spec.grid)
    document["rows"] = [_row_to_jsonable(row) for row in rows]
    return json.dumps(document, indent=2, sort_keys=True)


def write_json(
    rows: Sequence[object],
    path: Union[str, Path],
    spec: Optional[ExperimentSpec] = None,
) -> Path:
    """Atomically write rows to ``path`` as JSON and return the path."""
    path = Path(path)
    with atomic_writer(path) as handle:
        handle.write(rows_to_json(rows, spec=spec) + "\n")
    return path


def read_json(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load the rows previously written by :func:`write_json`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "rows" not in document:
        raise ExperimentError(f"{path} does not look like runner JSON output")
    return list(document["rows"])


def write_jsonl(rows: Iterable[object], path: Union[str, Path]) -> Path:
    """Atomically write rows to ``path`` as JSON Lines and return the path.

    Accepts any iterable of rows and streams them to a temporary file without
    building the whole document in memory; the temp file replaces ``path``
    only once every row has been written, so readers never observe a
    truncated sweep.
    """
    path = Path(path)
    with atomic_writer(path) as handle:
        for row in rows:
            handle.write(json.dumps(_row_to_jsonable(row), sort_keys=True) + "\n")
    return path


def iter_jsonl(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Lazily yield the rows of a JSON Lines file written by :func:`write_jsonl`."""
    for _line_number, row in iter_json_lines(path, ExperimentError):
        yield row


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Materialise the rows of a JSON Lines file as a list."""
    return list(iter_jsonl(path))
