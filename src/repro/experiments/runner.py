"""Parallel experiment runner.

Every sweep and comparison in :mod:`repro.experiments` is a *grid* of
self-contained measurements: each grid point can be evaluated knowing only its
own parameters and a deterministic seed.  This module turns that observation
into a small subsystem:

* :class:`ExperimentSpec` names an experiment and pairs a picklable task
  function with the grid of parameter dictionaries it should be evaluated on;
* :class:`ExperimentTask` is one materialised grid point, carrying its own
  deterministic seed derived from the spec's root seed through
  :class:`~repro.utils.rng.SeedSequenceFactory`;
* :class:`RunnerConfig` selects serial or :mod:`multiprocessing` execution
  (``jobs``) without changing the produced rows;
* :class:`ExperimentRunner` executes the grid and returns rows in grid order,
  optionally persisting them as JSON for later analysis.

The contract that makes parallelism safe is the same one the
splitnn-emulator's partitioner uses for its per-partition fan-out: tasks share
*no* mutable state, their inputs are deterministic, and the runner reassembles
outputs in the deterministic grid order, so ``jobs=1`` and ``jobs=N`` produce
identical row lists.

Examples
--------
>>> from repro.experiments.runner import ExperimentSpec, ExperimentRunner, RunnerConfig
>>> def square(task):
...     return {"x": task.params["x"], "seed": task.seed, "y": task.params["x"] ** 2}
>>> spec = ExperimentSpec(name="squares", task_fn=square,
...                       grid=[{"x": x} for x in (1, 2, 3)], seed=7)
>>> rows = ExperimentRunner(RunnerConfig(jobs=1)).run(spec)
>>> [row["y"] for row in rows]
[1, 4, 9]
>>> rows == ExperimentRunner(RunnerConfig(jobs=1)).run(spec)   # reproducible
True

(``RunnerConfig(jobs=2)`` produces the same rows; the task function must then
be a module-level — hence picklable — function rather than a local one like
``square`` above.)
"""

from __future__ import annotations

import dataclasses
import json
import multiprocessing
import time
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Union

from repro.exceptions import ExperimentError
from repro.utils.jsonl import iter_json_lines
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "ExperimentTask",
    "ExperimentSpec",
    "RunnerConfig",
    "ExperimentRunner",
    "run_experiment",
    "rows_to_json",
    "write_json",
    "read_json",
    "write_jsonl",
    "iter_jsonl",
    "read_jsonl",
]

#: A task function maps one :class:`ExperimentTask` to a row (dataclass or
#: mapping) or to a list of rows.  It must be picklable (a module-level
#: function) for ``jobs > 1``.
TaskFn = Callable[["ExperimentTask"], Any]


@dataclass(frozen=True)
class ExperimentTask:
    """One self-contained grid point of an :class:`ExperimentSpec`.

    Attributes
    ----------
    spec_name:
        Name of the owning spec (used in error messages and JSON output).
    index:
        Position of this task in the spec's grid; rows are always returned in
        index order regardless of execution order.
    params:
        The grid point's parameters, passed verbatim to the task function.
    seed:
        Deterministic 63-bit seed derived from the spec's root seed and the
        task index; independent across tasks, reproducible across runs and
        processes.
    """

    spec_name: str
    index: int
    params: Dict[str, Any]
    seed: int


@dataclass(frozen=True)
class ExperimentSpec:
    """A named experiment expressed as a grid of self-contained tasks.

    Attributes
    ----------
    name:
        Experiment name (e.g. ``"speedup"``); also namespaces the per-task
        seed derivation, so two specs with the same root seed but different
        names get independent task seeds.
    task_fn:
        Module-level callable evaluating one :class:`ExperimentTask`.
    grid:
        One parameter dictionary per task, in output order.
    seed:
        Root seed for per-task seed derivation (``None`` still yields a
        deterministic derivation keyed only on the name and index).
    """

    name: str
    task_fn: TaskFn
    grid: Sequence[Dict[str, Any]] = field(default_factory=tuple)
    seed: Optional[int] = None

    def tasks(self) -> List[ExperimentTask]:
        """Materialise the grid into tasks with deterministic per-task seeds."""
        seeds = SeedSequenceFactory(self.seed)
        return [
            ExperimentTask(
                spec_name=self.name,
                index=index,
                params=dict(params),
                seed=seeds.integer_seed("task", self.name, index),
            )
            for index, params in enumerate(self.grid)
        ]


@dataclass(frozen=True)
class RunnerConfig:
    """Execution configuration of an :class:`ExperimentRunner`.

    Attributes
    ----------
    jobs:
        Number of worker processes; ``1`` (the default) runs tasks serially in
        the calling process, ``N > 1`` fans tasks out over a
        :class:`multiprocessing.pool.Pool`.  The produced rows are identical
        either way.
    start_method:
        Optional :mod:`multiprocessing` start method (``"fork"``, ``"spawn"``,
        ``"forkserver"``); ``None`` uses the platform default.
    chunksize:
        Number of tasks handed to a worker per dispatch; larger values
        amortise IPC for big grids of cheap tasks.
    metrics_path:
        When set, the runner appends one ``{"record": "runner_heartbeat"}``
        JSONL line per completed task (task index, rows so far, elapsed
        seconds) to this file, so long sweeps are observable from outside
        the process.  Heartbeats never change the produced rows.
    """

    jobs: int = 1
    start_method: Optional[str] = None
    chunksize: int = 1
    metrics_path: Optional[str] = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.chunksize < 1:
            raise ValueError(f"chunksize must be >= 1, got {self.chunksize}")


def _execute_task(task_fn: TaskFn, task: ExperimentTask) -> List[Any]:
    """Evaluate one task and normalise its output to a list of rows."""
    try:
        output = task_fn(task)
    except Exception as exc:  # re-raise with grid context, keep the original chained
        raise ExperimentError(
            f"task {task.index} of experiment {task.spec_name!r} failed "
            f"(params={task.params!r}): {exc}"
        ) from exc
    if output is None:
        return []
    if isinstance(output, list):
        return output
    return [output]


class ExperimentRunner:
    """Executes an :class:`ExperimentSpec` serially or over a process pool."""

    def __init__(self, config: Optional[RunnerConfig] = None) -> None:
        self.config = config or RunnerConfig()

    def run(
        self,
        spec: ExperimentSpec,
        output_path: Optional[Union[str, Path]] = None,
    ) -> List[Any]:
        """Run every task of ``spec`` and return the rows in grid order.

        When ``output_path`` is given the rows are also persisted: paths
        ending in ``.jsonl`` are written as JSON Lines (streamed row by row
        as tasks finish), anything else as one JSON document (plus the spec
        name, root seed and grid size).
        """
        if output_path is not None and str(output_path).endswith(".jsonl"):
            rows: List[Any] = []

            def tee() -> Iterator[Any]:
                for row in self.iter_rows(spec):
                    rows.append(row)
                    yield row

            write_jsonl(tee(), output_path)
            return rows
        rows = list(self.iter_rows(spec))
        if output_path is not None:
            write_json(rows, output_path, spec=spec)
        return rows

    def iter_rows(self, spec: ExperimentSpec) -> Iterator[Any]:
        """Lazily yield the rows of ``spec`` in grid order.

        The streaming counterpart of :meth:`run`: with ``jobs == 1`` each
        task is evaluated only when its rows are pulled; with ``jobs > 1``
        tasks are fanned out through :meth:`multiprocessing.pool.Pool.imap`
        (bounded by ``chunksize``), so at most a window of task outputs —
        not the whole grid — is buffered in the parent process.
        """
        tasks = spec.tasks()
        call = partial(_execute_task, spec.task_fn)
        if self.config.metrics_path is None:
            yield from self._iter_task_rows(tasks, call)
            return
        # Heartbeats are written by the parent as each task's rows arrive, so
        # the stream is ordered and works identically for jobs == 1 and > 1.
        from repro.obs import MetricsWriter

        started = time.perf_counter()
        rows_emitted = 0
        with MetricsWriter(self.config.metrics_path, mode="a") as writer:
            for task_index, task_rows in enumerate(
                self._iter_task_outputs(tasks, call)
            ):
                rows_emitted += len(task_rows)
                writer.write(
                    {
                        "record": "runner_heartbeat",
                        "experiment": spec.name,
                        "task_index": task_index,
                        "tasks_total": len(tasks),
                        "rows_emitted": rows_emitted,
                        "elapsed_s": round(time.perf_counter() - started, 6),
                    }
                )
                yield from task_rows

    def _iter_task_rows(self, tasks, call) -> Iterator[Any]:
        for task_rows in self._iter_task_outputs(tasks, call):
            yield from task_rows

    def _iter_task_outputs(self, tasks, call) -> Iterator[List[Any]]:
        """Yield one completed task's row list at a time, in grid order."""
        if self.config.jobs == 1 or len(tasks) <= 1:
            for task in tasks:
                yield call(task)
            return
        context = multiprocessing.get_context(self.config.start_method)
        processes = min(self.config.jobs, len(tasks))
        with context.Pool(processes=processes) as pool:
            yield from pool.imap(call, tasks, chunksize=self.config.chunksize)


def run_experiment(
    spec: ExperimentSpec,
    jobs: int = 1,
    output_path: Optional[Union[str, Path]] = None,
    chunksize: int = 1,
) -> List[Any]:
    """One-call convenience wrapper: run ``spec`` with ``jobs`` workers.

    ``chunksize`` is the number of grid points streamed to a worker per
    dispatch (only meaningful for ``jobs > 1``).
    """
    return ExperimentRunner(RunnerConfig(jobs=jobs, chunksize=chunksize)).run(
        spec, output_path=output_path
    )


# ---------------------------------------------------------------------- #
# JSON persistence
# ---------------------------------------------------------------------- #
def _row_to_jsonable(row: object) -> Dict[str, Any]:
    if dataclasses.is_dataclass(row) and not isinstance(row, type):
        return dataclasses.asdict(row)
    if isinstance(row, dict):
        return dict(row)
    raise ExperimentError(f"cannot serialise row of type {type(row).__name__} to JSON")


def rows_to_json(rows: Sequence[object], spec: Optional[ExperimentSpec] = None) -> str:
    """Render rows (and optional spec metadata) as a JSON document."""
    document: Dict[str, Any] = {}
    if spec is not None:
        document["experiment"] = spec.name
        document["seed"] = spec.seed
        document["grid_size"] = len(spec.grid)
    document["rows"] = [_row_to_jsonable(row) for row in rows]
    return json.dumps(document, indent=2, sort_keys=True)


def write_json(
    rows: Sequence[object],
    path: Union[str, Path],
    spec: Optional[ExperimentSpec] = None,
) -> Path:
    """Write rows to ``path`` as JSON and return the path."""
    path = Path(path)
    path.write_text(rows_to_json(rows, spec=spec) + "\n", encoding="utf-8")
    return path


def read_json(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load the rows previously written by :func:`write_json`."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(document, dict) or "rows" not in document:
        raise ExperimentError(f"{path} does not look like runner JSON output")
    return list(document["rows"])


def write_jsonl(rows: Iterable[object], path: Union[str, Path]) -> Path:
    """Write rows to ``path`` as JSON Lines (one row per line) and return the path.

    Accepts any iterable of rows and streams them out without building the
    whole document in memory — the persistence format for large sweeps.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for row in rows:
            handle.write(json.dumps(_row_to_jsonable(row), sort_keys=True) + "\n")
    return path


def iter_jsonl(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Lazily yield the rows of a JSON Lines file written by :func:`write_jsonl`."""
    for _line_number, row in iter_json_lines(path, ExperimentError):
        yield row


def read_jsonl(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Materialise the rows of a JSON Lines file as a list."""
    return list(iter_jsonl(path))
