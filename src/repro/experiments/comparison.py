"""Policy-comparison experiments (E7, E10 and the ablations).

The functions here run several policies on the *same* instance (or instance
suite) through the shared simulation engine and tabulate the paper's
objective — total weighted fractional latency — together with normalised
ratios, so "who wins and by how much" is immediately visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.algorithm import OpportunisticLinkScheduler
from repro.core.interfaces import Policy
from repro.simulation.engine import simulate
from repro.simulation.results import SimulationResult
from repro.utils.tables import format_table
from repro.workloads.base import Instance

__all__ = ["PolicyComparisonRow", "run_policy", "compare_policies_on_instance", "compare_policies_on_suite"]


@dataclass(frozen=True)
class PolicyComparisonRow:
    """One (instance, policy) outcome in a comparison experiment."""

    instance: str
    policy: str
    total_weighted_latency: float
    ratio_to_alg: float
    num_slots: int
    fixed_link_fraction: float

    def as_tuple(self) -> tuple:
        """Row tuple in the column order used by :func:`format_comparison_table`."""
        return (
            self.instance,
            self.policy,
            self.total_weighted_latency,
            self.ratio_to_alg,
            self.num_slots,
            self.fixed_link_fraction,
        )


def run_policy(
    instance: Instance,
    policy: Policy,
    speed: float = 1.0,
    max_slots: int = 1_000_000,
) -> SimulationResult:
    """Run one policy on one instance and return the raw simulation result."""
    return simulate(
        instance.topology, policy, instance.packets, speed=speed, max_slots=max_slots
    )


def compare_policies_on_instance(
    instance: Instance,
    policies: Optional[Mapping[str, Policy]] = None,
    speed: float = 1.0,
    max_slots: int = 1_000_000,
) -> List[PolicyComparisonRow]:
    """Run every policy on ``instance`` and normalise costs to the paper's ALG.

    ``policies`` defaults to ``{"alg": OpportunisticLinkScheduler()}``; when a
    policy named ``"alg"`` is present its cost is the normalisation baseline,
    otherwise the smallest cost is used.
    """
    policies = dict(policies) if policies else {"alg": OpportunisticLinkScheduler()}
    results: Dict[str, SimulationResult] = {}
    for name, policy in policies.items():
        results[name] = run_policy(instance, policy, speed=speed, max_slots=max_slots)

    if "alg" in results:
        baseline = results["alg"].total_weighted_latency
    else:
        baseline = min(r.total_weighted_latency for r in results.values())

    rows: List[PolicyComparisonRow] = []
    for name, result in results.items():
        cost = result.total_weighted_latency
        rows.append(
            PolicyComparisonRow(
                instance=instance.name,
                policy=name,
                total_weighted_latency=cost,
                ratio_to_alg=cost / baseline if baseline > 0 else float("nan"),
                num_slots=result.num_slots,
                fixed_link_fraction=result.fixed_link_fraction,
            )
        )
    rows.sort(key=lambda row: row.total_weighted_latency)
    return rows


def compare_policies_on_suite(
    instances: Mapping[str, Instance],
    policies: Mapping[str, Policy],
    speed: float = 1.0,
    max_slots: int = 1_000_000,
) -> List[PolicyComparisonRow]:
    """Run the full cross-product of instances × policies."""
    rows: List[PolicyComparisonRow] = []
    for instance in instances.values():
        rows.extend(
            compare_policies_on_instance(instance, policies, speed=speed, max_slots=max_slots)
        )
    return rows


def format_comparison_table(rows: Sequence[PolicyComparisonRow], title: str = "") -> str:
    """Render comparison rows as an ASCII table."""
    return format_table(
        headers=[
            "instance",
            "policy",
            "total_weighted_latency",
            "ratio_to_alg",
            "slots",
            "fixed_link_frac",
        ],
        rows=[row.as_tuple() for row in rows],
        title=title,
    )
