"""Policy-comparison experiments (E7, E10 and the ablations).

The functions here run several policies on the *same* instance (or instance
suite) through the shared simulation engine and tabulate the paper's
objective — total weighted fractional latency — together with normalised
ratios, so "who wins and by how much" is immediately visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.algorithm import OpportunisticLinkScheduler
from repro.core.interfaces import Policy
from repro.experiments.runner import ExperimentSpec, ExperimentTask, run_experiment
from repro.simulation.engine import simulate
from repro.simulation.results import SimulationResult
from repro.utils.tables import format_table
from repro.workloads.base import Instance

__all__ = ["PolicyComparisonRow", "run_policy", "compare_policies_on_instance", "compare_policies_on_suite"]


@dataclass(frozen=True)
class PolicyComparisonRow:
    """One (instance, policy) outcome in a comparison experiment."""

    instance: str
    policy: str
    total_weighted_latency: float
    ratio_to_alg: float
    num_slots: int
    fixed_link_fraction: float

    def as_tuple(self) -> tuple:
        """Row tuple in the column order used by :func:`format_comparison_table`."""
        return (
            self.instance,
            self.policy,
            self.total_weighted_latency,
            self.ratio_to_alg,
            self.num_slots,
            self.fixed_link_fraction,
        )


def run_policy(
    instance: Instance,
    policy: Policy,
    speed: float = 1.0,
    max_slots: int = 1_000_000,
    retention: str = "full",
) -> SimulationResult:
    """Run one policy on one instance and return the raw simulation result.

    ``retention="aggregate"`` streams the instance's packets through the
    engine without keeping per-packet records; the summary numbers are
    bit-identical to the default in-memory run.
    """
    packets = instance.iter_packets() if retention == "aggregate" else instance.packets
    return simulate(
        instance.topology,
        policy,
        packets,
        speed=speed,
        max_slots=max_slots,
        retention=retention,
    )


def _comparison_task(task: ExperimentTask) -> Dict[str, Any]:
    """Run one (instance, policy) cell and return its raw measurements."""
    result = run_policy(
        task.params["instance"],
        task.params["policy"],
        speed=task.params["speed"],
        max_slots=task.params["max_slots"],
        retention=task.params.get("retention", "full"),
    )
    return {
        "instance": task.params["instance"].name,
        "policy": task.params["policy_name"],
        "total_weighted_latency": result.total_weighted_latency,
        "num_slots": result.num_slots,
        "fixed_link_fraction": result.fixed_link_fraction,
    }


def _normalise_rows(measurements: Sequence[Dict[str, Any]]) -> List[PolicyComparisonRow]:
    """Turn one instance's raw measurements into rows normalised to ALG."""
    by_policy = {m["policy"]: m for m in measurements}
    if "alg" in by_policy:
        baseline = by_policy["alg"]["total_weighted_latency"]
    else:
        baseline = min(m["total_weighted_latency"] for m in measurements)

    rows: List[PolicyComparisonRow] = []
    for measurement in measurements:
        cost = measurement["total_weighted_latency"]
        rows.append(
            PolicyComparisonRow(
                instance=measurement["instance"],
                policy=measurement["policy"],
                total_weighted_latency=cost,
                ratio_to_alg=cost / baseline if baseline > 0 else float("nan"),
                num_slots=measurement["num_slots"],
                fixed_link_fraction=measurement["fixed_link_fraction"],
            )
        )
    rows.sort(key=lambda row: row.total_weighted_latency)
    return rows


def compare_policies_on_instance(
    instance: Instance,
    policies: Optional[Mapping[str, Policy]] = None,
    speed: float = 1.0,
    max_slots: int = 1_000_000,
    jobs: int = 1,
    retention: str = "full",
) -> List[PolicyComparisonRow]:
    """Run every policy on ``instance`` and normalise costs to the paper's ALG.

    ``policies`` defaults to ``{"alg": OpportunisticLinkScheduler()}``; when a
    policy named ``"alg"`` is present its cost is the normalisation baseline,
    otherwise the smallest cost is used.  ``jobs > 1`` runs the policies in
    parallel worker processes; ``retention="aggregate"`` keeps each run's
    memory bounded by the in-flight state (identical rows either way).
    """
    return compare_policies_on_suite(
        {instance.name: instance},
        dict(policies) if policies else {"alg": OpportunisticLinkScheduler()},
        speed=speed,
        max_slots=max_slots,
        jobs=jobs,
        retention=retention,
    )


def compare_policies_on_suite(
    instances: Mapping[str, Instance],
    policies: Mapping[str, Policy],
    speed: float = 1.0,
    max_slots: int = 1_000_000,
    jobs: int = 1,
    retention: str = "full",
) -> List[PolicyComparisonRow]:
    """Run the full cross-product of instances × policies (optionally in parallel)."""
    policies = dict(policies) if policies else {"alg": OpportunisticLinkScheduler()}
    grid = [
        {
            "instance": instance,
            "policy": policy,
            "policy_name": name,
            "speed": speed,
            "max_slots": max_slots,
            "retention": retention,
        }
        for instance in instances.values()
        for name, policy in policies.items()
    ]
    spec = ExperimentSpec(name="policy-comparison", task_fn=_comparison_task, grid=grid)
    measurements = run_experiment(spec, jobs=jobs)

    rows: List[PolicyComparisonRow] = []
    num_policies = len(policies)
    for start in range(0, len(measurements), num_policies):
        rows.extend(_normalise_rows(measurements[start : start + num_policies]))
    return rows


def format_comparison_table(rows: Sequence[PolicyComparisonRow], title: str = "") -> str:
    """Render comparison rows as an ASCII table."""
    return format_table(
        headers=[
            "instance",
            "policy",
            "total_weighted_latency",
            "ratio_to_alg",
            "slots",
            "fixed_link_frac",
        ],
        rows=[row.as_tuple() for row in rows],
        title=title,
    )
