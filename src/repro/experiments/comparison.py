"""Policy-comparison experiments (E7, E10 and the ablations).

The functions here run several policies on the *same* instance (or instance
suite) through the shared simulation engine and tabulate the paper's
objective — total weighted fractional latency — together with normalised
ratios, so "who wins and by how much" is immediately visible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.core.algorithm import OpportunisticLinkScheduler
from repro.core.interfaces import Policy
from repro.experiments.runner import ExperimentSpec, ExperimentTask, run_experiment
from repro.simulation.engine import simulate, simulate_multi
from repro.simulation.results import SimulationResult
from repro.utils.tables import format_table
from repro.workloads.base import Instance

__all__ = [
    "PolicyComparisonRow",
    "run_policy",
    "run_policies",
    "compare_policies_on_instance",
    "compare_policies_on_suite",
]


@dataclass(frozen=True)
class PolicyComparisonRow:
    """One (instance, policy) outcome in a comparison experiment."""

    instance: str
    policy: str
    total_weighted_latency: float
    ratio_to_alg: float
    num_slots: int
    fixed_link_fraction: float

    def as_tuple(self) -> tuple:
        """Row tuple in the column order used by :func:`format_comparison_table`."""
        return (
            self.instance,
            self.policy,
            self.total_weighted_latency,
            self.ratio_to_alg,
            self.num_slots,
            self.fixed_link_fraction,
        )


def run_policy(
    instance: Instance,
    policy: Policy,
    speed: float = 1.0,
    max_slots: int = 1_000_000,
    retention: str = "full",
) -> SimulationResult:
    """Run one policy on one instance and return the raw simulation result.

    ``retention="aggregate"`` streams the instance's packets through the
    engine without keeping per-packet records; the summary numbers are
    bit-identical to the default in-memory run.
    """
    packets = instance.iter_packets() if retention == "aggregate" else instance.packets
    return simulate(
        instance.topology,
        policy,
        packets,
        speed=speed,
        max_slots=max_slots,
        retention=retention,
    )


def run_policies(
    instance: Instance,
    policies: Mapping[str, Policy],
    speed: float = 1.0,
    max_slots: int = 1_000_000,
    retention: str = "full",
) -> Dict[str, SimulationResult]:
    """Run several policies on one instance through a single engine pass.

    The single-pass counterpart of calling :func:`run_policy` once per
    policy: the instance's arrival stream is materialised into batches once
    and shared by every policy lane
    (:meth:`~repro.simulation.engine.SimulationEngine.run_multi`), so the
    per-policy results — and their ``summary()`` — are bit-identical to the
    sequential calls at a fraction of the setup cost.
    """
    packets = instance.iter_packets() if retention == "aggregate" else instance.packets
    return simulate_multi(
        instance.topology,
        policies,
        packets,
        speed=speed,
        max_slots=max_slots,
        retention=retention,
    )


def _measurement(name: str, instance_name: str, result: SimulationResult) -> Dict[str, Any]:
    """The raw per-(instance, policy) measurement dict shared by both task shapes."""
    return {
        "instance": instance_name,
        "policy": name,
        "total_weighted_latency": result.total_weighted_latency,
        "num_slots": result.num_slots,
        "fixed_link_fraction": result.fixed_link_fraction,
    }


def _comparison_multi_task(task: ExperimentTask) -> List[Dict[str, Any]]:
    """Run all policies of one instance over a shared arrival stream."""
    instance: Instance = task.params["instance"]
    results = run_policies(
        instance,
        task.params["policies"],
        speed=task.params["speed"],
        max_slots=task.params["max_slots"],
        retention=task.params.get("retention", "full"),
    )
    return [
        _measurement(name, instance.name, results[name])
        for name in task.params["policies"]
    ]


def _comparison_task(task: ExperimentTask) -> Dict[str, Any]:
    """Run one (instance, policy) cell and return its raw measurements."""
    result = run_policy(
        task.params["instance"],
        task.params["policy"],
        speed=task.params["speed"],
        max_slots=task.params["max_slots"],
        retention=task.params.get("retention", "full"),
    )
    return _measurement(task.params["policy_name"], task.params["instance"].name, result)


def _normalise_rows(measurements: Sequence[Dict[str, Any]]) -> List[PolicyComparisonRow]:
    """Turn one instance's raw measurements into rows normalised to ALG."""
    by_policy = {m["policy"]: m for m in measurements}
    if "alg" in by_policy:
        baseline = by_policy["alg"]["total_weighted_latency"]
    else:
        baseline = min(m["total_weighted_latency"] for m in measurements)

    rows: List[PolicyComparisonRow] = []
    for measurement in measurements:
        cost = measurement["total_weighted_latency"]
        rows.append(
            PolicyComparisonRow(
                instance=measurement["instance"],
                policy=measurement["policy"],
                total_weighted_latency=cost,
                ratio_to_alg=cost / baseline if baseline > 0 else float("nan"),
                num_slots=measurement["num_slots"],
                fixed_link_fraction=measurement["fixed_link_fraction"],
            )
        )
    rows.sort(key=lambda row: row.total_weighted_latency)
    return rows


def compare_policies_on_instance(
    instance: Instance,
    policies: Optional[Mapping[str, Policy]] = None,
    speed: float = 1.0,
    max_slots: int = 1_000_000,
    jobs: int = 1,
    retention: str = "full",
    shared_stream: bool = False,
) -> List[PolicyComparisonRow]:
    """Run every policy on ``instance`` and normalise costs to the paper's ALG.

    ``policies`` defaults to ``{"alg": OpportunisticLinkScheduler()}``; when a
    policy named ``"alg"`` is present its cost is the normalisation baseline,
    otherwise the smallest cost is used.  ``jobs > 1`` runs the policies in
    parallel worker processes; ``retention="aggregate"`` keeps each run's
    memory bounded by the in-flight state; ``shared_stream=True`` evaluates
    all policies in one :meth:`~repro.simulation.engine.SimulationEngine.run_multi`
    pass over a shared arrival stream.  Rows are identical in every mode.
    """
    return compare_policies_on_suite(
        {instance.name: instance},
        dict(policies) if policies else {"alg": OpportunisticLinkScheduler()},
        speed=speed,
        max_slots=max_slots,
        jobs=jobs,
        retention=retention,
        shared_stream=shared_stream,
    )


def compare_policies_on_suite(
    instances: Mapping[str, Instance],
    policies: Mapping[str, Policy],
    speed: float = 1.0,
    max_slots: int = 1_000_000,
    jobs: int = 1,
    retention: str = "full",
    shared_stream: bool = False,
) -> List[PolicyComparisonRow]:
    """Run the full cross-product of instances × policies (optionally in parallel).

    With ``shared_stream=False`` (default) every (instance, policy) cell is
    its own runner task — the finest parallel granularity for ``jobs > 1``.
    With ``shared_stream=True`` each *instance* is one task evaluating all
    policies through a single shared-arrival engine pass — fewer tasks, one
    stream materialisation per instance, bit-identical rows.
    """
    policies = dict(policies) if policies else {"alg": OpportunisticLinkScheduler()}
    if shared_stream:
        grid: List[Dict[str, Any]] = [
            {
                "instance": instance,
                "policies": policies,
                "speed": speed,
                "max_slots": max_slots,
                "retention": retention,
            }
            for instance in instances.values()
        ]
        spec = ExperimentSpec(
            name="policy-comparison", task_fn=_comparison_multi_task, grid=grid
        )
    else:
        grid = [
            {
                "instance": instance,
                "policy": policy,
                "policy_name": name,
                "speed": speed,
                "max_slots": max_slots,
                "retention": retention,
            }
            for instance in instances.values()
            for name, policy in policies.items()
        ]
        spec = ExperimentSpec(name="policy-comparison", task_fn=_comparison_task, grid=grid)
    measurements = run_experiment(spec, jobs=jobs)

    rows: List[PolicyComparisonRow] = []
    num_policies = len(policies)
    for start in range(0, len(measurements), num_policies):
        rows.extend(_normalise_rows(measurements[start : start + num_policies]))
    return rows


def format_comparison_table(rows: Sequence[PolicyComparisonRow], title: str = "") -> str:
    """Render comparison rows as an ASCII table."""
    return format_table(
        headers=[
            "instance",
            "policy",
            "total_weighted_latency",
            "ratio_to_alg",
            "slots",
            "fixed_link_frac",
        ],
        rows=[row.as_tuple() for row in rows],
        title=title,
    )
