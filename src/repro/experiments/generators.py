"""Standard experiment instances.

The benchmarks and examples share a small catalogue of named instances so
that numbers reported in EXPERIMENTS.md are reproducible from a single seed:
ProjecToR-style fabrics loaded with the uniform / skewed / bursty / incast
patterns the paper's introduction motivates, plus small random hybrid
topologies used for the LP-based experiments where instance size matters.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Sequence, Tuple

from repro.core.packet import Packet
from repro.exceptions import ExperimentError
from repro.network.builders import (
    add_uniform_fixed_links,
    projector_fabric,
    random_bipartite,
    single_tier_crossbar,
)
from repro.network.topology import TwoTierTopology
from repro.utils.rng import SeedSequenceFactory
from repro.workloads.base import Instance
from repro.workloads.bursty import bursty_workload, incast_workload, iter_bursty_workload, iter_incast_workload
from repro.workloads.skewed import (
    elephant_mice_workload,
    iter_elephant_mice_workload,
    iter_zipf_workload,
    zipf_workload,
)
from repro.workloads.synthetic import (
    hotspot_workload,
    iter_hotspot_workload,
    iter_uniform_random_workload,
    uniform_random_workload,
)
from repro.workloads.weights import pareto_weights, uniform_weights

__all__ = [
    "standard_projector_instances",
    "standard_projector_workload",
    "small_lp_instances",
    "crossbar_instance",
    "hybrid_instance",
]


def standard_projector_instances(
    num_racks: int = 8,
    lasers_per_rack: int = 2,
    num_packets: int = 200,
    seed: int = 2021,
) -> Dict[str, Instance]:
    """The E7 workload suite on a ProjecToR-style fabric.

    Returns instances named ``uniform``, ``zipf``, ``elephant-mice``,
    ``hotspot``, ``bursty`` and ``incast``.
    """
    seeds = SeedSequenceFactory(seed)
    topo = projector_fabric(
        num_racks=num_racks,
        lasers_per_rack=lasers_per_rack,
        photodetectors_per_rack=lasers_per_rack,
        seed=seeds.integer_seed("topology"),
    )
    instances = {
        "uniform": Instance(
            name="uniform",
            topology=topo,
            packets=uniform_random_workload(
                topo,
                num_packets,
                weight_sampler=uniform_weights(1, 10),
                arrival_rate=2.0,
                seed=seeds.integer_seed("uniform"),
            ),
            metadata={"pattern": "uniform", "num_racks": num_racks},
        ),
        "zipf": Instance(
            name="zipf",
            topology=topo,
            packets=zipf_workload(
                topo,
                num_packets,
                exponent=1.2,
                weight_sampler=pareto_weights(1.5),
                arrival_rate=2.0,
                seed=seeds.integer_seed("zipf"),
            ),
            metadata={"pattern": "zipf", "exponent": 1.2},
        ),
        "elephant-mice": Instance(
            name="elephant-mice",
            topology=topo,
            packets=elephant_mice_workload(
                topo,
                num_packets,
                arrival_rate=2.0,
                seed=seeds.integer_seed("elephant"),
            ),
            metadata={"pattern": "elephant-mice"},
        ),
        "hotspot": Instance(
            name="hotspot",
            topology=topo,
            packets=hotspot_workload(
                topo,
                num_packets,
                num_hotspots=2,
                hotspot_fraction=0.6,
                weight_sampler=uniform_weights(1, 10),
                arrival_rate=2.0,
                seed=seeds.integer_seed("hotspot"),
            ),
            metadata={"pattern": "hotspot"},
        ),
        "bursty": Instance(
            name="bursty",
            topology=topo,
            packets=bursty_workload(
                topo,
                num_packets,
                on_rate=4.0,
                weight_sampler=uniform_weights(1, 10),
                seed=seeds.integer_seed("bursty"),
            ),
            metadata={"pattern": "bursty"},
        ),
        "incast": Instance(
            name="incast",
            topology=topo,
            packets=incast_workload(
                topo,
                num_senders=num_racks - 1,
                packets_per_sender=max(2, num_packets // (4 * max(num_racks - 1, 1))),
                weight_sampler=uniform_weights(1, 10),
                seed=seeds.integer_seed("incast"),
            ),
            metadata={"pattern": "incast"},
        ),
    }
    for instance in instances.values():
        instance.validate()
    return instances


def standard_projector_workload(
    pattern: str,
    num_racks: int = 8,
    lasers_per_rack: int = 2,
    num_packets: int = 200,
    seed: int = 2021,
) -> Tuple[TwoTierTopology, Iterator[Packet]]:
    """One workload of the E7 suite as a lazy stream, without building the others.

    The streaming counterpart of :func:`standard_projector_instances` for
    very large packet counts: the same seed derivation and generator
    parameters are used, so ``list(stream)`` equals
    ``standard_projector_instances(...)[pattern].packets``, but only the
    requested pattern is generated — lazily — instead of six materialised
    instances.  Returns ``(topology, packet_stream)``.
    """
    seeds = SeedSequenceFactory(seed)
    topo = projector_fabric(
        num_racks=num_racks,
        lasers_per_rack=lasers_per_rack,
        photodetectors_per_rack=lasers_per_rack,
        seed=seeds.integer_seed("topology"),
    )
    if pattern == "uniform":
        stream = iter_uniform_random_workload(
            topo,
            num_packets,
            weight_sampler=uniform_weights(1, 10),
            arrival_rate=2.0,
            seed=seeds.integer_seed("uniform"),
        )
    elif pattern == "zipf":
        stream = iter_zipf_workload(
            topo,
            num_packets,
            exponent=1.2,
            weight_sampler=pareto_weights(1.5),
            arrival_rate=2.0,
            seed=seeds.integer_seed("zipf"),
        )
    elif pattern == "elephant-mice":
        stream = iter_elephant_mice_workload(
            topo,
            num_packets,
            arrival_rate=2.0,
            seed=seeds.integer_seed("elephant"),
        )
    elif pattern == "hotspot":
        stream = iter_hotspot_workload(
            topo,
            num_packets,
            num_hotspots=2,
            hotspot_fraction=0.6,
            weight_sampler=uniform_weights(1, 10),
            arrival_rate=2.0,
            seed=seeds.integer_seed("hotspot"),
        )
    elif pattern == "bursty":
        stream = iter_bursty_workload(
            topo,
            num_packets,
            on_rate=4.0,
            weight_sampler=uniform_weights(1, 10),
            seed=seeds.integer_seed("bursty"),
        )
    elif pattern == "incast":
        stream = iter_incast_workload(
            topo,
            num_senders=num_racks - 1,
            packets_per_sender=max(2, num_packets // (4 * max(num_racks - 1, 1))),
            weight_sampler=uniform_weights(1, 10),
            seed=seeds.integer_seed("incast"),
        )
    else:
        raise ExperimentError(
            f"unknown workload pattern {pattern!r}; expected one of "
            "'uniform', 'zipf', 'elephant-mice', 'hotspot', 'bursty', 'incast'"
        )
    return topo, stream


def small_lp_instances(
    num_instances: int = 3,
    num_sources: int = 3,
    num_destinations: int = 3,
    num_packets: int = 10,
    delay_choices: Sequence[int] = (1, 2),
    seed: int = 7,
) -> Dict[str, Instance]:
    """Small random hybrid instances sized for the exact LP lower bound (E3–E5)."""
    seeds = SeedSequenceFactory(seed)
    instances: Dict[str, Instance] = {}
    for i in range(num_instances):
        topo = random_bipartite(
            num_sources,
            num_destinations,
            transmitters_per_source=2,
            receivers_per_destination=2,
            edge_probability=0.6,
            delay_choices=delay_choices,
            seed=seeds.integer_seed("topo", i),
        )
        topo = add_uniform_fixed_links(topo, delay=6)
        name = f"lp-small-{i}"
        instances[name] = Instance(
            name=name,
            topology=topo,
            packets=uniform_random_workload(
                topo,
                num_packets,
                weight_sampler=uniform_weights(1, 5),
                arrival_rate=1.5,
                seed=seeds.integer_seed("packets", i),
            ),
            metadata={"kind": "lp-small", "index": i},
        )
        instances[name].validate()
    return instances


def crossbar_instance(
    num_ports: int = 8, num_packets: int = 200, seed: int = 11, name: str = "crossbar"
) -> Instance:
    """A classic single-tier crossbar instance (the Section V comparison point)."""
    topo = single_tier_crossbar(num_ports)
    seeds = SeedSequenceFactory(seed)
    return Instance(
        name=name,
        topology=topo,
        packets=uniform_random_workload(
            topo,
            num_packets,
            weight_sampler=uniform_weights(1, 10),
            arrival_rate=float(num_ports) / 2.0,
            seed=seeds.integer_seed("packets"),
        ),
        metadata={"kind": "crossbar", "ports": num_ports},
    )


def hybrid_instance(
    num_racks: int = 6,
    num_packets: int = 150,
    fixed_link_delay: int = 4,
    seed: int = 13,
    name: Optional[str] = None,
) -> Instance:
    """A ProjecToR fabric augmented with uniform fixed links (experiment E9)."""
    seeds = SeedSequenceFactory(seed)
    topo = projector_fabric(
        num_racks=num_racks, lasers_per_rack=2, photodetectors_per_rack=2,
        seed=seeds.integer_seed("topology"),
    )
    topo = add_uniform_fixed_links(
        topo,
        delay=fixed_link_delay,
        pair_filter=lambda s, d: s.split(":")[0] != d.split(":")[0],
    )
    return Instance(
        name=name or f"hybrid-dl{fixed_link_delay}",
        topology=topo,
        packets=zipf_workload(
            topo,
            num_packets,
            exponent=1.1,
            weight_sampler=uniform_weights(1, 10),
            arrival_rate=2.0,
            seed=seeds.integer_seed("packets"),
        ),
        metadata={"kind": "hybrid", "fixed_link_delay": fixed_link_delay},
    )
