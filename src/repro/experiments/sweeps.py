"""Parameter sweeps for experiments E5, E6, E8, E9 and E10.

Every sweep returns a list of plain dataclass rows (one per swept point) so
the benchmark harness can both assert on the qualitative shape (who wins,
monotonicity, bound satisfaction) and print the series that would appear as a
figure in a systems paper.

All sweeps route through the :mod:`repro.experiments.runner` subsystem: each
grid point is a self-contained task (its instance is either passed in or
reconstructed from deterministic seeds inside the task), so passing
``jobs=N`` fans the grid out over ``N`` worker processes while producing
row-for-row identical output to the serial run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.competitive import evaluate_competitive_ratio
from repro.analysis.lp import solve_lp_lower_bound
from repro.core.algorithm import OpportunisticLinkScheduler, theoretical_competitive_ratio
from repro.core.interfaces import Policy
from repro.experiments.comparison import run_policies, run_policy
from repro.experiments.runner import ExperimentSpec, ExperimentTask, run_experiment
from repro.network.builders import add_uniform_fixed_links, projector_fabric, random_bipartite
from repro.utils.rng import SeedSequenceFactory
from repro.workloads.base import Instance
from repro.workloads.skewed import zipf_workload
from repro.workloads.synthetic import uniform_random_workload
from repro.workloads.weights import uniform_weights

__all__ = [
    "CompetitiveRatioRow",
    "SpeedupRow",
    "DelaySweepRow",
    "HybridSweepRow",
    "TierSweepRow",
    "competitive_ratio_sweep",
    "speedup_sweep",
    "delay_heterogeneity_sweep",
    "hybrid_fixed_link_sweep",
    "two_tier_sweep",
]


def _hybrid_pair_filter(source: str, destination: str) -> bool:
    """Fixed links only between distinct racks (module-level for pickling)."""
    return source.split(":")[0] != destination.split(":")[0]


# ---------------------------------------------------------------------- #
# E5 — competitive ratio vs ε
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CompetitiveRatioRow:
    """One (instance, ε) point of the competitive-ratio experiment."""

    instance: str
    epsilon: float
    algorithm_cost: float
    lower_bound: float
    empirical_ratio: float
    theoretical_bound: float
    within_bound: bool


def _competitive_ratio_task(task: ExperimentTask) -> CompetitiveRatioRow:
    """Evaluate ALG's competitive ratio on one (instance, ε) grid point."""
    instance: Instance = task.params["instance"]
    epsilon: float = task.params["epsilon"]
    report = evaluate_competitive_ratio(instance, epsilon, use_lp=task.params["use_lp"])
    return CompetitiveRatioRow(
        instance=instance.name,
        epsilon=epsilon,
        algorithm_cost=report.algorithm_cost,
        lower_bound=report.best_lower_bound,
        empirical_ratio=report.empirical_ratio,
        theoretical_bound=report.theoretical_bound,
        within_bound=report.within_bound,
    )


def competitive_ratio_sweep(
    instances: Mapping[str, Instance],
    epsilons: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    use_lp: bool = True,
    jobs: int = 1,
    chunksize: int = 1,
) -> List[CompetitiveRatioRow]:
    """Measure ALG's empirical competitive ratio for several ε on several instances."""
    grid = [
        {"instance": instance, "epsilon": epsilon, "use_lp": use_lp}
        for instance in instances.values()
        for epsilon in epsilons
    ]
    spec = ExperimentSpec(name="competitive-ratio", task_fn=_competitive_ratio_task, grid=grid)
    return run_experiment(spec, jobs=jobs, chunksize=chunksize)


# ---------------------------------------------------------------------- #
# E6 — speedup sensitivity
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SpeedupRow:
    """ALG's cost at one speed, normalised by the unaugmented LP lower bound."""

    instance: str
    speed: float
    algorithm_cost: float
    lp_lower_bound: float
    ratio: float


def _speedup_task(task: ExperimentTask) -> SpeedupRow:
    """Run ALG at one speed and normalise by the precomputed LP value."""
    instance: Instance = task.params["instance"]
    speed: float = task.params["speed"]
    lp_value: float = task.params["lp_value"]
    result = run_policy(instance, task.params["policy"], speed=speed)
    cost = result.total_weighted_latency
    return SpeedupRow(
        instance=instance.name,
        speed=speed,
        algorithm_cost=cost,
        lp_lower_bound=lp_value,
        ratio=cost / lp_value if lp_value > 0 else float("inf"),
    )


def speedup_sweep(
    instance: Instance,
    speeds: Sequence[float] = (1.0, 1.5, 2.0, 2.5, 3.0),
    policy: Optional[Policy] = None,
    lp_horizon: Optional[int] = None,
    jobs: int = 1,
    chunksize: int = 1,
) -> List[SpeedupRow]:
    """Run ALG at several speeds against the speed-1 LP lower bound.

    The gap at speed 1 versus higher speeds illustrates why resource
    augmentation is needed (Section I / Dinitz et al.).  The LP is solved once
    in the calling process; the per-speed simulations form the parallel grid.
    """
    lp_value = solve_lp_lower_bound(
        instance, capacity=1.0, horizon=lp_horizon, objective="fractional"
    ).objective_value
    grid = [
        {
            "instance": instance,
            "speed": speed,
            "policy": policy or OpportunisticLinkScheduler(),
            "lp_value": lp_value,
        }
        for speed in speeds
    ]
    spec = ExperimentSpec(name="speedup", task_fn=_speedup_task, grid=grid)
    return run_experiment(spec, jobs=jobs, chunksize=chunksize)


# ---------------------------------------------------------------------- #
# E8 — heterogeneous edge delays
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class DelaySweepRow:
    """Outcome of one (delay pool, policy) combination."""

    delay_pool: str
    policy: str
    total_weighted_latency: float
    mean_completion_time: float


def _delay_pool_instance(task: ExperimentTask) -> Instance:
    """Rebuild one delay-pool instance from the task's deterministic seeds."""
    pool: Sequence[int] = task.params["pool"]
    topo = random_bipartite(
        task.params["num_sources"],
        task.params["num_destinations"],
        transmitters_per_source=2,
        receivers_per_destination=2,
        edge_probability=0.7,
        delay_choices=pool,
        seed=task.params["topo_seed"],
    )
    packets = uniform_random_workload(
        topo,
        task.params["num_packets"],
        weight_sampler=uniform_weights(1, 10),
        arrival_rate=2.0,
        seed=task.params["packets_seed"],
    )
    return Instance(
        name=f"delays-{'-'.join(map(str, pool))}", topology=topo, packets=packets
    )


def _delay_row(pool: Sequence[int], name: str, result) -> DelaySweepRow:
    return DelaySweepRow(
        delay_pool="/".join(map(str, pool)),
        policy=name,
        total_weighted_latency=result.total_weighted_latency,
        mean_completion_time=result.mean_flow_completion_time,
    )


def _delay_heterogeneity_task(task: ExperimentTask) -> DelaySweepRow:
    """Build the delay-pool instance from its seeds and run one policy on it."""
    result = run_policy(
        _delay_pool_instance(task),
        task.params["policy"],
        retention=task.params.get("retention", "full"),
    )
    return _delay_row(task.params["pool"], task.params["policy_name"], result)


def _delay_heterogeneity_multi_task(task: ExperimentTask) -> List[DelaySweepRow]:
    """Build one delay-pool instance and run every policy over its shared stream."""
    results = run_policies(
        _delay_pool_instance(task),
        task.params["policies"],
        retention=task.params.get("retention", "full"),
    )
    return [
        _delay_row(task.params["pool"], name, results[name])
        for name in task.params["policies"]
    ]


def delay_heterogeneity_sweep(
    policies: Mapping[str, Policy],
    delay_pools: Sequence[Sequence[int]] = ((1,), (1, 2), (1, 2, 4), (2, 4, 8)),
    num_sources: int = 4,
    num_destinations: int = 4,
    num_packets: int = 120,
    seed: int = 5,
    jobs: int = 1,
    chunksize: int = 1,
    retention: str = "full",
    shared_stream: bool = True,
) -> List[DelaySweepRow]:
    """Compare policies as the reconfigurable-edge delay distribution widens (E8).

    With ``shared_stream=True`` (default) each delay pool is one task: its
    instance is generated once and every policy runs over the shared arrival
    stream via
    :meth:`~repro.simulation.engine.SimulationEngine.run_multi`, so a sweep
    over ``P`` policies performs one workload generation per pool instead of
    ``P``.  ``shared_stream=False`` restores one task per (pool, policy) —
    finer ``jobs`` granularity.  Rows are identical either way.
    """
    seeds = SeedSequenceFactory(seed)

    def pool_params(pool: Sequence[int]) -> Dict[str, object]:
        return {
            "pool": tuple(pool),
            "num_sources": num_sources,
            "num_destinations": num_destinations,
            "num_packets": num_packets,
            "topo_seed": seeds.integer_seed("topo", tuple(pool)),
            "packets_seed": seeds.integer_seed("packets", tuple(pool)),
            "retention": retention,
        }

    if shared_stream:
        grid = [
            {**pool_params(pool), "policies": dict(policies)} for pool in delay_pools
        ]
        task_fn = _delay_heterogeneity_multi_task
    else:
        grid = [
            {**pool_params(pool), "policy": policy, "policy_name": name}
            for pool in delay_pools
            for name, policy in policies.items()
        ]
        task_fn = _delay_heterogeneity_task
    spec = ExperimentSpec(
        name="delay-heterogeneity", task_fn=task_fn, grid=grid, seed=seed
    )
    return run_experiment(spec, jobs=jobs, chunksize=chunksize)


# ---------------------------------------------------------------------- #
# E9 — hybrid topologies
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class HybridSweepRow:
    """Outcome of ALG on a hybrid fabric for one fixed-link delay."""

    fixed_link_delay: int
    total_weighted_latency: float
    fixed_link_fraction: float
    reconfigurable_fraction: float


def _hybrid_fixed_link_task(task: ExperimentTask) -> HybridSweepRow:
    """Rebuild the hybrid fabric for one fixed-link delay and run ALG."""
    delay: int = task.params["delay"]
    base = projector_fabric(
        num_racks=task.params["num_racks"],
        lasers_per_rack=2,
        photodetectors_per_rack=2,
        seed=task.params["topo_seed"],
    )
    topo = add_uniform_fixed_links(base, delay=delay, pair_filter=_hybrid_pair_filter)
    packets = zipf_workload(
        topo,
        task.params["num_packets"],
        exponent=1.1,
        weight_sampler=uniform_weights(1, 10),
        arrival_rate=2.0,
        seed=task.params["packets_seed"],
    )
    instance = Instance(name=f"hybrid-dl{delay}", topology=topo, packets=packets)
    result = run_policy(
        instance, OpportunisticLinkScheduler(), retention=task.params.get("retention", "full")
    )
    return HybridSweepRow(
        fixed_link_delay=delay,
        total_weighted_latency=result.total_weighted_latency,
        fixed_link_fraction=result.fixed_link_fraction,
        reconfigurable_fraction=1.0 - result.fixed_link_fraction,
    )


def hybrid_fixed_link_sweep(
    fixed_link_delays: Sequence[int] = (1, 2, 4, 8, 16),
    num_racks: int = 6,
    num_packets: int = 150,
    seed: int = 17,
    jobs: int = 1,
    chunksize: int = 1,
    retention: str = "full",
) -> List[HybridSweepRow]:
    """Sweep the fixed-link delay of a hybrid fabric and measure ALG's offload split (E9).

    Fast fixed links should absorb most traffic; slow ones should push ALG to
    use the reconfigurable network.
    """
    seeds = SeedSequenceFactory(seed)
    topo_seed = seeds.integer_seed("topology")
    packets_seed = seeds.integer_seed("packets")
    grid = [
        {
            "delay": delay,
            "num_racks": num_racks,
            "num_packets": num_packets,
            "topo_seed": topo_seed,
            "packets_seed": packets_seed,
            "retention": retention,
        }
        for delay in fixed_link_delays
    ]
    spec = ExperimentSpec(
        name="hybrid-fixed-link", task_fn=_hybrid_fixed_link_task, grid=grid, seed=seed
    )
    return run_experiment(spec, jobs=jobs, chunksize=chunksize)


# ---------------------------------------------------------------------- #
# E10 — two-tier vs single-tier
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class TierSweepRow:
    """Outcome of ALG for one per-rack transmitter/receiver count."""

    lasers_per_rack: int
    total_weighted_latency: float
    mean_matching_size: float
    num_slots: int


def _two_tier_task(task: ExperimentTask) -> TierSweepRow:
    """Build one per-rack laser-count fabric and run ALG on skewed traffic."""
    lasers: int = task.params["lasers"]
    topo = projector_fabric(
        num_racks=task.params["num_racks"],
        lasers_per_rack=lasers,
        photodetectors_per_rack=lasers,
        seed=task.params["topo_seed"],
    )
    packets = zipf_workload(
        topo,
        task.params["num_packets"],
        exponent=1.2,
        weight_sampler=uniform_weights(1, 10),
        arrival_rate=3.0,
        seed=task.params["packets_seed"],
    )
    instance = Instance(name=f"tiers-{lasers}", topology=topo, packets=packets)
    result = run_policy(
        instance, OpportunisticLinkScheduler(), retention=task.params.get("retention", "full")
    )
    return TierSweepRow(
        lasers_per_rack=lasers,
        total_weighted_latency=result.total_weighted_latency,
        mean_matching_size=result.mean_matching_size,
        num_slots=result.num_slots,
    )


def two_tier_sweep(
    lasers_per_rack: Sequence[int] = (1, 2, 3, 4),
    num_racks: int = 6,
    num_packets: int = 150,
    seed: int = 23,
    jobs: int = 1,
    chunksize: int = 1,
    retention: str = "full",
) -> List[TierSweepRow]:
    """Vary the number of lasers/photodetectors per rack (E10).

    One laser per rack degenerates to the classic single-tier crossbar model;
    more opportunistic links per rack should reduce the total weighted
    latency on skewed traffic.
    """
    seeds = SeedSequenceFactory(seed)
    packets_seed = seeds.integer_seed("packets")
    grid = [
        {
            "lasers": lasers,
            "num_racks": num_racks,
            "num_packets": num_packets,
            "topo_seed": seeds.integer_seed("topology", lasers),
            "packets_seed": packets_seed,
            "retention": retention,
        }
        for lasers in lasers_per_rack
    ]
    spec = ExperimentSpec(name="two-tier", task_fn=_two_tier_task, grid=grid, seed=seed)
    return run_experiment(spec, jobs=jobs, chunksize=chunksize)
