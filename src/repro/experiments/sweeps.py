"""Parameter sweeps for experiments E5, E6, E8, E9 and E10.

Every sweep returns a list of plain dataclass rows (one per swept point) so
the benchmark harness can both assert on the qualitative shape (who wins,
monotonicity, bound satisfaction) and print the series that would appear as a
figure in a systems paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.competitive import evaluate_competitive_ratio
from repro.analysis.lp import solve_lp_lower_bound
from repro.core.algorithm import OpportunisticLinkScheduler, theoretical_competitive_ratio
from repro.core.interfaces import Policy
from repro.experiments.comparison import run_policy
from repro.network.builders import add_uniform_fixed_links, projector_fabric, random_bipartite
from repro.utils.rng import SeedSequenceFactory
from repro.workloads.base import Instance
from repro.workloads.skewed import zipf_workload
from repro.workloads.synthetic import uniform_random_workload
from repro.workloads.weights import uniform_weights

__all__ = [
    "CompetitiveRatioRow",
    "SpeedupRow",
    "DelaySweepRow",
    "HybridSweepRow",
    "TierSweepRow",
    "competitive_ratio_sweep",
    "speedup_sweep",
    "delay_heterogeneity_sweep",
    "hybrid_fixed_link_sweep",
    "two_tier_sweep",
]


# ---------------------------------------------------------------------- #
# E5 — competitive ratio vs ε
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class CompetitiveRatioRow:
    """One (instance, ε) point of the competitive-ratio experiment."""

    instance: str
    epsilon: float
    algorithm_cost: float
    lower_bound: float
    empirical_ratio: float
    theoretical_bound: float
    within_bound: bool


def competitive_ratio_sweep(
    instances: Mapping[str, Instance],
    epsilons: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    use_lp: bool = True,
) -> List[CompetitiveRatioRow]:
    """Measure ALG's empirical competitive ratio for several ε on several instances."""
    rows: List[CompetitiveRatioRow] = []
    for instance in instances.values():
        for epsilon in epsilons:
            report = evaluate_competitive_ratio(instance, epsilon, use_lp=use_lp)
            rows.append(
                CompetitiveRatioRow(
                    instance=instance.name,
                    epsilon=epsilon,
                    algorithm_cost=report.algorithm_cost,
                    lower_bound=report.best_lower_bound,
                    empirical_ratio=report.empirical_ratio,
                    theoretical_bound=report.theoretical_bound,
                    within_bound=report.within_bound,
                )
            )
    return rows


# ---------------------------------------------------------------------- #
# E6 — speedup sensitivity
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SpeedupRow:
    """ALG's cost at one speed, normalised by the unaugmented LP lower bound."""

    instance: str
    speed: float
    algorithm_cost: float
    lp_lower_bound: float
    ratio: float


def speedup_sweep(
    instance: Instance,
    speeds: Sequence[float] = (1.0, 1.5, 2.0, 2.5, 3.0),
    policy: Optional[Policy] = None,
    lp_horizon: Optional[int] = None,
) -> List[SpeedupRow]:
    """Run ALG at several speeds against the speed-1 LP lower bound.

    The gap at speed 1 versus higher speeds illustrates why resource
    augmentation is needed (Section I / Dinitz et al.).
    """
    lp_value = solve_lp_lower_bound(
        instance, capacity=1.0, horizon=lp_horizon, objective="fractional"
    ).objective_value
    rows: List[SpeedupRow] = []
    for speed in speeds:
        result = run_policy(instance, policy or OpportunisticLinkScheduler(), speed=speed)
        cost = result.total_weighted_latency
        rows.append(
            SpeedupRow(
                instance=instance.name,
                speed=speed,
                algorithm_cost=cost,
                lp_lower_bound=lp_value,
                ratio=cost / lp_value if lp_value > 0 else float("inf"),
            )
        )
    return rows


# ---------------------------------------------------------------------- #
# E8 — heterogeneous edge delays
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class DelaySweepRow:
    """Outcome of one (delay pool, policy) combination."""

    delay_pool: str
    policy: str
    total_weighted_latency: float
    mean_completion_time: float


def delay_heterogeneity_sweep(
    policies: Mapping[str, Policy],
    delay_pools: Sequence[Sequence[int]] = ((1,), (1, 2), (1, 2, 4), (2, 4, 8)),
    num_sources: int = 4,
    num_destinations: int = 4,
    num_packets: int = 120,
    seed: int = 5,
) -> List[DelaySweepRow]:
    """Compare policies as the reconfigurable-edge delay distribution widens (E8)."""
    seeds = SeedSequenceFactory(seed)
    rows: List[DelaySweepRow] = []
    for pool in delay_pools:
        topo = random_bipartite(
            num_sources,
            num_destinations,
            transmitters_per_source=2,
            receivers_per_destination=2,
            edge_probability=0.7,
            delay_choices=pool,
            seed=seeds.integer_seed("topo", tuple(pool)),
        )
        packets = uniform_random_workload(
            topo,
            num_packets,
            weight_sampler=uniform_weights(1, 10),
            arrival_rate=2.0,
            seed=seeds.integer_seed("packets", tuple(pool)),
        )
        instance = Instance(name=f"delays-{'-'.join(map(str, pool))}", topology=topo, packets=packets)
        for name, policy in policies.items():
            result = run_policy(instance, policy)
            completion = result.flow_completion_times()
            rows.append(
                DelaySweepRow(
                    delay_pool="/".join(map(str, pool)),
                    policy=name,
                    total_weighted_latency=result.total_weighted_latency,
                    mean_completion_time=sum(completion) / len(completion),
                )
            )
    return rows


# ---------------------------------------------------------------------- #
# E9 — hybrid topologies
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class HybridSweepRow:
    """Outcome of ALG on a hybrid fabric for one fixed-link delay."""

    fixed_link_delay: int
    total_weighted_latency: float
    fixed_link_fraction: float
    reconfigurable_fraction: float


def hybrid_fixed_link_sweep(
    fixed_link_delays: Sequence[int] = (1, 2, 4, 8, 16),
    num_racks: int = 6,
    num_packets: int = 150,
    seed: int = 17,
) -> List[HybridSweepRow]:
    """Sweep the fixed-link delay of a hybrid fabric and measure ALG's offload split (E9).

    Fast fixed links should absorb most traffic; slow ones should push ALG to
    use the reconfigurable network.
    """
    seeds = SeedSequenceFactory(seed)
    base = projector_fabric(
        num_racks=num_racks,
        lasers_per_rack=2,
        photodetectors_per_rack=2,
        seed=seeds.integer_seed("topology"),
    )
    packets_seed = seeds.integer_seed("packets")
    rows: List[HybridSweepRow] = []
    for delay in fixed_link_delays:
        topo = add_uniform_fixed_links(
            base, delay=delay, pair_filter=lambda s, d: s.split(":")[0] != d.split(":")[0]
        )
        packets = zipf_workload(
            topo,
            num_packets,
            exponent=1.1,
            weight_sampler=uniform_weights(1, 10),
            arrival_rate=2.0,
            seed=packets_seed,
        )
        instance = Instance(name=f"hybrid-dl{delay}", topology=topo, packets=packets)
        result = run_policy(instance, OpportunisticLinkScheduler())
        rows.append(
            HybridSweepRow(
                fixed_link_delay=delay,
                total_weighted_latency=result.total_weighted_latency,
                fixed_link_fraction=result.fixed_link_fraction,
                reconfigurable_fraction=1.0 - result.fixed_link_fraction,
            )
        )
    return rows


# ---------------------------------------------------------------------- #
# E10 — two-tier vs single-tier
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class TierSweepRow:
    """Outcome of ALG for one per-rack transmitter/receiver count."""

    lasers_per_rack: int
    total_weighted_latency: float
    mean_matching_size: float
    num_slots: int


def two_tier_sweep(
    lasers_per_rack: Sequence[int] = (1, 2, 3, 4),
    num_racks: int = 6,
    num_packets: int = 150,
    seed: int = 23,
) -> List[TierSweepRow]:
    """Vary the number of lasers/photodetectors per rack (E10).

    One laser per rack degenerates to the classic single-tier crossbar model;
    more opportunistic links per rack should reduce the total weighted
    latency on skewed traffic.
    """
    seeds = SeedSequenceFactory(seed)
    rows: List[TierSweepRow] = []
    for lasers in lasers_per_rack:
        topo = projector_fabric(
            num_racks=num_racks,
            lasers_per_rack=lasers,
            photodetectors_per_rack=lasers,
            seed=seeds.integer_seed("topology", lasers),
        )
        packets = zipf_workload(
            topo,
            num_packets,
            exponent=1.2,
            weight_sampler=uniform_weights(1, 10),
            arrival_rate=3.0,
            seed=seeds.integer_seed("packets"),
        )
        instance = Instance(name=f"tiers-{lasers}", topology=topo, packets=packets)
        result = run_policy(instance, OpportunisticLinkScheduler())
        sizes = result.matching_sizes
        rows.append(
            TierSweepRow(
                lasers_per_rack=lasers,
                total_weighted_latency=result.total_weighted_latency,
                mean_matching_size=sum(sizes) / len(sizes) if sizes else 0.0,
                num_slots=result.num_slots,
            )
        )
    return rows
