"""Small shared utilities used across the :mod:`repro` package.

The submodules are intentionally dependency-free (only the standard library
and numpy) so that they can be imported from anywhere in the package without
risk of circular imports.
"""

from repro.utils.ordering import chunk_priority_key, packet_priority_key
from repro.utils.rng import SeedSequenceFactory, as_rng
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_finite,
    check_non_negative,
    check_positive,
    check_positive_int,
)

__all__ = [
    "chunk_priority_key",
    "packet_priority_key",
    "SeedSequenceFactory",
    "as_rng",
    "format_table",
    "check_finite",
    "check_non_negative",
    "check_positive",
    "check_positive_int",
]
