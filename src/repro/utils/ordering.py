"""Priority orderings used by the dispatcher and the stable-matching scheduler.

The paper (Section III-B/C) requires a single consistent priority order on
chunks:

* heavier chunks come first;
* ties are broken in favour of the chunk whose packet arrived earlier;
* remaining ties are broken by dispatch order (packet id) and chunk index so
  that the order is total and deterministic.

Both the dispatcher's ``H``/``L`` partition and the scheduler's greedy stable
matching must use the *same* order, otherwise the charging argument of
Lemma 2 breaks.  Centralising the key functions here keeps the two components
consistent by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - import only for type checking
    from repro.core.packet import Chunk, Packet

__all__ = [
    "chunk_priority_key",
    "chunk_fifo_key",
    "packet_priority_key",
    "chunk_outranks",
]


def packet_priority_key(packet: "Packet") -> Tuple[float, float, int]:
    """Total-order key for packets: heavier first, then earlier arrival.

    Returns a tuple suitable for ``sorted(...)`` ascending order; the heaviest
    packet sorts first because the weight is negated.
    """
    return (-packet.weight, packet.arrival, packet.packet_id)


def chunk_priority_key(chunk: "Chunk") -> Tuple[float, float, int, int]:
    """Total-order key for chunks: heavier first, then earlier packet arrival.

    The final components (packet id, chunk index) make the order total so the
    greedy matching is deterministic.
    """
    return (
        -chunk.weight,
        chunk.packet.arrival,
        chunk.packet.packet_id,
        chunk.index,
    )


def chunk_fifo_key(chunk: "Chunk") -> Tuple[float, int, int]:
    """Total-order key for chunks in arrival (FIFO) order.

    Used by the weight-oblivious baselines; a module-level function (rather
    than a lambda) so policies built on it stay picklable and can be shipped
    to experiment-runner worker processes.
    """
    return (chunk.packet.arrival, chunk.packet.packet_id, chunk.index)


def chunk_outranks(first: "Chunk", second: "Chunk") -> bool:
    """Return ``True`` if ``first`` precedes ``second`` in the priority order.

    ``first`` outranking ``second`` means the scheduler would consider
    ``first`` before ``second`` and, if they conflict, ``first`` blocks
    ``second`` (Section III-A).
    """
    return chunk_priority_key(first) < chunk_priority_key(second)
