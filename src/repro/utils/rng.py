"""Deterministic random-number-generation helpers.

Every stochastic component in the library (workload generators, randomised
baselines, experiment sweeps) accepts either an integer seed or a
:class:`numpy.random.Generator`.  The helpers here normalise those inputs and
provide reproducible child-stream derivation so that, e.g., each workload in a
sweep gets an independent but deterministic stream.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

__all__ = ["as_rng", "SeedSequenceFactory"]

RngLike = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh entropy), an ``int`` seed, a ``SeedSequence`` or an
        existing ``Generator`` (returned unchanged).

    Examples
    --------
    >>> rng = as_rng(7)
    >>> rng2 = as_rng(7)
    >>> float(rng.random()) == float(rng2.random())
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, (int, np.integer)):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        return np.random.default_rng(int(seed))
    raise TypeError(f"cannot interpret {type(seed).__name__!r} as a random seed")


class SeedSequenceFactory:
    """Derive independent, reproducible child seeds from a root seed.

    The factory wraps :class:`numpy.random.SeedSequence` spawning and is used
    by the experiment harness to hand each (workload, repetition, policy)
    combination its own stream while keeping the whole sweep reproducible from
    a single root seed.

    Examples
    --------
    >>> fac = SeedSequenceFactory(123)
    >>> a = fac.generator("workload", 0)
    >>> b = fac.generator("workload", 1)
    >>> a is not b
    True
    >>> # Re-creating the factory reproduces the same streams.
    >>> fac2 = SeedSequenceFactory(123)
    >>> float(fac2.generator("workload", 0).random()) == float(
    ...     SeedSequenceFactory(123).generator("workload", 0).random())
    True
    """

    def __init__(self, root_seed: Optional[int] = None) -> None:
        self._root_seed = root_seed
        self._root = np.random.SeedSequence(root_seed)

    @property
    def root_seed(self) -> Optional[int]:
        """The root integer seed this factory was created with."""
        return self._root_seed

    def _key_entropy(self, *key: object) -> list[int]:
        # Hash the key parts into a stable list of 32-bit integers.  We avoid
        # Python's salted ``hash`` for strings and use a simple explicit
        # encoding instead so the derivation is stable across processes.
        entropy: list[int] = []
        for part in key:
            data = repr(part).encode("utf-8")
            acc = 2166136261
            for byte in data:
                acc = ((acc ^ byte) * 16777619) & 0xFFFFFFFF
            entropy.append(acc)
        return entropy

    def seed_sequence(self, *key: object) -> np.random.SeedSequence:
        """Return a child :class:`~numpy.random.SeedSequence` for ``key``."""
        base = [] if self._root_seed is None else [int(self._root_seed)]
        return np.random.SeedSequence(base + self._key_entropy(*key))

    def generator(self, *key: object) -> np.random.Generator:
        """Return a child :class:`~numpy.random.Generator` for ``key``."""
        return np.random.default_rng(self.seed_sequence(*key))

    def integer_seed(self, *key: object) -> int:
        """Return a deterministic 63-bit integer seed for ``key``."""
        return int(self.seed_sequence(*key).generate_state(1, dtype=np.uint64)[0] >> 1)
