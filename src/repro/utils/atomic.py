"""Atomic file finalisation: write to a temp file, then ``os.replace``.

Committed artifacts — benchmark histories, runner JSON output, search
hall-of-fame files — must never be corrupted by a crash mid-write: a reader
(or a resumed run) should see either the previous complete version or the
new complete version, never a truncated hybrid.  Both helpers write to a
temporary file in the *same directory* as the target (so the final
``os.replace`` is an atomic rename on the same filesystem) and clean the
temp file up when the write fails.

Examples
--------
>>> import tempfile, pathlib
>>> target = pathlib.Path(tempfile.mkdtemp()) / "data.json"
>>> _ = atomic_write_text(target, '{"ok": true}\\n')
>>> target.read_text()
'{"ok": true}\\n'
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager, suppress
from pathlib import Path
from typing import IO, Iterator, Union

__all__ = ["atomic_writer", "atomic_write_text"]


@contextmanager
def atomic_writer(path: Union[str, Path], encoding: str = "utf-8") -> Iterator[IO[str]]:
    """Context manager yielding a text handle whose content replaces ``path``.

    The handle writes to a temporary file next to ``path``; on clean exit the
    temp file atomically replaces ``path``.  On any exception the temp file
    is removed and ``path`` is left exactly as it was.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            yield handle
        os.replace(tmp_name, path)
    except BaseException:
        with suppress(OSError):
            os.unlink(tmp_name)
        raise


def atomic_write_text(path: Union[str, Path], text: str, encoding: str = "utf-8") -> Path:
    """Atomically replace ``path``'s content with ``text`` and return the path."""
    path = Path(path)
    with atomic_writer(path, encoding=encoding) as handle:
        handle.write(text)
    return path
