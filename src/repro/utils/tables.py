"""ASCII table formatting for experiment reports and benchmark output.

The experiment harness prints the rows the paper-style tables would contain;
keeping the formatter tiny and dependency-free makes benchmark output easy to
diff and paste into EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_csv"]


def _cell(value: object, float_format: str) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return format(value, float_format)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = ".4g",
    title: str = "",
) -> str:
    """Render ``rows`` as a fixed-width ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Iterable of rows; each row must have ``len(headers)`` entries.
    float_format:
        ``format()`` spec applied to float cells.
    title:
        Optional title line printed above the table.
    """
    header_cells = [str(h) for h in headers]
    body = []
    for row in rows:
        cells = [_cell(v, float_format) for v in row]
        if len(cells) != len(header_cells):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(header_cells)} columns"
            )
        body.append(cells)

    widths = [len(h) for h in header_cells]
    for cells in body:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(header_cells))
    lines.append(sep)
    lines.extend(render_row(cells) for cells in body)
    return "\n".join(lines)


def format_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = ".6g",
) -> str:
    """Render ``rows`` as CSV text (no quoting; values must not contain commas)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        cells = [_cell(v, float_format) for v in row]
        if any("," in c for c in cells):
            raise ValueError("CSV cells must not contain commas")
        lines.append(",".join(cells))
    return "\n".join(lines)
