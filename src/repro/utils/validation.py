"""Lightweight argument-validation helpers.

These helpers raise ``ValueError``/``TypeError`` with consistent messages and
are used at the public API boundary (topology construction, workload
generation, engine configuration).  Internal hot loops do not call them.
"""

from __future__ import annotations

import math
from typing import Union

import numpy as np

__all__ = [
    "check_positive",
    "check_non_negative",
    "check_positive_int",
    "check_finite",
    "check_probability",
]

Number = Union[int, float, np.integer, np.floating]


def _name(label: str) -> str:
    return label if label else "value"


def check_finite(value: Number, label: str = "") -> float:
    """Return ``value`` as a float, raising if it is NaN or infinite."""
    out = float(value)
    if not math.isfinite(out):
        raise ValueError(f"{_name(label)} must be finite, got {value!r}")
    return out


def check_positive(value: Number, label: str = "") -> float:
    """Return ``value`` as a float, raising unless it is strictly positive."""
    out = check_finite(value, label)
    if out <= 0:
        raise ValueError(f"{_name(label)} must be > 0, got {value!r}")
    return out


def check_non_negative(value: Number, label: str = "") -> float:
    """Return ``value`` as a float, raising if it is negative."""
    out = check_finite(value, label)
    if out < 0:
        raise ValueError(f"{_name(label)} must be >= 0, got {value!r}")
    return out


def check_positive_int(value: Number, label: str = "") -> int:
    """Return ``value`` as an int, raising unless it is a positive integer."""
    if isinstance(value, bool):
        raise TypeError(f"{_name(label)} must be an integer, got bool")
    if isinstance(value, float) and not value.is_integer():
        raise ValueError(f"{_name(label)} must be an integer, got {value!r}")
    out = int(value)
    if out <= 0:
        raise ValueError(f"{_name(label)} must be a positive integer, got {value!r}")
    return out


def check_probability(value: Number, label: str = "") -> float:
    """Return ``value`` as a float in ``[0, 1]``."""
    out = check_finite(value, label)
    if not 0.0 <= out <= 1.0:
        raise ValueError(f"{_name(label)} must lie in [0, 1], got {value!r}")
    return out
