"""Shared JSON Lines parsing helper.

All JSONL readers in the package (experiment rows, packet traces, slot
traces) parse files the same way: skip blank lines, ``json.loads`` each
remaining line, and wrap parse failures in the caller's domain exception
with the file/line position attached.  Centralised here so the three
readers cannot drift apart.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator, Optional, Tuple, Type, Union

__all__ = ["iter_json_lines"]


def iter_json_lines(
    path: Union[str, Path],
    error_cls: Type[Exception],
    tolerate_torn_tail: bool = False,
) -> Iterator[Tuple[int, Any]]:
    """Lazily yield ``(line_number, parsed_object)`` per non-blank JSONL line.

    Malformed lines raise ``error_cls`` with the path and line number.  With
    ``tolerate_torn_tail=True`` a malformed *final* line is silently dropped
    instead — the signature of a writer killed mid-append — while malformed
    lines anywhere else still raise (that is corruption, not a tear).
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        pending_error: Optional[Exception] = None
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            if pending_error is not None:
                # The malformed line was followed by more data: real corruption.
                raise pending_error
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError as exc:
                error = error_cls(f"invalid JSONL row at {path}:{line_number}: {exc}")
                error.__cause__ = exc
                if tolerate_torn_tail:
                    pending_error = error
                    continue
                raise error
            yield line_number, parsed
