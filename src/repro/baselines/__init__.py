"""Baseline online policies and offline optima for comparison experiments."""

from repro.baselines.brute_force import BruteForceResult, brute_force_optimal
from repro.baselines.dispatchers import (
    DirectFirstDispatcher,
    LeastLoadedDispatcher,
    RandomDispatcher,
    ShortestPathDispatcher,
)
from repro.baselines.policies import (
    ablation_policies,
    all_policies,
    make_direct_first_policy,
    make_fifo_policy,
    make_impact_fifo_policy,
    make_islip_policy,
    make_least_loaded_stable_policy,
    make_maxweight_policy,
    make_random_policy,
    make_shortest_path_policy,
    standard_baselines,
)
from repro.baselines.schedulers import (
    FIFOScheduler,
    ISLIPScheduler,
    MaxWeightMatchingScheduler,
    RandomOrderScheduler,
)

__all__ = [
    "RandomDispatcher",
    "LeastLoadedDispatcher",
    "ShortestPathDispatcher",
    "DirectFirstDispatcher",
    "FIFOScheduler",
    "RandomOrderScheduler",
    "MaxWeightMatchingScheduler",
    "ISLIPScheduler",
    "make_fifo_policy",
    "make_random_policy",
    "make_maxweight_policy",
    "make_islip_policy",
    "make_direct_first_policy",
    "make_shortest_path_policy",
    "make_least_loaded_stable_policy",
    "make_impact_fifo_policy",
    "standard_baselines",
    "ablation_policies",
    "all_policies",
    "brute_force_optimal",
    "BruteForceResult",
]
