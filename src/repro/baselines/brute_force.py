"""Exhaustive offline optimum for tiny instances.

The brute-force solver enumerates, for every packet, each admissible route
(every candidate reconfigurable edge plus the fixed link when present) and,
for every route combination, computes the minimum-total-weighted-latency
schedule by dynamic programming over (slot, remaining-chunk) states.  It is
exponential and guarded by explicit size limits — its purpose is to provide
ground-truth optima for the worked examples (Figure 1's cost-7 optimum) and
for randomized cross-checks of the LP lower bound in the test-suite.

The solver models the same non-migratory integral schedules the online
algorithm produces (each packet uses exactly one route; one chunk per matched
edge per slot at speed 1).  The paper's OPT is allowed to be preemptive and
migratory, so the value returned here is an *upper bound* on the paper's OPT
and a *lower bound* on every integral non-migratory schedule — which is
exactly what the tests need.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.packet import Packet
from repro.exceptions import AnalysisError
from repro.network.topology import TwoTierTopology
from repro.workloads.base import Instance

__all__ = ["BruteForceResult", "brute_force_optimal"]


@dataclass(frozen=True)
class _RouteOption:
    """One admissible route of a packet (fixed link or a reconfigurable edge)."""

    packet_index: int
    uses_fixed_link: bool
    edge: Optional[Tuple[str, str]]
    edge_delay: int
    head_delay: int
    tail_delay: int
    fixed_delay: int


@dataclass(frozen=True)
class BruteForceResult:
    """Outcome of the exhaustive search."""

    cost: float
    routes: Tuple[Tuple[str, ...], ...]
    num_route_combinations: int

    @property
    def optimal_cost(self) -> float:
        """Alias for :attr:`cost` (the minimum total weighted latency found)."""
        return self.cost


def _route_options(packet: Packet, topology: TwoTierTopology, index: int) -> List[_RouteOption]:
    options: List[_RouteOption] = []
    for (t, r) in topology.candidate_edges(packet.source, packet.destination):
        options.append(
            _RouteOption(
                packet_index=index,
                uses_fixed_link=False,
                edge=(t, r),
                edge_delay=topology.edge_delay(t, r),
                head_delay=topology.head_delay(t),
                tail_delay=topology.tail_delay(r),
                fixed_delay=0,
            )
        )
    if topology.has_fixed_link(packet.source, packet.destination):
        options.append(
            _RouteOption(
                packet_index=index,
                uses_fixed_link=True,
                edge=None,
                edge_delay=0,
                head_delay=0,
                tail_delay=0,
                fixed_delay=topology.fixed_link_delay(packet.source, packet.destination),
            )
        )
    if not options:
        raise AnalysisError(
            f"packet {packet.packet_id} ({packet.source}->{packet.destination}) has no route"
        )
    return options


def _schedule_cost(
    packets: Sequence[Packet],
    routes: Sequence[_RouteOption],
    horizon: int,
) -> float:
    """Minimum weighted latency of scheduling the reconfigurable routes in ``routes``."""
    fixed_cost = 0.0
    jobs: List[Tuple[int, float, int, str, str, int, int]] = []
    # job = (packet idx, chunk weight, num chunks, transmitter, receiver, eligible, tail)
    for packet, route in zip(packets, routes):
        if route.uses_fixed_link:
            fixed_cost += packet.weight * route.fixed_delay
            continue
        t, r = route.edge  # type: ignore[misc]
        jobs.append(
            (
                route.packet_index,
                packet.weight / route.edge_delay,
                route.edge_delay,
                t,
                r,
                packet.arrival + route.head_delay,
                route.tail_delay,
            )
        )
    if not jobs:
        return fixed_cost

    num_jobs = len(jobs)
    arrivals = [packets[j[0]].arrival for j in jobs]
    first_slot = min(eligible for (_pi, _w, _n, _t, _r, eligible, _tail) in jobs)
    packet_arrival = {j[0]: packets[j[0]].arrival for j in jobs}

    @lru_cache(maxsize=None)
    def solve(slot: int, remaining: Tuple[int, ...]) -> float:
        if all(v == 0 for v in remaining):
            return 0.0
        if slot > horizon:
            raise AnalysisError(
                f"brute-force schedule search exceeded horizon {horizon}; "
                "instance is too large for exhaustive search"
            )
        active = [
            i
            for i in range(num_jobs)
            if remaining[i] > 0 and jobs[i][5] <= slot
        ]
        if not active:
            return solve(slot + 1, remaining)

        best = float("inf")

        def latency_of(i: int) -> float:
            _pi, weight, _n, _t, _r, _eligible, tail = jobs[i]
            return weight * (slot + 1 + tail - packet_arrival[jobs[i][0]])

        # Enumerate maximal matchings of the active jobs' edges (transmitting a
        # superset of chunks never increases later completion times, so
        # maximal matchings are sufficient for optimality).
        def recurse(selected: List[int], idx: int, used_t: frozenset, used_r: frozenset) -> None:
            nonlocal best
            if idx == len(active):
                if not selected:
                    return
                new_remaining = list(remaining)
                cost = 0.0
                for i in selected:
                    new_remaining[i] -= 1
                    cost += latency_of(i)
                total = cost + solve(slot + 1, tuple(new_remaining))
                best = min(best, total)
                return
            i = active[idx]
            _pi, _w, _n, t, r, _eligible, _tail = jobs[i]
            if t not in used_t and r not in used_r:
                recurse(selected + [i], idx + 1, used_t | {t}, used_r | {r})
                # Skipping this job is only allowed if it could conflict with a
                # later choice; to keep matchings maximal we also explore the
                # skip branch (the maximality filter below discards dominated
                # selections via the min over branches).
                recurse(selected, idx + 1, used_t, used_r)
            else:
                recurse(selected, idx + 1, used_t, used_r)

        recurse([], 0, frozenset(), frozenset())
        if best == float("inf"):
            best = solve(slot + 1, remaining)
        return best

    initial_remaining = tuple(j[2] for j in jobs)
    return fixed_cost + solve(first_slot, initial_remaining)


def brute_force_optimal(
    instance: Instance,
    max_total_chunks: int = 12,
    max_route_combinations: int = 5000,
) -> BruteForceResult:
    """Exhaustively compute the optimal integral non-migratory schedule cost.

    Parameters
    ----------
    instance:
        The instance to solve.
    max_total_chunks:
        Safety limit on the total number of chunks of any route combination.
    max_route_combinations:
        Safety limit on the number of route combinations enumerated.

    Raises
    ------
    AnalysisError
        If the instance exceeds the configured size limits.
    """
    packets = sorted(instance.packets, key=lambda p: p.packet_id)
    topology = instance.topology
    option_lists = [_route_options(p, topology, i) for i, p in enumerate(packets)]

    num_combos = 1
    for options in option_lists:
        num_combos *= len(options)
    if num_combos > max_route_combinations:
        raise AnalysisError(
            f"instance has {num_combos} route combinations; "
            f"limit is {max_route_combinations}"
        )

    horizon = instance.horizon_estimate(speed=1.0) + 2
    best_cost = float("inf")
    best_routes: Tuple[Tuple[str, ...], ...] = ()
    for combo in itertools.product(*option_lists):
        total_chunks = sum(0 if o.uses_fixed_link else o.edge_delay for o in combo)
        if total_chunks > max_total_chunks:
            raise AnalysisError(
                f"route combination requires {total_chunks} chunks; "
                f"limit is {max_total_chunks}"
            )
        cost = _schedule_cost(packets, combo, horizon)
        if cost < best_cost:
            best_cost = cost
            best_routes = tuple(
                ("fixed",) if o.uses_fixed_link else o.edge for o in combo  # type: ignore[misc]
            )
    return BruteForceResult(
        cost=best_cost, routes=best_routes, num_route_combinations=num_combos
    )
