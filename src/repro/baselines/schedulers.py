"""Baseline per-slot schedulers.

All schedulers consume the same :class:`~repro.core.queues.PendingChunkPool`
as the paper's stable-matching scheduler and must return a matching of
eligible pending chunks.  They quantify the value of the stable-matching
(weight-ordered) rule against classic alternatives:

* FIFO greedy matching (arrival-ordered instead of weight-ordered);
* maximum-weight matching recomputed every slot (the throughput-optimal
  crossbar schedule, via networkx's blossom implementation);
* iSLIP-style iterative round-robin matching (the de-facto standard in
  commercial input-queued switches);
* random-order greedy matching.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.core.interfaces import Scheduler
from repro.core.packet import Chunk
from repro.core.queues import PendingChunkPool
from repro.core.scheduler import OrderedGreedyScheduler
from repro.network.topology import TwoTierTopology
from repro.utils.ordering import chunk_fifo_key, chunk_priority_key
from repro.utils.rng import RngLike, as_rng

__all__ = [
    "FIFOScheduler",
    "RandomOrderScheduler",
    "MaxWeightMatchingScheduler",
    "ISLIPScheduler",
]


def _iter_eligible(pool: PendingChunkPool, now: int):
    """Iterate the eligible chunks of ``pool`` without materialising a list.

    MaxWeight and iSLIP only bucket the eligible chunks by edge, so they can
    stream straight off the pool's eligible partition; minimal pool stand-ins
    (the differential harness's naive pool) fall back to the materialised
    query.
    """
    iter_eligible = getattr(pool, "iter_eligible", None)
    if iter_eligible is not None:
        return iter_eligible(now)
    return pool.eligible_chunks(now)


class FIFOScheduler(OrderedGreedyScheduler):
    """Greedy matching in arrival order (oldest chunk first).

    This is the natural work-conserving policy a weight-oblivious system
    would use; comparing it against the stable-matching scheduler isolates
    the benefit of weight-aware ordering.
    """

    name = "fifo"

    def __init__(self) -> None:
        super().__init__(key=chunk_fifo_key, name=self.name)


class RandomOrderScheduler(Scheduler):
    """Greedy matching in a fresh uniformly random chunk order each slot."""

    name = "random-order"

    def __init__(self, seed: RngLike = None) -> None:
        self._seed = seed
        self._rng = as_rng(seed)

    def reset(self) -> None:
        """Re-seed so repeated runs are identical."""
        self._rng = as_rng(self._seed)

    def select_matching(
        self, pool: PendingChunkPool, topology: TwoTierTopology, now: int
    ) -> List[Chunk]:
        eligible = pool.eligible_chunks(now)
        order = self._rng.permutation(len(eligible))
        selected: List[Chunk] = []
        used_t: set[str] = set()
        used_r: set[str] = set()
        for idx in order:
            chunk = eligible[int(idx)]
            if chunk.transmitter in used_t or chunk.receiver in used_r:
                continue
            selected.append(chunk)
            used_t.add(chunk.transmitter)
            used_r.add(chunk.receiver)
        return selected


class MaxWeightMatchingScheduler(Scheduler):
    """Maximum-weight matching over the pending-chunk bipartite graph.

    Each slot, the transmitter–receiver graph is built with one edge per
    reconfigurable edge that has at least one eligible chunk; the edge weight
    is either the heaviest eligible chunk (``mode="max"``, the classic
    MaxWeight policy on per-edge virtual output queues) or the total eligible
    weight (``mode="sum"``).  The maximum-weight matching is computed with
    :func:`networkx.algorithms.matching.max_weight_matching` and the
    highest-priority chunk of each matched edge is transmitted.
    """

    name = "max-weight-matching"

    def __init__(self, mode: str = "max") -> None:
        if mode not in ("max", "sum"):
            raise ValueError(f"mode must be 'max' or 'sum', got {mode!r}")
        self.mode = mode
        self.name = f"max-weight-matching({mode})"

    def select_matching(
        self, pool: PendingChunkPool, topology: TwoTierTopology, now: int
    ) -> List[Chunk]:
        best_chunk: Dict[Tuple[str, str], Chunk] = {}
        edge_weight: Dict[Tuple[str, str], float] = {}
        for chunk in _iter_eligible(pool, now):
            edge = chunk.edge
            if edge not in best_chunk or chunk_priority_key(chunk) < chunk_priority_key(
                best_chunk[edge]
            ):
                best_chunk[edge] = chunk
            edge_weight[edge] = (
                edge_weight.get(edge, 0.0) + chunk.weight
                if self.mode == "sum"
                else max(edge_weight.get(edge, 0.0), chunk.weight)
            )
        if not edge_weight:
            return []

        graph = nx.Graph()
        for (t, r), weight in edge_weight.items():
            # Prefix node names to keep the two sides disjoint even if a
            # transmitter and receiver share a name.
            graph.add_edge(("T", t), ("R", r), weight=weight)
        matching = nx.algorithms.matching.max_weight_matching(graph, maxcardinality=False)

        selected: List[Chunk] = []
        for (a, b) in matching:
            (side_a, name_a), (side_b, name_b) = a, b
            if side_a == "T":
                t, r = name_a, name_b
            else:
                t, r = name_b, name_a
            selected.append(best_chunk[(t, r)])
        return selected


class ISLIPScheduler(Scheduler):
    """iSLIP-style iterative round-robin matching (McKeown 1999), adapted to chunks.

    Each reconfigurable edge with eligible chunks acts as a virtual output
    queue.  In every iteration, unmatched transmitters request all receivers
    for which they hold eligible chunks; each receiver grants to the first
    requesting transmitter at or after its grant pointer; each transmitter
    accepts the first granting receiver at or after its accept pointer.
    Pointers advance past an accepted partner only for grants accepted in the
    first iteration (the standard desynchronisation rule).  The oldest
    eligible chunk on each matched edge is transmitted.
    """

    name = "islip"

    def __init__(self, iterations: int = 3) -> None:
        if iterations < 1:
            raise ValueError(f"iterations must be >= 1, got {iterations}")
        self.iterations = iterations
        self._grant_pointer: Dict[str, int] = {}
        self._accept_pointer: Dict[str, int] = {}

    def reset(self) -> None:
        """Reset the round-robin pointers."""
        self._grant_pointer = {}
        self._accept_pointer = {}

    @staticmethod
    def _oldest(chunks: List[Chunk]) -> Chunk:
        return min(chunks, key=chunk_fifo_key)

    def select_matching(
        self, pool: PendingChunkPool, topology: TwoTierTopology, now: int
    ) -> List[Chunk]:
        by_edge: Dict[Tuple[str, str], List[Chunk]] = {}
        for chunk in _iter_eligible(pool, now):
            by_edge.setdefault(chunk.edge, []).append(chunk)
        if not by_edge:
            return []

        transmitters = sorted({t for (t, _r) in by_edge})
        receivers = sorted({r for (_t, r) in by_edge})
        t_index = {t: i for i, t in enumerate(transmitters)}
        r_index = {r: i for i, r in enumerate(receivers)}
        requests_by_t: Dict[str, List[str]] = {}
        for (t, r) in by_edge:
            requests_by_t.setdefault(t, []).append(r)

        matched_t: Dict[str, str] = {}
        matched_r: Dict[str, str] = {}

        for iteration in range(self.iterations):
            # Request phase: every unmatched transmitter requests all receivers
            # of its non-empty VOQs that are still unmatched.
            grants: Dict[str, List[str]] = {}
            for t in transmitters:
                if t in matched_t:
                    continue
                for r in requests_by_t.get(t, ()):
                    if r in matched_r:
                        continue
                    grants.setdefault(r, []).append(t)

            # Grant phase: each receiver grants to the first requester at or
            # after its pointer (in transmitter index order).
            accepts: Dict[str, List[str]] = {}
            for r, requesters in grants.items():
                pointer = self._grant_pointer.get(r, 0) % max(len(transmitters), 1)
                chosen = min(
                    requesters, key=lambda t: ((t_index[t] - pointer) % len(transmitters), t)
                )
                accepts.setdefault(chosen, []).append(r)

            # Accept phase: each transmitter accepts the first granting
            # receiver at or after its pointer.
            newly_matched = []
            for t, granting in accepts.items():
                pointer = self._accept_pointer.get(t, 0) % max(len(receivers), 1)
                chosen = min(
                    granting, key=lambda r: ((r_index[r] - pointer) % len(receivers), r)
                )
                matched_t[t] = chosen
                matched_r[chosen] = t
                newly_matched.append((t, chosen))

            if iteration == 0:
                for (t, r) in newly_matched:
                    self._grant_pointer[r] = (t_index[t] + 1) % len(transmitters)
                    self._accept_pointer[t] = (r_index[r] + 1) % len(receivers)
            if not newly_matched:
                break

        return [self._oldest(by_edge[(t, r)]) for t, r in matched_t.items()]
