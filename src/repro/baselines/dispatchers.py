"""Baseline dispatch rules.

These dispatchers implement the same interface as the paper's
:class:`~repro.core.dispatcher.ImpactDispatcher` but use simpler decision
rules.  They exist to quantify how much of ALG's performance comes from the
worst-case-impact dispatch policy (as opposed to the stable-matching
scheduler), and to serve as the naive comparators in experiment E7.

Every baseline still records a well-defined ``impact`` value on the
assignment (the worst-case impact of the *chosen* route) so that downstream
tooling can treat results uniformly; the dual-fitting analysis, however, is
only meaningful for runs of the paper's algorithm.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.dispatcher import compute_edge_impact_auto
from repro.core.interfaces import Dispatcher
from repro.core.packet import (
    Assignment,
    EdgeAssignment,
    FixedLinkAssignment,
    Packet,
    split_into_chunks,
)
from repro.core.queues import PendingChunkPool
from repro.exceptions import RoutingError
from repro.network.topology import TwoTierTopology
from repro.utils.rng import RngLike, as_rng

__all__ = [
    "RandomDispatcher",
    "LeastLoadedDispatcher",
    "ShortestPathDispatcher",
    "DirectFirstDispatcher",
]


def _edge_assignment(
    packet: Packet,
    transmitter: str,
    receiver: str,
    topology: TwoTierTopology,
    pool: PendingChunkPool,
) -> EdgeAssignment:
    """Build an :class:`EdgeAssignment` (with chunks and recorded impact) for an edge."""
    impact = compute_edge_impact_auto(packet, transmitter, receiver, topology, pool)
    chunks = split_into_chunks(
        packet,
        transmitter,
        receiver,
        edge_delay=impact.edge_delay,
        head_delay=topology.head_delay(transmitter),
        tail_delay=topology.tail_delay(receiver),
    )
    return EdgeAssignment(
        packet=packet,
        transmitter=transmitter,
        receiver=receiver,
        edge_delay=impact.edge_delay,
        impact=impact.total,
        chunks=chunks,
    )


def _fixed_assignment(packet: Packet, topology: TwoTierTopology) -> FixedLinkAssignment:
    delay = topology.fixed_link_delay(packet.source, packet.destination)
    return FixedLinkAssignment(packet=packet, link_delay=delay, impact=packet.weight * delay)


def _require_routable(packet: Packet, candidates: List[Tuple[str, str]], has_fixed: bool) -> None:
    if not candidates and not has_fixed:
        raise RoutingError(
            f"packet {packet.packet_id} ({packet.source}->{packet.destination}) has no route"
        )


class RandomDispatcher(Dispatcher):
    """Assign each packet to a uniformly random candidate edge.

    The fixed link (when present) is treated as one more candidate route.
    """

    name = "random-dispatch"

    def __init__(self, seed: RngLike = None) -> None:
        self._seed = seed
        self._rng = as_rng(seed)

    def reset(self) -> None:
        """Re-seed the generator so repeated runs are identical."""
        self._rng = as_rng(self._seed)

    def dispatch(
        self,
        packet: Packet,
        topology: TwoTierTopology,
        pool: PendingChunkPool,
        now: int,
    ) -> Assignment:
        candidates = topology.candidate_edges(packet.source, packet.destination)
        has_fixed = topology.has_fixed_link(packet.source, packet.destination)
        _require_routable(packet, candidates, has_fixed)
        options: List[Optional[Tuple[str, str]]] = list(candidates)
        if has_fixed:
            options.append(None)  # None encodes the fixed link
        choice = options[int(self._rng.integers(len(options)))]
        if choice is None:
            return _fixed_assignment(packet, topology)
        return _edge_assignment(packet, choice[0], choice[1], topology, pool)


class LeastLoadedDispatcher(Dispatcher):
    """Assign each packet to the candidate edge with the least queued weight.

    The load of edge ``(t, r)`` is the total weight of pending chunks at ``t``
    plus at ``r`` (the join-the-shortest-queue heuristic).  The fixed link is
    used only when no reconfigurable candidate exists.
    """

    name = "least-loaded"

    def dispatch(
        self,
        packet: Packet,
        topology: TwoTierTopology,
        pool: PendingChunkPool,
        now: int,
    ) -> Assignment:
        candidates = topology.candidate_edges(packet.source, packet.destination)
        has_fixed = topology.has_fixed_link(packet.source, packet.destination)
        _require_routable(packet, candidates, has_fixed)
        if not candidates:
            return _fixed_assignment(packet, topology)
        best = min(
            candidates,
            key=lambda edge: (
                pool.weight_at_transmitter(edge[0]) + pool.weight_at_receiver(edge[1]),
                topology.path_delay(*edge),
                edge,
            ),
        )
        return _edge_assignment(packet, best[0], best[1], topology, pool)


class ShortestPathDispatcher(Dispatcher):
    """Assign each packet to the candidate edge with the smallest path delay.

    Queue state is ignored entirely; ties are broken lexicographically.  The
    fixed link is chosen when it is strictly faster than the best
    reconfigurable path (ignoring queueing).
    """

    name = "shortest-path"

    def dispatch(
        self,
        packet: Packet,
        topology: TwoTierTopology,
        pool: PendingChunkPool,
        now: int,
    ) -> Assignment:
        candidates = topology.candidate_edges(packet.source, packet.destination)
        has_fixed = topology.has_fixed_link(packet.source, packet.destination)
        _require_routable(packet, candidates, has_fixed)
        best: Optional[Tuple[str, str]] = None
        if candidates:
            best = min(candidates, key=lambda edge: (topology.path_delay(*edge), edge))
        if has_fixed:
            fixed_delay = topology.fixed_link_delay(packet.source, packet.destination)
            if best is None or fixed_delay < topology.path_delay(*best):
                return _fixed_assignment(packet, topology)
        assert best is not None
        return _edge_assignment(packet, best[0], best[1], topology, pool)


class DirectFirstDispatcher(Dispatcher):
    """Always use the fixed link when one exists; otherwise fall back to impact dispatch.

    This models the pre-reconfigurable-network behaviour (all traffic on the
    static topology) with opportunistic links used only where no static route
    exists.
    """

    name = "direct-first"

    def dispatch(
        self,
        packet: Packet,
        topology: TwoTierTopology,
        pool: PendingChunkPool,
        now: int,
    ) -> Assignment:
        candidates = topology.candidate_edges(packet.source, packet.destination)
        has_fixed = topology.has_fixed_link(packet.source, packet.destination)
        _require_routable(packet, candidates, has_fixed)
        if has_fixed:
            return _fixed_assignment(packet, topology)
        best = None
        best_impact = None
        for (t, r) in candidates:
            impact = compute_edge_impact_auto(packet, t, r, topology, pool)
            if best_impact is None or (impact.total, impact.edge) < (best_impact.total, best_impact.edge):
                best_impact = impact
                best = (t, r)
        assert best is not None and best_impact is not None
        return _edge_assignment(packet, best[0], best[1], topology, pool)
