"""Named policy combinations used by the experiments.

The paper's algorithm is the pair (impact dispatcher, stable-matching
scheduler).  The factories here build the comparison policies of experiment
E7 and the ablation policies that swap exactly one of the two components, so
the contribution of each can be measured separately.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.baselines.dispatchers import (
    DirectFirstDispatcher,
    LeastLoadedDispatcher,
    RandomDispatcher,
    ShortestPathDispatcher,
)
from repro.baselines.schedulers import (
    FIFOScheduler,
    ISLIPScheduler,
    MaxWeightMatchingScheduler,
    RandomOrderScheduler,
)
from repro.core.algorithm import OpportunisticLinkScheduler
from repro.core.dispatcher import ImpactDispatcher
from repro.core.interfaces import Policy
from repro.core.scheduler import StableMatchingScheduler
from repro.utils.rng import RngLike

__all__ = [
    "make_fifo_policy",
    "make_random_policy",
    "make_maxweight_policy",
    "make_islip_policy",
    "make_direct_first_policy",
    "make_least_loaded_stable_policy",
    "make_impact_fifo_policy",
    "make_shortest_path_policy",
    "standard_baselines",
    "ablation_policies",
    "all_policies",
]


def make_fifo_policy() -> Policy:
    """Join-the-shortest-queue dispatch with FIFO greedy matching."""
    return Policy("fifo", LeastLoadedDispatcher(), FIFOScheduler())


def make_random_policy(seed: RngLike = 0) -> Policy:
    """Uniformly random dispatch with random-order greedy matching."""
    return Policy("random", RandomDispatcher(seed=seed), RandomOrderScheduler(seed=seed))


def make_maxweight_policy(mode: str = "max") -> Policy:
    """Join-the-shortest-queue dispatch with per-slot maximum-weight matching."""
    return Policy(f"maxweight({mode})", LeastLoadedDispatcher(), MaxWeightMatchingScheduler(mode))


def make_islip_policy(iterations: int = 3) -> Policy:
    """Join-the-shortest-queue dispatch with iSLIP round-robin matching."""
    return Policy("islip", LeastLoadedDispatcher(), ISLIPScheduler(iterations=iterations))


def make_direct_first_policy() -> Policy:
    """Fixed-link-first dispatch with stable-matching scheduling of the rest."""
    return Policy("direct-first", DirectFirstDispatcher(), StableMatchingScheduler())


def make_shortest_path_policy() -> Policy:
    """Queue-oblivious shortest-path dispatch with stable-matching scheduling."""
    return Policy("shortest-path", ShortestPathDispatcher(), StableMatchingScheduler())


def make_least_loaded_stable_policy() -> Policy:
    """Ablation: paper's scheduler with the least-loaded dispatcher."""
    return Policy("least-loaded+stable", LeastLoadedDispatcher(), StableMatchingScheduler())


def make_impact_fifo_policy() -> Policy:
    """Ablation: paper's dispatcher with a FIFO scheduler."""
    return Policy("impact+fifo", ImpactDispatcher(), FIFOScheduler())


def standard_baselines(seed: RngLike = 0) -> Dict[str, Policy]:
    """The baseline set of experiment E7 (does not include the paper's ALG)."""
    return {
        "fifo": make_fifo_policy(),
        "random": make_random_policy(seed=seed),
        "maxweight": make_maxweight_policy(),
        "islip": make_islip_policy(),
        "shortest-path": make_shortest_path_policy(),
    }


def ablation_policies() -> Dict[str, Policy]:
    """Single-component swaps isolating the dispatcher and the scheduler."""
    return {
        "least-loaded+stable": make_least_loaded_stable_policy(),
        "impact+fifo": make_impact_fifo_policy(),
    }


def all_policies(seed: RngLike = 0, include_direct_first: bool = False) -> Dict[str, Policy]:
    """ALG plus every baseline and ablation policy, keyed by name."""
    policies: Dict[str, Policy] = {"alg": OpportunisticLinkScheduler()}
    policies.update(standard_baselines(seed=seed))
    policies.update(ablation_policies())
    if include_direct_first:
        policies["direct-first"] = make_direct_first_policy()
    return policies
