"""Time-slotted simulation engine for two-tier reconfigurable networks.

The engine implements the execution model of Section II:

* time advances in integer transmission slots ``τ = 1, 2, …``;
* packets arriving at slot ``τ`` are handed to the policy's dispatcher one by
  one (in input order), which commits each to the fixed link or to one
  reconfigurable edge (splitting it into chunks);
* at each slot the policy's scheduler selects a set of pending chunks whose
  edges form a matching; the engine transmits them, honouring the configured
  speed augmentation (``speed`` chunk-units of work per matched edge per
  slot), and accounts weighted *fractional* latency exactly as defined in the
  paper: a fraction ``x`` of packet ``p`` delivered during slot ``τ`` over
  edge ``(t, r)`` contributes ``x · w_p · (τ + 1 + d(r,dest) − a_p)``;
* packets assigned to a fixed source→destination link complete at
  ``a_p + d_l(p)`` with weighted latency ``w_p · d_l(p)`` (the fixed network
  is contention-free in the paper's cost model).

The engine is policy-agnostic: the paper's algorithm and every baseline run
through the same code path, which keeps comparisons fair.

Arrivals are *pulled* from the input on demand, one arrival batch per slot,
so the engine composes with the lazy workload generators in
:mod:`repro.workloads`: with ``retention="aggregate"`` a million-packet
stream is simulated in O(active chunks) memory, while ``retention="full"``
(the default) materialises the input and keeps a per-packet record exactly
as before.  Both retentions produce bit-identical ``summary()`` numbers.

The run loop itself lives in :class:`_PolicyLane` — one policy's pool,
recorder and slot cursor, advanced one slot per ``step()`` call.  ``run()``
drives a single lane to completion; :meth:`SimulationEngine.run_multi`
drives one lane per policy round-robin over a shared arrival buffer, so a
``P``-policy comparison consumes the workload stream once instead of ``P``
times while producing per-policy results bit-identical to ``P`` separate
``run()`` calls.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.interfaces import Policy
from repro.core.packet import Chunk, EdgeAssignment, FixedLinkAssignment, Packet
from repro.core.queues import PendingChunkPool
from repro.exceptions import SchedulingError, SimulationError
from repro.faults import ON_FAIL_MODES, FabricState, FaultEvent, FaultSchedule, FaultTopologyView
from repro.network.topology import TwoTierTopology
from repro.obs import NULL_REGISTRY, MetricsRegistry, MetricsWriter, SpanTimer
from repro.simulation.accumulators import OnlineSummary
from repro.simulation.results import RETENTION_MODES, PacketRecord, SimulationResult
from repro.simulation.trace import (
    DispatchEvent,
    SimulationTrace,
    SlotTrace,
    SlotTraceWriter,
    TransmissionEvent,
)
from repro.simulation.vector_backend import _WORK_EPSILON, VectorTransmitBackend

__all__ = ["ENGINE_MODES", "EngineConfig", "SimulationEngine", "simulate", "simulate_multi"]

#: Evaluation backends for the per-slot hot paths: ``"indexed"`` maintains
#: the pool's incremental impact index (O(log n) per candidate edge) and —
#: for schedulers that opt in — the incremental matching index (stable
#: matching repaired from each slot's delta); ``"vectorized"`` adds the
#: numpy-batched transmission step on top of the indexed decision paths
#: (per-chunk state in parallel arrays, each slot's matching applied as a
#: masked scatter-subtract); ``"reference"`` re-scans the adjacency lists
#: and replays the full greedy matching pass (the historical loops kept for
#: differential testing).  All three produce bit-identical results.
ENGINE_MODES = ("indexed", "reference", "vectorized")

#: Bucket upper bounds of the per-slot ``engine_matching_size`` histogram:
#: powers of two from 1 to 1024 edges (matchings are bounded by the rack
#: count, so the range covers every topology in this repository).
_MATCHING_SIZE_BUCKETS = tuple(float(2 ** k) for k in range(11))


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of a :class:`SimulationEngine`.

    Attributes
    ----------
    speed:
        Speed augmentation factor (>= any positive value; 1.0 means no
        augmentation).  Each matched edge can transmit ``speed`` chunk-units
        of work per slot.
    max_slots:
        Safety bound on the number of simulated slots; exceeding it raises
        :class:`~repro.exceptions.SimulationError` (it indicates a policy
        that never drains its queues).
    record_trace:
        Whether to record a full per-slot event trace in memory.
    validate_matchings:
        Whether to check that the scheduler's output is a valid matching of
        eligible pending chunks each slot (cheap; enabled by default).
    slot_skipping:
        Whether to jump over slots that provably transmit nothing instead of
        simulating them one by one (enabled by default): with an empty pool
        the engine jumps to the next arrival, and with a pool whose chunks
        all wait in future activation buckets (head-of-line delays) it jumps
        to the earlier of the next arrival and the next activation time.
        Skipped slots still count toward ``max_slots`` and still contribute
        zero-size entries to ``matching_sizes`` (and empty slot traces when
        ``record_trace`` is on), so results are identical to the slot-by-slot
        walk for any scheduler that selects nothing — and mutates nothing —
        when no chunk is eligible, which holds for every scheduler in this
        repository.
    retention:
        ``"full"`` (default) keeps a per-packet :class:`PacketRecord` and the
        per-slot ``matching_sizes`` list; ``"aggregate"`` consumes the input
        as a stream and keeps only online summary accumulators, so memory is
        bounded by the number of *in-flight* chunks rather than the number of
        packets.  Aggregate mode requires the input stream to yield packets
        with non-decreasing arrival slots and strictly increasing packet ids
        (the canonical order every workload generator and trace reader in
        this repository produces).
    trace_path:
        When set, every slot trace is appended to this JSONL file (one slot
        per line, see :class:`~repro.simulation.trace.SlotTraceWriter`) and
        then discarded, independent of ``record_trace`` — the streamed trace
        of an arbitrarily long run costs O(1) memory.
    engine:
        Evaluation backend for both per-slot decisions.  ``"indexed"``
        (default) gives every lane a pool that maintains the incremental
        impact index (each candidate-edge evaluation becomes an O(log n)
        rank query) and, for schedulers that opt in via
        ``uses_matching_index``, the incremental matching index (the greedy
        stable matching is repaired from the arrival/completion/activation
        delta instead of recomputed from scratch).  ``"vectorized"`` keeps
        the indexed decision paths and additionally batches the per-slot
        transmission step through
        :class:`~repro.simulation.vector_backend.VectorTransmitBackend`
        (per-chunk state in parallel numpy arrays, the matching applied as
        a masked scatter-subtract — the backend of choice for dense cells
        with deep per-edge queues).  ``"reference"`` keeps the historical
        O(n) adjacency scan and the full greedy matching pass.  Results are
        bit-identical across all three; the reference paths remain the
        differential-test oracle and the fallback while debugging the
        indexes.
    share_dispatch:
        Whether :meth:`SimulationEngine.run_multi` lets lanes whose
        dispatchers share a rule (same ``dispatch_sharing_key``) reuse one
        impact evaluation per (arrival, pool state) through a
        :class:`~repro.core.dispatcher.SharedDispatchMemo`.  Sharing never
        changes results (lanes with diverged pools miss the memo); disabling
        it replays the PR 3 per-lane dispatch for benchmarking.
    validate_shared_dispatch:
        Debug flag: re-derive every shared-dispatch memo hit from the
        hitting lane's own pool and fail loudly on any mismatch (the
        cross-lane invariant check; costs the sharing speedup).
    obs:
        A :class:`~repro.obs.MetricsRegistry` to record run metrics into
        (packets arrived/delivered, chunks matched per slot, memo hits,
        index repair counts, pool occupancy peaks, …).  ``None`` (default)
        means observability off: the engine uses the shared no-op registry
        and the hot paths skip every instrumentation block behind a single
        boolean.  Instruments only record — enabling observability never
        changes simulation results.
    metrics_path:
        When set, the final registry snapshot is written to this JSONL file
        at the end of each ``run()`` / ``run_multi()`` call (one
        ``{"record": "metrics_snapshot", ...}`` line).  Setting
        ``metrics_path`` without ``obs`` enables a private registry for the
        engine.
    span_stride:
        Sampling stride for per-slot phase spans: every ``span_stride``-th
        simulated slot has its dispatch/scheduler/transmit phases wall-clock
        timed into per-policy ``engine_phase_seconds`` gauges (1 = every
        slot).  0 (default) disables span sampling.  Only active when a
        metrics registry is enabled.
    faults:
        A :class:`~repro.faults.FaultSchedule` of deterministic
        fail/recover/degrade events applied at the start of each slot:
        failed lasers/photodetectors/edges disappear from every
        dispatcher's candidate set, chunks stranded on them are evicted
        from the pool according to ``on_fail``, and degraded edges transmit
        at a fractional rate.  ``None`` (default) disables the fault
        runtime entirely.  All three engine backends stay bit-identical
        under any schedule.
    on_fail:
        What happens to pending chunks stranded on failed hardware:
        ``"requeue"`` (default) holds them outside the pool and re-admits
        them — partial ``remaining_work`` intact, no head delay re-paid —
        when their edge recovers; ``"drop"`` abandons them (the packet
        never completes; its accrued fractional latency is kept);
        ``"redispatch"`` moves them to the live candidate edge of minimum
        delay (re-paying the new head delay, keeping the original split
        granularity), falling back to holding when no candidate is alive.
    """

    speed: float = 1.0
    max_slots: int = 1_000_000
    record_trace: bool = False
    validate_matchings: bool = True
    slot_skipping: bool = True
    retention: str = "full"
    trace_path: Optional[str] = None
    engine: str = "indexed"
    share_dispatch: bool = True
    validate_shared_dispatch: bool = False
    obs: Optional[MetricsRegistry] = None
    metrics_path: Optional[str] = None
    span_stride: int = 0
    faults: Optional[FaultSchedule] = None
    on_fail: str = "requeue"

    def __post_init__(self) -> None:
        if not self.speed > 0:
            raise ValueError(f"speed must be positive, got {self.speed}")
        if self.faults is not None and not isinstance(self.faults, FaultSchedule):
            raise ValueError(
                f"faults must be a FaultSchedule or None, got {type(self.faults).__name__}"
            )
        if self.on_fail not in ON_FAIL_MODES:
            raise ValueError(f"on_fail must be one of {ON_FAIL_MODES}, got {self.on_fail!r}")
        if self.max_slots < 1:
            raise ValueError(f"max_slots must be >= 1, got {self.max_slots}")
        if self.span_stride < 0:
            raise ValueError(f"span_stride must be >= 0, got {self.span_stride}")
        if self.retention not in RETENTION_MODES:
            raise ValueError(
                f"retention must be one of {RETENTION_MODES}, got {self.retention!r}"
            )
        if self.engine not in ENGINE_MODES:
            raise ValueError(
                f"engine must be one of {ENGINE_MODES}, got {self.engine!r}"
            )


# ---------------------------------------------------------------------- #
# arrival sources: pull the next arrival batch on demand
# ---------------------------------------------------------------------- #
class _BufferedArrivals:
    """Arrival source over a materialised packet list (retention="full").

    Reproduces the historical semantics exactly: packets may appear in any
    order, are bucketed by arrival slot up front, and are dispatched in input
    order within each slot.
    """

    def __init__(self, packets: Sequence[Packet]) -> None:
        self._by_slot: Dict[int, List[Packet]] = {}
        for packet in packets:
            self._by_slot.setdefault(packet.arrival, []).append(packet)
        self._slots = sorted(self._by_slot)
        self._next = 0

    @property
    def exhausted(self) -> bool:
        return self._next >= len(self._slots)

    def next_slot(self) -> Optional[int]:
        if self.exhausted:
            return None
        return self._slots[self._next]

    def pop(self, slot: int) -> List[Packet]:
        if self.next_slot() != slot:
            return []
        self._next += 1
        return self._by_slot.pop(slot)


class _StreamedArrivals:
    """Arrival source that pulls packets lazily from an iterator.

    Keeps a single packet of lookahead, so memory is O(1) in the stream
    length.  Validates, while pulling, that arrivals are non-decreasing and
    packet ids strictly increasing — the cheap streaming substitute for the
    global duplicate-id check of the materialised path — and that every
    packet is routable on the topology.
    """

    def __init__(self, packets: Iterable[Packet], topology: TwoTierTopology) -> None:
        self._iter: Iterator[Packet] = iter(packets)
        self._topology = topology
        self._lookahead: Optional[Packet] = None
        self._last_id = -1
        self._last_slot = 0
        self._advance()

    def _advance(self) -> None:
        packet = next(self._iter, None)
        if packet is not None:
            if packet.packet_id <= self._last_id:
                raise SimulationError(
                    f"streamed packet ids must be strictly increasing; got id "
                    f"{packet.packet_id} after id {self._last_id}"
                )
            if packet.arrival < self._last_slot:
                raise SimulationError(
                    f"streamed arrivals must be non-decreasing; packet "
                    f"{packet.packet_id} arrives at slot {packet.arrival} after "
                    f"slot {self._last_slot}"
                )
            if not self._topology.can_route(packet.source, packet.destination):
                raise SimulationError(
                    f"packet {packet.packet_id} ({packet.source}->{packet.destination}) "
                    "cannot be routed on this topology"
                )
            self._last_id = packet.packet_id
            self._last_slot = packet.arrival
        self._lookahead = packet

    @property
    def exhausted(self) -> bool:
        return self._lookahead is None

    def next_slot(self) -> Optional[int]:
        if self._lookahead is None:
            return None
        return self._lookahead.arrival

    def pop(self, slot: int) -> List[Packet]:
        batch: List[Packet] = []
        while self._lookahead is not None and self._lookahead.arrival == slot:
            batch.append(self._lookahead)
            self._advance()
        return batch


_ArrivalSource = Union[_BufferedArrivals, _StreamedArrivals]


class _SharedArrivalBuffer:
    """Fan-out wrapper over one arrival source for multi-policy runs.

    ``run_multi`` gives every policy its own :class:`_ArrivalView` cursor over
    this buffer, so each arrival batch is pulled from the underlying source
    (and, in aggregate mode, generated by the workload iterator) exactly once
    no matter how many policies consume it.  Batches are dropped as soon as
    every view has moved past them, so the window held in memory is bounded by
    how far the fastest lane runs ahead of the slowest one — not by the
    stream length.
    """

    def __init__(self, source: _ArrivalSource) -> None:
        self._source = source
        self._batches: List[Tuple[int, List[Packet]]] = []
        self._offset = 0  # absolute index of self._batches[0]

    def view(self) -> "_ArrivalView":
        """A new independent cursor starting at the first arrival batch."""
        return _ArrivalView(self)

    def batch_at(self, index: int) -> Optional[Tuple[int, List[Packet]]]:
        """The ``(slot, batch)`` pair at absolute position ``index``.

        Pulls further batches from the underlying source on demand; returns
        ``None`` once the source is exhausted before ``index``.
        """
        while self._offset + len(self._batches) <= index:
            slot = self._source.next_slot()
            if slot is None:
                return None
            self._batches.append((slot, self._source.pop(slot)))
        return self._batches[index - self._offset]

    def release_before(self, index: int) -> None:
        """Drop buffered batches below absolute position ``index``."""
        keep_from = index - self._offset
        if keep_from > 0:
            del self._batches[:keep_from]
            self._offset = index


class _ArrivalView:
    """One lane's cursor over a :class:`_SharedArrivalBuffer`.

    Implements the same ``exhausted`` / ``next_slot`` / ``pop`` protocol as
    the arrival sources, so a lane cannot tell whether it reads a private
    source or a shared buffer.
    """

    def __init__(self, buffer: _SharedArrivalBuffer) -> None:
        self._buffer = buffer
        self.position = 0

    @property
    def exhausted(self) -> bool:
        return self._buffer.batch_at(self.position) is None

    def next_slot(self) -> Optional[int]:
        item = self._buffer.batch_at(self.position)
        return None if item is None else item[0]

    def pop(self, slot: int) -> List[Packet]:
        item = self._buffer.batch_at(self.position)
        if item is None or item[0] != slot:
            return []
        self.position += 1
        return item[1]


_LaneArrivals = Union[_BufferedArrivals, _StreamedArrivals, _ArrivalView]


# ---------------------------------------------------------------------- #
# per-packet accounting: full records vs online aggregates
# ---------------------------------------------------------------------- #
class _FullRecorder:
    """Keeps the historical per-packet :class:`PacketRecord` map."""

    def __init__(self, result: SimulationResult) -> None:
        self._result = result
        self._undelivered: Dict[int, int] = {}
        self._dropped: set[int] = set()

    def on_dispatch(self, packet: Packet, assignment) -> None:
        if isinstance(assignment, FixedLinkAssignment):
            record = PacketRecord(
                packet=packet,
                assignment=assignment,
                completion_time=assignment.completion_time,
                weighted_latency=assignment.weighted_latency,
            )
        else:
            record = PacketRecord(packet=packet, assignment=assignment)
            self._undelivered[packet.packet_id] = len(assignment.chunks)
        self._result.records[packet.packet_id] = record

    def add_latency(self, packet: Packet, contribution: float) -> None:
        self._result.records[packet.packet_id].weighted_latency += contribution

    def on_chunk_completed(self, chunk: Chunk) -> None:
        pid = chunk.packet.packet_id
        self._undelivered[pid] -= 1
        if self._undelivered[pid] == 0 and pid not in self._dropped:
            record = self._result.records[pid]
            record.completion_time = max(
                (c.delivery_time or 0.0) for c in record.assignment.chunks
            )

    def on_chunk_dropped(self, chunk: Chunk) -> None:
        """A stranded chunk was abandoned (``on_fail="drop"``).

        The packet keeps its accrued fractional latency but its
        ``completion_time`` stays ``None`` forever — it is neither in flight
        nor delivered.
        """
        pid = chunk.packet.packet_id
        self._dropped.add(pid)
        self._undelivered[pid] -= 1

    def note_matchings(self, count: int, total: int, largest: int, nonempty: int) -> None:
        pass  # matching_sizes list is appended by the engine loop itself

    def in_flight_packets(self) -> int:
        """Packets dispatched to an edge but not yet fully delivered."""
        return sum(1 for remaining in self._undelivered.values() if remaining > 0)

    def dropped_packets(self) -> int:
        """Packets that lost at least one chunk to ``on_fail="drop"``."""
        return len(self._dropped)


class _AggregateRecorder:
    """Streams per-packet outcomes into an :class:`OnlineSummary`.

    Holds one small entry per *in-flight* packet and a buffer of
    completed-but-not-yet-finalised packets.  Final per-packet values are
    folded into the compensated totals in dispatch order — deferring
    out-of-order completions — so the totals are bit-identical to summing
    the full records in record order.
    """

    __slots__ = ("summary", "_active", "_finished", "_next_order", "_next_finalize", "_dropped")

    def __init__(self, summary: OnlineSummary) -> None:
        self.summary = summary
        # pid -> [dispatch order, undelivered chunks, weighted latency, max delivery]
        self._active: Dict[int, List[float]] = {}
        self._finished: Dict[int, Tuple[float, float]] = {}
        self._next_order = 0
        self._next_finalize = 0
        self._dropped: set[int] = set()

    def on_dispatch(self, packet: Packet, assignment) -> None:
        order = self._next_order
        self._next_order += 1
        self.summary.add_dispatch(assignment.impact, assignment.uses_fixed_link)
        if isinstance(assignment, FixedLinkAssignment):
            self.summary.count_delivered()
            self._finish(
                order,
                assignment.weighted_latency,
                assignment.completion_time - packet.arrival,
            )
        else:
            self._active[packet.packet_id] = [order, len(assignment.chunks), 0.0, 0.0]

    def add_latency(self, packet: Packet, contribution: float) -> None:
        self._active[packet.packet_id][2] += contribution

    def on_chunk_completed(self, chunk: Chunk) -> None:
        pid = chunk.packet.packet_id
        entry = self._active[pid]
        entry[1] -= 1
        if chunk.delivery_time > entry[3]:
            entry[3] = chunk.delivery_time
        if entry[1] == 0:
            del self._active[pid]
            self.summary.count_delivered()
            self._finish(int(entry[0]), entry[2], entry[3] - chunk.packet.arrival)

    def _finish(self, order: int, weighted_latency: float, completion: float) -> None:
        self._finished[order] = (weighted_latency, completion)
        while self._next_finalize in self._finished:
            latency, flow_time = self._finished.pop(self._next_finalize)
            self.summary.add_completion(latency, flow_time)
            self._next_finalize += 1

    def on_chunk_dropped(self, chunk: Chunk) -> None:
        """A stranded chunk was abandoned (``on_fail="drop"``).

        The packet is finalised with its accrued fractional latency — added
        to the compensated totals at its dispatch-order turn, exactly like
        the full-retention sum over records — but never counted delivered.
        The 0.0 flow-completion term is a bitwise no-op on the accumulator.
        """
        pid = chunk.packet.packet_id
        self._dropped.add(pid)
        entry = self._active[pid]
        entry[1] -= 1
        if entry[1] == 0:
            del self._active[pid]
            self._finish(int(entry[0]), entry[2], 0.0)

    def note_matchings(self, count: int, total: int, largest: int, nonempty: int) -> None:
        self.summary.add_matchings(count, total, largest, nonempty)

    def in_flight_packets(self) -> int:
        """Packets dispatched to an edge but not yet fully delivered."""
        return len(self._active)

    def dropped_packets(self) -> int:
        """Packets that lost at least one chunk to ``on_fail="drop"``."""
        return len(self._dropped)


_Recorder = Union[_FullRecorder, _AggregateRecorder]


class _LaneFaults:
    """One lane's fault runtime: schedule cursor, fabric state, held chunks.

    Every lane of a run owns an independent instance (fault state is part of
    lane state, like the pool), but all lanes apply the same schedule at the
    same slots, so fault state at any slot is identical across lanes — which
    is what keeps ``run_multi``'s shared-dispatch memo sound under faults.
    """

    __slots__ = (
        "events",
        "state",
        "view",
        "cursor",
        "held",
        "events_applied",
        "recoveries",
        "requeued",
        "dropped",
        "redispatched",
    )

    def __init__(self, schedule: FaultSchedule, topology: TwoTierTopology) -> None:
        self.events = schedule.events
        self.state = FabricState()
        self.view = FaultTopologyView(topology, self.state)
        self.cursor = 0
        #: Chunks evicted under ``on_fail="requeue"`` (or redispatch with no
        #: live candidate), in eviction order, awaiting a recovery event.
        self.held: List[Chunk] = []
        self.events_applied = 0
        self.recoveries = 0
        self.requeued = 0
        self.dropped = 0
        self.redispatched = 0

    def next_event_slot(self) -> Optional[int]:
        """Slot of the next unapplied event, or ``None`` when exhausted."""
        if self.cursor >= len(self.events):
            return None
        return self.events[self.cursor].slot


class _PolicyLane:
    """One policy's complete simulation state, advanced one iteration at a time.

    A lane owns everything :meth:`SimulationEngine.run` used to keep as loop
    locals — the pending-chunk pool, the recorder, the result under
    construction and the slot cursor — so several lanes can share one engine
    (topology + config) and one arrival stream while remaining fully
    independent.  ``step()`` executes exactly one iteration of the historical
    run loop (dispatch this slot's arrivals, transmit one matching, then
    possibly jump over empty slots), so a lane driven to completion is
    bit-identical to the old single-policy loop.
    """

    __slots__ = (
        "engine",
        "policy",
        "arrivals",
        "recorder",
        "result",
        "writer",
        "pool",
        "backend",
        "slot",
        "_slots_simulated",
        "_aggregate",
        "_want_events",
        "_timings",
        "_obs_on",
        "_stride",
        "_spans",
        "_hist_matching",
        "_m_arrived",
        "_m_fixed",
        "_m_chunks_dispatched",
        "_m_chunks_matched",
        "_m_chunks_completed",
        "_m_skipped",
        "_m_peak_chunks",
        "_m_peak_work",
        "_faults",
        "_topology",
    )

    def __init__(
        self,
        engine: "SimulationEngine",
        policy: Policy,
        arrivals: _LaneArrivals,
        recorder: _Recorder,
        result: SimulationResult,
        writer: Optional[SlotTraceWriter],
    ) -> None:
        self.engine = engine
        self.policy = policy
        self.arrivals = arrivals
        self.recorder = recorder
        self.result = result
        self.writer = writer
        # "vectorized" keeps the indexed decision paths (impact + matching
        # index) and only swaps the transmission step for the numpy batch.
        indexed = engine.config.engine in ("indexed", "vectorized")
        self.pool = PendingChunkPool(
            impact_index=indexed,
            # Only schedulers that read the incremental matching index get a
            # pool that maintains one; other lanes (FIFO, iSLIP, …) would pay
            # the repair bookkeeping without ever consulting it.
            matching_index=indexed
            and getattr(policy.scheduler, "uses_matching_index", False),
        )
        self.backend = (
            VectorTransmitBackend() if engine.config.engine == "vectorized" else None
        )
        # Fault runtime: an empty schedule is equivalent to no schedule, so
        # fault-free runs pay nothing (no per-step cursor check, dispatchers
        # and schedulers see the frozen topology directly).
        faults = engine.config.faults
        self._faults = (
            _LaneFaults(faults, engine.topology) if faults is not None and faults else None
        )
        self._topology = self._faults.view if self._faults is not None else engine.topology
        # Profiled policies (see repro.simulation.timed_policy) declare their
        # PhaseTimings on the Policy field; the engine times the transmit
        # phase for them.
        self._timings = policy.phase_timings
        self._slots_simulated = 0
        self._aggregate = engine.config.retention == "aggregate"
        self._want_events = engine.config.record_trace or writer is not None
        # Observability: plain-int lane counters folded into the engine's
        # registry by publish_metrics() at run end.  With the registry
        # disabled every hot-path instrumentation block sits behind the one
        # _obs_on boolean, so disabled runs allocate and record nothing.
        metrics = engine.metrics
        self._obs_on = metrics.enabled
        self._stride = engine.config.span_stride
        self._spans = SpanTimer() if (self._obs_on and self._stride > 0) else None
        self._hist_matching = (
            metrics.histogram(
                "engine_matching_size",
                buckets=_MATCHING_SIZE_BUCKETS,
                policy=policy.name,
            )
            if self._obs_on
            else None
        )
        self._m_arrived = 0
        self._m_fixed = 0
        self._m_chunks_dispatched = 0
        self._m_chunks_matched = 0
        self._m_chunks_completed = 0
        self._m_skipped = 0
        self._m_peak_chunks = 0
        self._m_peak_work = 0.0
        self.slot = arrivals.next_slot()
        if self.slot is not None:
            result.first_slot = self.slot

    @property
    def done(self) -> bool:
        """Whether the lane has dispatched and delivered everything."""
        if not self.arrivals.exhausted or len(self.pool) != 0:
            return False
        return self._faults is None or not self._faults.held

    def _budget_check(self) -> None:
        if self._slots_simulated > self.engine.config.max_slots:
            raise SimulationError(
                f"simulation exceeded max_slots={self.engine.config.max_slots} "
                f"(policy {self.policy.name!r}, arrivals exhausted: "
                f"{self.arrivals.exhausted}, {len(self.pool)} chunks "
                f"/ {self.pool.total_pending_work():.6g} chunk-units of work pending)"
            )

    def step(self) -> None:
        """Simulate one slot (plus any skipped empty gap) of this lane's run."""
        engine = self.engine
        config = engine.config
        slot = self.slot
        result = self.result
        pool = self.pool
        self._slots_simulated += 1
        self._budget_check()
        faults = self._faults
        if faults is not None:
            if faults.cursor < len(faults.events) and faults.events[faults.cursor].slot <= slot:
                self._apply_fault_events(slot)
            if (
                faults.held
                and self.arrivals.exhausted
                and len(pool) == 0
                and faults.cursor >= len(faults.events)
            ):
                raise SimulationError(
                    f"policy {self.policy.name!r}: {len(faults.held)} chunks stranded "
                    "on failed hardware with no recovery event scheduled"
                )
        slot_trace = SlotTrace(slot=slot) if self._want_events else None
        obs_on = self._obs_on
        spans = self._spans
        # Sample the phase spans of every _stride-th simulated slot.
        sampled = spans is not None and (self._slots_simulated - 1) % self._stride == 0
        phase_start = time.perf_counter() if sampled else 0.0

        # 1. Pull and dispatch this slot's arrival batch, in input order.
        for packet in self.arrivals.pop(slot):
            assignment = engine._dispatch_packet(
                self.policy,
                packet,
                pool,
                slot,
                self.recorder,
                slot_trace,
                self.backend,
                self._topology,
            )
            if obs_on:
                self._m_arrived += 1
                if assignment.uses_fixed_link:
                    self._m_fixed += 1
                else:
                    self._m_chunks_dispatched += len(assignment.chunks)
        if obs_on:
            occupancy = len(pool)
            if occupancy > self._m_peak_chunks:
                self._m_peak_chunks = occupancy
            pending_work = pool.total_pending_work()
            if pending_work > self._m_peak_work:
                self._m_peak_work = pending_work
        if sampled:
            now = time.perf_counter()
            spans.add("dispatch", now - phase_start)
            phase_start = now

        # 2. Ask the scheduler for this slot's matching and transmit it.
        matching = self.policy.scheduler.select_matching(pool, self._topology, slot)
        if sampled:
            spans.add("scheduler", time.perf_counter() - phase_start)
        if config.validate_matchings:
            engine._validate_matching(matching, pool, slot)
        size = len(matching)
        if self._aggregate:
            self.recorder.note_matchings(1, size, size, 1 if size else 0)
        else:
            result.matching_sizes.append(size)
        if slot_trace is not None:
            slot_trace.matching = [chunk.edge for chunk in matching]
        if obs_on:
            self._m_chunks_matched += size
            self._hist_matching.observe(size)
            chunks_before = len(pool)

        timings = self._timings
        time_transmit = timings is not None or sampled
        transmit_start = time.perf_counter() if time_transmit else 0.0
        degraded = faults is not None and faults.state.any_degraded
        if self.backend is not None:
            speeds: Optional[List[float]] = None
            if degraded:
                rates = faults.state.degraded
                speed = config.speed
                speeds = [
                    speed if chunk.edge not in rates else speed * rates[chunk.edge]
                    for chunk in matching
                ]
            self.backend.transmit_slot(
                matching, pool, slot, config.speed, self.recorder, slot_trace, speeds
            )
        elif degraded:
            rates = faults.state.degraded
            speed = config.speed
            for chunk in matching:
                rate = rates.get(chunk.edge)
                engine._transmit_on_edge(
                    chunk,
                    pool,
                    slot,
                    self.recorder,
                    slot_trace,
                    budget=speed if rate is None else speed * rate,
                )
        else:
            for chunk in matching:
                engine._transmit_on_edge(chunk, pool, slot, self.recorder, slot_trace)
        if time_transmit:
            elapsed = time.perf_counter() - transmit_start
            if timings is not None:
                timings.spans.add("transmit", elapsed)
            if sampled:
                spans.add("transmit", elapsed)
        if obs_on:
            self._m_chunks_completed += chunks_before - len(pool)

        if slot_trace is not None:
            if config.record_trace:
                result.trace.slots.append(slot_trace)
            if self.writer is not None:
                self.writer.write(slot_trace)
        result.last_slot = slot
        slot += 1

        # 3. Fast path: when no slot before the next arrival (or the next
        #    chunk activation) can transmit anything, jump straight to it.
        #    Two cases: an empty pool waits for the next arrival, and a pool
        #    whose chunks all sit in future activation buckets additionally
        #    waits for the earliest activation time.
        next_arrival = self.arrivals.next_slot()
        target: Optional[int] = None
        if config.slot_skipping:
            if len(pool) == 0:
                target = next_arrival
                if target is None and faults is not None and faults.held:
                    # Everything pending sits in the held list: nothing can
                    # happen before the next fault event (a recovery, if one
                    # is scheduled, re-admits the held chunks).
                    target = faults.next_event_slot()
            elif not pool.has_eligible(slot):
                next_activation = pool.next_activation_time()
                if next_arrival is None:
                    target = next_activation
                elif next_activation is not None:
                    target = min(next_arrival, next_activation)
        if faults is not None and target is not None:
            # Never skip over a fault event: eviction and candidate masking
            # must take effect at exactly the scheduled slot.
            next_event = faults.next_event_slot()
            if next_event is not None and next_event < target:
                target = next_event
        if target is not None and target > slot:
            skipped = target - slot
            self._slots_simulated += skipped
            if obs_on:
                self._m_skipped += skipped
            self._budget_check()
            # Keep the per-slot aggregates (and, when tracing, the empty
            # slot traces) identical to the slot-by-slot walk.
            if self._aggregate:
                self.recorder.note_matchings(skipped, 0, 0, 0)
            else:
                result.matching_sizes.extend([0] * skipped)
            if self._want_events:
                for empty in range(slot, target):
                    empty_trace = SlotTrace(slot=empty)
                    if config.record_trace:
                        result.trace.slots.append(empty_trace)
                    if self.writer is not None:
                        self.writer.write(empty_trace)
            result.last_slot = target - 1
            slot = target
        self.slot = slot

    # ------------------------------------------------------------------ #
    # fault handling (cold path: runs only at scheduled event slots)
    # ------------------------------------------------------------------ #
    def _apply_fault_events(self, slot: int) -> None:
        """Apply every fault event due at or before ``slot``, in schedule order.

        Each event updates the fabric state first, then its structural
        consequence runs immediately: fails evict the target's stranded
        chunks (in the pool's deterministic priority order), recoveries
        re-scan the held list in eviction order.  Same-slot sequences
        therefore apply exactly as written.
        """
        faults = self._faults
        events = faults.events
        topology = self.engine.topology
        while faults.cursor < len(events) and events[faults.cursor].slot <= slot:
            event = events[faults.cursor]
            faults.cursor += 1
            faults.state.apply(event, topology)
            faults.events_applied += 1
            if event.action == "fail":
                self._evict_stranded(event, slot)
            elif event.action == "recover":
                faults.recoveries += 1
                self._readmit_held()

    def _evict_stranded(self, event: FaultEvent, slot: int) -> None:
        """Remove every pending chunk stranded by ``event`` from the pool."""
        pool = self.pool
        if event.kind == "laser":
            stranded = pool.chunks_at_transmitter(event.target)
        elif event.kind == "photodetector":
            stranded = pool.chunks_at_receiver(event.target)
        else:
            stranded = pool.chunks_on_edge(*event.target)
        if not stranded:
            return
        faults = self._faults
        for chunk in stranded:
            pool.remove(chunk)
        if self.backend is not None:
            self.backend.remove_chunks(stranded)
        on_fail = self.engine.config.on_fail
        if on_fail == "requeue":
            faults.held.extend(stranded)
            faults.requeued += len(stranded)
        elif on_fail == "drop":
            for chunk in stranded:
                self.recorder.on_chunk_dropped(chunk)
            faults.dropped += len(stranded)
        else:  # redispatch
            self._redispatch(stranded, slot)

    def _redispatch(self, stranded: List[Chunk], slot: int) -> None:
        """Move evicted chunks to the live candidate edge of minimum delay.

        The chunk keeps its original split granularity (size and weight from
        the edge it was dispatched to) and partial ``remaining_work``, but
        re-pays the new transmitter's head delay from the current slot.
        Chunks with no live candidate fall back to the held list.
        """
        faults = self._faults
        pool = self.pool
        backend = self.backend
        topology = self.engine.topology
        for chunk in stranded:
            packet = chunk.packet
            candidates = faults.view.candidate_edges(packet.source, packet.destination)
            if not candidates:
                faults.held.append(chunk)
                faults.requeued += 1
                continue
            edge = min(candidates, key=lambda e: (topology.edge_delay(*e), e))
            chunk.transmitter, chunk.receiver = edge
            chunk.tail_delay = topology.tail_delay(edge[1])
            chunk.eligible_time = slot + topology.head_delay(edge[0])
            pool.add(chunk)
            if backend is not None:
                backend.add_chunks((chunk,))
            faults.redispatched += 1

    def _readmit_held(self) -> None:
        """Re-admit held chunks whose hardware recovered, in eviction order.

        Re-admitted chunks keep their original ``eligible_time`` (no head
        delay is re-paid: the chunk already traversed the source→laser hop)
        and partial ``remaining_work``.
        """
        faults = self._faults
        if not faults.held:
            return
        state = faults.state
        pool = self.pool
        backend = self.backend
        still_held: List[Chunk] = []
        for chunk in faults.held:
            if state.edge_alive(chunk.transmitter, chunk.receiver):
                pool.add(chunk)
                if backend is not None:
                    backend.add_chunks((chunk,))
            else:
                still_held.append(chunk)
        faults.held[:] = still_held

    def publish_metrics(self, label: Optional[str] = None) -> None:
        """Fold this lane's counters into the engine's metrics registry.

        Called once at run end (cold path): lane-local plain ints, subsystem
        counters and sampled span totals become labeled registry series.
        ``label`` overrides the series' ``policy`` label — ``run_multi``
        passes its display names so two lanes wrapping the same underlying
        policy (same ``policy.name``) keep distinct series.
        """
        metrics = self.engine.metrics
        if not metrics.enabled:
            return
        name = self.policy.name if label is None else label
        metrics.counter("engine_packets_arrived", policy=name).inc(self._m_arrived)
        metrics.counter("engine_packets_fixed_link", policy=name).inc(self._m_fixed)
        metrics.counter("engine_packets_delivered", policy=name).inc(
            self._m_arrived
            - self.recorder.in_flight_packets()
            - self.recorder.dropped_packets()
        )
        metrics.counter("engine_chunks_dispatched", policy=name).inc(
            self._m_chunks_dispatched
        )
        metrics.counter("engine_chunks_matched", policy=name).inc(self._m_chunks_matched)
        metrics.counter("engine_chunks_completed", policy=name).inc(
            self._m_chunks_completed
        )
        metrics.counter("engine_slots_simulated", policy=name).inc(self._slots_simulated)
        metrics.counter("engine_slots_skipped", policy=name).inc(self._m_skipped)
        metrics.gauge("engine_pool_peak_chunks", policy=name).set_max(
            self._m_peak_chunks
        )
        metrics.gauge("engine_pool_peak_pending_work", policy=name).set_max(
            self._m_peak_work
        )
        if self._spans is not None:
            for phase in sorted(self._spans.totals):
                metrics.gauge("engine_phase_seconds", phase=phase, policy=name).set(
                    self._spans.total(phase)
                )
            metrics.counter("engine_span_sampled_slots", policy=name).inc(
                self._spans.counts.get("scheduler", 0)
            )
        impact_index = self.pool.impact_index
        if impact_index is not None:
            metrics.counter("impact_index_consolidations", policy=name).inc(
                impact_index.consolidations
            )
        matching_index = self.pool.matching_index
        if matching_index is not None:
            index_stats = matching_index.stats()
            metrics.counter("matching_index_tasks", policy=name).inc(
                index_stats["tasks"]
            )
            metrics.counter("matching_index_evictions", policy=name).inc(
                index_stats["evictions"]
            )
        if self.backend is not None:
            backend_stats = self.backend.stats()
            metrics.counter("vector_fast_path_slots", policy=name).inc(
                backend_stats["fast_slots"]
            )
            metrics.counter("vector_fallback_slots", policy=name).inc(
                backend_stats["spill_slots"]
            )
            metrics.counter("vector_scalar_slots", policy=name).inc(
                backend_stats["scalar_slots"]
            )
        faults = self._faults
        if faults is not None:
            metrics.counter("engine_fault_events", policy=name).inc(faults.events_applied)
            metrics.counter("engine_fault_recoveries", policy=name).inc(faults.recoveries)
            metrics.counter("engine_chunks_requeued", policy=name).inc(faults.requeued)
            metrics.counter("engine_chunks_dropped", policy=name).inc(faults.dropped)
            metrics.counter("engine_chunks_redispatched", policy=name).inc(
                faults.redispatched
            )
            metrics.counter("engine_packets_dropped", policy=name).inc(
                self.recorder.dropped_packets()
            )


class SimulationEngine:
    """Runs one or several :class:`~repro.core.interfaces.Policy` objects on a packet sequence."""

    def __init__(
        self,
        topology: TwoTierTopology,
        policy: Optional[Policy] = None,
        config: Optional[EngineConfig] = None,
        *,
        speed: Optional[float] = None,
        record_trace: Optional[bool] = None,
        max_slots: Optional[int] = None,
        retention: Optional[str] = None,
        engine: Optional[str] = None,
    ) -> None:
        """Create an engine for ``policy`` on ``topology``.

        ``policy`` may be ``None`` for an engine used exclusively through
        :meth:`run_multi` (which takes its policies per call).  ``speed``,
        ``record_trace``, ``max_slots``, ``retention`` and ``engine`` are
        keyword shortcuts that override the corresponding
        :class:`EngineConfig` fields.
        """
        topology.freeze()
        self.topology = topology
        self.policy = policy
        base = config or EngineConfig()
        self.config = EngineConfig(
            speed=base.speed if speed is None else speed,
            max_slots=base.max_slots if max_slots is None else max_slots,
            record_trace=base.record_trace if record_trace is None else record_trace,
            validate_matchings=base.validate_matchings,
            slot_skipping=base.slot_skipping,
            retention=base.retention if retention is None else retention,
            trace_path=base.trace_path,
            engine=base.engine if engine is None else engine,
            share_dispatch=base.share_dispatch,
            validate_shared_dispatch=base.validate_shared_dispatch,
            obs=base.obs,
            metrics_path=base.metrics_path,
            span_stride=base.span_stride,
            faults=base.faults,
            on_fail=base.on_fail,
        )
        #: The metrics registry every lane of this engine records into: the
        #: configured one, a private one when only ``metrics_path`` is set,
        #: or the shared no-op singleton when observability is off.
        if self.config.obs is not None:
            self.metrics: MetricsRegistry = self.config.obs
        elif self.config.metrics_path is not None:
            self.metrics = MetricsRegistry()
        else:
            self.metrics = NULL_REGISTRY
        #: Hit/miss statistics of the last :meth:`run_multi` shared-dispatch
        #: groups (one dict per group), for benchmarks and diagnostics.
        self.last_shared_dispatch_stats: List[Dict[str, int]] = []

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self, packets: Iterable[Packet]) -> SimulationResult:
        """Simulate the online arrival and transmission of ``packets``.

        ``packets`` may be any iterable; with ``retention="aggregate"`` it is
        consumed lazily (one arrival batch pulled per slot) and never
        materialised.  Returns a
        :class:`~repro.simulation.results.SimulationResult`; raises
        :class:`~repro.exceptions.SimulationError` if the configured slot
        budget is exhausted before every packet is delivered.
        """
        if self.policy is None:
            raise SimulationError(
                "this engine was created without a policy; use run_multi() or "
                "pass a policy to the constructor"
            )
        source = self._make_source(packets)  # validates before any file is touched
        writer = self._make_writer(source)
        try:
            lane = self._make_lane(self.policy, source, writer)
            while not lane.done:
                lane.step()
        finally:
            if writer is not None:
                writer.close()
        lane.publish_metrics()
        self._write_metrics()
        return lane.result

    def run_multi(
        self,
        packets: Iterable[Packet],
        policies: Mapping[str, Policy],
    ) -> Dict[str, SimulationResult]:
        """Run several policies over one shared arrival stream, in a single pass.

        Every arrival batch is materialised (and, in aggregate mode, generated
        and validated) exactly **once** and fed to one independent simulation
        lane per policy, so a ``P``-policy evaluation costs one workload
        generation instead of ``P``.  Lanes share nothing but the (immutable)
        packets: each policy keeps its own pending-chunk pool, recorder and
        slot cursor, and the per-policy :class:`SimulationResult` (and its
        ``summary()``) is bit-identical to a separate :meth:`run` call with
        the same packets.

        ``policies`` maps display names to *distinct* policy objects (they
        are reset before the run, exactly as :meth:`run` does).  Results are
        returned keyed by the same names, in input order.  ``trace_path``
        would interleave the slot traces of different policies into one file
        and is therefore only allowed with a single policy.
        """
        policies = dict(policies)
        if not policies:
            raise SimulationError("run_multi requires at least one policy")
        if self.config.trace_path is not None and len(policies) > 1:
            raise SimulationError(
                "trace_path is only supported for single-policy runs; "
                "run policies separately to stream their slot traces"
            )
        components = [
            component
            for policy in policies.values()
            for component in (policy, policy.dispatcher, policy.scheduler)
        ]
        if len({id(component) for component in components}) != len(components):
            # Lanes are only independent because each policy carries its own
            # dispatcher/scheduler state; sharing any of the three objects
            # between names would let interleaved steps corrupt each other
            # silently.
            raise SimulationError(
                "run_multi requires a distinct policy object (with distinct "
                "dispatcher and scheduler) per name; a shared object was "
                "passed under several names"
            )
        source = self._make_source(packets)  # validates before any file is touched
        writer = self._make_writer(source)
        shared_dispatchers: List[Policy] = []
        self.last_shared_dispatch_stats = []
        try:
            buffer = _SharedArrivalBuffer(source)
            lanes = {
                name: self._make_lane(policy, buffer.view(), writer)
                for name, policy in policies.items()
            }
            memos = self._attach_shared_dispatch(list(policies.values()))
            shared_dispatchers = [policy for policy, _ in memos]
            # Round-robin one slot per lane per round: lanes stay roughly in
            # lockstep, so the shared buffer holds only the narrow window
            # between the fastest and the slowest lane.
            active = [lane for lane in lanes.values() if not lane.done]
            while active:
                for lane in active:
                    lane.step()
                active = [lane for lane in active if not lane.done]
                buffer.release_before(
                    min(lane.arrivals.position for lane in lanes.values())
                )
            self.last_shared_dispatch_stats = [
                memo.stats() for memo in {id(m): m for _, m in memos}.values()
            ]
        finally:
            if writer is not None:
                writer.close()
            for policy in shared_dispatchers:
                policy.dispatcher.shared_memo = None
        for name, lane in lanes.items():
            lane.publish_metrics(label=name)
        if self.metrics.enabled:
            for group, stats in enumerate(self.last_shared_dispatch_stats):
                self.metrics.counter("shared_dispatch_hits", group=group).inc(
                    stats["hits"]
                )
                self.metrics.counter("shared_dispatch_misses", group=group).inc(
                    stats["misses"]
                )
        self._write_metrics()
        return {name: lane.result for name, lane in lanes.items()}

    def _attach_shared_dispatch(self, policies: Sequence[Policy]):
        """Group impact-sharing lanes and wire one dispatch memo per group.

        Lanes whose dispatchers return the same non-``None``
        ``dispatch_sharing_key`` evaluate one arrival's candidate edges once
        per distinct pool state instead of once per lane (see
        :class:`~repro.core.dispatcher.SharedDispatchMemo`).  Returns the
        ``(policy, memo)`` pairs that were wired, so the caller can detach
        the memos when the run ends.
        """
        from repro.core.dispatcher import SharedDispatchMemo

        pairs: List[Tuple[Policy, SharedDispatchMemo]] = []
        if not self.config.share_dispatch or len(policies) < 2:
            return pairs
        groups: Dict[object, List[Policy]] = {}
        for policy in policies:
            key = policy.dispatcher.dispatch_sharing_key()
            if key is not None:
                groups.setdefault(key, []).append(policy)
        for group in groups.values():
            if len(group) < 2:
                continue
            memo = SharedDispatchMemo(
                len(group), validate=self.config.validate_shared_dispatch
            )
            for policy in group:
                policy.dispatcher.shared_memo = memo
                pairs.append((policy, memo))
        return pairs

    # ------------------------------------------------------------------ #
    # lane plumbing
    # ------------------------------------------------------------------ #
    def _make_source(self, packets: Iterable[Packet]) -> _ArrivalSource:
        """Build the arrival source mandated by the configured retention."""
        if self.config.retention == "aggregate":
            return _StreamedArrivals(packets, self.topology)
        return _BufferedArrivals(self._validate_packets(packets))

    def _make_writer(self, source: _ArrivalSource) -> Optional[SlotTraceWriter]:
        """Open the streamed-trace writer, but only when a run will happen.

        An empty arrival stream writes no trace file at all (the historical
        behaviour), and because the source is built — and the input
        validated — first, an invalid input never truncates an existing
        trace file either.
        """
        if self.config.trace_path is None or source.next_slot() is None:
            return None
        return SlotTraceWriter(self.config.trace_path)

    def _make_lane(
        self,
        policy: Policy,
        arrivals: _LaneArrivals,
        writer: Optional[SlotTraceWriter],
    ) -> _PolicyLane:
        """Create one policy's independent simulation lane."""
        aggregate = self.config.retention == "aggregate"
        result = SimulationResult(
            policy_name=policy.name,
            topology_name=self.topology.name,
            speed=self.config.speed,
            retention=self.config.retention,
            trace=SimulationTrace() if self.config.record_trace else None,
            aggregates=OnlineSummary() if aggregate else None,
        )
        recorder: _Recorder
        if aggregate:
            recorder = _AggregateRecorder(result.aggregates)
        else:
            recorder = _FullRecorder(result)
        policy.reset()
        return _PolicyLane(self, policy, arrivals, recorder, result, writer)

    def _write_metrics(self) -> None:
        """Write the registry snapshot to ``metrics_path`` (when configured)."""
        path = self.config.metrics_path
        if path is None or not self.metrics.enabled:
            return
        with MetricsWriter(path) as writer:
            writer.write(
                {"record": "metrics_snapshot", "snapshot": self.metrics.snapshot()}
            )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _validate_packets(self, packets: Iterable[Packet]) -> List[Packet]:
        packet_list = list(packets)
        seen_ids: set[int] = set()
        for packet in packet_list:
            if packet.packet_id in seen_ids:
                raise SimulationError(f"duplicate packet id {packet.packet_id}")
            seen_ids.add(packet.packet_id)
            if not self.topology.can_route(packet.source, packet.destination):
                raise SimulationError(
                    f"packet {packet.packet_id} ({packet.source}->{packet.destination}) "
                    "cannot be routed on this topology"
                )
        return packet_list

    def _dispatch_packet(
        self,
        policy: Policy,
        packet: Packet,
        pool: PendingChunkPool,
        slot: int,
        recorder: _Recorder,
        slot_trace: Optional[SlotTrace],
        backend: Optional[VectorTransmitBackend] = None,
        topology: Optional[object] = None,
    ):
        # Lanes with an active fault schedule pass their FaultTopologyView
        # here, so the dispatcher only ever sees live candidate edges (and a
        # dispatcher ignoring the mask is caught by the has_edge check).
        if topology is None:
            topology = self.topology
        assignment = policy.dispatcher.dispatch(packet, topology, pool, slot)
        if isinstance(assignment, EdgeAssignment):
            if not topology.has_edge(assignment.transmitter, assignment.receiver):
                raise SimulationError(
                    f"dispatcher assigned packet {packet.packet_id} to non-existent edge "
                    f"{assignment.edge}"
                )
            recorder.on_dispatch(packet, assignment)
            pool.add_all(assignment.chunks)
            if backend is not None:
                backend.add_chunks(assignment.chunks)
        elif isinstance(assignment, FixedLinkAssignment):
            recorder.on_dispatch(packet, assignment)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown assignment type {type(assignment).__name__}")
        if slot_trace is not None:
            slot_trace.arrivals.append(packet.packet_id)
            slot_trace.dispatches.append(
                DispatchEvent(
                    packet_id=packet.packet_id,
                    used_fixed_link=assignment.uses_fixed_link,
                    edge=None if assignment.uses_fixed_link else assignment.edge,
                    impact=assignment.impact,
                )
            )
        return assignment

    def _validate_matching(
        self, matching: Sequence[Chunk], pool: PendingChunkPool, slot: int
    ) -> None:
        used_t: set[str] = set()
        used_r: set[str] = set()
        for chunk in matching:
            if chunk not in pool:
                raise SchedulingError(
                    f"slot {slot}: scheduler selected chunk {chunk!r} that is not pending"
                )
            if chunk.eligible_time > slot:
                raise SchedulingError(
                    f"slot {slot}: scheduler selected chunk {chunk!r} before it is eligible"
                )
            if chunk.transmitter in used_t or chunk.receiver in used_r:
                raise SchedulingError(
                    f"slot {slot}: scheduler output is not a matching (conflict at {chunk.edge})"
                )
            used_t.add(chunk.transmitter)
            used_r.add(chunk.receiver)

    def _transmit_on_edge(
        self,
        head_chunk: Chunk,
        pool: PendingChunkPool,
        slot: int,
        recorder: _Recorder,
        slot_trace: Optional[SlotTrace],
        budget: Optional[float] = None,
    ) -> None:
        """Transmit up to ``budget`` (default ``speed``) chunk-units on ``head_chunk``'s edge."""
        if budget is None:
            budget = self.config.speed
        edge = head_chunk.edge
        queue = [head_chunk] + [
            c
            for c in pool.chunks_on_edge(*edge)
            if c is not head_chunk and c.eligible_time <= slot
        ]
        for chunk in queue:
            if budget <= _WORK_EPSILON:
                break
            amount = min(budget, chunk.remaining_work)
            if amount <= 0:
                continue
            budget -= amount
            chunk.remaining_work -= amount
            pool.debit_work(amount)
            completed = chunk.remaining_work <= _WORK_EPSILON
            if completed:
                chunk.remaining_work = 0.0
                chunk.completed_slot = slot
                chunk.delivery_time = slot + 1 + chunk.tail_delay
                pool.remove(chunk)

            packet = chunk.packet
            fraction = amount * chunk.size
            delivery_time = slot + 1 + chunk.tail_delay
            recorder.add_latency(
                packet, fraction * packet.weight * (delivery_time - packet.arrival)
            )
            if completed:
                recorder.on_chunk_completed(chunk)
            if slot_trace is not None:
                slot_trace.transmissions.append(
                    TransmissionEvent(
                        packet_id=packet.packet_id,
                        chunk_index=chunk.index,
                        edge=edge,
                        amount=amount,
                        completed=completed,
                    )
                )


def simulate(
    topology: TwoTierTopology,
    policy: Policy,
    packets: Iterable[Packet],
    speed: float = 1.0,
    record_trace: bool = False,
    max_slots: int = 1_000_000,
    retention: str = "full",
    trace_path: Optional[str] = None,
    engine: str = "indexed",
    obs: Optional[MetricsRegistry] = None,
    metrics_path: Optional[str] = None,
    span_stride: int = 0,
    faults: Optional[FaultSchedule] = None,
    on_fail: str = "requeue",
) -> SimulationResult:
    """One-call convenience wrapper around :class:`SimulationEngine`.

    Examples
    --------
    >>> from repro.core import OpportunisticLinkScheduler
    >>> from repro.network import figure1_topology
    >>> from repro.workloads import figure1_packets
    >>> res = simulate(figure1_topology(), OpportunisticLinkScheduler(), figure1_packets())
    >>> res.all_delivered
    True
    """
    runner = SimulationEngine(
        topology,
        policy,
        EngineConfig(
            speed=speed,
            record_trace=record_trace,
            max_slots=max_slots,
            retention=retention,
            trace_path=trace_path,
            engine=engine,
            obs=obs,
            metrics_path=metrics_path,
            span_stride=span_stride,
            faults=faults,
            on_fail=on_fail,
        ),
    )
    return runner.run(packets)


def simulate_multi(
    topology: TwoTierTopology,
    policies: Mapping[str, Policy],
    packets: Iterable[Packet],
    speed: float = 1.0,
    max_slots: int = 1_000_000,
    retention: str = "full",
    engine: str = "indexed",
    obs: Optional[MetricsRegistry] = None,
    metrics_path: Optional[str] = None,
    span_stride: int = 0,
    faults: Optional[FaultSchedule] = None,
    on_fail: str = "requeue",
) -> Dict[str, SimulationResult]:
    """One-call wrapper around :meth:`SimulationEngine.run_multi`.

    Runs every policy in ``policies`` over a single shared arrival stream —
    the workload iterable is consumed exactly once — and returns per-policy
    results (bit-identical to separate :func:`simulate` calls) keyed by the
    mapping's names.

    Examples
    --------
    >>> from repro.baselines import make_fifo_policy
    >>> from repro.core import OpportunisticLinkScheduler
    >>> from repro.network import figure1_topology
    >>> from repro.workloads import figure1_packets
    >>> results = simulate_multi(
    ...     figure1_topology(),
    ...     {"alg": OpportunisticLinkScheduler(), "fifo": make_fifo_policy()},
    ...     figure1_packets(),
    ... )
    >>> sorted(results)
    ['alg', 'fifo']
    >>> all(res.all_delivered for res in results.values())
    True
    """
    runner = SimulationEngine(
        topology,
        config=EngineConfig(
            speed=speed,
            max_slots=max_slots,
            retention=retention,
            engine=engine,
            obs=obs,
            metrics_path=metrics_path,
            span_stride=span_stride,
            faults=faults,
            on_fail=on_fail,
        ),
    )
    return runner.run_multi(packets, policies)
