"""Time-slotted simulation engine for two-tier reconfigurable networks.

The engine implements the execution model of Section II:

* time advances in integer transmission slots ``τ = 1, 2, …``;
* packets arriving at slot ``τ`` are handed to the policy's dispatcher one by
  one (in input order), which commits each to the fixed link or to one
  reconfigurable edge (splitting it into chunks);
* at each slot the policy's scheduler selects a set of pending chunks whose
  edges form a matching; the engine transmits them, honouring the configured
  speed augmentation (``speed`` chunk-units of work per matched edge per
  slot), and accounts weighted *fractional* latency exactly as defined in the
  paper: a fraction ``x`` of packet ``p`` delivered during slot ``τ`` over
  edge ``(t, r)`` contributes ``x · w_p · (τ + 1 + d(r,dest) − a_p)``;
* packets assigned to a fixed source→destination link complete at
  ``a_p + d_l(p)`` with weighted latency ``w_p · d_l(p)`` (the fixed network
  is contention-free in the paper's cost model).

The engine is policy-agnostic: the paper's algorithm and every baseline run
through the same code path, which keeps comparisons fair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.interfaces import Policy
from repro.core.packet import Chunk, EdgeAssignment, FixedLinkAssignment, Packet
from repro.core.queues import PendingChunkPool
from repro.exceptions import SchedulingError, SimulationError
from repro.network.topology import TwoTierTopology
from repro.simulation.results import PacketRecord, SimulationResult
from repro.simulation.trace import (
    DispatchEvent,
    SimulationTrace,
    SlotTrace,
    TransmissionEvent,
)

__all__ = ["EngineConfig", "SimulationEngine", "simulate"]

#: Numerical tolerance used to snap remaining chunk work to zero.
_WORK_EPSILON = 1e-9


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of a :class:`SimulationEngine`.

    Attributes
    ----------
    speed:
        Speed augmentation factor (>= any positive value; 1.0 means no
        augmentation).  Each matched edge can transmit ``speed`` chunk-units
        of work per slot.
    max_slots:
        Safety bound on the number of simulated slots; exceeding it raises
        :class:`~repro.exceptions.SimulationError` (it indicates a policy
        that never drains its queues).
    record_trace:
        Whether to record a full per-slot event trace.
    validate_matchings:
        Whether to check that the scheduler's output is a valid matching of
        eligible pending chunks each slot (cheap; enabled by default).
    slot_skipping:
        Whether to jump directly to the next arrival slot when no chunk is
        pending instead of simulating every empty slot (the sparse-arrival
        fast path; enabled by default).  Skipped slots still count toward
        ``max_slots`` and still contribute zero-size entries to
        ``matching_sizes`` (and empty slot traces when ``record_trace`` is
        on), so results are identical to the slot-by-slot walk for any
        scheduler that selects nothing — and mutates nothing — when the pool
        is empty, which holds for every scheduler in this repository.
    """

    speed: float = 1.0
    max_slots: int = 1_000_000
    record_trace: bool = False
    validate_matchings: bool = True
    slot_skipping: bool = True

    def __post_init__(self) -> None:
        if not self.speed > 0:
            raise ValueError(f"speed must be positive, got {self.speed}")
        if self.max_slots < 1:
            raise ValueError(f"max_slots must be >= 1, got {self.max_slots}")


class SimulationEngine:
    """Runs a :class:`~repro.core.interfaces.Policy` on a packet sequence."""

    def __init__(
        self,
        topology: TwoTierTopology,
        policy: Policy,
        config: Optional[EngineConfig] = None,
        *,
        speed: Optional[float] = None,
        record_trace: Optional[bool] = None,
        max_slots: Optional[int] = None,
    ) -> None:
        """Create an engine for ``policy`` on ``topology``.

        ``speed``, ``record_trace`` and ``max_slots`` are keyword shortcuts
        that override the corresponding :class:`EngineConfig` fields.
        """
        topology.freeze()
        self.topology = topology
        self.policy = policy
        base = config or EngineConfig()
        self.config = EngineConfig(
            speed=base.speed if speed is None else speed,
            max_slots=base.max_slots if max_slots is None else max_slots,
            record_trace=base.record_trace if record_trace is None else record_trace,
            validate_matchings=base.validate_matchings,
            slot_skipping=base.slot_skipping,
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def run(self, packets: Iterable[Packet]) -> SimulationResult:
        """Simulate the online arrival and transmission of ``packets``.

        Returns a :class:`~repro.simulation.results.SimulationResult`; raises
        :class:`~repro.exceptions.SimulationError` if the configured slot
        budget is exhausted before every packet is delivered.
        """
        packet_list = self._validate_packets(packets)
        self.policy.reset()

        result = SimulationResult(
            policy_name=self.policy.name,
            topology_name=self.topology.name,
            speed=self.config.speed,
            trace=SimulationTrace() if self.config.record_trace else None,
        )
        if not packet_list:
            return result

        arrivals_by_slot: Dict[int, List[Packet]] = {}
        for packet in packet_list:
            arrivals_by_slot.setdefault(packet.arrival, []).append(packet)
        arrival_slots = sorted(arrivals_by_slot)

        pool = PendingChunkPool()
        undelivered_chunks: Dict[int, int] = {}
        remaining_arrivals = len(packet_list)
        next_arrival = 0  # index of the next undispatched slot in arrival_slots

        slot = arrival_slots[0]
        result.first_slot = slot
        slots_simulated = 0

        while remaining_arrivals > 0 or not pool.is_empty():
            slots_simulated += 1
            if slots_simulated > self.config.max_slots:
                raise SimulationError(
                    f"simulation exceeded max_slots={self.config.max_slots} "
                    f"({remaining_arrivals} arrivals pending, {len(pool)} chunks pending)"
                )
            slot_trace = SlotTrace(slot=slot) if self.config.record_trace else None

            # 1. Release and dispatch this slot's arrivals, in input order.
            if next_arrival < len(arrival_slots) and arrival_slots[next_arrival] == slot:
                next_arrival += 1
                for packet in arrivals_by_slot[slot]:
                    remaining_arrivals -= 1
                    self._dispatch_packet(
                        packet, pool, slot, result, undelivered_chunks, slot_trace
                    )

            # 2. Ask the scheduler for this slot's matching and transmit it.
            matching = self.policy.scheduler.select_matching(pool, self.topology, slot)
            if self.config.validate_matchings:
                self._validate_matching(matching, pool, slot)
            result.matching_sizes.append(len(matching))
            if slot_trace is not None:
                slot_trace.matching = [chunk.edge for chunk in matching]

            for chunk in matching:
                self._transmit_on_edge(chunk, pool, slot, result, undelivered_chunks, slot_trace)

            if slot_trace is not None:
                result.trace.slots.append(slot_trace)
            result.last_slot = slot
            slot += 1

            # 3. Fast path: with no pending chunks, no slot can transmit
            #    anything until the next arrival — jump straight to it.
            if (
                self.config.slot_skipping
                and remaining_arrivals > 0
                and pool.is_empty()
                and arrival_slots[next_arrival] > slot
            ):
                target = arrival_slots[next_arrival]
                skipped = target - slot
                slots_simulated += skipped
                if slots_simulated > self.config.max_slots:
                    raise SimulationError(
                        f"simulation exceeded max_slots={self.config.max_slots} "
                        f"({remaining_arrivals} arrivals pending, {len(pool)} chunks pending)"
                    )
                # Keep the per-slot aggregates (and, when tracing, the empty
                # slot traces) identical to the slot-by-slot walk.
                result.matching_sizes.extend([0] * skipped)
                if self.config.record_trace:
                    result.trace.slots.extend(
                        SlotTrace(slot=empty) for empty in range(slot, target)
                    )
                result.last_slot = target - 1
                slot = target

        return result

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _validate_packets(self, packets: Iterable[Packet]) -> List[Packet]:
        packet_list = list(packets)
        seen_ids: set[int] = set()
        for packet in packet_list:
            if packet.packet_id in seen_ids:
                raise SimulationError(f"duplicate packet id {packet.packet_id}")
            seen_ids.add(packet.packet_id)
            if not self.topology.can_route(packet.source, packet.destination):
                raise SimulationError(
                    f"packet {packet.packet_id} ({packet.source}->{packet.destination}) "
                    "cannot be routed on this topology"
                )
        return packet_list

    def _dispatch_packet(
        self,
        packet: Packet,
        pool: PendingChunkPool,
        slot: int,
        result: SimulationResult,
        undelivered_chunks: Dict[int, int],
        slot_trace: Optional[SlotTrace],
    ) -> None:
        assignment = self.policy.dispatcher.dispatch(packet, self.topology, pool, slot)
        if isinstance(assignment, FixedLinkAssignment):
            record = PacketRecord(
                packet=packet,
                assignment=assignment,
                completion_time=assignment.completion_time,
                weighted_latency=assignment.weighted_latency,
            )
        elif isinstance(assignment, EdgeAssignment):
            if not self.topology.has_edge(assignment.transmitter, assignment.receiver):
                raise SimulationError(
                    f"dispatcher assigned packet {packet.packet_id} to non-existent edge "
                    f"{assignment.edge}"
                )
            record = PacketRecord(packet=packet, assignment=assignment)
            undelivered_chunks[packet.packet_id] = len(assignment.chunks)
            pool.add_all(assignment.chunks)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown assignment type {type(assignment).__name__}")
        result.records[packet.packet_id] = record
        if slot_trace is not None:
            slot_trace.arrivals.append(packet.packet_id)
            slot_trace.dispatches.append(
                DispatchEvent(
                    packet_id=packet.packet_id,
                    used_fixed_link=assignment.uses_fixed_link,
                    edge=None if assignment.uses_fixed_link else assignment.edge,
                    impact=assignment.impact,
                )
            )

    def _validate_matching(
        self, matching: Sequence[Chunk], pool: PendingChunkPool, slot: int
    ) -> None:
        used_t: set[str] = set()
        used_r: set[str] = set()
        for chunk in matching:
            if chunk not in pool:
                raise SchedulingError(
                    f"slot {slot}: scheduler selected chunk {chunk!r} that is not pending"
                )
            if chunk.eligible_time > slot:
                raise SchedulingError(
                    f"slot {slot}: scheduler selected chunk {chunk!r} before it is eligible"
                )
            if chunk.transmitter in used_t or chunk.receiver in used_r:
                raise SchedulingError(
                    f"slot {slot}: scheduler output is not a matching (conflict at {chunk.edge})"
                )
            used_t.add(chunk.transmitter)
            used_r.add(chunk.receiver)

    def _transmit_on_edge(
        self,
        head_chunk: Chunk,
        pool: PendingChunkPool,
        slot: int,
        result: SimulationResult,
        undelivered_chunks: Dict[int, int],
        slot_trace: Optional[SlotTrace],
    ) -> None:
        """Transmit up to ``speed`` chunk-units of work on ``head_chunk``'s edge."""
        budget = self.config.speed
        edge = head_chunk.edge
        queue = [head_chunk] + [
            c
            for c in pool.chunks_on_edge(*edge)
            if c is not head_chunk and c.eligible_time <= slot
        ]
        for chunk in queue:
            if budget <= _WORK_EPSILON:
                break
            amount = min(budget, chunk.remaining_work)
            if amount <= 0:
                continue
            budget -= amount
            chunk.remaining_work -= amount
            completed = chunk.remaining_work <= _WORK_EPSILON
            if completed:
                chunk.remaining_work = 0.0
                chunk.completed_slot = slot
                chunk.delivery_time = slot + 1 + chunk.tail_delay
                pool.remove(chunk)

            packet = chunk.packet
            fraction = amount * chunk.size
            delivery_time = slot + 1 + chunk.tail_delay
            record = result.records[packet.packet_id]
            record.weighted_latency += fraction * packet.weight * (
                delivery_time - packet.arrival
            )
            if completed:
                undelivered_chunks[packet.packet_id] -= 1
                if undelivered_chunks[packet.packet_id] == 0:
                    record.completion_time = max(
                        (c.delivery_time or 0.0) for c in record.assignment.chunks
                    )
            if slot_trace is not None:
                slot_trace.transmissions.append(
                    TransmissionEvent(
                        packet_id=packet.packet_id,
                        chunk_index=chunk.index,
                        edge=edge,
                        amount=amount,
                        completed=completed,
                    )
                )


def simulate(
    topology: TwoTierTopology,
    policy: Policy,
    packets: Iterable[Packet],
    speed: float = 1.0,
    record_trace: bool = False,
    max_slots: int = 1_000_000,
) -> SimulationResult:
    """One-call convenience wrapper around :class:`SimulationEngine`.

    Examples
    --------
    >>> from repro.core import OpportunisticLinkScheduler
    >>> from repro.network import figure1_topology
    >>> from repro.workloads import figure1_packets
    >>> res = simulate(figure1_topology(), OpportunisticLinkScheduler(), figure1_packets())
    >>> res.all_delivered
    True
    """
    engine = SimulationEngine(
        topology,
        policy,
        EngineConfig(speed=speed, record_trace=record_trace, max_slots=max_slots),
    )
    return engine.run(packets)
