"""Metrics computed from simulation results.

Besides the paper's objective (total weighted fractional latency) the module
provides the flow-completion-time statistics customarily reported for
datacenter schedulers (mean / median / tail percentiles), throughput-style
aggregates (matching occupancy), and cross-checking helpers used by the test
suite to validate the engine's latency accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.simulation.accumulators import CompensatedSum, compensated_total
from repro.simulation.results import SimulationResult

__all__ = [
    "LatencyStatistics",
    "latency_statistics",
    "completion_time_statistics",
    "matching_occupancy",
    "recompute_weighted_latency",
    "per_source_latency",
    "compare_policies",
]


@dataclass(frozen=True)
class LatencyStatistics:
    """Summary statistics of a per-packet latency distribution."""

    count: int
    total: float
    mean: float
    median: float
    p95: float
    p99: float
    maximum: float

    def as_dict(self) -> Dict[str, float]:
        """Return the statistics as a plain dictionary."""
        return {
            "count": float(self.count),
            "total": self.total,
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def _stats(values: Sequence[float]) -> LatencyStatistics:
    if not values:
        return LatencyStatistics(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    arr = np.asarray(values, dtype=float)
    # Summary totals use compensated summation so large-N aggregates do not
    # drift (regression-tested against math.fsum).
    total = compensated_total(values)
    return LatencyStatistics(
        count=int(arr.size),
        total=total,
        mean=total / arr.size,
        median=float(np.median(arr)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )


def latency_statistics(result: SimulationResult) -> LatencyStatistics:
    """Statistics of per-packet *weighted* latencies."""
    return _stats(result.weighted_latencies())


def completion_time_statistics(result: SimulationResult) -> LatencyStatistics:
    """Statistics of per-packet (unweighted) flow completion times."""
    return _stats(result.flow_completion_times())


def matching_occupancy(result: SimulationResult) -> Dict[str, float]:
    """Aggregate statistics of the per-slot matching sizes.

    Works in both retention modes: with ``retention="aggregate"`` the numbers
    come from the engine's online counters instead of the per-slot list.
    """
    if result.is_aggregate:
        agg = result.aggregates
        if agg is None or not agg.matching_slots:
            return {"mean": 0.0, "max": 0.0, "nonempty_fraction": 0.0}
        return {
            "mean": agg.matching_total / agg.matching_slots,
            "max": float(agg.matching_max),
            "nonempty_fraction": agg.matching_nonempty / agg.matching_slots,
        }
    sizes = result.matching_sizes
    if not sizes:
        return {"mean": 0.0, "max": 0.0, "nonempty_fraction": 0.0}
    arr = np.asarray(sizes, dtype=float)
    return {
        "mean": float(arr.mean()),
        "max": float(arr.max()),
        "nonempty_fraction": float((arr > 0).mean()),
    }


def recompute_weighted_latency(result: SimulationResult) -> float:
    """Recompute the objective from chunk delivery times and fixed-link delays.

    For runs in which every chunk finishes within a single slot (integral
    transmissions — always the case at speed 1 and at integer speeds), this
    equals :attr:`SimulationResult.total_weighted_latency` exactly; the test
    suite uses the equality as an accounting invariant.  With fractional
    transmissions spread over several slots this is an upper bound (it charges
    the whole chunk at its final delivery time).
    """
    total = CompensatedSum()
    for record in result:
        if record.used_fixed_link:
            total.add(record.assignment.weighted_latency)
            continue
        for chunk in record.chunks:
            if chunk.delivery_time is None:
                raise ValueError(
                    f"chunk {chunk!r} has no delivery time; run did not complete"
                )
            total.add(chunk.weight * (chunk.delivery_time - record.packet.arrival))
    return total.value


def per_source_latency(result: SimulationResult) -> Dict[str, float]:
    """Total weighted latency grouped by packet source."""
    totals: Dict[str, float] = {}
    for record in result:
        totals[record.packet.source] = (
            totals.get(record.packet.source, 0.0) + record.weighted_latency
        )
    return totals


def compare_policies(results: Sequence[SimulationResult]) -> List[Dict[str, float]]:
    """Tabulate the headline metrics of several runs of the *same* instance.

    Returns one dictionary per result with the policy name, objective value
    and the ratio to the best (smallest) objective among the inputs.
    """
    if not results:
        return []
    best = min(r.total_weighted_latency for r in results)
    rows: List[Dict[str, float]] = []
    for r in results:
        obj = r.total_weighted_latency
        rows.append(
            {
                "policy": r.policy_name,
                "total_weighted_latency": obj,
                "ratio_to_best": obj / best if best > 0 else float("nan"),
                "num_slots": float(r.num_slots),
                "fixed_link_fraction": r.fixed_link_fraction,
            }
        )
    return rows
