"""Time-slotted simulation of two-tier reconfigurable datacenter fabrics."""

from repro.simulation.accumulators import CompensatedSum, OnlineSummary, compensated_total
from repro.simulation.engine import ENGINE_MODES, EngineConfig, SimulationEngine, simulate, simulate_multi
from repro.simulation.profiling import PhaseTimings, timed_policy
from repro.simulation.vector_backend import VectorTransmitBackend
from repro.simulation.metrics import (
    LatencyStatistics,
    compare_policies,
    completion_time_statistics,
    latency_statistics,
    matching_occupancy,
    per_source_latency,
    recompute_weighted_latency,
)
from repro.simulation.results import PacketRecord, SimulationResult
from repro.simulation.trace import (
    DispatchEvent,
    SimulationTrace,
    SlotTrace,
    SlotTraceWriter,
    TransmissionEvent,
    iter_slot_traces,
    read_simulation_trace,
)

__all__ = [
    "ENGINE_MODES",
    "EngineConfig",
    "SimulationEngine",
    "simulate",
    "simulate_multi",
    "PhaseTimings",
    "timed_policy",
    "VectorTransmitBackend",
    "SimulationResult",
    "PacketRecord",
    "CompensatedSum",
    "OnlineSummary",
    "compensated_total",
    "SimulationTrace",
    "SlotTrace",
    "DispatchEvent",
    "TransmissionEvent",
    "SlotTraceWriter",
    "iter_slot_traces",
    "read_simulation_trace",
    "LatencyStatistics",
    "latency_statistics",
    "completion_time_statistics",
    "matching_occupancy",
    "recompute_weighted_latency",
    "per_source_latency",
    "compare_policies",
]
