"""Numpy-batched transmission backend (``engine="vectorized"``).

The reference transmission step (:meth:`SimulationEngine._transmit_on_edge`)
walks every matched edge's full priority queue to build a ``[head] +
eligible others`` snapshot, even though at speed ``s ≈ 1`` the head chunk
almost always absorbs the whole budget — an O(queue length) list build per
matched edge per slot that dominates dense, deep-pool cells.  This backend
instead keeps every in-flight chunk's state in parallel numpy arrays and
applies a slot's matching as one masked scatter-subtract:

* **array layout** — each dispatched chunk owns a row across five parallel
  arrays: ``remaining`` (chunk-units of work left), ``size`` (the ``1/d(e)``
  packet fraction per unit of work), ``pweight`` (packet weight),
  ``arrival`` (packet arrival slot) and ``tail`` (receiver-tier delay
  ``d(r, dest)``).  A dict maps chunks to rows; completed rows return to a
  free list, so the arrays stay as dense as the in-flight population.
* **fast path** — when every matched head chunk absorbs the full budget
  (``speed - min(speed, remaining) <= ε``, the overwhelmingly common case),
  the slot is a pure gather/scatter on the head rows: no edge queue is ever
  touched.
* **spill path** — any leftover budget falls back to a faithful per-edge
  walk over the pool's zero-copy :meth:`~repro.core.queues.PendingChunkPool.
  edge_queue` view, consuming chunks head-first in priority order exactly
  like the reference loop, before the batched apply.

**Exact-arithmetic invariant.**  Summaries must stay bit-identical to the
reference loop, so the batched math replays the reference expressions with
the same IEEE-754 association order — ``new_remaining = remaining - amount``
and ``contribution = (amount · size) · weight · (delivery − arrival)`` — and
numpy float64 elementwise operations are bit-identical to the equivalent
Python scalar operations.  Per-packet accumulation order matters too, so
recorder callbacks, pool debits and trace events are replayed scalar-side in
the exact global transmission order (matching order, head before spill).

Batches smaller than :data:`_VECTOR_MIN_BATCH` skip numpy entirely and run a
scalar loop over the same state (fixed per-call numpy overhead outweighs the
win on tiny matchings); both paths produce identical bits.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.packet import Chunk
from repro.core.queues import PendingChunkPool
from repro.simulation.trace import SlotTrace, TransmissionEvent

__all__ = ["VectorTransmitBackend"]

#: Numerical tolerance used to snap remaining chunk work to zero (the
#: canonical definition; the engine re-exports it as ``engine._WORK_EPSILON``).
_WORK_EPSILON = 1e-9

#: Matchings smaller than this run the scalar loop instead of the numpy
#: batch — below it, numpy's fixed per-call overhead exceeds the loop cost.
_VECTOR_MIN_BATCH = 8


class VectorTransmitBackend:
    """Per-lane parallel-array state plus the batched per-slot transmit.

    One backend instance belongs to exactly one simulation lane (one pool):
    the engine registers every dispatched edge chunk via :meth:`add_chunks`
    and replaces its per-edge transmission loop with :meth:`transmit_slot`.
    ``min_batch`` overrides the scalar/vector crossover (mainly for tests
    that force one path or the other).
    """

    __slots__ = (
        "_capacity",
        "_remaining",
        "_size",
        "_pweight",
        "_arrival",
        "_tail",
        "_chunks",
        "_row_of",
        "_free",
        "_top",
        "_min_batch",
        "_fast_slots",
        "_spill_slots",
        "_scalar_slots",
    )

    def __init__(self, capacity: int = 256, min_batch: Optional[int] = None) -> None:
        self._capacity = max(int(capacity), 16)
        self._remaining = np.zeros(self._capacity, dtype=np.float64)
        self._size = np.zeros(self._capacity, dtype=np.float64)
        self._pweight = np.zeros(self._capacity, dtype=np.float64)
        self._arrival = np.zeros(self._capacity, dtype=np.int64)
        self._tail = np.zeros(self._capacity, dtype=np.int64)
        self._chunks: List[Optional[Chunk]] = [None] * self._capacity
        self._row_of: Dict[Chunk, int] = {}
        self._free: List[int] = []
        self._top = 0
        self._min_batch = _VECTOR_MIN_BATCH if min_batch is None else min_batch
        # Per-path slot tallies (always on; three int adds per slot).
        self._fast_slots = 0
        self._spill_slots = 0
        self._scalar_slots = 0

    def __len__(self) -> int:
        """Number of in-flight chunks currently holding a row."""
        return len(self._row_of)

    def stats(self) -> Dict[str, int]:
        """How many non-empty slots took each transmission path.

        ``fast_slots`` is the pure gather/scatter on head rows,
        ``spill_slots`` re-gathered with the per-edge budget walk, and
        ``scalar_slots`` ran the small-batch scalar loop.
        """
        return {
            "fast_slots": self._fast_slots,
            "spill_slots": self._spill_slots,
            "scalar_slots": self._scalar_slots,
        }

    # ------------------------------------------------------------------ #
    # row management
    # ------------------------------------------------------------------ #
    def add_chunks(self, chunks: Sequence[Chunk]) -> None:
        """Register newly dispatched chunks (mirrors ``pool.add_all``)."""
        for chunk in chunks:
            if self._free:
                row = self._free.pop()
            else:
                if self._top == self._capacity:
                    self._grow()
                row = self._top
                self._top += 1
            self._row_of[chunk] = row
            self._chunks[row] = chunk
            self._remaining[row] = chunk.remaining_work
            self._size[row] = chunk.size
            self._pweight[row] = chunk.packet.weight
            self._arrival[row] = chunk.packet.arrival
            self._tail[row] = chunk.tail_delay

    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        for name in ("_remaining", "_size", "_pweight", "_arrival", "_tail"):
            old = getattr(self, name)
            grown = np.zeros(new_capacity, dtype=old.dtype)
            grown[: self._capacity] = old
            setattr(self, name, grown)
        self._chunks.extend([None] * (new_capacity - self._capacity))
        self._capacity = new_capacity

    def _release(self, chunk: Chunk, row: int) -> None:
        del self._row_of[chunk]
        self._chunks[row] = None
        self._free.append(row)

    def remove_chunks(self, chunks: Sequence[Chunk]) -> None:
        """Unregister chunks evicted from the pool (fault eviction path).

        Released rows keep stale array values; that is harmless because a
        later :meth:`add_chunks` (requeue/redispatch after recovery) writes
        fresh state into a fresh row.
        """
        for chunk in chunks:
            self._release(chunk, self._row_of[chunk])

    # ------------------------------------------------------------------ #
    # the per-slot transmission step
    # ------------------------------------------------------------------ #
    def transmit_slot(
        self,
        matching: Sequence[Chunk],
        pool: PendingChunkPool,
        slot: int,
        speed: float,
        recorder,
        slot_trace: Optional[SlotTrace],
        speeds: Optional[Sequence[float]] = None,
    ) -> None:
        """Transmit one slot's matching (chunks on node-disjoint edges).

        Edge-disjointness — which the engine validates — is what makes the
        batched apply safe: no row can receive work twice in one slot, so
        gathering every (row, amount) pair before any state change reads
        only pre-slot values, exactly like the reference per-edge snapshots.

        ``speeds``, when given, overrides the per-edge budget per matched
        head (same order as ``matching``) — the degraded-rate fault path.
        ``np.minimum`` against the per-head budget array is bit-identical to
        the reference's per-edge ``min(budget, remaining)``.
        """
        count = len(matching)
        if count == 0:
            return
        if count < self._min_batch:
            self._scalar_slots += 1
            self._transmit_scalar(matching, pool, slot, speed, recorder, slot_trace, speeds)
            return
        row_of = self._row_of
        head_rows = np.fromiter(
            (row_of[chunk] for chunk in matching), dtype=np.intp, count=count
        )
        if speeds is None:
            budgets: Union[float, np.ndarray] = speed
        else:
            budgets = np.fromiter(speeds, dtype=np.float64, count=count)
        amounts = np.minimum(budgets, self._remaining[head_rows])
        if ((budgets - amounts) > _WORK_EPSILON).any():
            # Some edge has leftover budget: re-gather with the faithful
            # per-edge spill walk so consumption order matches the reference.
            self._spill_slots += 1
            rows_list, amounts_list = self._gather_spill(matching, pool, slot, speed, speeds)
            head_rows = np.fromiter(rows_list, dtype=np.intp, count=len(rows_list))
            amounts = np.fromiter(
                amounts_list, dtype=np.float64, count=len(amounts_list)
            )
        else:
            self._fast_slots += 1
        self._apply_batch(head_rows, amounts, pool, slot, recorder, slot_trace)

    def _gather_spill(
        self,
        matching: Sequence[Chunk],
        pool: PendingChunkPool,
        slot: int,
        speed: float,
        speeds: Optional[Sequence[float]] = None,
    ) -> Tuple[List[int], List[float]]:
        """The reference budget walk, recording (row, amount) pairs only.

        Nothing is mutated here, so the zero-copy ``edge_queue`` view is safe
        to iterate; chunk ``remaining_work`` attributes are kept in sync with
        the arrays by every apply path, so reading them is exact.
        """
        rows: List[int] = []
        amounts: List[float] = []
        row_of = self._row_of
        for index, head in enumerate(matching):
            budget = speed if speeds is None else speeds[index]
            amount = min(budget, head.remaining_work)
            if amount > 0:
                budget -= amount
                rows.append(row_of[head])
                amounts.append(amount)
            if budget <= _WORK_EPSILON:
                continue
            for chunk in pool.edge_queue(*head.edge):
                if chunk is head or chunk.eligible_time > slot:
                    continue
                if budget <= _WORK_EPSILON:
                    break
                amount = min(budget, chunk.remaining_work)
                if amount <= 0:
                    continue
                budget -= amount
                rows.append(row_of[chunk])
                amounts.append(amount)
        return rows, amounts

    def _apply_batch(
        self,
        rows: np.ndarray,
        amounts: np.ndarray,
        pool: PendingChunkPool,
        slot: int,
        recorder,
        slot_trace: Optional[SlotTrace],
    ) -> None:
        """The masked scatter-subtract plus the ordered scalar replay."""
        remaining = self._remaining
        new_remaining = remaining[rows] - amounts
        completed = new_remaining <= _WORK_EPSILON
        remaining[rows] = np.where(completed, 0.0, new_remaining)
        # contribution = (amount · size) · weight · (delivery − arrival),
        # associated exactly like the reference expression; the int64 slot
        # delta converts to float64 exactly (values are far below 2**53).
        delta = (slot + 1 + self._tail[rows]) - self._arrival[rows]
        contributions = (amounts * self._size[rows]) * self._pweight[rows] * delta

        chunks = self._chunks
        rows_list = rows.tolist()
        amounts_list = amounts.tolist()
        new_remaining_list = new_remaining.tolist()
        completed_list = completed.tolist()
        contributions_list = contributions.tolist()
        for i, row in enumerate(rows_list):
            chunk = chunks[row]
            amount = amounts_list[i]
            done = completed_list[i]
            pool.debit_work(amount)
            if done:
                chunk.remaining_work = 0.0
                chunk.completed_slot = slot
                chunk.delivery_time = slot + 1 + chunk.tail_delay
                pool.remove(chunk)
                self._release(chunk, row)
            else:
                chunk.remaining_work = new_remaining_list[i]
            packet = chunk.packet
            recorder.add_latency(packet, contributions_list[i])
            if done:
                recorder.on_chunk_completed(chunk)
            if slot_trace is not None:
                slot_trace.transmissions.append(
                    TransmissionEvent(
                        packet_id=packet.packet_id,
                        chunk_index=chunk.index,
                        edge=chunk.edge,
                        amount=amount,
                        completed=done,
                    )
                )

    def _transmit_scalar(
        self,
        matching: Sequence[Chunk],
        pool: PendingChunkPool,
        slot: int,
        speed: float,
        recorder,
        slot_trace: Optional[SlotTrace],
        speeds: Optional[Sequence[float]] = None,
    ) -> None:
        """Small-batch path: the reference loop minus the queue snapshot."""
        for index, head in enumerate(matching):
            budget = speed if speeds is None else speeds[index]
            amount = min(budget, head.remaining_work)
            if amount > 0:
                budget = self._transmit_one(
                    head, amount, budget, pool, slot, recorder, slot_trace
                )
            if budget <= _WORK_EPSILON:
                continue
            # Leftover budget spills into the edge's eligible queue; copy it
            # because completions mutate the underlying list mid-walk (the
            # head's own completion cannot change the others' order).
            for chunk in list(pool.edge_queue(*head.edge)):
                if chunk is head or chunk.eligible_time > slot:
                    continue
                if budget <= _WORK_EPSILON:
                    break
                amount = min(budget, chunk.remaining_work)
                if amount <= 0:
                    continue
                budget = self._transmit_one(
                    chunk, amount, budget, pool, slot, recorder, slot_trace
                )

    def _transmit_one(
        self,
        chunk: Chunk,
        amount: float,
        budget: float,
        pool: PendingChunkPool,
        slot: int,
        recorder,
        slot_trace: Optional[SlotTrace],
    ) -> float:
        """One chunk's transmission, bit-identical to the reference body."""
        budget -= amount
        chunk.remaining_work -= amount
        pool.debit_work(amount)
        completed = chunk.remaining_work <= _WORK_EPSILON
        row = self._row_of[chunk]
        if completed:
            chunk.remaining_work = 0.0
            chunk.completed_slot = slot
            chunk.delivery_time = slot + 1 + chunk.tail_delay
            pool.remove(chunk)
            self._release(chunk, row)
        else:
            self._remaining[row] = chunk.remaining_work
        packet = chunk.packet
        fraction = amount * chunk.size
        delivery_time = slot + 1 + chunk.tail_delay
        recorder.add_latency(
            packet, fraction * packet.weight * (delivery_time - packet.arrival)
        )
        if completed:
            recorder.on_chunk_completed(chunk)
        if slot_trace is not None:
            slot_trace.transmissions.append(
                TransmissionEvent(
                    packet_id=packet.packet_id,
                    chunk_index=chunk.index,
                    edge=chunk.edge,
                    amount=amount,
                    completed=completed,
                )
            )
        return budget
