"""Online (streaming) accumulators for simulation summaries.

The paper's objective — total weighted fractional latency — is a pure sum
over transmissions, so none of the summary numbers reported by
:meth:`~repro.simulation.results.SimulationResult.summary` actually require
the per-packet records to be held in memory.  This module provides the
running aggregates the engine maintains in ``retention="aggregate"`` mode:

* :class:`CompensatedSum` — a Neumaier-compensated running float sum, so
  million-packet totals do not drift the way a naive ``+=`` loop does;
* :class:`OnlineSummary` — the counters and compensated totals needed to
  reproduce every ``summary()`` number bit-identically to the in-memory path.

Bit-identity between the two retention modes relies on two invariants the
engine maintains: per-packet weighted latency is accumulated with the exact
same sequence of float additions in both modes, and per-packet final values
enter the compensated totals in dispatch order (the engine defers
out-of-order completions until all earlier-dispatched packets are final).
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["CompensatedSum", "OnlineSummary", "compensated_total"]


class CompensatedSum:
    """Neumaier-compensated (improved Kahan) running sum.

    Keeps a running compensation term for the low-order bits lost by each
    addition, so the accumulated error stays O(1) ulp instead of growing with
    the number of terms.  For any fixed sequence of :meth:`add` calls the
    result is deterministic, which is what the engine's cross-retention
    bit-identity guarantee builds on.

    Examples
    --------
    >>> acc = CompensatedSum()
    >>> for v in (1e16, 1.0, -1e16):
    ...     acc.add(v)
    >>> acc.value   # a naive sum returns 0.0 here
    1.0
    """

    __slots__ = ("_total", "_compensation")

    def __init__(self, value: float = 0.0) -> None:
        self._total = float(value)
        self._compensation = 0.0

    def add(self, value: float) -> None:
        """Add ``value`` to the running sum."""
        value = float(value)
        total = self._total + value
        if abs(self._total) >= abs(value):
            self._compensation += (self._total - total) + value
        else:
            self._compensation += (value - total) + self._total
        self._total = total

    @property
    def value(self) -> float:
        """The compensated running total."""
        return self._total + self._compensation

    def __float__(self) -> float:
        return self.value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompensatedSum({self.value!r})"


def compensated_total(values: Iterable[float]) -> float:
    """Sum ``values`` with Neumaier compensation, in iteration order."""
    acc = CompensatedSum()
    for value in values:
        acc.add(value)
    return acc.value


class OnlineSummary:
    """Running aggregates of a simulation run (the ``retention="aggregate"`` state).

    The engine feeds three event streams into this object:

    * :meth:`add_dispatch` — once per packet, at its dispatch slot;
    * :meth:`add_completion` — once per packet, *in dispatch order* (the
      engine buffers out-of-order completions), with the packet's final
      weighted latency and flow completion time;
    * :meth:`add_matchings` — per simulated (or skipped) slot batch, with the
      per-slot matching sizes folded into counters.

    Every quantity exposed here matches the corresponding
    :class:`~repro.simulation.results.SimulationResult` computation on the
    full in-memory records bit-for-bit.
    """

    __slots__ = (
        "num_packets",
        "num_delivered",
        "num_fixed_link",
        "matching_slots",
        "matching_total",
        "matching_max",
        "matching_nonempty",
        "_weighted_latency",
        "_alpha",
        "_completion_time",
    )

    def __init__(self) -> None:
        self.num_packets = 0
        self.num_delivered = 0
        self.num_fixed_link = 0
        self.matching_slots = 0
        self.matching_total = 0
        self.matching_max = 0
        self.matching_nonempty = 0
        self._weighted_latency = CompensatedSum()
        self._alpha = CompensatedSum()
        self._completion_time = CompensatedSum()

    # ------------------------------------------------------------------ #
    # event ingestion
    # ------------------------------------------------------------------ #
    def add_dispatch(self, alpha: float, used_fixed_link: bool) -> None:
        """Record one dispatched packet (its ``α_p`` and routing class)."""
        self.num_packets += 1
        if used_fixed_link:
            self.num_fixed_link += 1
        self._alpha.add(alpha)

    def count_delivered(self) -> None:
        """Record that one packet fully reached its destination."""
        self.num_delivered += 1

    def add_completion(self, weighted_latency: float, flow_completion_time: float) -> None:
        """Fold one packet's final per-packet metrics into the totals.

        Must be called in dispatch order for bit-identity with the in-memory
        path (the engine guarantees this).
        """
        self._weighted_latency.add(weighted_latency)
        self._completion_time.add(flow_completion_time)

    def add_matchings(self, count: int, total: int, largest: int, nonempty: int) -> None:
        """Fold ``count`` per-slot matching sizes summing to ``total`` into the counters."""
        self.matching_slots += count
        self.matching_total += total
        self.matching_nonempty += nonempty
        if largest > self.matching_max:
            self.matching_max = largest

    # ------------------------------------------------------------------ #
    # aggregate accessors
    # ------------------------------------------------------------------ #
    @property
    def all_delivered(self) -> bool:
        """Whether every dispatched packet completed."""
        return self.num_delivered == self.num_packets

    @property
    def total_weighted_latency(self) -> float:
        """The objective value: total weighted fractional latency."""
        return self._weighted_latency.value

    @property
    def total_alpha(self) -> float:
        """Sum of the dual variables ``α_p``."""
        return self._alpha.value

    @property
    def total_completion_time(self) -> float:
        """Sum of per-packet (unweighted) flow completion times."""
        return self._completion_time.value

    @property
    def mean_matching_size(self) -> float:
        """Average per-slot matching size."""
        return self.matching_total / self.matching_slots if self.matching_slots else 0.0

    @property
    def fixed_link_fraction(self) -> float:
        """Fraction of packets routed over the fixed network."""
        return self.num_fixed_link / self.num_packets if self.num_packets else 0.0
