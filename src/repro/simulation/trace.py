"""Optional per-slot event traces of a simulation run.

Traces are primarily a debugging and teaching aid (the quickstart example
prints one) and are also used by a handful of tests that assert slot-by-slot
behaviour on the paper's worked examples.  Recording is off by default since
traces grow linearly with (slots × transmissions).

For long runs the trace need not be held in memory at all: the engine can
stream slot traces to disk as JSON Lines (one slot per line) through
:class:`SlotTraceWriter` (``EngineConfig.trace_path``), and
:func:`iter_slot_traces` reads such a file back lazily.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, IO, Iterator, List, Optional, Tuple, Union

from repro.exceptions import SimulationError
from repro.utils.jsonl import iter_json_lines

__all__ = [
    "DispatchEvent",
    "TransmissionEvent",
    "SlotTrace",
    "SimulationTrace",
    "SlotTraceWriter",
    "iter_slot_traces",
    "read_simulation_trace",
]


@dataclass(frozen=True)
class DispatchEvent:
    """One dispatcher decision: packet → fixed link or reconfigurable edge."""

    packet_id: int
    used_fixed_link: bool
    edge: Optional[Tuple[str, str]]
    impact: float


@dataclass(frozen=True)
class TransmissionEvent:
    """A (possibly fractional) chunk transmission during one slot."""

    packet_id: int
    chunk_index: int
    edge: Tuple[str, str]
    amount: float
    completed: bool


@dataclass
class SlotTrace:
    """Everything that happened during one transmission slot."""

    slot: int
    arrivals: List[int] = field(default_factory=list)
    dispatches: List[DispatchEvent] = field(default_factory=list)
    matching: List[Tuple[str, str]] = field(default_factory=list)
    transmissions: List[TransmissionEvent] = field(default_factory=list)

    @property
    def matching_size(self) -> int:
        """Number of edges active during the slot."""
        return len(self.matching)

    def to_dict(self) -> Dict[str, Any]:
        """The slot trace as a JSON-serialisable dictionary."""
        return {
            "slot": self.slot,
            "arrivals": list(self.arrivals),
            "dispatches": [
                {
                    "packet_id": ev.packet_id,
                    "used_fixed_link": ev.used_fixed_link,
                    "edge": list(ev.edge) if ev.edge is not None else None,
                    "impact": ev.impact,
                }
                for ev in self.dispatches
            ],
            "matching": [list(edge) for edge in self.matching],
            "transmissions": [
                {
                    "packet_id": ev.packet_id,
                    "chunk_index": ev.chunk_index,
                    "edge": list(ev.edge),
                    "amount": ev.amount,
                    "completed": ev.completed,
                }
                for ev in self.transmissions
            ],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SlotTrace":
        """Rebuild a slot trace previously produced by :meth:`to_dict`."""
        return cls(
            slot=int(data["slot"]),
            arrivals=[int(pid) for pid in data.get("arrivals", [])],
            dispatches=[
                DispatchEvent(
                    packet_id=int(ev["packet_id"]),
                    used_fixed_link=bool(ev["used_fixed_link"]),
                    edge=tuple(ev["edge"]) if ev["edge"] is not None else None,
                    impact=float(ev["impact"]),
                )
                for ev in data.get("dispatches", [])
            ],
            matching=[tuple(edge) for edge in data.get("matching", [])],
            transmissions=[
                TransmissionEvent(
                    packet_id=int(ev["packet_id"]),
                    chunk_index=int(ev["chunk_index"]),
                    edge=tuple(ev["edge"]),
                    amount=float(ev["amount"]),
                    completed=bool(ev["completed"]),
                )
                for ev in data.get("transmissions", [])
            ],
        )


@dataclass
class SimulationTrace:
    """Chronological list of per-slot traces."""

    slots: List[SlotTrace] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots)

    def slot(self, slot: int) -> SlotTrace:
        """Return the trace of slot ``slot`` (raises ``KeyError`` if absent)."""
        for record in self.slots:
            if record.slot == slot:
                return record
        raise KeyError(f"no trace recorded for slot {slot}")

    def format(self, max_slots: Optional[int] = None) -> str:
        """Render the trace as human-readable text."""
        lines: List[str] = []
        for record in self.slots[: max_slots if max_slots is not None else len(self.slots)]:
            lines.append(f"slot {record.slot}:")
            if record.arrivals:
                lines.append(f"  arrivals: {record.arrivals}")
            for ev in record.dispatches:
                route = "fixed link" if ev.used_fixed_link else f"edge {ev.edge}"
                lines.append(
                    f"  dispatch p{ev.packet_id} -> {route} (impact {ev.impact:.3g})"
                )
            if record.matching:
                lines.append(f"  matching: {record.matching}")
            for ev in record.transmissions:
                status = "done" if ev.completed else f"{ev.amount:.2f} sent"
                lines.append(
                    f"  transmit p{ev.packet_id}#{ev.chunk_index} on {ev.edge} ({status})"
                )
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# streaming JSONL trace IO
# ---------------------------------------------------------------------- #
class SlotTraceWriter:
    """Append-per-slot JSONL writer for simulation traces.

    The engine hands each finished :class:`SlotTrace` to :meth:`write` and
    discards it, so the trace of an arbitrarily long run costs O(1) memory.
    Usable as a context manager; the engine closes it when the run ends.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = self.path.open("w", encoding="utf-8")
        self.slots_written = 0

    def write(self, slot_trace: SlotTrace) -> None:
        """Append one slot trace as a flushed JSON line.

        Flushing per slot means a crashed run leaves a readable trace of
        every completed slot behind, at worst with a torn final line.
        """
        if self._handle is None:
            raise ValueError(f"trace writer for {self.path} is already closed")
        json.dump(slot_trace.to_dict(), self._handle, separators=(",", ":"))
        self._handle.write("\n")
        self._handle.flush()
        self.slots_written += 1

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "SlotTraceWriter":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()


def iter_slot_traces(path: Union[str, Path]) -> Iterator[SlotTrace]:
    """Lazily read a JSONL slot-trace file written by :class:`SlotTraceWriter`."""
    for _line_number, data in iter_json_lines(path, SimulationError):
        yield SlotTrace.from_dict(data)


def read_simulation_trace(path: Union[str, Path]) -> SimulationTrace:
    """Materialise a streamed JSONL trace file as a :class:`SimulationTrace`."""
    return SimulationTrace(slots=list(iter_slot_traces(path)))
