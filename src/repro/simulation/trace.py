"""Optional per-slot event traces of a simulation run.

Traces are primarily a debugging and teaching aid (the quickstart example
prints one) and are also used by a handful of tests that assert slot-by-slot
behaviour on the paper's worked examples.  Recording is off by default since
traces grow linearly with (slots × transmissions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = ["DispatchEvent", "TransmissionEvent", "SlotTrace", "SimulationTrace"]


@dataclass(frozen=True)
class DispatchEvent:
    """One dispatcher decision: packet → fixed link or reconfigurable edge."""

    packet_id: int
    used_fixed_link: bool
    edge: Optional[Tuple[str, str]]
    impact: float


@dataclass(frozen=True)
class TransmissionEvent:
    """A (possibly fractional) chunk transmission during one slot."""

    packet_id: int
    chunk_index: int
    edge: Tuple[str, str]
    amount: float
    completed: bool


@dataclass
class SlotTrace:
    """Everything that happened during one transmission slot."""

    slot: int
    arrivals: List[int] = field(default_factory=list)
    dispatches: List[DispatchEvent] = field(default_factory=list)
    matching: List[Tuple[str, str]] = field(default_factory=list)
    transmissions: List[TransmissionEvent] = field(default_factory=list)

    @property
    def matching_size(self) -> int:
        """Number of edges active during the slot."""
        return len(self.matching)


@dataclass
class SimulationTrace:
    """Chronological list of per-slot traces."""

    slots: List[SlotTrace] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots)

    def slot(self, slot: int) -> SlotTrace:
        """Return the trace of slot ``slot`` (raises ``KeyError`` if absent)."""
        for record in self.slots:
            if record.slot == slot:
                return record
        raise KeyError(f"no trace recorded for slot {slot}")

    def format(self, max_slots: Optional[int] = None) -> str:
        """Render the trace as human-readable text."""
        lines: List[str] = []
        for record in self.slots[: max_slots if max_slots is not None else len(self.slots)]:
            lines.append(f"slot {record.slot}:")
            if record.arrivals:
                lines.append(f"  arrivals: {record.arrivals}")
            for ev in record.dispatches:
                route = "fixed link" if ev.used_fixed_link else f"edge {ev.edge}"
                lines.append(
                    f"  dispatch p{ev.packet_id} -> {route} (impact {ev.impact:.3g})"
                )
            if record.matching:
                lines.append(f"  matching: {record.matching}")
            for ev in record.transmissions:
                status = "done" if ev.completed else f"{ev.amount:.2f} sent"
                lines.append(
                    f"  transmit p{ev.packet_id}#{ev.chunk_index} on {ev.edge} ({status})"
                )
        return "\n".join(lines)
