"""Result containers produced by the simulation engine.

A :class:`SimulationResult` records, for every packet, the dispatcher's
assignment (and hence the dual variable ``α_p``), the packet's completion
time and its weighted fractional latency, plus per-slot aggregates (matching
sizes) and an optional full event trace.  The analysis package reconstructs
the dual ``β`` variables from the chunk objects referenced here.

With ``retention="aggregate"`` the engine keeps none of the per-packet
records; only the :class:`~repro.simulation.accumulators.OnlineSummary`
aggregates survive.  Summary-level accessors (``summary()``,
``total_weighted_latency``, ``all_delivered``, …) work in both modes and
produce bit-identical numbers; per-packet accessors raise
:class:`ValueError` in aggregate mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.packet import Assignment, Chunk, Packet
from repro.simulation.accumulators import OnlineSummary, compensated_total
from repro.simulation.trace import SimulationTrace

__all__ = ["PacketRecord", "SimulationResult", "RETENTION_MODES"]

#: Valid values of ``EngineConfig.retention`` / ``SimulationResult.retention``.
RETENTION_MODES = ("full", "aggregate")


@dataclass
class PacketRecord:
    """Per-packet outcome of a simulation run.

    Attributes
    ----------
    packet:
        The packet.
    assignment:
        The dispatcher's decision (fixed link or reconfigurable edge with its
        chunks).
    completion_time:
        Time at which the *last* fraction of the packet reached the
        destination (``None`` while undelivered).
    weighted_latency:
        Total weighted fractional latency accumulated by the packet,
        ``Σ x · w_p · (delivery_time(x) − a_p)`` over delivered fractions.
    """

    packet: Packet
    assignment: Assignment
    completion_time: Optional[float] = None
    weighted_latency: float = 0.0

    @property
    def alpha(self) -> float:
        """The dual variable ``α_p`` (the dispatcher's recorded impact)."""
        return self.assignment.impact

    @property
    def used_fixed_link(self) -> bool:
        """Whether the packet was sent over the direct fixed link."""
        return self.assignment.uses_fixed_link

    @property
    def delivered(self) -> bool:
        """Whether the packet has fully reached its destination."""
        return self.completion_time is not None

    @property
    def flow_completion_time(self) -> float:
        """Unweighted completion latency ``completion_time − a_p``."""
        if self.completion_time is None:
            raise ValueError(f"packet {self.packet.packet_id} has not completed")
        return self.completion_time - self.packet.arrival

    @property
    def chunks(self) -> List[Chunk]:
        """The packet's chunks (empty for fixed-link packets)."""
        if self.assignment.uses_fixed_link:
            return []
        return list(self.assignment.chunks)


@dataclass
class SimulationResult:
    """Outcome of one simulation run of a policy on an instance.

    ``retention`` mirrors the engine configuration that produced the result:
    ``"full"`` keeps a :class:`PacketRecord` per packet in :attr:`records`
    and the per-slot :attr:`matching_sizes`; ``"aggregate"`` keeps only the
    :attr:`aggregates` accumulators (O(1) memory in the number of packets).
    """

    policy_name: str
    topology_name: str
    speed: float
    retention: str = "full"
    records: Dict[int, PacketRecord] = field(default_factory=dict)
    first_slot: int = 0
    last_slot: int = 0
    matching_sizes: List[int] = field(default_factory=list)
    trace: Optional[SimulationTrace] = None
    aggregates: Optional[OnlineSummary] = None

    # ------------------------------------------------------------------ #
    # retention plumbing
    # ------------------------------------------------------------------ #
    @property
    def is_aggregate(self) -> bool:
        """Whether this result holds only streaming aggregates."""
        return self.retention == "aggregate"

    def _require_records(self, what: str) -> None:
        if self.is_aggregate:
            raise ValueError(
                f"{what} requires per-packet records, which retention='aggregate' "
                "does not keep; rerun with retention='full'"
            )

    # ------------------------------------------------------------------ #
    # aggregate accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        if self.is_aggregate:
            return self.aggregates.num_packets if self.aggregates else 0
        return len(self.records)

    def __iter__(self) -> Iterator[PacketRecord]:
        self._require_records("iterating packet records")
        return iter(self.records.values())

    def record(self, packet_id: int) -> PacketRecord:
        """The :class:`PacketRecord` of packet ``packet_id``."""
        self._require_records("record()")
        return self.records[packet_id]

    @property
    def packets(self) -> List[Packet]:
        """All packets of the run, in packet-id order."""
        self._require_records("packets")
        return [self.records[pid].packet for pid in sorted(self.records)]

    @property
    def all_delivered(self) -> bool:
        """Whether every packet completed within the simulated horizon."""
        if self.is_aggregate:
            return self.aggregates.all_delivered if self.aggregates else True
        return all(rec.delivered for rec in self.records.values())

    @property
    def total_weighted_latency(self) -> float:
        """The objective value: total weighted fractional latency of the run.

        Summed with Neumaier compensation (in dispatch order) so large-N
        totals do not drift; bit-identical between retention modes.
        """
        if self.is_aggregate:
            return self.aggregates.total_weighted_latency if self.aggregates else 0.0
        return compensated_total(rec.weighted_latency for rec in self.records.values())

    @property
    def total_alpha(self) -> float:
        """Sum of the dual variables ``α_p`` recorded at dispatch time."""
        if self.is_aggregate:
            return self.aggregates.total_alpha if self.aggregates else 0.0
        return compensated_total(rec.alpha for rec in self.records.values())

    @property
    def total_flow_completion_time(self) -> float:
        """Sum of per-packet (unweighted) flow completion times."""
        if self.is_aggregate:
            return self.aggregates.total_completion_time if self.aggregates else 0.0
        return compensated_total(
            self.records[pid].flow_completion_time for pid in sorted(self.records)
        )

    @property
    def mean_flow_completion_time(self) -> float:
        """Average (unweighted) flow completion time."""
        n = len(self)
        return self.total_flow_completion_time / n if n else 0.0

    @property
    def num_slots(self) -> int:
        """Number of transmission slots simulated."""
        return max(0, self.last_slot - self.first_slot + 1) if len(self) else 0

    @property
    def num_fixed_link_packets(self) -> int:
        """Number of packets routed over the fixed network."""
        if self.is_aggregate:
            return self.aggregates.num_fixed_link if self.aggregates else 0
        return sum(1 for rec in self.records.values() if rec.used_fixed_link)

    @property
    def fixed_link_fraction(self) -> float:
        """Fraction of packets routed over the fixed network."""
        n = len(self)
        if not n:
            return 0.0
        return self.num_fixed_link_packets / n

    @property
    def mean_matching_size(self) -> float:
        """Average per-slot matching size across the simulated horizon."""
        if self.is_aggregate:
            return self.aggregates.mean_matching_size if self.aggregates else 0.0
        if not self.matching_sizes:
            return 0.0
        return sum(self.matching_sizes) / len(self.matching_sizes)

    def weighted_latencies(self) -> List[float]:
        """Per-packet weighted latencies, in packet-id order."""
        self._require_records("weighted_latencies()")
        return [self.records[pid].weighted_latency for pid in sorted(self.records)]

    def flow_completion_times(self) -> List[float]:
        """Per-packet completion latencies, in packet-id order."""
        self._require_records("flow_completion_times()")
        return [self.records[pid].flow_completion_time for pid in sorted(self.records)]

    def chunk_records(self) -> List[Chunk]:
        """All chunks of all reconfigurable-routed packets."""
        self._require_records("chunk_records()")
        chunks: List[Chunk] = []
        for rec in self.records.values():
            chunks.extend(rec.chunks)
        return chunks

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by the experiment harness.

        Identical (bit-for-bit) between ``retention="full"`` and
        ``retention="aggregate"`` runs of the same instance.
        """
        total = self.total_weighted_latency
        n = len(self)
        return {
            "num_packets": float(n),
            "total_weighted_latency": total,
            "mean_weighted_latency": total / n if n else 0.0,
            "num_slots": float(self.num_slots),
            "fixed_link_fraction": self.fixed_link_fraction,
            "mean_matching_size": self.mean_matching_size,
        }
