"""Result containers produced by the simulation engine.

A :class:`SimulationResult` records, for every packet, the dispatcher's
assignment (and hence the dual variable ``α_p``), the packet's completion
time and its weighted fractional latency, plus per-slot aggregates (matching
sizes) and an optional full event trace.  The analysis package reconstructs
the dual ``β`` variables from the chunk objects referenced here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.packet import Assignment, Chunk, Packet
from repro.simulation.trace import SimulationTrace

__all__ = ["PacketRecord", "SimulationResult"]


@dataclass
class PacketRecord:
    """Per-packet outcome of a simulation run.

    Attributes
    ----------
    packet:
        The packet.
    assignment:
        The dispatcher's decision (fixed link or reconfigurable edge with its
        chunks).
    completion_time:
        Time at which the *last* fraction of the packet reached the
        destination (``None`` while undelivered).
    weighted_latency:
        Total weighted fractional latency accumulated by the packet,
        ``Σ x · w_p · (delivery_time(x) − a_p)`` over delivered fractions.
    """

    packet: Packet
    assignment: Assignment
    completion_time: Optional[float] = None
    weighted_latency: float = 0.0

    @property
    def alpha(self) -> float:
        """The dual variable ``α_p`` (the dispatcher's recorded impact)."""
        return self.assignment.impact

    @property
    def used_fixed_link(self) -> bool:
        """Whether the packet was sent over the direct fixed link."""
        return self.assignment.uses_fixed_link

    @property
    def delivered(self) -> bool:
        """Whether the packet has fully reached its destination."""
        return self.completion_time is not None

    @property
    def flow_completion_time(self) -> float:
        """Unweighted completion latency ``completion_time − a_p``."""
        if self.completion_time is None:
            raise ValueError(f"packet {self.packet.packet_id} has not completed")
        return self.completion_time - self.packet.arrival

    @property
    def chunks(self) -> List[Chunk]:
        """The packet's chunks (empty for fixed-link packets)."""
        if self.assignment.uses_fixed_link:
            return []
        return list(self.assignment.chunks)


@dataclass
class SimulationResult:
    """Outcome of one simulation run of a policy on an instance."""

    policy_name: str
    topology_name: str
    speed: float
    records: Dict[int, PacketRecord] = field(default_factory=dict)
    first_slot: int = 0
    last_slot: int = 0
    matching_sizes: List[int] = field(default_factory=list)
    trace: Optional[SimulationTrace] = None

    # ------------------------------------------------------------------ #
    # aggregate accessors
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[PacketRecord]:
        return iter(self.records.values())

    def record(self, packet_id: int) -> PacketRecord:
        """The :class:`PacketRecord` of packet ``packet_id``."""
        return self.records[packet_id]

    @property
    def packets(self) -> List[Packet]:
        """All packets of the run, in packet-id order."""
        return [self.records[pid].packet for pid in sorted(self.records)]

    @property
    def all_delivered(self) -> bool:
        """Whether every packet completed within the simulated horizon."""
        return all(rec.delivered for rec in self.records.values())

    @property
    def total_weighted_latency(self) -> float:
        """The objective value: total weighted fractional latency of the run."""
        return sum(rec.weighted_latency for rec in self.records.values())

    @property
    def total_alpha(self) -> float:
        """Sum of the dual variables ``α_p`` recorded at dispatch time."""
        return sum(rec.alpha for rec in self.records.values())

    @property
    def num_slots(self) -> int:
        """Number of transmission slots simulated."""
        return max(0, self.last_slot - self.first_slot + 1) if self.records else 0

    @property
    def num_fixed_link_packets(self) -> int:
        """Number of packets routed over the fixed network."""
        return sum(1 for rec in self.records.values() if rec.used_fixed_link)

    @property
    def fixed_link_fraction(self) -> float:
        """Fraction of packets routed over the fixed network."""
        if not self.records:
            return 0.0
        return self.num_fixed_link_packets / len(self.records)

    def weighted_latencies(self) -> List[float]:
        """Per-packet weighted latencies, in packet-id order."""
        return [self.records[pid].weighted_latency for pid in sorted(self.records)]

    def flow_completion_times(self) -> List[float]:
        """Per-packet completion latencies, in packet-id order."""
        return [self.records[pid].flow_completion_time for pid in sorted(self.records)]

    def chunk_records(self) -> List[Chunk]:
        """All chunks of all reconfigurable-routed packets."""
        chunks: List[Chunk] = []
        for rec in self.records.values():
            chunks.extend(rec.chunks)
        return chunks

    def summary(self) -> Dict[str, float]:
        """Compact numeric summary used by the experiment harness."""
        total = self.total_weighted_latency
        n = len(self.records)
        return {
            "num_packets": float(n),
            "total_weighted_latency": total,
            "mean_weighted_latency": total / n if n else 0.0,
            "num_slots": float(self.num_slots),
            "fixed_link_fraction": self.fixed_link_fraction,
            "mean_matching_size": (
                sum(self.matching_sizes) / len(self.matching_sizes)
                if self.matching_sizes
                else 0.0
            ),
        }
