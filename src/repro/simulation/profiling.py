"""Phase-level timing instrumentation for benchmark runs.

:func:`timed_policy` wraps a policy's dispatcher and scheduler in
pass-through proxies that accumulate wall-clock time per phase, so
benchmarks can split a run's total into

* ``dispatch`` — time inside ``Dispatcher.dispatch`` (per arriving packet),
* ``scheduler`` — time inside ``Scheduler.select_matching`` (per slot),
* ``transmit`` — time applying the selected matching (budget walk, latency
  accounting, completion bookkeeping); timed by the engine itself, which
  discovers the timings object through the ``phase_timings`` attribute the
  proxy policy carries,
* ``bookkeeping`` — everything else (pool maintenance, arrivals, recorders),
  obtained as the remainder against the measured total.

The wrappers forward decisions unchanged, so a timed run produces the exact
results of the untimed one; only the two ``perf_counter`` calls per
invocation are added.  For clean attribution a timed dispatcher never
advertises a ``dispatch_sharing_key`` (profiled lanes do not share dispatch
memos), and the timed scheduler mirrors the inner scheduler's
``uses_matching_index`` flag so indexed-engine lanes still maintain the
matching index for it.
"""

from __future__ import annotations

import time
from typing import List, Tuple

from repro.core.interfaces import Dispatcher, Policy, Scheduler
from repro.core.packet import Assignment, Chunk, Packet

__all__ = ["PhaseTimings", "timed_policy"]


class PhaseTimings:
    """Accumulated per-phase wall-clock seconds of a timed run."""

    __slots__ = ("dispatch_s", "scheduler_s", "transmit_s")

    def __init__(self) -> None:
        self.dispatch_s = 0.0
        self.scheduler_s = 0.0
        self.transmit_s = 0.0

    def reset(self) -> None:
        self.dispatch_s = 0.0
        self.scheduler_s = 0.0
        self.transmit_s = 0.0

    def bookkeeping_s(self, total_s: float) -> float:
        """The remainder of ``total_s`` not spent in any timed phase."""
        return max(
            total_s - self.dispatch_s - self.scheduler_s - self.transmit_s, 0.0
        )

    def breakdown(self, total_s: float) -> dict:
        """A JSON-friendly ``{phase: seconds}`` dict for ``total_s``."""
        return {
            "dispatch_s": round(self.dispatch_s, 4),
            "scheduler_s": round(self.scheduler_s, 4),
            "transmit_s": round(self.transmit_s, 4),
            "bookkeeping_s": round(self.bookkeeping_s(total_s), 4),
        }


class _TimedDispatcher(Dispatcher):
    def __init__(self, inner: Dispatcher, timings: PhaseTimings) -> None:
        self._inner = inner
        self._timings = timings
        self.name = inner.name

    def dispatch(self, packet: Packet, topology, pool, now: int) -> Assignment:
        start = time.perf_counter()
        try:
            return self._inner.dispatch(packet, topology, pool, now)
        finally:
            self._timings.dispatch_s += time.perf_counter() - start

    def reset(self) -> None:
        self._inner.reset()


class _TimedScheduler(Scheduler):
    def __init__(self, inner: Scheduler, timings: PhaseTimings) -> None:
        self._inner = inner
        self._timings = timings
        self.name = inner.name
        self.uses_matching_index = getattr(inner, "uses_matching_index", False)

    def select_matching(self, pool, topology, now: int) -> List[Chunk]:
        start = time.perf_counter()
        try:
            return self._inner.select_matching(pool, topology, now)
        finally:
            self._timings.scheduler_s += time.perf_counter() - start

    def reset(self) -> None:
        self._inner.reset()


def timed_policy(policy: Policy) -> Tuple[Policy, PhaseTimings]:
    """Wrap ``policy`` for phase timing; returns the proxy and its timings."""
    timings = PhaseTimings()
    proxy = Policy(
        name=policy.name,
        dispatcher=_TimedDispatcher(policy.dispatcher, timings),
        scheduler=_TimedScheduler(policy.scheduler, timings),
    )
    # The transmit phase has no policy hook to wrap: the engine times its own
    # transmission block when the policy it runs carries this attribute.
    proxy.phase_timings = timings
    return proxy, timings
