"""Phase-level timing instrumentation for benchmark runs.

:func:`timed_policy` wraps a policy's dispatcher and scheduler in
pass-through proxies that accumulate wall-clock time per phase, so
benchmarks can split a run's total into

* ``dispatch`` — time inside ``Dispatcher.dispatch`` (per arriving packet),
* ``scheduler`` — time inside ``Scheduler.select_matching`` (per slot),
* ``transmit`` — time applying the selected matching (budget walk, latency
  accounting, completion bookkeeping); timed by the engine itself, which
  discovers the timings object through the policy's ``phase_timings`` field,
* ``bookkeeping`` — everything else (pool maintenance, arrivals, recorders),
  obtained as the remainder against the measured total.

:class:`PhaseTimings` is now a thin, API-compatible adapter over the general
:class:`~repro.obs.spans.SpanTimer`: the three ``*_s`` attributes read and
write the ``dispatch``/``scheduler``/``transmit`` span totals of an
underlying timer, so phase timings show up in span snapshots for free while
every existing caller (``+=`` mutation included) keeps working unchanged.

The wrappers forward decisions unchanged, so a timed run produces the exact
results of the untimed one; only the two ``perf_counter`` calls per
invocation are added.  For clean attribution a timed dispatcher never
advertises a ``dispatch_sharing_key`` (profiled lanes do not share dispatch
memos), and the timed scheduler mirrors the inner scheduler's
``uses_matching_index`` flag so indexed-engine lanes still maintain the
matching index for it.
"""

from __future__ import annotations

import time
from typing import List, Optional, Tuple

from repro.core.interfaces import Dispatcher, Policy, Scheduler
from repro.core.packet import Assignment, Chunk, Packet
from repro.obs.spans import SpanTimer

__all__ = ["PhaseTimings", "timed_policy"]


class PhaseTimings:
    """Accumulated per-phase wall-clock seconds of a timed run.

    A facade over a :class:`~repro.obs.spans.SpanTimer`: attribute reads and
    writes go straight to the timer's ``dispatch``/``scheduler``/``transmit``
    span totals.  Pass an existing timer to share spans with other
    instrumentation; by default each instance owns a private one.
    """

    __slots__ = ("spans",)

    def __init__(self, spans: Optional[SpanTimer] = None) -> None:
        self.spans = spans if spans is not None else SpanTimer()

    @property
    def dispatch_s(self) -> float:
        return self.spans.total("dispatch")

    @dispatch_s.setter
    def dispatch_s(self, value: float) -> None:
        self.spans.set_total("dispatch", value)

    @property
    def scheduler_s(self) -> float:
        return self.spans.total("scheduler")

    @scheduler_s.setter
    def scheduler_s(self, value: float) -> None:
        self.spans.set_total("scheduler", value)

    @property
    def transmit_s(self) -> float:
        return self.spans.total("transmit")

    @transmit_s.setter
    def transmit_s(self, value: float) -> None:
        self.spans.set_total("transmit", value)

    def reset(self) -> None:
        self.spans.reset()

    def bookkeeping_s(self, total_s: float) -> float:
        """The remainder of ``total_s`` not spent in any timed phase."""
        return max(
            total_s - self.dispatch_s - self.scheduler_s - self.transmit_s, 0.0
        )

    def breakdown(self, total_s: float) -> dict:
        """A JSON-friendly ``{phase: seconds}`` dict for ``total_s``."""
        return {
            "dispatch_s": round(self.dispatch_s, 4),
            "scheduler_s": round(self.scheduler_s, 4),
            "transmit_s": round(self.transmit_s, 4),
            "bookkeeping_s": round(self.bookkeeping_s(total_s), 4),
        }


class _TimedDispatcher(Dispatcher):
    def __init__(self, inner: Dispatcher, timings: PhaseTimings) -> None:
        self._inner = inner
        self._spans = timings.spans
        self.name = inner.name

    def dispatch(self, packet: Packet, topology, pool, now: int) -> Assignment:
        start = time.perf_counter()
        try:
            return self._inner.dispatch(packet, topology, pool, now)
        finally:
            self._spans.add("dispatch", time.perf_counter() - start)

    def reset(self) -> None:
        self._inner.reset()


class _TimedScheduler(Scheduler):
    def __init__(self, inner: Scheduler, timings: PhaseTimings) -> None:
        self._inner = inner
        self._spans = timings.spans
        self.name = inner.name
        self.uses_matching_index = getattr(inner, "uses_matching_index", False)

    def select_matching(self, pool, topology, now: int) -> List[Chunk]:
        start = time.perf_counter()
        try:
            return self._inner.select_matching(pool, topology, now)
        finally:
            self._spans.add("scheduler", time.perf_counter() - start)

    def reset(self) -> None:
        self._inner.reset()


def timed_policy(policy: Policy) -> Tuple[Policy, PhaseTimings]:
    """Wrap ``policy`` for phase timing; returns the proxy and its timings."""
    timings = PhaseTimings()
    # The transmit phase has no policy hook to wrap: the engine times its own
    # transmission block when the policy it runs declares phase_timings.
    proxy = Policy(
        name=policy.name,
        dispatcher=_TimedDispatcher(policy.dispatcher, timings),
        scheduler=_TimedScheduler(policy.scheduler, timings),
        phase_timings=timings,
    )
    return proxy, timings
