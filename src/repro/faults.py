"""Deterministic fault schedules for the reconfigurable fabric.

The paper's setting — per-rack lasers and photodetectors forming
opportunistic links — is exactly the hardware that fails and recovers in
production.  This module models that as a *deterministic, seedable* schedule
of :class:`FaultEvent` records applied by the simulation engine at the start
of each slot:

- ``fail`` / ``recover`` a laser (transmitter), a photodetector (receiver)
  or an individual reconfigurable edge;
- ``degrade`` an edge to a fractional transmission rate (``rate`` of the
  configured engine speed) until it recovers.

Schedules are plain frozen dataclasses: picklable (so they cross process
boundaries inside :class:`~repro.experiments.runner.ExperimentRunner` tasks)
and JSON round-trippable (so scenarios can persist them).  The engine keeps
the three execution backends (reference / indexed / vectorized) bit-identical
under any schedule; see ``docs/ARCHITECTURE.md`` §10.

Examples
--------
>>> event = FaultEvent(slot=4, action="fail", kind="laser", target="t0")
>>> schedule = FaultSchedule.from_events(
...     [FaultEvent(slot=9, action="recover", kind="laser", target="t0"), event]
... )
>>> [e.slot for e in schedule.events]
[4, 9]
>>> FaultSchedule.from_dict(schedule.to_dict()) == schedule
True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.exceptions import FaultError
from repro.utils.rng import SeedSequenceFactory

__all__ = [
    "FAULT_ACTIONS",
    "FAULT_KINDS",
    "ON_FAIL_MODES",
    "FaultEvent",
    "FaultSchedule",
    "FabricState",
    "FaultTopologyView",
    "seeded_fault_schedule",
]

FAULT_ACTIONS: Tuple[str, ...] = ("fail", "recover", "degrade")
FAULT_KINDS: Tuple[str, ...] = ("laser", "photodetector", "edge")
ON_FAIL_MODES: Tuple[str, ...] = ("requeue", "drop", "redispatch")

Edge = Tuple[str, str]
Target = Union[str, Edge]


@dataclass(frozen=True)
class FaultEvent:
    """A single fault-schedule entry applied at the start of ``slot``.

    Attributes
    ----------
    slot:
        Engine slot (``>= 0``) at whose start the event takes effect.
    action:
        One of ``"fail"``, ``"recover"`` or ``"degrade"`` (edges only).
    kind:
        Hardware class: ``"laser"`` (transmitter), ``"photodetector"``
        (receiver) or ``"edge"`` (a single reconfigurable edge).
    target:
        Node name for lasers/photodetectors, ``(transmitter, receiver)``
        for edges.
    rate:
        Fractional rate in ``(0, 1]`` for ``degrade`` events; must be
        ``None`` otherwise.  A recovering edge always returns to rate 1.
    """

    slot: int
    action: str
    kind: str
    target: Target
    rate: Optional[float] = None

    def __post_init__(self) -> None:
        if int(self.slot) != self.slot or self.slot < 0:
            raise FaultError(f"fault slot must be an integer >= 0, got {self.slot!r}")
        if self.action not in FAULT_ACTIONS:
            raise FaultError(f"unknown fault action {self.action!r}; expected one of {FAULT_ACTIONS}")
        if self.kind not in FAULT_KINDS:
            raise FaultError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.kind == "edge":
            if (
                not isinstance(self.target, tuple)
                or len(self.target) != 2
                or not all(isinstance(part, str) for part in self.target)
            ):
                raise FaultError(
                    f"edge fault target must be a (transmitter, receiver) pair, got {self.target!r}"
                )
        elif not isinstance(self.target, str):
            raise FaultError(f"{self.kind} fault target must be a node name, got {self.target!r}")
        if self.action == "degrade":
            if self.kind != "edge":
                raise FaultError("degrade events only apply to edges")
            if self.rate is None or not 0 < self.rate <= 1:
                raise FaultError(f"degrade rate must lie in (0, 1], got {self.rate!r}")
        elif self.rate is not None:
            raise FaultError(f"rate is only meaningful for degrade events, got {self.rate!r}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation (edge targets become lists)."""
        payload: Dict[str, Any] = {
            "slot": self.slot,
            "action": self.action,
            "kind": self.kind,
            "target": list(self.target) if isinstance(self.target, tuple) else self.target,
        }
        if self.rate is not None:
            payload["rate"] = self.rate
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultEvent":
        """Inverse of :meth:`to_dict`."""
        target = payload["target"]
        if isinstance(target, (list, tuple)):
            target = tuple(str(part) for part in target)
        return cls(
            slot=int(payload["slot"]),
            action=str(payload["action"]),
            kind=str(payload["kind"]),
            target=target,
            rate=None if payload.get("rate") is None else float(payload["rate"]),
        )


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, slot-ordered sequence of :class:`FaultEvent` records.

    Events must be non-decreasing in ``slot``; same-slot events apply in
    sequence order.  Use :meth:`from_events` to sort an arbitrary iterable
    stably by slot.
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        object.__setattr__(self, "events", events)
        for previous, current in zip(events, events[1:]):
            if current.slot < previous.slot:
                raise FaultError(
                    "fault events must be ordered by slot; "
                    f"got slot {current.slot} after {previous.slot} "
                    "(use FaultSchedule.from_events to sort)"
                )

    @classmethod
    def from_events(cls, events: Iterable[FaultEvent]) -> "FaultSchedule":
        """Build a schedule from events in any order (stable sort by slot)."""
        return cls(events=tuple(sorted(events, key=lambda event: event.slot)))

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable representation."""
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultSchedule":
        """Inverse of :meth:`to_dict`."""
        return cls(events=tuple(FaultEvent.from_dict(entry) for entry in payload["events"]))


class FabricState:
    """Mutable per-lane view of which hardware is currently failed/degraded.

    ``version`` increments on every applied event, letting
    :class:`FaultTopologyView` invalidate its memoised candidate sets
    lazily instead of eagerly recomputing them per event.
    """

    __slots__ = ("failed_lasers", "failed_photodetectors", "failed_edges", "degraded", "version")

    def __init__(self) -> None:
        self.failed_lasers: set = set()
        self.failed_photodetectors: set = set()
        self.failed_edges: set = set()
        self.degraded: Dict[Edge, float] = {}
        self.version = 0

    def apply(self, event: FaultEvent, topology: Any) -> None:
        """Apply one event, validating the target against ``topology``."""
        if event.kind == "laser":
            if event.target not in topology.transmitters:
                raise FaultError(f"unknown laser {event.target!r} in fault schedule")
            bucket = self.failed_lasers
        elif event.kind == "photodetector":
            if event.target not in topology.receivers:
                raise FaultError(f"unknown photodetector {event.target!r} in fault schedule")
            bucket = self.failed_photodetectors
        else:
            if not topology.has_edge(*event.target):
                raise FaultError(f"unknown reconfigurable edge {event.target!r} in fault schedule")
            bucket = self.failed_edges
        if event.action == "fail":
            bucket.add(event.target)
        elif event.action == "recover":
            bucket.discard(event.target)
            if event.kind == "edge":
                self.degraded.pop(event.target, None)  # recovery resets rate to 1
        else:  # degrade
            if event.rate == 1.0:
                self.degraded.pop(event.target, None)
            else:
                self.degraded[event.target] = float(event.rate)  # type: ignore[arg-type]
        self.version += 1

    def edge_alive(self, transmitter: str, receiver: str) -> bool:
        """Whether the edge and both of its endpoints are currently up."""
        return (
            transmitter not in self.failed_lasers
            and receiver not in self.failed_photodetectors
            and (transmitter, receiver) not in self.failed_edges
        )

    def edge_rate(self, transmitter: str, receiver: str) -> float:
        """Current fractional rate of an edge (1.0 unless degraded)."""
        return self.degraded.get((transmitter, receiver), 1.0)

    @property
    def any_failed(self) -> bool:
        """Whether any hardware is currently failed."""
        return bool(self.failed_lasers or self.failed_photodetectors or self.failed_edges)

    @property
    def any_degraded(self) -> bool:
        """Whether any edge currently runs at a fractional rate."""
        return bool(self.degraded)


class FaultTopologyView:
    """A topology proxy that masks failed hardware out of candidate sets.

    Dispatchers reach reconfigurable edges exclusively through
    ``candidate_edges`` / ``has_edge``, so overriding those two methods (and
    delegating everything else to the frozen base topology) is sufficient to
    keep every dispatch policy away from dead ports.  Filtered candidate
    sets are memoised per ``(source, destination)`` and invalidated by the
    fabric-state version counter.
    """

    __slots__ = ("_base", "_state", "_cache", "_cache_version")

    def __init__(self, base: Any, state: FabricState) -> None:
        self._base = base
        self._state = state
        self._cache: Dict[Tuple[str, str], List[Edge]] = {}
        self._cache_version = state.version

    def candidate_edges(self, source: str, destination: str) -> List[Edge]:
        """Live reconfigurable edges usable by a (source, destination) packet."""
        state = self._state
        if state.version != self._cache_version:
            self._cache.clear()
            self._cache_version = state.version
        key = (source, destination)
        cached = self._cache.get(key)
        if cached is None:
            cached = [
                edge
                for edge in self._base.candidate_edges(source, destination)
                if state.edge_alive(*edge)
            ]
            self._cache[key] = cached
        return list(cached)

    def has_edge(self, transmitter: str, receiver: str) -> bool:
        """Whether the edge exists *and* is currently alive."""
        return self._base.has_edge(transmitter, receiver) and self._state.edge_alive(
            transmitter, receiver
        )

    def can_route(self, source: str, destination: str) -> bool:
        """Whether any live path (reconfigurable or fixed) exists for the pair."""
        return bool(self.candidate_edges(source, destination)) or self._base.has_fixed_link(
            source, destination
        )

    def __getattr__(self, name: str) -> Any:
        return getattr(self._base, name)


def seeded_fault_schedule(
    topology: Any,
    *,
    seed: int,
    num_faults: int = 2,
    horizon: int = 64,
    recover: bool = True,
    degrade_fraction: float = 0.25,
) -> FaultSchedule:
    """Generate a deterministic fail/recover schedule for ``topology``.

    Picks ``num_faults`` distinct targets across lasers, photodetectors and
    reconfigurable edges; each fails (or, for a ``degrade_fraction`` of
    edges, degrades) at a slot in ``[1, horizon/2)`` and — when ``recover``
    is true — recovers after a bounded duration.  The same ``seed`` always
    yields the same schedule, independent of process or job count.
    """
    if num_faults < 1:
        raise FaultError(f"num_faults must be >= 1, got {num_faults}")
    if horizon < 4:
        raise FaultError(f"horizon must be >= 4, got {horizon}")
    rng = SeedSequenceFactory(seed).generator("faults")
    targets: List[Tuple[str, Target]] = []
    targets.extend(("laser", laser) for laser in topology.transmitters)
    targets.extend(("photodetector", pd) for pd in topology.receivers)
    targets.extend(("edge", edge) for edge in topology.reconfigurable_edges)
    if not targets:
        raise FaultError("topology has no hardware to fault")
    count = min(num_faults, len(targets))
    chosen = sorted(int(i) for i in rng.choice(len(targets), size=count, replace=False))
    half = max(2, horizon // 2)
    events: List[FaultEvent] = []
    for index in chosen:
        kind, target = targets[index]
        fail_slot = int(rng.integers(1, half))
        if kind == "edge" and float(rng.random()) < degrade_fraction:
            rate = float(0.25 + 0.5 * float(rng.random()))
            events.append(
                FaultEvent(slot=fail_slot, action="degrade", kind=kind, target=target, rate=rate)
            )
        else:
            events.append(FaultEvent(slot=fail_slot, action="fail", kind=kind, target=target))
        if recover:
            duration = int(rng.integers(1, half))
            events.append(
                FaultEvent(slot=fail_slot + duration, action="recover", kind=kind, target=target)
            )
    return FaultSchedule.from_events(events)
