"""Benchmark trajectory institution: sectioned runs, history files, trend checks.

ROADMAP's "make ``BENCH_dispatch.json`` a trajectory" item, promoted to a
subsystem.  Five named *sections* each measure one engine hot path on a
seeded cell, always verifying bit-identity against the reference
configuration before trusting a timing:

* ``dispatch`` — reference adjacency scan vs the incremental impact index
  (the historical ``scripts/bench_dispatch.py`` headline number);
* ``scheduler`` — from-scratch greedy stable matching vs the incremental
  matching repairer, on a densified cell;
* ``transmit`` — indexed per-edge budget walk vs the numpy-batched
  vectorized backend, on the saturated-pairs cell;
* ``run_multi`` — per-lane dispatch vs shared-dispatch memo lanes;
* ``streaming`` — full retention vs aggregate (O(active) memory) retention
  over the same stream.

Each section run appends one machine-stamped *history point* to the
per-section ``BENCH_<section>.json`` file (``BENCH_dispatch.json`` keeps its
legacy name and absorbs its pre-existing points).  :func:`check_history`
implements the CI regression gate: a new point fails when its throughput
drops more than ``tolerance`` below the best prior point recorded on
*comparable hardware at the same scale* — points from other machines or
other scales are never compared, so a laptop can't "regress" against a CI
runner and a smoke-scale check can't fail against a full-scale history.

The file format rules (legacy migration, corruption refusal) generalise
``bench_dispatch.load_history``; that script now imports them from here.
"""

from __future__ import annotations

import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core import OpportunisticLinkScheduler
from repro.network import projector_fabric
from repro.simulation import EngineConfig, SimulationEngine, simulate, timed_policy
from repro.utils.atomic import atomic_write_text
from repro.workloads import uniform_weights
from repro.workloads.adversarial import (
    iter_contention_hotspot_workload,
    iter_saturated_pairs_workload,
)

__all__ = [
    "SECTIONS",
    "load_history",
    "save_history",
    "bench_path",
    "machine_stamp",
    "machine_key",
    "point_scale",
    "point_throughput",
    "validate_point",
    "check_history",
    "run_section",
    "render_report",
    "build_cell",
    "build_saturated_cell",
    "time_single",
    "time_single_phases",
    "time_multi",
    "NUM_LANES",
]

#: The named benchmark sections, in report order.
SECTIONS = ("dispatch", "scheduler", "transmit", "run_multi", "streaming")

#: Lanes used by the ``run_multi`` section (the historical script's value).
NUM_LANES = 4

#: Current history-point schema version.
POINT_SCHEMA = 1

#: Per-section default scales: (packets, edge delay).  Sized so a full
#: five-section sweep stays in CI-smoke territory at 16 racks.
_SECTION_DEFAULTS: Dict[str, Tuple[int, int]] = {
    "dispatch": (1500, 1),
    "scheduler": (2500, 4),
    "transmit": (4000, 4),
    "run_multi": (1000, 1),
    "streaming": (20000, 1),
}


# ---------------------------------------------------------------------- #
# history files
# ---------------------------------------------------------------------- #
def load_history(path: Path) -> list:
    """Existing history points of ``path``, migrating the legacy shape.

    Returns ``[]`` when the file does not exist.  A PR-7+ document is a dict
    with a ``history`` list; a pre-history file is a single benchmark point
    (a dict without ``history``) and becomes the first entry.  Corrupt JSON
    or an unrecognised shape raises :class:`ValueError` so the caller can
    abort instead of silently overwriting the recorded trajectory.
    """
    path = Path(path)
    if not path.exists():
        return []
    try:
        existing = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{path} is not valid JSON ({exc}); fix or move the file, then re-run"
        ) from exc
    if not isinstance(existing, dict):
        raise ValueError(
            f"{path} holds a top-level {type(existing).__name__}, expected a "
            "benchmark document; fix or move the file, then re-run"
        )
    if "history" in existing:
        history = existing["history"]
        if not isinstance(history, list):
            raise ValueError(
                f"{path} has a non-list 'history' "
                f"({type(history).__name__}); fix or move the file, then re-run"
            )
        return history
    # Pre-history single-point file: keep it as the first entry.
    legacy = dict(existing)
    legacy.pop("benchmark", None)
    return [legacy]


def save_history(path: Union[str, Path], history: list, tag: str) -> Path:
    """Atomically write ``history`` to ``path`` in the canonical document shape.

    Histories accumulate across runs, so a crash mid-write must never clobber
    the recorded trajectory: the document is staged in a temp file and
    ``os.replace``d into place.
    """
    return atomic_write_text(
        path, json.dumps({"benchmark": tag, "history": history}, indent=2) + "\n"
    )


def bench_path(section: str, directory: Union[str, Path]) -> Path:
    """The history file of ``section`` under ``directory``."""
    _require_section(section)
    return Path(directory) / f"BENCH_{section}.json"


def bench_tag(section: str) -> str:
    """The document tag of ``section`` (``dispatch`` keeps its legacy tag)."""
    _require_section(section)
    return f"{section}-hot-path"


def _require_section(section: str) -> None:
    if section not in SECTIONS:
        raise ValueError(f"unknown bench section {section!r}; choose from {SECTIONS}")


# ---------------------------------------------------------------------- #
# point identity: machine, scale, throughput
# ---------------------------------------------------------------------- #
def machine_stamp() -> Dict[str, Any]:
    """The recording machine, in the shape every history point carries."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def machine_key(point: Dict[str, Any]) -> Optional[Tuple[str, str, Any]]:
    """Hardware-comparability key of a history point (``None`` if unstamped).

    Two points are throughput-comparable only when platform, interpreter
    implementation and CPU count all match; the Python patch version is
    deliberately excluded (3.12.1 vs 3.12.2 runs stay comparable).
    """
    machine = point.get("machine")
    if not isinstance(machine, dict):
        return None
    try:
        return (
            str(machine["platform"]),
            str(machine["implementation"]),
            machine["cpu_count"],
        )
    except KeyError:
        return None


def point_scale(point: Dict[str, Any]) -> Optional[Tuple[int, int]]:
    """``(num_racks, num_packets)`` of a history point (``None`` if unknown).

    Understands both the sectioned schema (``cell.num_packets``) and the
    legacy dispatch points (packet count under ``single_run``).
    """
    cell = point.get("cell")
    if not isinstance(cell, dict):
        return None
    racks = cell.get("num_racks")
    packets = cell.get("num_packets")
    if packets is None:
        single = point.get("single_run")
        if isinstance(single, dict):
            packets = single.get("num_packets")
    if racks is None or packets is None:
        return None
    return int(racks), int(packets)


def point_throughput(point: Dict[str, Any]) -> Optional[float]:
    """The packets/sec headline of a history point (``None`` if unknown)."""
    value = point.get("throughput_pps")
    if value is None:
        single = point.get("single_run")
        if isinstance(single, dict):
            value = single.get("packets_per_s_indexed")
    return None if value is None else float(value)


def validate_point(point: Dict[str, Any]) -> List[str]:
    """Schema problems of a sectioned history point (empty list = valid)."""
    problems: List[str] = []
    if point.get("schema") != POINT_SCHEMA:
        problems.append(f"schema must be {POINT_SCHEMA}, got {point.get('schema')!r}")
    if point.get("section") not in SECTIONS:
        problems.append(f"unknown section {point.get('section')!r}")
    if machine_key(point) is None:
        problems.append("missing or incomplete machine stamp")
    if point_scale(point) is None:
        problems.append("missing cell scale (num_racks / num_packets)")
    throughput = point_throughput(point)
    if throughput is None or throughput <= 0:
        problems.append(f"throughput_pps must be positive, got {throughput!r}")
    if point.get("bit_identical") is not True:
        problems.append("bit_identical is not true")
    if not isinstance(point.get("recorded_at"), str):
        problems.append("missing recorded_at timestamp")
    return problems


# ---------------------------------------------------------------------- #
# the regression gate
# ---------------------------------------------------------------------- #
def check_history(
    history: List[Dict[str, Any]],
    point: Dict[str, Any],
    tolerance: float,
) -> Tuple[bool, str]:
    """Gate ``point`` against the best comparable prior point of ``history``.

    Pure function of its inputs: compares throughput only against prior
    points with the same :func:`machine_key` AND the same
    :func:`point_scale`; passes (with an explanatory message) when no prior
    point is comparable.  Fails when the new throughput is more than
    ``tolerance`` (a fraction, e.g. ``0.3`` = 30%) below the comparable
    best.
    """
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must lie in [0, 1), got {tolerance}")
    throughput = point_throughput(point)
    if throughput is None:
        return False, "new point carries no throughput_pps"
    key = machine_key(point)
    scale = point_scale(point)
    comparable = [
        prior
        for prior in history
        if machine_key(prior) == key
        and point_scale(prior) == scale
        and point_throughput(prior) is not None
    ]
    if not comparable:
        return True, (
            f"no comparable prior point (machine {key!r} at scale {scale!r}); "
            f"recorded {throughput:.1f} packets/s as the new baseline"
        )
    best = max(point_throughput(prior) for prior in comparable)
    floor = best * (1.0 - tolerance)
    if throughput >= floor:
        return True, (
            f"{throughput:.1f} packets/s vs best comparable {best:.1f} "
            f"(floor {floor:.1f} at {tolerance:.0%} tolerance): OK"
        )
    return False, (
        f"REGRESSION: {throughput:.1f} packets/s is below the floor "
        f"{floor:.1f} ({tolerance:.0%} under the best comparable prior "
        f"point {best:.1f} from {len(comparable)} comparable points)"
    )


# ---------------------------------------------------------------------- #
# seeded cells and timed runs (moved from scripts/bench_dispatch.py)
# ---------------------------------------------------------------------- #
def build_cell(num_racks: int, num_packets: int, seed: int, delay: int = 1):
    """The seeded dense-contention cell shared with benchmarks E15/E16.

    ``delay`` is the uniform reconfigurable-edge delay ``d(e)``: every
    dispatched packet splits into ``d(e)`` chunks, so raising it densifies
    the pending pool without adding dispatch work — the scheduler-phase
    stress knob.
    """
    start = time.perf_counter()
    topology = projector_fabric(
        num_racks=num_racks,
        lasers_per_rack=2,
        photodetectors_per_rack=2,
        delay=delay,
        seed=seed,
    )
    packets = list(
        iter_contention_hotspot_workload(
            topology,
            num_packets=num_packets,
            side="receiver",
            hot_fraction=0.95,
            arrival_rate=8.0,
            weight_sampler=uniform_weights(1, 10),
            seed=seed + 1,
        )
    )
    return topology, packets, time.perf_counter() - start


def build_saturated_cell(num_racks: int, num_packets: int, seed: int, delay: int = 1):
    """The saturated-pairs cell shared with benchmark E17.

    Eight node-disjoint hot edges the matching serves every slot, each with
    a pending queue hundreds of chunks deep — the worst case for the
    indexed engine's per-edge queue snapshot, which the transmit section is
    meant to stress.
    """
    start = time.perf_counter()
    topology = projector_fabric(
        num_racks=num_racks,
        lasers_per_rack=2,
        photodetectors_per_rack=2,
        delay=delay,
        seed=seed,
    )
    packets = list(
        iter_saturated_pairs_workload(
            topology,
            num_packets=num_packets,
            num_pairs=8,
            hot_fraction=0.95,
            arrival_rate=8.0,
            weight_sampler=uniform_weights(1, 10),
            seed=seed + 1,
        )
    )
    return topology, packets, time.perf_counter() - start


def time_single(topology, packets, engine_mode: str, incremental: bool = True):
    """One ALG run; returns (seconds, summary)."""
    start = time.perf_counter()
    result = simulate(
        topology,
        OpportunisticLinkScheduler(incremental_scheduler=incremental),
        packets,
        engine=engine_mode,
        max_slots=10_000_000,
    )
    return time.perf_counter() - start, result.summary()


def time_single_phases(topology, packets, engine_mode: str, incremental: bool):
    """One instrumented ALG run; returns (seconds, phase timings, summary)."""
    policy, timings = timed_policy(
        OpportunisticLinkScheduler(incremental_scheduler=incremental)
    )
    start = time.perf_counter()
    result = simulate(
        topology, policy, packets, engine=engine_mode, max_slots=10_000_000
    )
    return time.perf_counter() - start, timings, result.summary()


def time_multi(topology, packets, engine_mode: str, share: bool):
    """Four ALG lanes through run_multi; returns (seconds, summaries, memo stats)."""
    engine = SimulationEngine(
        topology,
        config=EngineConfig(
            engine=engine_mode, share_dispatch=share, max_slots=10_000_000
        ),
    )
    lanes = {f"alg{i}": OpportunisticLinkScheduler() for i in range(NUM_LANES)}
    start = time.perf_counter()
    results = engine.run_multi(packets, lanes)
    elapsed = time.perf_counter() - start
    summaries = {name: res.summary() for name, res in results.items()}
    return elapsed, summaries, engine.last_shared_dispatch_stats


# ---------------------------------------------------------------------- #
# section runners
# ---------------------------------------------------------------------- #
class BenchBitIdentityError(AssertionError):
    """A benchmark configuration diverged from its reference run."""


def _require_identical(section: str, what: str, left, right) -> None:
    if left != right:
        raise BenchBitIdentityError(
            f"bench section {section!r}: {what} diverged from the reference — "
            "timings are untrustworthy; fix the engines before benchmarking"
        )


def _point(
    section: str,
    racks: int,
    packets: int,
    seed: int,
    delay: int,
    throughput: float,
    speedup: float,
    details: Dict[str, Any],
) -> Dict[str, Any]:
    return {
        "schema": POINT_SCHEMA,
        "section": section,
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "machine": machine_stamp(),
        "cell": {
            "topology": "projector",
            "num_racks": racks,
            "num_packets": packets,
            "edge_delay": delay,
            "seed": seed,
        },
        "throughput_pps": round(throughput, 1),
        "speedup": round(speedup, 2),
        "bit_identical": True,
        "details": details,
    }


def run_section(
    section: str,
    packets: Optional[int] = None,
    racks: int = 16,
    seed: int = 15,
) -> Dict[str, Any]:
    """Run one named section and return its (schema-valid) history point.

    Every section verifies summary bit-identity between its optimised and
    reference configurations before reporting; a divergence raises
    :class:`BenchBitIdentityError` instead of recording a lie.
    """
    _require_section(section)
    default_packets, delay = _SECTION_DEFAULTS[section]
    num_packets = default_packets if packets is None else packets

    if section == "dispatch":
        topology, cell_packets, gen_s = build_cell(racks, num_packets, seed)
        ref_s, ref_summary = time_single(topology, cell_packets, "reference")
        idx_s, idx_summary = time_single(topology, cell_packets, "indexed")
        _require_identical(section, "indexed summary", idx_summary, ref_summary)
        return _point(
            section, racks, len(cell_packets), seed, delay,
            throughput=len(cell_packets) / idx_s,
            speedup=ref_s / idx_s,
            details={
                "workload_generation_s": round(gen_s, 4),
                "reference_s": round(ref_s, 4),
                "indexed_s": round(idx_s, 4),
                "packets_per_s_reference": round(len(cell_packets) / ref_s, 1),
            },
        )

    if section == "scheduler":
        topology, cell_packets, gen_s = build_cell(racks, num_packets, seed, delay=delay)
        incr_s, incr_summary = time_single(topology, cell_packets, "indexed")
        flat_s, flat_summary = time_single(
            topology, cell_packets, "indexed", incremental=False
        )
        _require_identical(section, "flat-scheduler summary", flat_summary, incr_summary)
        return _point(
            section, racks, len(cell_packets), seed, delay,
            throughput=len(cell_packets) / incr_s,
            speedup=flat_s / incr_s,
            details={
                "workload_generation_s": round(gen_s, 4),
                "flat_s": round(flat_s, 4),
                "incremental_s": round(incr_s, 4),
            },
        )

    if section == "transmit":
        topology, cell_packets, gen_s = build_saturated_cell(
            racks, num_packets, seed, delay=delay
        )
        idx_s, idx_phases, idx_summary = time_single_phases(
            topology, cell_packets, "indexed", incremental=True
        )
        vec_s, vec_phases, vec_summary = time_single_phases(
            topology, cell_packets, "vectorized", incremental=True
        )
        _require_identical(section, "vectorized summary", vec_summary, idx_summary)
        phase_speedup = (
            idx_phases.transmit_s / vec_phases.transmit_s
            if vec_phases.transmit_s > 0
            else 1.0
        )
        return _point(
            section, racks, len(cell_packets), seed, delay,
            throughput=len(cell_packets) / vec_s,
            speedup=idx_s / vec_s,
            details={
                "workload_generation_s": round(gen_s, 4),
                "indexed_s": round(idx_s, 4),
                "vectorized_s": round(vec_s, 4),
                "indexed_transmit_s": round(idx_phases.transmit_s, 4),
                "vectorized_transmit_s": round(vec_phases.transmit_s, 4),
                "transmit_phase_speedup": round(phase_speedup, 2),
            },
        )

    if section == "run_multi":
        topology, cell_packets, gen_s = build_cell(racks, num_packets, seed)
        per_lane_s, per_lane_summaries, _ = time_multi(
            topology, cell_packets, "reference", share=False
        )
        shared_s, shared_summaries, memo_stats = time_multi(
            topology, cell_packets, "indexed", share=True
        )
        _require_identical(
            section, "shared-dispatch summaries", shared_summaries, per_lane_summaries
        )
        return _point(
            section, racks, len(cell_packets), seed, delay,
            throughput=len(cell_packets) * NUM_LANES / shared_s,
            speedup=per_lane_s / shared_s,
            details={
                "workload_generation_s": round(gen_s, 4),
                "num_lanes": NUM_LANES,
                "per_lane_reference_s": round(per_lane_s, 4),
                "shared_indexed_s": round(shared_s, 4),
                "memo": memo_stats,
            },
        )

    # streaming: full-retention list input vs aggregate retention consuming
    # the generator lazily — same summary, O(active chunks) memory.
    topology, cell_packets, gen_s = build_cell(racks, num_packets, seed)
    start = time.perf_counter()
    full = simulate(
        topology,
        OpportunisticLinkScheduler(),
        cell_packets,
        engine="indexed",
        max_slots=10_000_000,
    )
    full_s = time.perf_counter() - start
    stream = iter_contention_hotspot_workload(
        topology,
        num_packets=num_packets,
        side="receiver",
        hot_fraction=0.95,
        arrival_rate=8.0,
        weight_sampler=uniform_weights(1, 10),
        seed=seed + 1,
    )
    start = time.perf_counter()
    agg = simulate(
        topology,
        OpportunisticLinkScheduler(),
        stream,
        engine="indexed",
        retention="aggregate",
        max_slots=10_000_000,
    )
    agg_s = time.perf_counter() - start
    _require_identical(section, "aggregate summary", agg.summary(), full.summary())
    return _point(
        section, racks, len(cell_packets), seed, delay,
        throughput=len(cell_packets) / agg_s,
        speedup=full_s / agg_s,
        details={
            "workload_generation_s": round(gen_s, 4),
            "full_retention_s": round(full_s, 4),
            "aggregate_retention_s": round(agg_s, 4),
        },
    )


# ---------------------------------------------------------------------- #
# trend reporting
# ---------------------------------------------------------------------- #
def render_report(directory: Union[str, Path]) -> str:
    """A plain-text trend report over every section history under ``directory``."""
    lines: List[str] = []
    for section in SECTIONS:
        path = bench_path(section, directory)
        try:
            history = load_history(path)
        except ValueError as exc:
            lines.append(f"{section}: UNREADABLE ({exc})")
            continue
        if not history:
            lines.append(f"{section}: no history ({path.name} absent)")
            continue
        lines.append(f"{section} ({path.name}, {len(history)} points):")
        for point in history:
            recorded = point.get("recorded_at", "?")
            throughput = point_throughput(point)
            scale = point_scale(point)
            speedup = point.get("speedup")
            if speedup is None and isinstance(point.get("single_run"), dict):
                speedup = point["single_run"].get("speedup")
            pps = f"{throughput:10.1f} pps" if throughput is not None else "         ? pps"
            spd = f"{float(speedup):5.2f}x" if speedup is not None else "    ?x"
            scl = f"{scale[0]}r/{scale[1]}p" if scale is not None else "?"
            lines.append(f"  {recorded:>25}  {pps}  {spd}  [{scl}]")
    return "\n".join(lines)
