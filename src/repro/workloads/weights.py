"""Packet-weight distributions.

The paper treats packet weights as given (they encode flow priority or, after
the standard reduction, the per-unit weight of a larger flow).  The
experimental evaluation uses several weight models commonly assumed for
datacenter traffic: constant, uniform, Pareto-like heavy-tailed, and the
bimodal elephant/mice split.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import WorkloadError
from repro.utils.rng import RngLike, as_rng

__all__ = [
    "WeightSampler",
    "constant_weights",
    "uniform_weights",
    "pareto_weights",
    "bimodal_weights",
]

#: A weight sampler maps a Generator to one positive float sample.
WeightSampler = Callable[[np.random.Generator], float]


def constant_weights(value: float = 1.0) -> WeightSampler:
    """All packets share the same positive weight ``value``."""
    if value <= 0:
        raise WorkloadError(f"weight must be positive, got {value}")

    def sample(_rng: np.random.Generator) -> float:
        return float(value)

    return sample


def uniform_weights(low: float = 1.0, high: float = 10.0) -> WeightSampler:
    """Weights drawn uniformly from ``[low, high]``."""
    if not 0 < low <= high:
        raise WorkloadError(f"need 0 < low <= high, got low={low}, high={high}")

    def sample(rng: np.random.Generator) -> float:
        return float(rng.uniform(low, high))

    return sample


def pareto_weights(shape: float = 1.5, scale: float = 1.0, cap: float = 1000.0) -> WeightSampler:
    """Heavy-tailed weights ``scale · (1 + Pareto(shape))`` capped at ``cap``.

    Models the skewed flow-size distributions reported for datacenter traffic
    (a few very heavy elephants, many light mice).
    """
    if shape <= 0 or scale <= 0 or cap <= 0:
        raise WorkloadError("pareto shape, scale and cap must be positive")

    def sample(rng: np.random.Generator) -> float:
        return float(min(scale * (1.0 + rng.pareto(shape)), cap))

    return sample


def bimodal_weights(
    heavy_weight: float = 20.0,
    light_weight: float = 1.0,
    heavy_fraction: float = 0.1,
) -> WeightSampler:
    """Elephant/mice mixture: weight ``heavy_weight`` with prob. ``heavy_fraction``."""
    if heavy_weight <= 0 or light_weight <= 0:
        raise WorkloadError("weights must be positive")
    if not 0 <= heavy_fraction <= 1:
        raise WorkloadError(f"heavy_fraction must lie in [0,1], got {heavy_fraction}")

    def sample(rng: np.random.Generator) -> float:
        return float(heavy_weight if rng.random() < heavy_fraction else light_weight)

    return sample
