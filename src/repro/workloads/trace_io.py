"""Reading and writing packet traces as CSV files.

The trace format is a plain CSV with header
``packet_id,source,destination,weight,arrival`` — small enough to inspect by
hand, and sufficient to replay any workload deterministically (packet ids
encode the dispatch order).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import List, Sequence, Union

from repro.core.packet import Packet
from repro.exceptions import WorkloadError

__all__ = ["write_packet_trace", "read_packet_trace", "TRACE_FIELDS"]

TRACE_FIELDS = ("packet_id", "source", "destination", "weight", "arrival")


def write_packet_trace(packets: Sequence[Packet], path: Union[str, Path]) -> Path:
    """Write ``packets`` to ``path`` in CSV trace format and return the path."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(TRACE_FIELDS)
        for p in sorted(packets, key=lambda pkt: pkt.packet_id):
            writer.writerow([p.packet_id, p.source, p.destination, repr(p.weight), p.arrival])
    return path


def read_packet_trace(path: Union[str, Path]) -> List[Packet]:
    """Read a CSV packet trace previously written by :func:`write_packet_trace`."""
    path = Path(path)
    packets: List[Packet] = []
    with path.open("r", newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or tuple(reader.fieldnames) != TRACE_FIELDS:
            raise WorkloadError(
                f"trace {path} has header {reader.fieldnames!r}; expected {TRACE_FIELDS!r}"
            )
        for line_number, row in enumerate(reader, start=2):
            try:
                packets.append(
                    Packet(
                        packet_id=int(row["packet_id"]),
                        source=row["source"],
                        destination=row["destination"],
                        weight=float(row["weight"]),
                        arrival=int(row["arrival"]),
                    )
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise WorkloadError(f"invalid trace row at {path}:{line_number}: {exc}") from exc
    ids = [p.packet_id for p in packets]
    if len(set(ids)) != len(ids):
        raise WorkloadError(f"trace {path} contains duplicate packet ids")
    return packets
