"""Reading and writing packet traces.

Two on-disk formats are supported:

* **CSV** — header ``packet_id,source,destination,weight,arrival``; small
  enough to inspect by hand, and sufficient to replay any workload
  deterministically (packet ids encode the dispatch order).
* **JSON Lines** (``*.jsonl``) — one JSON object per packet, written
  append-per-packet from any iterable (including a lazy generator) and read
  back lazily in chunks, so million-packet traces never need to be resident
  in memory on either side.

Both formats offer a materialising reader (full validation, arbitrary row
order) and a lazy ``iter_*`` reader.  The lazy readers keep O(1) state and
therefore enforce the canonical streaming order instead of the global
duplicate-id scan: packet ids must be strictly increasing and arrivals
non-decreasing — exactly what :func:`write_packet_trace` /
:func:`write_packet_trace_jsonl` emit.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Union

from repro.core.packet import Packet
from repro.exceptions import WorkloadError
from repro.utils.jsonl import iter_json_lines

__all__ = [
    "write_packet_trace",
    "read_packet_trace",
    "iter_packet_trace",
    "write_packet_trace_jsonl",
    "read_packet_trace_jsonl",
    "iter_packet_trace_jsonl",
    "iter_packet_trace_chunks",
    "TRACE_FIELDS",
]

TRACE_FIELDS = ("packet_id", "source", "destination", "weight", "arrival")


def write_packet_trace(packets: Sequence[Packet], path: Union[str, Path]) -> Path:
    """Write ``packets`` to ``path`` in CSV trace format and return the path."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(TRACE_FIELDS)
        for p in sorted(packets, key=lambda pkt: pkt.packet_id):
            writer.writerow([p.packet_id, p.source, p.destination, repr(p.weight), p.arrival])
    return path


def _packet_from_row(row: dict, path: Path, line_number: int) -> Packet:
    try:
        return Packet(
            packet_id=int(row["packet_id"]),
            source=row["source"],
            destination=row["destination"],
            weight=float(row["weight"]),
            arrival=int(row["arrival"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkloadError(f"invalid trace row at {path}:{line_number}: {exc}") from exc


def read_packet_trace(path: Union[str, Path]) -> List[Packet]:
    """Read a CSV packet trace previously written by :func:`write_packet_trace`."""
    path = Path(path)
    packets: List[Packet] = []
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or tuple(reader.fieldnames) != TRACE_FIELDS:
            raise WorkloadError(
                f"trace {path} has header {reader.fieldnames!r}; expected {TRACE_FIELDS!r}"
            )
        for line_number, row in enumerate(reader, start=2):
            packets.append(_packet_from_row(row, path, line_number))
    ids = [p.packet_id for p in packets]
    if len(set(ids)) != len(ids):
        raise WorkloadError(f"trace {path} contains duplicate packet ids")
    return packets


def _check_stream_order(packet: Packet, last_id: int, last_arrival: int, path: Path, line: int) -> None:
    if packet.packet_id <= last_id:
        raise WorkloadError(
            f"trace {path}:{line}: packet ids must be strictly increasing for "
            f"streamed reading (got {packet.packet_id} after {last_id}); use the "
            "materialising reader for unordered traces"
        )
    if packet.arrival < last_arrival:
        raise WorkloadError(
            f"trace {path}:{line}: arrivals must be non-decreasing for streamed "
            f"reading (got slot {packet.arrival} after slot {last_arrival})"
        )


def iter_packet_trace(path: Union[str, Path]) -> Iterator[Packet]:
    """Lazily read a CSV packet trace, one packet at a time.

    The streaming counterpart of :func:`read_packet_trace`: suitable for
    replaying traces far larger than memory directly into the engine's
    aggregate-retention path.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or tuple(reader.fieldnames) != TRACE_FIELDS:
            raise WorkloadError(
                f"trace {path} has header {reader.fieldnames!r}; expected {TRACE_FIELDS!r}"
            )
        last_id, last_arrival = -1, 0
        for line_number, row in enumerate(reader, start=2):
            packet = _packet_from_row(row, path, line_number)
            _check_stream_order(packet, last_id, last_arrival, path, line_number)
            last_id, last_arrival = packet.packet_id, packet.arrival
            yield packet


# ---------------------------------------------------------------------- #
# JSON Lines packet traces
# ---------------------------------------------------------------------- #
def write_packet_trace_jsonl(packets: Iterable[Packet], path: Union[str, Path]) -> Path:
    """Stream ``packets`` to ``path`` as JSON Lines and return the path.

    Unlike the CSV writer this accepts any iterable — including a lazy
    workload generator — and appends one line per packet without ever
    materialising the sequence.
    """
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        for p in packets:
            json.dump(
                {
                    "packet_id": p.packet_id,
                    "source": p.source,
                    "destination": p.destination,
                    "weight": p.weight,
                    "arrival": p.arrival,
                },
                handle,
                separators=(",", ":"),
            )
            handle.write("\n")
    return path


def iter_packet_trace_jsonl(path: Union[str, Path], chunk_size: int = 4096) -> Iterator[Packet]:
    """Lazily read a JSONL packet trace written by :func:`write_packet_trace_jsonl`.

    Lines are consumed in chunks of ``chunk_size`` to amortise IO; only one
    chunk of packets is resident at a time.
    """
    for chunk in iter_packet_trace_chunks(path, chunk_size=chunk_size):
        yield from chunk


def iter_packet_trace_chunks(
    path: Union[str, Path], chunk_size: int = 4096
) -> Iterator[List[Packet]]:
    """Read a JSONL packet trace as successive lists of ``chunk_size`` packets."""
    if chunk_size < 1:
        raise WorkloadError(f"chunk_size must be >= 1, got {chunk_size}")
    path = Path(path)
    last_id, last_arrival = -1, 0
    chunk: List[Packet] = []
    for line_number, row in iter_json_lines(path, WorkloadError):
        packet = _packet_from_row(row, path, line_number)
        _check_stream_order(packet, last_id, last_arrival, path, line_number)
        last_id, last_arrival = packet.packet_id, packet.arrival
        chunk.append(packet)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def read_packet_trace_jsonl(path: Union[str, Path]) -> List[Packet]:
    """Materialise a JSONL packet trace as a list.

    Like :func:`read_packet_trace` this accepts rows in arbitrary order and
    performs the global duplicate-id check, so hand-edited or
    externally-produced traces replay fine (the ``iter_*`` readers are the
    ones that require the canonical streaming order).
    """
    path = Path(path)
    packets: List[Packet] = []
    for line_number, row in iter_json_lines(path, WorkloadError):
        packets.append(_packet_from_row(row, path, line_number))
    ids = [p.packet_id for p in packets]
    if len(set(ids)) != len(ids):
        raise WorkloadError(f"trace {path} contains duplicate packet ids")
    return packets
