"""Spatially structured synthetic workloads.

Each generator combines a spatial pattern over the routable (source,
destination) pairs of a topology with an arrival process and a weight
distribution.  Every generator exists in two forms sharing one
implementation: an ``iter_*`` generator yielding
:class:`~repro.core.packet.Packet` objects lazily in arrival order (ids
assigned in dispatch order, O(1) memory in the packet count — the form the
streaming engine consumes), and the original list-returning function, a thin
materialising wrapper.  For a fixed seed both forms produce identical packet
sequences.

Random draws are made per packet, interleaved as (arrival gap, spatial
choice, weight), so the stream consumed so far fully determines the RNG
state — the property that lets the lazy and materialised forms coincide.
(Note: this interleaving changed the per-seed packet sequences of the
rate-driven generators relative to the pre-streaming bulk-draw code;
explicit ``arrivals`` lists and deterministic arrivals are unaffected.)
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.packet import Packet
from repro.exceptions import WorkloadError
from repro.network.topology import TwoTierTopology
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int
from repro.workloads.arrival import resolve_arrival_stream
from repro.workloads.base import (
    PacketSpec,
    build_packets,
    normalize_arrival,
    routable_pairs,
    stream_packets,
)
from repro.workloads.weights import WeightSampler, constant_weights

__all__ = [
    "uniform_random_workload",
    "permutation_workload",
    "all_to_all_workload",
    "hotspot_workload",
    "iter_uniform_random_workload",
    "iter_permutation_workload",
    "iter_all_to_all_workload",
    "iter_hotspot_workload",
]


def _resolve_pairs(
    topology: TwoTierTopology, pairs: Optional[Sequence[Tuple[str, str]]]
) -> List[Tuple[str, str]]:
    resolved = list(pairs) if pairs is not None else routable_pairs(topology)
    if not resolved:
        raise WorkloadError(f"topology {topology.name!r} has no routable (source, destination) pairs")
    for (s, d) in resolved:
        if not topology.can_route(s, d):
            raise WorkloadError(f"pair ({s!r}, {d!r}) is not routable on {topology.name!r}")
    return resolved


def iter_uniform_random_workload(
    topology: TwoTierTopology,
    num_packets: int,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_rate: Optional[float] = None,
    arrivals: Optional[Sequence[int]] = None,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    seed: RngLike = None,
) -> Iterator[Packet]:
    """Lazily yield packets over uniformly random routable pairs.

    Parameters
    ----------
    num_packets:
        Number of packets to generate.
    weight_sampler:
        Weight distribution (default: all weights 1).
    arrival_rate:
        If given, Poisson arrivals with this per-slot rate; otherwise one
        packet per slot unless explicit ``arrivals`` are supplied.
    arrivals:
        Explicit arrival slots (overrides ``arrival_rate``).
    pairs:
        Restrict the spatial pattern to these pairs (default: all routable).
    """
    n = check_positive_int(num_packets, "num_packets")
    rng = as_rng(seed)
    sampler = weight_sampler or constant_weights(1.0)
    candidates = _resolve_pairs(topology, pairs)
    slots = resolve_arrival_stream(n, arrivals, arrival_rate, rng)

    def specs() -> Iterator[PacketSpec]:
        for arrival in islice(slots, n):
            s, d = candidates[int(rng.integers(len(candidates)))]
            yield PacketSpec(source=s, destination=d, weight=sampler(rng), arrival=arrival)

    if arrivals is not None:
        normalized = [normalize_arrival(a) for a in arrivals]
        if any(b < a for a, b in zip(normalized, normalized[1:])):
            # A stream cannot be globally sorted, but an explicit arrival
            # list is already O(n) resident — keep the historical behaviour
            # and order the packets through the sorting materialiser.
            return iter(build_packets(list(specs())))
    return stream_packets(specs())


def uniform_random_workload(
    topology: TwoTierTopology,
    num_packets: int,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_rate: Optional[float] = None,
    arrivals: Optional[Sequence[int]] = None,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    seed: RngLike = None,
) -> List[Packet]:
    """Materialised form of :func:`iter_uniform_random_workload`."""
    return list(
        iter_uniform_random_workload(
            topology,
            num_packets,
            weight_sampler=weight_sampler,
            arrival_rate=arrival_rate,
            arrivals=arrivals,
            pairs=pairs,
            seed=seed,
        )
    )


def iter_permutation_workload(
    topology: TwoTierTopology,
    num_packets: int,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_rate: Optional[float] = None,
    seed: RngLike = None,
) -> Iterator[Packet]:
    """Lazily yield traffic following a random source→destination permutation.

    Each source is paired with a single destination (a random perfect matching
    on the routable demand graph obtained greedily); all of a source's packets
    go to its matched destination.  Permutation traffic is the canonical
    stress pattern for switch scheduling.
    """
    n = check_positive_int(num_packets, "num_packets")
    rng = as_rng(seed)
    sampler = weight_sampler or constant_weights(1.0)
    pairs = routable_pairs(topology)
    if not pairs:
        raise WorkloadError("topology has no routable pairs")

    by_source: dict[str, List[str]] = {}
    for s, d in pairs:
        by_source.setdefault(s, []).append(d)
    sources = list(by_source)
    rng.shuffle(sources)
    used_destinations: set[str] = set()
    mapping: List[Tuple[str, str]] = []
    for s in sources:
        options = [d for d in by_source[s] if d not in used_destinations]
        if not options:
            options = by_source[s]
        d = options[int(rng.integers(len(options)))]
        used_destinations.add(d)
        mapping.append((s, d))

    slots = resolve_arrival_stream(n, None, arrival_rate, rng)

    def specs() -> Iterator[PacketSpec]:
        for arrival in islice(slots, n):
            s, d = mapping[int(rng.integers(len(mapping)))]
            yield PacketSpec(source=s, destination=d, weight=sampler(rng), arrival=arrival)

    return stream_packets(specs())


def permutation_workload(
    topology: TwoTierTopology,
    num_packets: int,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_rate: Optional[float] = None,
    seed: RngLike = None,
) -> List[Packet]:
    """Materialised form of :func:`iter_permutation_workload`."""
    return list(
        iter_permutation_workload(
            topology,
            num_packets,
            weight_sampler=weight_sampler,
            arrival_rate=arrival_rate,
            seed=seed,
        )
    )


def iter_all_to_all_workload(
    topology: TwoTierTopology,
    packets_per_pair: int = 1,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_slot: int = 1,
    seed: RngLike = None,
) -> Iterator[Packet]:
    """Lazily yield ``packets_per_pair`` packets per routable pair, all at one slot.

    This is the shuffle/all-to-all pattern of distributed analytics jobs and a
    worst case for per-slot matchings (every transmitter and receiver is
    contended).
    """
    k = check_positive_int(packets_per_pair, "packets_per_pair")
    if arrival_slot < 1:
        raise WorkloadError(f"arrival_slot must be >= 1, got {arrival_slot}")
    rng = as_rng(seed)
    sampler = weight_sampler or constant_weights(1.0)
    pairs = routable_pairs(topology)
    if not pairs:
        raise WorkloadError("topology has no routable pairs")

    def specs() -> Iterator[PacketSpec]:
        for (s, d) in pairs:
            for _ in range(k):
                yield PacketSpec(
                    source=s, destination=d, weight=sampler(rng), arrival=arrival_slot
                )

    return stream_packets(specs())


def all_to_all_workload(
    topology: TwoTierTopology,
    packets_per_pair: int = 1,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_slot: int = 1,
    seed: RngLike = None,
) -> List[Packet]:
    """Materialised form of :func:`iter_all_to_all_workload`."""
    return list(
        iter_all_to_all_workload(
            topology,
            packets_per_pair=packets_per_pair,
            weight_sampler=weight_sampler,
            arrival_slot=arrival_slot,
            seed=seed,
        )
    )


def iter_hotspot_workload(
    topology: TwoTierTopology,
    num_packets: int,
    num_hotspots: int = 1,
    hotspot_fraction: float = 0.7,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_rate: Optional[float] = None,
    seed: RngLike = None,
) -> Iterator[Packet]:
    """Lazily yield traffic concentrated on a few hot destinations (incast-style skew).

    A fraction ``hotspot_fraction`` of packets is directed at ``num_hotspots``
    randomly chosen destinations; the rest is uniform over all routable pairs.
    """
    n = check_positive_int(num_packets, "num_packets")
    h = check_positive_int(num_hotspots, "num_hotspots")
    if not 0 <= hotspot_fraction <= 1:
        raise WorkloadError(f"hotspot_fraction must lie in [0,1], got {hotspot_fraction}")
    rng = as_rng(seed)
    sampler = weight_sampler or constant_weights(1.0)
    pairs = routable_pairs(topology)
    if not pairs:
        raise WorkloadError("topology has no routable pairs")

    destinations = sorted({d for (_s, d) in pairs})
    rng.shuffle(destinations)
    hot = set(destinations[: min(h, len(destinations))])
    hot_pairs = [p for p in pairs if p[1] in hot]
    slots = resolve_arrival_stream(n, None, arrival_rate, rng)

    def specs() -> Iterator[PacketSpec]:
        for arrival in islice(slots, n):
            if hot_pairs and rng.random() < hotspot_fraction:
                s, d = hot_pairs[int(rng.integers(len(hot_pairs)))]
            else:
                s, d = pairs[int(rng.integers(len(pairs)))]
            yield PacketSpec(source=s, destination=d, weight=sampler(rng), arrival=arrival)

    return stream_packets(specs())


def hotspot_workload(
    topology: TwoTierTopology,
    num_packets: int,
    num_hotspots: int = 1,
    hotspot_fraction: float = 0.7,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_rate: Optional[float] = None,
    seed: RngLike = None,
) -> List[Packet]:
    """Materialised form of :func:`iter_hotspot_workload`."""
    return list(
        iter_hotspot_workload(
            topology,
            num_packets,
            num_hotspots=num_hotspots,
            hotspot_fraction=hotspot_fraction,
            weight_sampler=weight_sampler,
            arrival_rate=arrival_rate,
            seed=seed,
        )
    )
