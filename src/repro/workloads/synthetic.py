"""Spatially structured synthetic workloads.

Each generator combines a spatial pattern over the routable (source,
destination) pairs of a topology with an arrival process and a weight
distribution, returning a list of :class:`~repro.core.packet.Packet` objects
ready for the simulation engine (ids assigned in dispatch order).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.packet import Packet
from repro.exceptions import WorkloadError
from repro.network.topology import TwoTierTopology
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int
from repro.workloads.arrival import deterministic_arrivals, poisson_arrivals
from repro.workloads.base import PacketSpec, build_packets, routable_pairs
from repro.workloads.weights import WeightSampler, constant_weights

__all__ = [
    "uniform_random_workload",
    "permutation_workload",
    "all_to_all_workload",
    "hotspot_workload",
]


def _resolve_pairs(
    topology: TwoTierTopology, pairs: Optional[Sequence[Tuple[str, str]]]
) -> List[Tuple[str, str]]:
    resolved = list(pairs) if pairs is not None else routable_pairs(topology)
    if not resolved:
        raise WorkloadError(f"topology {topology.name!r} has no routable (source, destination) pairs")
    for (s, d) in resolved:
        if not topology.can_route(s, d):
            raise WorkloadError(f"pair ({s!r}, {d!r}) is not routable on {topology.name!r}")
    return resolved


def _resolve_arrivals(
    num_packets: int,
    arrivals: Optional[Sequence[int]],
    arrival_rate: Optional[float],
    rng: np.random.Generator,
) -> List[int]:
    if arrivals is not None:
        if len(arrivals) != num_packets:
            raise WorkloadError(
                f"got {len(arrivals)} arrival times for {num_packets} packets"
            )
        return [int(a) for a in arrivals]
    if arrival_rate is not None:
        return poisson_arrivals(num_packets, arrival_rate, seed=rng)
    return deterministic_arrivals(num_packets, interval=1.0)


def uniform_random_workload(
    topology: TwoTierTopology,
    num_packets: int,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_rate: Optional[float] = None,
    arrivals: Optional[Sequence[int]] = None,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
    seed: RngLike = None,
) -> List[Packet]:
    """Packets over uniformly random routable pairs.

    Parameters
    ----------
    num_packets:
        Number of packets to generate.
    weight_sampler:
        Weight distribution (default: all weights 1).
    arrival_rate:
        If given, Poisson arrivals with this per-slot rate; otherwise one
        packet per slot unless explicit ``arrivals`` are supplied.
    arrivals:
        Explicit arrival slots (overrides ``arrival_rate``).
    pairs:
        Restrict the spatial pattern to these pairs (default: all routable).
    """
    n = check_positive_int(num_packets, "num_packets")
    rng = as_rng(seed)
    sampler = weight_sampler or constant_weights(1.0)
    candidates = _resolve_pairs(topology, pairs)
    slots = _resolve_arrivals(n, arrivals, arrival_rate, rng)

    specs = []
    for i in range(n):
        s, d = candidates[int(rng.integers(len(candidates)))]
        specs.append(PacketSpec(source=s, destination=d, weight=sampler(rng), arrival=slots[i]))
    return build_packets(specs)


def permutation_workload(
    topology: TwoTierTopology,
    num_packets: int,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_rate: Optional[float] = None,
    seed: RngLike = None,
) -> List[Packet]:
    """Traffic following a random source→destination permutation.

    Each source is paired with a single destination (a random perfect matching
    on the routable demand graph obtained greedily); all of a source's packets
    go to its matched destination.  Permutation traffic is the canonical
    stress pattern for switch scheduling.
    """
    n = check_positive_int(num_packets, "num_packets")
    rng = as_rng(seed)
    sampler = weight_sampler or constant_weights(1.0)
    pairs = routable_pairs(topology)
    if not pairs:
        raise WorkloadError("topology has no routable pairs")

    by_source: dict[str, List[str]] = {}
    for s, d in pairs:
        by_source.setdefault(s, []).append(d)
    sources = list(by_source)
    rng.shuffle(sources)
    used_destinations: set[str] = set()
    mapping: List[Tuple[str, str]] = []
    for s in sources:
        options = [d for d in by_source[s] if d not in used_destinations]
        if not options:
            options = by_source[s]
        d = options[int(rng.integers(len(options)))]
        used_destinations.add(d)
        mapping.append((s, d))

    slots = _resolve_arrivals(n, None, arrival_rate, rng)
    specs = []
    for i in range(n):
        s, d = mapping[int(rng.integers(len(mapping)))]
        specs.append(PacketSpec(source=s, destination=d, weight=sampler(rng), arrival=slots[i]))
    return build_packets(specs)


def all_to_all_workload(
    topology: TwoTierTopology,
    packets_per_pair: int = 1,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_slot: int = 1,
    seed: RngLike = None,
) -> List[Packet]:
    """Every routable pair receives ``packets_per_pair`` packets at the same slot.

    This is the shuffle/all-to-all pattern of distributed analytics jobs and a
    worst case for per-slot matchings (every transmitter and receiver is
    contended).
    """
    k = check_positive_int(packets_per_pair, "packets_per_pair")
    if arrival_slot < 1:
        raise WorkloadError(f"arrival_slot must be >= 1, got {arrival_slot}")
    rng = as_rng(seed)
    sampler = weight_sampler or constant_weights(1.0)
    specs = []
    for (s, d) in routable_pairs(topology):
        for _ in range(k):
            specs.append(
                PacketSpec(source=s, destination=d, weight=sampler(rng), arrival=arrival_slot)
            )
    if not specs:
        raise WorkloadError("topology has no routable pairs")
    return build_packets(specs)


def hotspot_workload(
    topology: TwoTierTopology,
    num_packets: int,
    num_hotspots: int = 1,
    hotspot_fraction: float = 0.7,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_rate: Optional[float] = None,
    seed: RngLike = None,
) -> List[Packet]:
    """Traffic concentrated on a few hot destinations (incast-style skew).

    A fraction ``hotspot_fraction`` of packets is directed at ``num_hotspots``
    randomly chosen destinations; the rest is uniform over all routable pairs.
    """
    n = check_positive_int(num_packets, "num_packets")
    h = check_positive_int(num_hotspots, "num_hotspots")
    if not 0 <= hotspot_fraction <= 1:
        raise WorkloadError(f"hotspot_fraction must lie in [0,1], got {hotspot_fraction}")
    rng = as_rng(seed)
    sampler = weight_sampler or constant_weights(1.0)
    pairs = routable_pairs(topology)
    if not pairs:
        raise WorkloadError("topology has no routable pairs")

    destinations = sorted({d for (_s, d) in pairs})
    rng.shuffle(destinations)
    hot = set(destinations[: min(h, len(destinations))])
    hot_pairs = [p for p in pairs if p[1] in hot]
    slots = _resolve_arrivals(n, None, arrival_rate, rng)

    specs = []
    for i in range(n):
        if hot_pairs and rng.random() < hotspot_fraction:
            s, d = hot_pairs[int(rng.integers(len(hot_pairs)))]
        else:
            s, d = pairs[int(rng.integers(len(pairs)))]
        specs.append(PacketSpec(source=s, destination=d, weight=sampler(rng), arrival=slots[i]))
    return build_packets(specs)
