"""Skewed (heavy-tailed) demand workloads.

Datacenter traffic is highly skewed: a small number of rack pairs carry most
of the bytes (the elephant flows the paper's introduction motivates routing
over opportunistic links).  The generators here produce Zipf-distributed pair
popularity and explicit elephant/mice mixtures; like the rest of the package
each exists as a lazy ``iter_*`` generator (O(1) memory in the packet count)
plus a thin materialising list wrapper.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, List, Optional

import numpy as np

from repro.core.packet import Packet
from repro.exceptions import WorkloadError
from repro.network.topology import TwoTierTopology
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive, check_positive_int
from repro.workloads.arrival import resolve_arrival_stream
from repro.workloads.base import PacketSpec, routable_pairs, stream_packets
from repro.workloads.weights import WeightSampler, constant_weights

__all__ = [
    "zipf_workload",
    "elephant_mice_workload",
    "zipf_pair_probabilities",
    "iter_zipf_workload",
    "iter_elephant_mice_workload",
]


def zipf_pair_probabilities(num_pairs: int, exponent: float) -> np.ndarray:
    """Zipf popularity vector ``p_k ∝ 1 / k^exponent`` over ``num_pairs`` ranks."""
    n = check_positive_int(num_pairs, "num_pairs")
    s = check_positive(exponent, "exponent")
    ranks = np.arange(1, n + 1, dtype=float)
    weights = 1.0 / np.power(ranks, s)
    return weights / weights.sum()


def iter_zipf_workload(
    topology: TwoTierTopology,
    num_packets: int,
    exponent: float = 1.2,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_rate: Optional[float] = None,
    seed: RngLike = None,
) -> Iterator[Packet]:
    """Lazily yield packets whose (source, destination) pair follows a Zipf law.

    Pairs are ranked in a random order and pair ``k`` receives probability
    proportional to ``1/k^exponent``; larger exponents concentrate traffic on
    fewer pairs (more skew).
    """
    n = check_positive_int(num_packets, "num_packets")
    rng = as_rng(seed)
    sampler = weight_sampler or constant_weights(1.0)
    pairs = routable_pairs(topology)
    if not pairs:
        raise WorkloadError("topology has no routable pairs")
    order = list(range(len(pairs)))
    rng.shuffle(order)
    ranked_pairs = [pairs[i] for i in order]
    probs = zipf_pair_probabilities(len(ranked_pairs), exponent)
    # Per-packet rank draws share one inverse-CDF lookup table.
    cdf = np.cumsum(probs)
    cdf[-1] = 1.0
    slots = resolve_arrival_stream(n, None, arrival_rate, rng)

    def specs() -> Iterator[PacketSpec]:
        for arrival in islice(slots, n):
            rank = int(np.searchsorted(cdf, rng.random(), side="right"))
            s, d = ranked_pairs[min(rank, len(ranked_pairs) - 1)]
            yield PacketSpec(source=s, destination=d, weight=sampler(rng), arrival=arrival)

    return stream_packets(specs())


def zipf_workload(
    topology: TwoTierTopology,
    num_packets: int,
    exponent: float = 1.2,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_rate: Optional[float] = None,
    seed: RngLike = None,
) -> List[Packet]:
    """Materialised form of :func:`iter_zipf_workload`."""
    return list(
        iter_zipf_workload(
            topology,
            num_packets,
            exponent=exponent,
            weight_sampler=weight_sampler,
            arrival_rate=arrival_rate,
            seed=seed,
        )
    )


def iter_elephant_mice_workload(
    topology: TwoTierTopology,
    num_packets: int,
    elephant_pair_fraction: float = 0.1,
    elephant_traffic_fraction: float = 0.8,
    heavy_weight: float = 20.0,
    light_weight: float = 1.0,
    arrival_rate: Optional[float] = None,
    seed: RngLike = None,
) -> Iterator[Packet]:
    """Lazily yield an explicit elephant/mice mixture.

    A fraction ``elephant_pair_fraction`` of the routable pairs is designated
    *elephant* pairs; they receive ``elephant_traffic_fraction`` of the
    packets, each with weight ``heavy_weight``.  The remaining packets are
    mice of weight ``light_weight`` spread uniformly over the other pairs.
    """
    n = check_positive_int(num_packets, "num_packets")
    if not 0 < elephant_pair_fraction <= 1:
        raise WorkloadError(
            f"elephant_pair_fraction must lie in (0,1], got {elephant_pair_fraction}"
        )
    if not 0 <= elephant_traffic_fraction <= 1:
        raise WorkloadError(
            f"elephant_traffic_fraction must lie in [0,1], got {elephant_traffic_fraction}"
        )
    rng = as_rng(seed)
    pairs = routable_pairs(topology)
    if not pairs:
        raise WorkloadError("topology has no routable pairs")
    order = list(range(len(pairs)))
    rng.shuffle(order)
    num_elephant = max(1, int(round(elephant_pair_fraction * len(pairs))))
    elephant_pairs = [pairs[i] for i in order[:num_elephant]]
    mice_pairs = [pairs[i] for i in order[num_elephant:]] or elephant_pairs
    slots = resolve_arrival_stream(n, None, arrival_rate, rng)

    def specs() -> Iterator[PacketSpec]:
        for arrival in islice(slots, n):
            if rng.random() < elephant_traffic_fraction:
                s, d = elephant_pairs[int(rng.integers(len(elephant_pairs)))]
                weight = float(heavy_weight)
            else:
                s, d = mice_pairs[int(rng.integers(len(mice_pairs)))]
                weight = float(light_weight)
            yield PacketSpec(source=s, destination=d, weight=weight, arrival=arrival)

    return stream_packets(specs())


def elephant_mice_workload(
    topology: TwoTierTopology,
    num_packets: int,
    elephant_pair_fraction: float = 0.1,
    elephant_traffic_fraction: float = 0.8,
    heavy_weight: float = 20.0,
    light_weight: float = 1.0,
    arrival_rate: Optional[float] = None,
    seed: RngLike = None,
) -> List[Packet]:
    """Materialised form of :func:`iter_elephant_mice_workload`."""
    return list(
        iter_elephant_mice_workload(
            topology,
            num_packets,
            elephant_pair_fraction=elephant_pair_fraction,
            elephant_traffic_fraction=elephant_traffic_fraction,
            heavy_weight=heavy_weight,
            light_weight=light_weight,
            arrival_rate=arrival_rate,
            seed=seed,
        )
    )
