"""Workload and instance abstractions.

An :class:`Instance` bundles a topology with an online packet sequence; it is
the unit the experiment harness, the LP lower bound and the simulation engine
all operate on.  The helpers here also centralise the conversion of arbitrary
arrival times to the paper's integer transmission slots and the enumeration of
routable (source, destination) pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.core.packet import Packet
from repro.exceptions import WorkloadError
from repro.network.topology import TwoTierTopology

__all__ = [
    "Instance",
    "PacketSpec",
    "routable_pairs",
    "build_packets",
    "stream_packets",
    "normalize_arrival",
]


def normalize_arrival(arrival: float) -> int:
    """Map an arbitrary positive arrival time to its transmission slot.

    Packets arriving in ``(τ', τ'+1]`` become available at slot ``τ'+1``
    (Section II), i.e. the arrival is ceiled; arrivals below 1 are clamped to
    the first slot.
    """
    if not math.isfinite(arrival):
        raise WorkloadError(f"arrival time must be finite, got {arrival!r}")
    slot = int(math.ceil(arrival))
    return max(slot, 1)


@dataclass(frozen=True)
class PacketSpec:
    """A packet description before ids are assigned (used by generators / traces)."""

    source: str
    destination: str
    weight: float
    arrival: float

    def to_packet(self, packet_id: int) -> Packet:
        """Materialise the spec as a :class:`~repro.core.packet.Packet`."""
        return Packet(
            packet_id=packet_id,
            source=self.source,
            destination=self.destination,
            weight=float(self.weight),
            arrival=normalize_arrival(self.arrival),
        )


def build_packets(specs: Sequence[PacketSpec]) -> List[Packet]:
    """Assign sequential ids to ``specs`` in arrival order and return packets.

    Specs are ordered by (normalised arrival slot, original position) so that
    packet ids reflect the order in which the dispatcher will process them —
    the tie-breaking order the paper's analysis relies on.
    """
    indexed = sorted(
        enumerate(specs), key=lambda item: (normalize_arrival(item[1].arrival), item[0])
    )
    return [spec.to_packet(packet_id=i) for i, (_pos, spec) in enumerate(indexed)]


def stream_packets(specs: Iterable[PacketSpec], start_id: int = 0) -> Iterator[Packet]:
    """Lazily assign sequential ids to an arrival-ordered stream of specs.

    The streaming counterpart of :func:`build_packets`: ``specs`` is consumed
    one element at a time and each spec becomes a packet with the next id, so
    memory is O(1) in the stream length.  Because no global sort is possible
    on a stream, the specs' *normalised* arrival slots must already be
    non-decreasing (every generator and arrival process in this package
    produces them that way); a regression raises
    :class:`~repro.exceptions.WorkloadError`.  For such inputs the yielded
    sequence is identical to ``build_packets(list(specs))``.
    """
    packet_id = start_id
    last_slot = 0
    for spec in specs:
        packet = spec.to_packet(packet_id=packet_id)
        if packet.arrival < last_slot:
            raise WorkloadError(
                f"stream_packets requires non-decreasing arrivals; spec {packet_id} "
                f"arrives at slot {packet.arrival} after slot {last_slot}"
            )
        last_slot = packet.arrival
        packet_id += 1
        yield packet


def routable_pairs(topology: TwoTierTopology) -> List[Tuple[str, str]]:
    """All (source, destination) pairs that can carry traffic on ``topology``.

    A pair is routable when it has at least one candidate reconfigurable edge
    or a fixed link.  Pairs where source and destination belong to the same
    rack (builders name them ``rack<i>:src`` / ``rack<i>:dst``) are excluded
    implicitly because such pairs have no edges.
    """
    pairs: List[Tuple[str, str]] = []
    for s in topology.sources:
        for d in topology.destinations:
            if topology.can_route(s, d):
                pairs.append((s, d))
    return pairs


@dataclass
class Instance:
    """A named (topology, packet sequence) pair.

    Attributes
    ----------
    name:
        Identifier used in experiment reports.
    topology:
        The frozen network topology.
    packets:
        The online packet sequence (ids must be unique).
    metadata:
        Free-form generator parameters recorded for reproducibility.
    """

    name: str
    topology: TwoTierTopology
    packets: List[Packet]
    metadata: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.topology.freeze()
        ids = [p.packet_id for p in self.packets]
        if len(set(ids)) != len(ids):
            raise WorkloadError(f"instance {self.name!r} has duplicate packet ids")

    @property
    def num_packets(self) -> int:
        """Number of packets in the instance."""
        return len(self.packets)

    def iter_packets(self) -> Iterator[Packet]:
        """The packet sequence as an iterator (for the engine's streaming path)."""
        return iter(self.packets)

    @property
    def total_weight(self) -> float:
        """Sum of packet weights."""
        return sum(p.weight for p in self.packets)

    @property
    def max_arrival(self) -> int:
        """Latest arrival slot (0 for an empty instance)."""
        return max((p.arrival for p in self.packets), default=0)

    def validate(self) -> None:
        """Check that every packet can be routed on the topology."""
        for p in self.packets:
            if not self.topology.can_route(p.source, p.destination):
                raise WorkloadError(
                    f"packet {p.packet_id} ({p.source}->{p.destination}) is unroutable "
                    f"on topology {self.topology.name!r}"
                )

    def horizon_estimate(self, speed: float = 1.0) -> int:
        """A safe upper bound on the number of slots any work-conserving run needs.

        Mirrors the paper's horizon argument: if any packet is pending, a
        reasonable algorithm transmits at least one chunk per slot, so
        ``max_a + |Π| · max_e d_hat(e)`` slots suffice (scaled by the inverse
        speed for slowed-down solutions).
        """
        if not self.packets:
            return 0
        max_dhat = max(self.topology.max_path_delay(), 1)
        max_fixed = max(self.topology.fixed_links.values(), default=0)
        per_packet = max(max_dhat, max_fixed)
        return int(self.max_arrival + math.ceil(self.num_packets * per_packet / speed)) + 1

    def subset(self, num_packets: int, name: Optional[str] = None) -> "Instance":
        """Return a copy containing only the first ``num_packets`` packets (by id)."""
        chosen = sorted(self.packets, key=lambda p: p.packet_id)[:num_packets]
        return Instance(
            name=name or f"{self.name}[:{num_packets}]",
            topology=self.topology,
            packets=list(chosen),
            metadata=dict(self.metadata),
        )
