"""The exact worked examples of Figures 1 and 2 of the paper.

These instances are used by the reproduction benchmarks (E1, E2) and by the
test-suite as ground truth for the dispatcher, the scheduler and the charging
scheme:

* Figure 1: five unit-weight packets on a 2-source / 3-destination hybrid
  topology.  The paper reports a feasible schedule of cost 9 (sending packet
  ``p5`` over the fixed ``(s2, d3)`` link) and an optimal schedule of cost 7
  (sending ``p5`` in the third slot over edge ``(t3, r4)``).
* Figure 2: two packet sets Π = {p1,p2,p3} and Π′ = {p1,p2,p3,p4} on a
  single-transmitter-per-source topology; the figure tabulates the realised
  per-packet impacts (the charging-scheme values): (1, 2, 5) for Π and
  (1, 3, 3, 7) for Π′.
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.core.packet import Packet
from repro.network.builders import figure1_topology, figure2_topology
from repro.workloads.base import Instance

__all__ = [
    "figure1_packets",
    "figure1_instance",
    "figure1_reported_costs",
    "figure2_packets_pi",
    "figure2_packets_pi_prime",
    "figure2_instances",
    "figure2_reported_impacts",
    "iter_figure1_packets",
    "iter_figure2_packets_pi",
    "iter_figure2_packets_pi_prime",
]


def figure1_packets() -> List[Packet]:
    """The five unit-weight packets of Figure 1 (p1..p5 with ids 0..4)."""
    return [
        Packet(packet_id=0, source="s1", destination="d1", weight=1.0, arrival=1),  # p1
        Packet(packet_id=1, source="s1", destination="d2", weight=1.0, arrival=1),  # p2
        Packet(packet_id=2, source="s2", destination="d2", weight=1.0, arrival=1),  # p3
        Packet(packet_id=3, source="s2", destination="d2", weight=1.0, arrival=2),  # p4
        Packet(packet_id=4, source="s2", destination="d3", weight=1.0, arrival=2),  # p5
    ]


def iter_figure1_packets() -> Iterator[Packet]:
    """The Figure 1 packets as a lazy stream (for the engine's streaming path)."""
    yield from figure1_packets()


def figure1_instance() -> Instance:
    """Figure 1 as an :class:`~repro.workloads.base.Instance`."""
    return Instance(
        name="figure1",
        topology=figure1_topology(),
        packets=figure1_packets(),
        metadata={"paper_feasible_cost": 9.0, "paper_optimal_cost": 7.0},
    )


def figure1_reported_costs() -> Dict[str, float]:
    """The costs the paper reports for the Figure 1 instance."""
    return {"feasible_solution": 9.0, "optimal_solution": 7.0}


def figure2_packets_pi() -> List[Packet]:
    """The packet set Π = {p1, p2, p3} of Figure 2 (weights 1, 2, 3)."""
    return [
        Packet(packet_id=0, source="s1", destination="d1", weight=1.0, arrival=1),  # p1
        Packet(packet_id=1, source="s1", destination="d2", weight=2.0, arrival=1),  # p2
        Packet(packet_id=2, source="s2", destination="d2", weight=3.0, arrival=1),  # p3
    ]


def figure2_packets_pi_prime() -> List[Packet]:
    """The packet set Π′ = {p1, p2, p3, p4} of Figure 2 (weights 1, 2, 3, 4)."""
    return figure2_packets_pi() + [
        Packet(packet_id=3, source="s2", destination="d3", weight=4.0, arrival=1),  # p4
    ]


def iter_figure2_packets_pi() -> Iterator[Packet]:
    """The Figure 2 packet set Π as a lazy stream."""
    yield from figure2_packets_pi()


def iter_figure2_packets_pi_prime() -> Iterator[Packet]:
    """The Figure 2 packet set Π′ as a lazy stream."""
    yield from figure2_packets_pi_prime()


def figure2_instances() -> Dict[str, Instance]:
    """Both Figure 2 instances, keyed ``"pi"`` and ``"pi_prime"``."""
    topo = figure2_topology()
    return {
        "pi": Instance(name="figure2-pi", topology=topo, packets=figure2_packets_pi()),
        "pi_prime": Instance(
            name="figure2-pi-prime", topology=topo, packets=figure2_packets_pi_prime()
        ),
    }


def figure2_reported_impacts() -> Dict[str, Dict[int, float]]:
    """The per-packet impact values tabulated in Figure 2.

    Keys are the packet ids used by :func:`figure2_packets_pi` /
    :func:`figure2_packets_pi_prime` (p1 → 0, p2 → 1, …).
    """
    return {
        "pi": {0: 1.0, 1: 2.0, 2: 5.0},
        "pi_prime": {0: 1.0, 1: 3.0, 2: 3.0, 3: 7.0},
    }
