"""Bursty and incast workloads.

Microbursts — many packets arriving to the same destination within a few
slots — are the pattern under which scheduling decisions matter most, because
receivers become the bottleneck and the choice of which transmitter serves
which receiver each slot determines tail latency.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.packet import Packet
from repro.exceptions import WorkloadError
from repro.network.topology import TwoTierTopology
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int
from repro.workloads.arrival import onoff_arrivals
from repro.workloads.base import PacketSpec, build_packets, routable_pairs
from repro.workloads.weights import WeightSampler, constant_weights

__all__ = ["bursty_workload", "incast_workload"]


def bursty_workload(
    topology: TwoTierTopology,
    num_packets: int,
    on_rate: float = 3.0,
    on_duration: int = 5,
    off_duration: int = 10,
    weight_sampler: Optional[WeightSampler] = None,
    seed: RngLike = None,
) -> List[Packet]:
    """On/off bursts of packets over uniformly random routable pairs."""
    n = check_positive_int(num_packets, "num_packets")
    rng = as_rng(seed)
    sampler = weight_sampler or constant_weights(1.0)
    pairs = routable_pairs(topology)
    if not pairs:
        raise WorkloadError("topology has no routable pairs")
    slots = onoff_arrivals(
        n, on_rate=on_rate, on_duration=on_duration, off_duration=off_duration, seed=rng
    )
    specs = []
    for i in range(n):
        s, d = pairs[int(rng.integers(len(pairs)))]
        specs.append(PacketSpec(source=s, destination=d, weight=sampler(rng), arrival=slots[i]))
    return build_packets(specs)


def incast_workload(
    topology: TwoTierTopology,
    num_senders: int,
    packets_per_sender: int = 1,
    destination: Optional[str] = None,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_slot: int = 1,
    seed: RngLike = None,
) -> List[Packet]:
    """Incast: many sources send to a single destination simultaneously.

    Parameters
    ----------
    num_senders:
        Number of distinct sources participating (capped at the number of
        sources that can reach the destination).
    packets_per_sender:
        Packets each sender contributes, all arriving at ``arrival_slot``.
    destination:
        Target destination (default: a random destination that is reachable
        from at least ``num_senders`` sources, or the best available).
    """
    ns = check_positive_int(num_senders, "num_senders")
    k = check_positive_int(packets_per_sender, "packets_per_sender")
    if arrival_slot < 1:
        raise WorkloadError(f"arrival_slot must be >= 1, got {arrival_slot}")
    rng = as_rng(seed)
    sampler = weight_sampler or constant_weights(1.0)

    pairs = routable_pairs(topology)
    if not pairs:
        raise WorkloadError("topology has no routable pairs")
    senders_by_destination: dict[str, List[str]] = {}
    for (s, d) in pairs:
        senders_by_destination.setdefault(d, []).append(s)

    if destination is None:
        # Pick the destination with the most reachable senders (ties: random).
        best = max(len(v) for v in senders_by_destination.values())
        options = sorted(d for d, v in senders_by_destination.items() if len(v) == best)
        destination = options[int(rng.integers(len(options)))]
    if destination not in senders_by_destination:
        raise WorkloadError(f"destination {destination!r} is unreachable from every source")

    senders = list(senders_by_destination[destination])
    rng.shuffle(senders)
    senders = senders[: min(ns, len(senders))]

    specs = []
    for s in senders:
        for _ in range(k):
            specs.append(
                PacketSpec(
                    source=s, destination=destination, weight=sampler(rng), arrival=arrival_slot
                )
            )
    return build_packets(specs)
