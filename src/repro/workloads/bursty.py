"""Bursty and incast workloads.

Microbursts — many packets arriving to the same destination within a few
slots — are the pattern under which scheduling decisions matter most, because
receivers become the bottleneck and the choice of which transmitter serves
which receiver each slot determines tail latency.  Both generators exist as
lazy ``iter_*`` forms (O(1) memory in the packet count) plus thin
materialising list wrappers.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, List, Optional

from repro.core.packet import Packet
from repro.exceptions import WorkloadError
from repro.network.topology import TwoTierTopology
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int
from repro.workloads.arrival import iter_onoff_arrivals
from repro.workloads.base import PacketSpec, routable_pairs, stream_packets
from repro.workloads.weights import WeightSampler, constant_weights

__all__ = [
    "bursty_workload",
    "incast_workload",
    "iter_bursty_workload",
    "iter_incast_workload",
]


def iter_bursty_workload(
    topology: TwoTierTopology,
    num_packets: int,
    on_rate: float = 3.0,
    on_duration: int = 5,
    off_duration: int = 10,
    weight_sampler: Optional[WeightSampler] = None,
    seed: RngLike = None,
) -> Iterator[Packet]:
    """Lazily yield on/off bursts of packets over uniformly random routable pairs."""
    n = check_positive_int(num_packets, "num_packets")
    rng = as_rng(seed)
    sampler = weight_sampler or constant_weights(1.0)
    pairs = routable_pairs(topology)
    if not pairs:
        raise WorkloadError("topology has no routable pairs")
    slots = iter_onoff_arrivals(
        on_rate=on_rate, on_duration=on_duration, off_duration=off_duration, seed=rng
    )

    def specs() -> Iterator[PacketSpec]:
        for arrival in islice(slots, n):
            s, d = pairs[int(rng.integers(len(pairs)))]
            yield PacketSpec(source=s, destination=d, weight=sampler(rng), arrival=arrival)

    return stream_packets(specs())


def bursty_workload(
    topology: TwoTierTopology,
    num_packets: int,
    on_rate: float = 3.0,
    on_duration: int = 5,
    off_duration: int = 10,
    weight_sampler: Optional[WeightSampler] = None,
    seed: RngLike = None,
) -> List[Packet]:
    """Materialised form of :func:`iter_bursty_workload`."""
    return list(
        iter_bursty_workload(
            topology,
            num_packets,
            on_rate=on_rate,
            on_duration=on_duration,
            off_duration=off_duration,
            weight_sampler=weight_sampler,
            seed=seed,
        )
    )


def iter_incast_workload(
    topology: TwoTierTopology,
    num_senders: int,
    packets_per_sender: int = 1,
    destination: Optional[str] = None,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_slot: int = 1,
    seed: RngLike = None,
) -> Iterator[Packet]:
    """Lazily yield an incast: many sources send to one destination simultaneously.

    Parameters
    ----------
    num_senders:
        Number of distinct sources participating (capped at the number of
        sources that can reach the destination).
    packets_per_sender:
        Packets each sender contributes, all arriving at ``arrival_slot``.
    destination:
        Target destination (default: a random destination that is reachable
        from at least ``num_senders`` sources, or the best available).
    """
    ns = check_positive_int(num_senders, "num_senders")
    k = check_positive_int(packets_per_sender, "packets_per_sender")
    if arrival_slot < 1:
        raise WorkloadError(f"arrival_slot must be >= 1, got {arrival_slot}")
    rng = as_rng(seed)
    sampler = weight_sampler or constant_weights(1.0)

    pairs = routable_pairs(topology)
    if not pairs:
        raise WorkloadError("topology has no routable pairs")
    senders_by_destination: dict[str, List[str]] = {}
    for (s, d) in pairs:
        senders_by_destination.setdefault(d, []).append(s)

    if destination is None:
        # Pick the destination with the most reachable senders (ties: random).
        best = max(len(v) for v in senders_by_destination.values())
        options = sorted(d for d, v in senders_by_destination.items() if len(v) == best)
        destination = options[int(rng.integers(len(options)))]
    if destination not in senders_by_destination:
        raise WorkloadError(f"destination {destination!r} is unreachable from every source")

    senders = list(senders_by_destination[destination])
    rng.shuffle(senders)
    senders = senders[: min(ns, len(senders))]

    def specs() -> Iterator[PacketSpec]:
        for s in senders:
            for _ in range(k):
                yield PacketSpec(
                    source=s, destination=destination, weight=sampler(rng), arrival=arrival_slot
                )

    return stream_packets(specs())


def incast_workload(
    topology: TwoTierTopology,
    num_senders: int,
    packets_per_sender: int = 1,
    destination: Optional[str] = None,
    weight_sampler: Optional[WeightSampler] = None,
    arrival_slot: int = 1,
    seed: RngLike = None,
) -> List[Packet]:
    """Materialised form of :func:`iter_incast_workload`."""
    return list(
        iter_incast_workload(
            topology,
            num_senders,
            packets_per_sender=packets_per_sender,
            destination=destination,
            weight_sampler=weight_sampler,
            arrival_slot=arrival_slot,
            seed=seed,
        )
    )
