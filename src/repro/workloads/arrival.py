"""Arrival-process generators.

All processes exist in two forms sharing one implementation: an ``iter_*``
generator that lazily yields an unbounded non-decreasing stream of *slot*
times (positive integers), and the original list-returning function, which is
a thin materialising wrapper taking the first ``num_packets`` elements.  The
lazy form is what the streaming workload generators compose with; for a fixed
seed both forms produce bit-identical slot sequences.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.exceptions import WorkloadError
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive, check_positive_int
from repro.workloads.base import normalize_arrival

__all__ = [
    "poisson_arrivals",
    "deterministic_arrivals",
    "batch_arrivals",
    "onoff_arrivals",
    "iter_poisson_arrivals",
    "iter_deterministic_arrivals",
    "iter_batch_arrivals",
    "iter_onoff_arrivals",
    "resolve_arrival_stream",
]


def iter_poisson_arrivals(rate: float, seed: RngLike = None, start: float = 1.0) -> Iterator[int]:
    """Unbounded Poisson arrival stream with ``rate`` packets per slot.

    Inter-arrival gaps are exponential with mean ``1/rate``; the resulting
    continuous times are ceiled to slots per the paper's model.  The first
    arrival lands exactly at ``start``.
    """
    lam = check_positive(rate, "rate")
    rng = as_rng(seed)

    def generate() -> Iterator[int]:
        first_gap = None
        cumulative = 0.0
        while True:
            gap = rng.exponential(1.0 / lam)
            if first_gap is None:
                first_gap = gap
            cumulative += gap
            yield normalize_arrival(float(start) + cumulative - first_gap)

    return generate()


def poisson_arrivals(num_packets: int, rate: float, seed: RngLike = None, start: float = 1.0) -> List[int]:
    """The first ``num_packets`` slots of :func:`iter_poisson_arrivals`."""
    n = check_positive_int(num_packets, "num_packets")
    return list(islice(iter_poisson_arrivals(rate, seed=seed, start=start), n))


def iter_deterministic_arrivals(interval: float = 1.0, start: int = 1) -> Iterator[int]:
    """Unbounded evenly spaced arrivals: packet ``i`` at ``start + i · interval`` (ceiled)."""
    step = check_positive(interval, "interval")
    if start < 1:
        raise WorkloadError(f"start slot must be >= 1, got {start}")

    def generate() -> Iterator[int]:
        i = 0
        while True:
            yield normalize_arrival(start + i * step)
            i += 1

    return generate()


def deterministic_arrivals(num_packets: int, interval: float = 1.0, start: int = 1) -> List[int]:
    """The first ``num_packets`` slots of :func:`iter_deterministic_arrivals`."""
    n = check_positive_int(num_packets, "num_packets")
    return list(islice(iter_deterministic_arrivals(interval=interval, start=start), n))


def iter_batch_arrivals(batch_size: int, gap: int = 1, start: int = 1) -> Iterator[int]:
    """Unbounded bursts of ``batch_size`` simultaneous arrivals, ``gap`` slots apart."""
    bs = check_positive_int(batch_size, "batch_size")
    g = check_positive_int(gap, "gap")
    if start < 1:
        raise WorkloadError(f"start slot must be >= 1, got {start}")

    def generate() -> Iterator[int]:
        batch = 0
        while True:
            slot = start + batch * g
            for _ in range(bs):
                yield slot
            batch += 1

    return generate()


def batch_arrivals(num_batches: int, batch_size: int, gap: int = 1, start: int = 1) -> List[int]:
    """``num_batches`` bursts of ``batch_size`` simultaneous arrivals, ``gap`` slots apart."""
    nb = check_positive_int(num_batches, "num_batches")
    bs = check_positive_int(batch_size, "batch_size")
    return list(islice(iter_batch_arrivals(bs, gap=gap, start=start), nb * bs))


def iter_onoff_arrivals(
    on_rate: float = 2.0,
    on_duration: int = 5,
    off_duration: int = 10,
    seed: RngLike = None,
    start: int = 1,
) -> Iterator[int]:
    """Unbounded bursty on/off arrivals: Poisson bursts separated by silences.

    During an *on* period of ``on_duration`` slots packets arrive at
    ``on_rate`` per slot; each on period is followed by an *off* period of
    ``off_duration`` slots with no arrivals.  This is the microburst pattern
    datacenter measurement studies report.
    """
    rate = check_positive(on_rate, "on_rate")
    on = check_positive_int(on_duration, "on_duration")
    off = check_positive_int(off_duration, "off_duration")
    if start < 1:
        raise WorkloadError(f"start slot must be >= 1, got {start}")
    rng = as_rng(seed)

    def generate() -> Iterator[int]:
        period_start = float(start)
        while True:
            t = period_start
            while True:
                t += float(rng.exponential(1.0 / rate))
                if t >= period_start + on:
                    break
                yield normalize_arrival(t)
            period_start += on + off

    return generate()


def resolve_arrival_stream(
    num_packets: int,
    arrivals: Optional[Sequence[int]],
    arrival_rate: Optional[float],
    rng: np.random.Generator,
) -> Iterator[int]:
    """The arrival-slot stream shared by the per-packet workload generators.

    Explicit ``arrivals`` win (validated against ``num_packets``); otherwise
    ``arrival_rate`` selects a lazy Poisson process drawing from ``rng``, and
    the default is one packet per slot.
    """
    if arrivals is not None:
        if len(arrivals) != num_packets:
            raise WorkloadError(
                f"got {len(arrivals)} arrival times for {num_packets} packets"
            )
        return iter([int(a) for a in arrivals])
    if arrival_rate is not None:
        return iter_poisson_arrivals(arrival_rate, seed=rng)
    return iter_deterministic_arrivals(interval=1.0)


def onoff_arrivals(
    num_packets: int,
    on_rate: float = 2.0,
    on_duration: int = 5,
    off_duration: int = 10,
    seed: RngLike = None,
    start: int = 1,
) -> List[int]:
    """The first ``num_packets`` slots of :func:`iter_onoff_arrivals`."""
    n = check_positive_int(num_packets, "num_packets")
    return list(
        islice(
            iter_onoff_arrivals(
                on_rate=on_rate,
                on_duration=on_duration,
                off_duration=off_duration,
                seed=seed,
                start=start,
            ),
            n,
        )
    )
