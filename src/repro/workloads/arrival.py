"""Arrival-process generators.

All generators return a non-decreasing list of *slot* times (positive
integers) of the requested length; they are combined with a spatial pattern
(which pair each packet belongs to) by the workload generators.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.exceptions import WorkloadError
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive, check_positive_int
from repro.workloads.base import normalize_arrival

__all__ = [
    "poisson_arrivals",
    "deterministic_arrivals",
    "batch_arrivals",
    "onoff_arrivals",
]


def poisson_arrivals(num_packets: int, rate: float, seed: RngLike = None, start: float = 1.0) -> List[int]:
    """Poisson arrivals with ``rate`` packets per slot, starting at ``start``.

    Inter-arrival gaps are exponential with mean ``1/rate``; the resulting
    continuous times are ceiled to slots per the paper's model.
    """
    n = check_positive_int(num_packets, "num_packets")
    lam = check_positive(rate, "rate")
    rng = as_rng(seed)
    gaps = rng.exponential(1.0 / lam, size=n)
    times = float(start) + np.cumsum(gaps) - gaps[0]
    return [normalize_arrival(t) for t in times]


def deterministic_arrivals(num_packets: int, interval: float = 1.0, start: int = 1) -> List[int]:
    """Evenly spaced arrivals: packet ``i`` arrives at ``start + i · interval`` (ceiled)."""
    n = check_positive_int(num_packets, "num_packets")
    step = check_positive(interval, "interval")
    if start < 1:
        raise WorkloadError(f"start slot must be >= 1, got {start}")
    return [normalize_arrival(start + i * step) for i in range(n)]


def batch_arrivals(num_batches: int, batch_size: int, gap: int = 1, start: int = 1) -> List[int]:
    """``num_batches`` bursts of ``batch_size`` simultaneous arrivals, ``gap`` slots apart."""
    nb = check_positive_int(num_batches, "num_batches")
    bs = check_positive_int(batch_size, "batch_size")
    g = check_positive_int(gap, "gap")
    if start < 1:
        raise WorkloadError(f"start slot must be >= 1, got {start}")
    arrivals: List[int] = []
    for b in range(nb):
        arrivals.extend([start + b * g] * bs)
    return arrivals


def onoff_arrivals(
    num_packets: int,
    on_rate: float = 2.0,
    on_duration: int = 5,
    off_duration: int = 10,
    seed: RngLike = None,
    start: int = 1,
) -> List[int]:
    """Bursty on/off arrivals: Poisson bursts separated by silent periods.

    During an *on* period of ``on_duration`` slots packets arrive at
    ``on_rate`` per slot; each on period is followed by an *off* period of
    ``off_duration`` slots with no arrivals.  This is the microburst pattern
    datacenter measurement studies report.
    """
    n = check_positive_int(num_packets, "num_packets")
    rate = check_positive(on_rate, "on_rate")
    on = check_positive_int(on_duration, "on_duration")
    off = check_positive_int(off_duration, "off_duration")
    rng = as_rng(seed)

    arrivals: List[int] = []
    period_start = float(start)
    while len(arrivals) < n:
        t = period_start
        while t < period_start + on and len(arrivals) < n:
            t += float(rng.exponential(1.0 / rate))
            if t < period_start + on:
                arrivals.append(normalize_arrival(t))
        period_start += on + off
    arrivals.sort()
    return arrivals[:n]
