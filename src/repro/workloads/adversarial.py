"""Adversarial workloads derived from the paper's charging argument.

The dual-fitting analysis (Section IV) charges every unit of ALG's latency
either to heavier pending chunks that block a packet (``H_p(e)``) or to
lighter chunks it blocks (``L_p(e)``).  The generators here construct the
traffic patterns under which those charge sets are largest — the worst cases
the competitive bound has to absorb:

* :func:`priority_inversion_workload` pre-loads contended edges with light
  traffic and then slams heavy packets into the same edges one slot later, so
  every heavy arrival finds its candidate edges occupied by lower-priority
  chunks (the ``L_p(e)`` term) and the stable matching must reorder around
  them;
* :func:`contention_hotspot_workload` funnels a sustained stream through the
  few lasers of one sending rack (``side="transmitter"``) or the few
  photodetectors of one receiving rack (``side="receiver"``), saturating one
  side of the matching constraint;
* :func:`heavy_tailed_incast_workload` fires repeated incast waves whose
  weights follow a Pareto law, mixing rare very heavy packets into synchronised
  receiver contention — the regime where weight-ordered scheduling matters
  most;
* :func:`saturated_pairs_workload` hammers a few *node-disjoint*
  (source, destination) pairs, so the matching serves every hot edge each
  slot while each edge's pending queue grows linearly in the backlog — the
  deepest per-edge queues a stable matching will ever walk, and the cell
  behind benchmark E17.

Every generator exists as a lazy ``iter_*`` form (O(1) memory in the packet
count, arrival slots non-decreasing) plus a thin materialising list wrapper,
exactly like the generators in :mod:`repro.workloads.bursty`.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from itertools import islice

from repro.core.packet import Packet
from repro.exceptions import WorkloadError
from repro.network.topology import TwoTierTopology
from repro.utils.rng import RngLike, as_rng
from repro.utils.validation import check_positive_int
from repro.workloads.arrival import iter_poisson_arrivals
from repro.workloads.base import PacketSpec, routable_pairs, stream_packets
from repro.workloads.weights import WeightSampler, pareto_weights

__all__ = [
    "priority_inversion_workload",
    "contention_hotspot_workload",
    "heavy_tailed_incast_workload",
    "saturated_pairs_workload",
    "iter_priority_inversion_workload",
    "iter_contention_hotspot_workload",
    "iter_heavy_tailed_incast_workload",
    "iter_saturated_pairs_workload",
]


def _senders_by_destination(topology: TwoTierTopology) -> Dict[str, List[str]]:
    senders: Dict[str, List[str]] = {}
    for (s, d) in routable_pairs(topology):
        senders.setdefault(d, []).append(s)
    if not senders:
        raise WorkloadError("topology has no routable pairs")
    return senders


def iter_priority_inversion_workload(
    topology: TwoTierTopology,
    num_bursts: int,
    light_per_burst: int = 6,
    heavy_per_burst: int = 3,
    light_weight: Tuple[float, float] = (1.0, 2.0),
    heavy_weight: Tuple[float, float] = (50.0, 100.0),
    burst_gap: int = 8,
    seed: RngLike = None,
) -> Iterator[Packet]:
    """Lazily yield priority-inversion bursts.

    Each burst targets one destination: ``light_per_burst`` light packets
    arrive at the burst slot and commit the destination's candidate edges,
    then ``heavy_per_burst`` heavy packets to the *same* destination arrive
    one slot later — the arrangement that maximises the dispatcher's
    ``d(e) · w(L_p(e))`` charge term and forces the scheduler to serve the
    late heavy chunks ahead of the queued light ones.
    """
    bursts = check_positive_int(num_bursts, "num_bursts")
    light = check_positive_int(light_per_burst, "light_per_burst")
    heavy = check_positive_int(heavy_per_burst, "heavy_per_burst")
    gap = check_positive_int(burst_gap, "burst_gap")
    if gap < 2:
        raise WorkloadError(f"burst_gap must be >= 2 (heavy wave uses slot+1), got {gap}")
    for name, (lo, hi) in (("light_weight", light_weight), ("heavy_weight", heavy_weight)):
        if not 0 < lo <= hi:
            raise WorkloadError(f"{name} must satisfy 0 < low <= high, got {(lo, hi)!r}")
    rng = as_rng(seed)
    senders = _senders_by_destination(topology)
    destinations = sorted(senders)

    def specs() -> Iterator[PacketSpec]:
        slot = 1
        for _ in range(bursts):
            destination = destinations[int(rng.integers(len(destinations)))]
            sources = senders[destination]
            for _ in range(light):
                yield PacketSpec(
                    source=sources[int(rng.integers(len(sources)))],
                    destination=destination,
                    weight=float(rng.uniform(*light_weight)),
                    arrival=slot,
                )
            for _ in range(heavy):
                yield PacketSpec(
                    source=sources[int(rng.integers(len(sources)))],
                    destination=destination,
                    weight=float(rng.uniform(*heavy_weight)),
                    arrival=slot + 1,
                )
            slot += gap

    return stream_packets(specs())


def priority_inversion_workload(
    topology: TwoTierTopology,
    num_bursts: int,
    light_per_burst: int = 6,
    heavy_per_burst: int = 3,
    light_weight: Tuple[float, float] = (1.0, 2.0),
    heavy_weight: Tuple[float, float] = (50.0, 100.0),
    burst_gap: int = 8,
    seed: RngLike = None,
) -> List[Packet]:
    """Materialised form of :func:`iter_priority_inversion_workload`."""
    return list(
        iter_priority_inversion_workload(
            topology,
            num_bursts,
            light_per_burst=light_per_burst,
            heavy_per_burst=heavy_per_burst,
            light_weight=light_weight,
            heavy_weight=heavy_weight,
            burst_gap=burst_gap,
            seed=seed,
        )
    )


def iter_contention_hotspot_workload(
    topology: TwoTierTopology,
    num_packets: int,
    side: str = "transmitter",
    hot_fraction: float = 0.9,
    arrival_rate: float = 3.0,
    weight_sampler: Optional[WeightSampler] = None,
    seed: RngLike = None,
) -> Iterator[Packet]:
    """Lazily yield a sustained stream hammering one side of the matching.

    ``side="transmitter"`` fixes the *source* with the most routable
    destinations, so (nearly) all traffic competes for that rack's few lasers;
    ``side="receiver"`` fixes the analogous *destination*, so traffic from
    many racks converges on its few photodetectors.  A ``1 − hot_fraction``
    share of background traffic over uniformly random routable pairs keeps the
    rest of the fabric lightly loaded, which is what makes the hotspot (and
    not global load) the binding constraint.
    """
    n = check_positive_int(num_packets, "num_packets")
    if side not in ("transmitter", "receiver"):
        raise WorkloadError(f"side must be 'transmitter' or 'receiver', got {side!r}")
    if not 0.0 < hot_fraction <= 1.0:
        raise WorkloadError(f"hot_fraction must lie in (0, 1], got {hot_fraction}")
    if not arrival_rate > 0:
        raise WorkloadError(f"arrival_rate must be positive, got {arrival_rate}")
    rng = as_rng(seed)
    sampler = weight_sampler or pareto_weights(1.5)
    pairs = routable_pairs(topology)
    if not pairs:
        raise WorkloadError("topology has no routable pairs")

    fan: Dict[str, List[str]] = {}
    for (s, d) in pairs:
        key = s if side == "transmitter" else d
        fan.setdefault(key, []).append(d if side == "transmitter" else s)
    # The hot node is the one with the widest fan (ties broken by name so the
    # choice is deterministic for a fixed topology).
    hot = max(sorted(fan), key=lambda node: len(fan[node]))
    peers = fan[hot]

    slots = iter_poisson_arrivals(arrival_rate, seed=rng)

    def specs() -> Iterator[PacketSpec]:
        for arrival in islice(slots, n):
            if rng.random() < hot_fraction:
                peer = peers[int(rng.integers(len(peers)))]
                s, d = (hot, peer) if side == "transmitter" else (peer, hot)
            else:
                s, d = pairs[int(rng.integers(len(pairs)))]
            yield PacketSpec(source=s, destination=d, weight=sampler(rng), arrival=arrival)

    return stream_packets(specs())


def contention_hotspot_workload(
    topology: TwoTierTopology,
    num_packets: int,
    side: str = "transmitter",
    hot_fraction: float = 0.9,
    arrival_rate: float = 3.0,
    weight_sampler: Optional[WeightSampler] = None,
    seed: RngLike = None,
) -> List[Packet]:
    """Materialised form of :func:`iter_contention_hotspot_workload`."""
    return list(
        iter_contention_hotspot_workload(
            topology,
            num_packets,
            side=side,
            hot_fraction=hot_fraction,
            arrival_rate=arrival_rate,
            weight_sampler=weight_sampler,
            seed=seed,
        )
    )


def iter_saturated_pairs_workload(
    topology: TwoTierTopology,
    num_packets: int,
    num_pairs: int = 8,
    hot_fraction: float = 0.95,
    arrival_rate: float = 3.0,
    weight_sampler: Optional[WeightSampler] = None,
    seed: RngLike = None,
) -> Iterator[Packet]:
    """Lazily yield a stream saturating a few node-disjoint edges.

    :func:`contention_hotspot_workload` saturates one *node*, so its backlog
    spreads thinly across every peer edge.  Here the hot set is
    ``num_pairs`` node-disjoint (source, destination) *pairs* (a greedy
    scan over the lexicographically sorted routable pairs, so the choice is
    deterministic for a fixed topology): a stable matching can serve every
    hot edge in every slot, yet each served edge still carries a pending
    queue that grows linearly in the backlog.  That makes the per-edge
    charge sets ``H_p(e)`` / ``L_p(e)`` as deep as they can get without
    inflating the matching itself — the worst case for any per-edge walk in
    the transmission step, and the cell behind benchmark E17.  The
    ``1 − hot_fraction`` background share over uniformly random routable
    pairs keeps the rest of the fabric lightly loaded.
    """
    n = check_positive_int(num_packets, "num_packets")
    k = check_positive_int(num_pairs, "num_pairs")
    if not 0.0 < hot_fraction <= 1.0:
        raise WorkloadError(f"hot_fraction must lie in (0, 1], got {hot_fraction}")
    if not arrival_rate > 0:
        raise WorkloadError(f"arrival_rate must be positive, got {arrival_rate}")
    rng = as_rng(seed)
    sampler = weight_sampler or pareto_weights(1.5)
    pairs = routable_pairs(topology)
    if not pairs:
        raise WorkloadError("topology has no routable pairs")

    hot_pairs: List[Tuple[str, str]] = []
    used: set = set()
    for s, d in sorted(pairs):
        if s in used or d in used:
            continue
        hot_pairs.append((s, d))
        used.update((s, d))
        if len(hot_pairs) == k:
            break
    if len(hot_pairs) < k:
        raise WorkloadError(
            f"topology admits only {len(hot_pairs)} node-disjoint routable "
            f"pairs, needed num_pairs={k}"
        )

    slots = iter_poisson_arrivals(arrival_rate, seed=rng)

    def specs() -> Iterator[PacketSpec]:
        for arrival in islice(slots, n):
            if rng.random() < hot_fraction:
                s, d = hot_pairs[int(rng.integers(len(hot_pairs)))]
            else:
                s, d = pairs[int(rng.integers(len(pairs)))]
            yield PacketSpec(source=s, destination=d, weight=sampler(rng), arrival=arrival)

    return stream_packets(specs())


def saturated_pairs_workload(
    topology: TwoTierTopology,
    num_packets: int,
    num_pairs: int = 8,
    hot_fraction: float = 0.95,
    arrival_rate: float = 3.0,
    weight_sampler: Optional[WeightSampler] = None,
    seed: RngLike = None,
) -> List[Packet]:
    """Materialised form of :func:`iter_saturated_pairs_workload`."""
    return list(
        iter_saturated_pairs_workload(
            topology,
            num_packets,
            num_pairs=num_pairs,
            hot_fraction=hot_fraction,
            arrival_rate=arrival_rate,
            weight_sampler=weight_sampler,
            seed=seed,
        )
    )


def iter_heavy_tailed_incast_workload(
    topology: TwoTierTopology,
    num_waves: int,
    senders_per_wave: int = 4,
    packets_per_sender: int = 2,
    wave_gap: int = 6,
    pareto_exponent: float = 1.2,
    seed: RngLike = None,
) -> Iterator[Packet]:
    """Lazily yield repeated incast waves with heavy-tailed packet weights.

    All waves target the destination reachable from the most sources (the
    natural incast victim); each wave draws a fresh random subset of its
    senders and every packet's weight from a Pareto law with the given
    exponent, so occasional extremely heavy packets land in the middle of
    synchronised photodetector contention.
    """
    waves = check_positive_int(num_waves, "num_waves")
    per_wave = check_positive_int(senders_per_wave, "senders_per_wave")
    per_sender = check_positive_int(packets_per_sender, "packets_per_sender")
    gap = check_positive_int(wave_gap, "wave_gap")
    if not pareto_exponent > 1.0:
        raise WorkloadError(
            f"pareto_exponent must exceed 1 (finite mean), got {pareto_exponent}"
        )
    rng = as_rng(seed)
    sampler = pareto_weights(pareto_exponent)
    senders = _senders_by_destination(topology)
    destination = max(sorted(senders), key=lambda d: len(senders[d]))
    pool = senders[destination]

    def specs() -> Iterator[PacketSpec]:
        slot = 1
        for _ in range(waves):
            chosen = list(pool)
            rng.shuffle(chosen)
            for source in chosen[: min(per_wave, len(chosen))]:
                for _ in range(per_sender):
                    yield PacketSpec(
                        source=source,
                        destination=destination,
                        weight=sampler(rng),
                        arrival=slot,
                    )
            slot += gap

    return stream_packets(specs())


def heavy_tailed_incast_workload(
    topology: TwoTierTopology,
    num_waves: int,
    senders_per_wave: int = 4,
    packets_per_sender: int = 2,
    wave_gap: int = 6,
    pareto_exponent: float = 1.2,
    seed: RngLike = None,
) -> List[Packet]:
    """Materialised form of :func:`iter_heavy_tailed_incast_workload`."""
    return list(
        iter_heavy_tailed_incast_workload(
            topology,
            num_waves,
            senders_per_wave=senders_per_wave,
            packets_per_sender=packets_per_sender,
            wave_gap=wave_gap,
            pareto_exponent=pareto_exponent,
            seed=seed,
        )
    )
