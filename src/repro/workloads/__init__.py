"""Online packet workloads: synthetic generators, traces and the paper's examples.

Every generator exists in two forms: a lazy ``iter_*`` generator yielding
packets in arrival order (the streaming data path; O(1) memory in the packet
count) and the original list-returning function, a thin materialising
wrapper over the iterator.
"""

from repro.workloads.adversarial import (
    contention_hotspot_workload,
    heavy_tailed_incast_workload,
    iter_contention_hotspot_workload,
    iter_heavy_tailed_incast_workload,
    iter_priority_inversion_workload,
    priority_inversion_workload,
)
from repro.workloads.arrival import (
    batch_arrivals,
    deterministic_arrivals,
    iter_batch_arrivals,
    iter_deterministic_arrivals,
    iter_onoff_arrivals,
    iter_poisson_arrivals,
    onoff_arrivals,
    poisson_arrivals,
    resolve_arrival_stream,
)
from repro.workloads.base import (
    Instance,
    PacketSpec,
    build_packets,
    normalize_arrival,
    routable_pairs,
    stream_packets,
)
from repro.workloads.bursty import (
    bursty_workload,
    incast_workload,
    iter_bursty_workload,
    iter_incast_workload,
)
from repro.workloads.paper_figures import (
    figure1_instance,
    figure1_packets,
    figure1_reported_costs,
    figure2_instances,
    figure2_packets_pi,
    figure2_packets_pi_prime,
    figure2_reported_impacts,
    iter_figure1_packets,
    iter_figure2_packets_pi,
    iter_figure2_packets_pi_prime,
)
from repro.workloads.skewed import (
    elephant_mice_workload,
    iter_elephant_mice_workload,
    iter_zipf_workload,
    zipf_pair_probabilities,
    zipf_workload,
)
from repro.workloads.synthetic import (
    all_to_all_workload,
    hotspot_workload,
    iter_all_to_all_workload,
    iter_hotspot_workload,
    iter_permutation_workload,
    iter_uniform_random_workload,
    permutation_workload,
    uniform_random_workload,
)
from repro.workloads.trace_io import (
    iter_packet_trace,
    iter_packet_trace_chunks,
    iter_packet_trace_jsonl,
    read_packet_trace,
    read_packet_trace_jsonl,
    write_packet_trace,
    write_packet_trace_jsonl,
)
from repro.workloads.weights import (
    bimodal_weights,
    constant_weights,
    pareto_weights,
    uniform_weights,
)

__all__ = [
    "Instance",
    "PacketSpec",
    "build_packets",
    "stream_packets",
    "normalize_arrival",
    "routable_pairs",
    "poisson_arrivals",
    "deterministic_arrivals",
    "batch_arrivals",
    "onoff_arrivals",
    "iter_poisson_arrivals",
    "iter_deterministic_arrivals",
    "iter_batch_arrivals",
    "iter_onoff_arrivals",
    "resolve_arrival_stream",
    "uniform_random_workload",
    "permutation_workload",
    "all_to_all_workload",
    "hotspot_workload",
    "iter_uniform_random_workload",
    "iter_permutation_workload",
    "iter_all_to_all_workload",
    "iter_hotspot_workload",
    "zipf_workload",
    "zipf_pair_probabilities",
    "elephant_mice_workload",
    "iter_zipf_workload",
    "iter_elephant_mice_workload",
    "bursty_workload",
    "incast_workload",
    "iter_bursty_workload",
    "iter_incast_workload",
    "priority_inversion_workload",
    "contention_hotspot_workload",
    "heavy_tailed_incast_workload",
    "iter_priority_inversion_workload",
    "iter_contention_hotspot_workload",
    "iter_heavy_tailed_incast_workload",
    "constant_weights",
    "uniform_weights",
    "pareto_weights",
    "bimodal_weights",
    "read_packet_trace",
    "write_packet_trace",
    "iter_packet_trace",
    "write_packet_trace_jsonl",
    "read_packet_trace_jsonl",
    "iter_packet_trace_jsonl",
    "iter_packet_trace_chunks",
    "figure1_packets",
    "figure1_instance",
    "figure1_reported_costs",
    "figure2_packets_pi",
    "figure2_packets_pi_prime",
    "figure2_instances",
    "figure2_reported_impacts",
    "iter_figure1_packets",
    "iter_figure2_packets_pi",
    "iter_figure2_packets_pi_prime",
]
