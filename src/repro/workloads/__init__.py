"""Online packet workloads: synthetic generators, traces and the paper's examples."""

from repro.workloads.arrival import (
    batch_arrivals,
    deterministic_arrivals,
    onoff_arrivals,
    poisson_arrivals,
)
from repro.workloads.base import (
    Instance,
    PacketSpec,
    build_packets,
    normalize_arrival,
    routable_pairs,
)
from repro.workloads.bursty import bursty_workload, incast_workload
from repro.workloads.paper_figures import (
    figure1_instance,
    figure1_packets,
    figure1_reported_costs,
    figure2_instances,
    figure2_packets_pi,
    figure2_packets_pi_prime,
    figure2_reported_impacts,
)
from repro.workloads.skewed import (
    elephant_mice_workload,
    zipf_pair_probabilities,
    zipf_workload,
)
from repro.workloads.synthetic import (
    all_to_all_workload,
    hotspot_workload,
    permutation_workload,
    uniform_random_workload,
)
from repro.workloads.trace_io import read_packet_trace, write_packet_trace
from repro.workloads.weights import (
    bimodal_weights,
    constant_weights,
    pareto_weights,
    uniform_weights,
)

__all__ = [
    "Instance",
    "PacketSpec",
    "build_packets",
    "normalize_arrival",
    "routable_pairs",
    "poisson_arrivals",
    "deterministic_arrivals",
    "batch_arrivals",
    "onoff_arrivals",
    "uniform_random_workload",
    "permutation_workload",
    "all_to_all_workload",
    "hotspot_workload",
    "zipf_workload",
    "zipf_pair_probabilities",
    "elephant_mice_workload",
    "bursty_workload",
    "incast_workload",
    "constant_weights",
    "uniform_weights",
    "pareto_weights",
    "bimodal_weights",
    "read_packet_trace",
    "write_packet_trace",
    "figure1_packets",
    "figure1_instance",
    "figure1_reported_costs",
    "figure2_packets_pi",
    "figure2_packets_pi_prime",
    "figure2_instances",
    "figure2_reported_impacts",
]
