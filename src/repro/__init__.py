"""repro — reproduction of *Scheduling Opportunistic Links in Two-Tiered
Reconfigurable Datacenters* (Kulkarni, Schmid, Schmidt; SPAA 2021).

The package provides:

* :mod:`repro.network` — the two-tier hybrid topology model (Section II);
* :mod:`repro.core` — the online algorithm ALG: worst-case-impact dispatcher
  plus greedy stable-matching scheduler (Section III);
* :mod:`repro.simulation` — a slot-level simulation engine with the paper's
  weighted fractional-latency objective;
* :mod:`repro.workloads` — synthetic datacenter workloads and the paper's
  worked examples (Figures 1–2);
* :mod:`repro.baselines` — online comparators and offline optima;
* :mod:`repro.analysis` — the LP relaxation, dual fitting and
  competitive-ratio machinery (Figures 3–4, Lemmas 1–5, Theorem 1);
* :mod:`repro.experiments` — the experiment harness behind the benchmarks;
* :mod:`repro.scenarios` — the declarative scenario matrix: named
  topology × workload × policy × seed grids (including adversarial
  charging-argument stressors) evaluated through the engine's single-pass
  multi-policy path;
* :mod:`repro.search` — automated adversarial scenario search: a
  deterministic evolutionary loop over the scenario parameter space that
  hunts ALG's empirical worst cases (``repro search run``);
* :mod:`repro.faults` — deterministic hardware-fault injection: seedable
  schedules of laser/photodetector/edge failures, recoveries and rate
  degradations that every engine degrades under bit-identically.

Quickstart
----------
>>> from repro import OpportunisticLinkScheduler, simulate
>>> from repro.network import projector_fabric
>>> from repro.workloads import zipf_workload
>>> topo = projector_fabric(num_racks=4)
>>> packets = zipf_workload(topo, num_packets=50, seed=1)
>>> result = simulate(topo, OpportunisticLinkScheduler(), packets)
>>> result.all_delivered
True
"""

from repro.core.algorithm import (
    OpportunisticLinkScheduler,
    make_paper_policy,
    theoretical_competitive_ratio,
)
from repro.core.interfaces import Dispatcher, Policy, Scheduler
from repro.core.packet import Packet
from repro.faults import FaultEvent, FaultSchedule, seeded_fault_schedule
from repro.network.topology import TwoTierTopology
from repro.simulation.engine import ENGINE_MODES, EngineConfig, SimulationEngine, simulate, simulate_multi
from repro.simulation.results import SimulationResult
from repro.workloads.base import Instance

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Packet",
    "TwoTierTopology",
    "Instance",
    "Policy",
    "Dispatcher",
    "Scheduler",
    "OpportunisticLinkScheduler",
    "make_paper_policy",
    "theoretical_competitive_ratio",
    "SimulationEngine",
    "ENGINE_MODES",
    "EngineConfig",
    "SimulationResult",
    "simulate",
    "simulate_multi",
    "FaultEvent",
    "FaultSchedule",
    "seeded_fault_schedule",
]
