"""Pluggable objectives scoring how adversarial a candidate scenario is.

An objective answers one question about a candidate: *how bad does ALG look
on this scenario?*  Two measurement regimes are provided:

* :class:`EmpiricalRatioObjective` — ALG's total weighted latency divided by
  the best baseline's, measured per cell through the engine's single-pass
  multi-policy path (:meth:`~repro.simulation.engine.SimulationEngine.run_multi`
  via the scenario matrix machinery), so a candidate's whole policy race
  consumes one workload generation.  Works at any scenario scale.
* :class:`BruteForceRatioObjective` — ALG's cost divided by the *exact*
  offline optimum from :func:`repro.baselines.brute_force.brute_force_optimal`.
  Only feasible on tiny cells (the ``tiny`` space); candidates exceeding the
  exhaustive-search size limits score 0.0 instead of failing the search.

Both replicate each candidate over several cell seeds and apply the same
confidence filter: the reported score is the **minimum** ratio across
replicates, so a candidate only scores what it achieves on *every* draw —
lucky single-seed outliers don't poison the hall of fame.  Objectives are
small frozen dataclasses of primitives, hence picklable into experiment
runner workers and JSON round-trippable into checkpoints
(:func:`objective_to_json` / :func:`objective_from_json`).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Tuple, Union

from repro.baselines.brute_force import brute_force_optimal
from repro.exceptions import AnalysisError, SearchError
from repro.scenarios.spec import Scenario
from repro.simulation.engine import EngineConfig, SimulationEngine
from repro.workloads.base import Instance

__all__ = [
    "ObjectiveResult",
    "EmpiricalRatioObjective",
    "BruteForceRatioObjective",
    "Objective",
    "objective_to_json",
    "objective_from_json",
]

#: Finite stand-in for "ALG pays, the reference pays nothing" — keeps scores
#: JSON-serialisable and totally ordered without dragging infinities around.
_RATIO_CAP = 1e9


def _safe_ratio(cost: float, reference: float) -> float:
    """``cost / reference`` guarded against degenerate zero-cost cells."""
    if reference > 1e-12:
        return min(cost / reference, _RATIO_CAP)
    return 1.0 if cost <= 1e-12 else _RATIO_CAP


def _filter_scores(ratios: Tuple[float, ...]) -> Tuple[float, float]:
    """Confidence filter: (score = worst-case-for-the-claim min, mean)."""
    if not ratios:
        return 0.0, 0.0
    return min(ratios), sum(ratios) / len(ratios)


@dataclass(frozen=True)
class ObjectiveResult:
    """Per-candidate measurement.

    Attributes
    ----------
    score:
        The confidence-filtered objective value (min ratio across replicate
        seeds); the quantity the search maximises.
    ratios:
        One empirical/exact ratio per replicate seed, in seed order.
    mean_ratio:
        Arithmetic mean of ``ratios`` (reported, never optimised).
    """

    score: float
    ratios: Tuple[float, ...]
    mean_ratio: float


@dataclass(frozen=True)
class EmpiricalRatioObjective:
    """ALG cost over the best baseline cost, per-seed, shared-stream.

    Attributes
    ----------
    baselines:
        Policy names raced against ALG; the per-seed reference cost is the
        minimum over them (the strongest competitor on that draw).
    retention:
        Engine retention mode for the evaluation runs (``"aggregate"``
        bounds each cell's memory; summaries are bit-identical to full).
    """

    baselines: Tuple[str, ...] = ("fifo", "maxweight", "islip", "shortest-path")
    retention: str = "aggregate"

    def __post_init__(self) -> None:
        if not self.baselines:
            raise SearchError("EmpiricalRatioObjective needs at least one baseline")

    def scenario_policies(self) -> Tuple[str, ...]:
        """Policies a candidate scenario must race (ALG plus the baselines)."""
        return ("alg",) + tuple(self.baselines)

    def evaluate(self, scenario: Scenario) -> ObjectiveResult:
        """Score ``scenario`` over its cell seeds (one ratio per seed)."""
        ratios = []
        for seed in scenario.seeds:
            topology, packets, policies = scenario.materialise(seed)
            engine = SimulationEngine(
                topology,
                config=EngineConfig(
                    speed=scenario.speed,
                    max_slots=scenario.max_slots,
                    retention=self.retention,
                ),
            )
            results = engine.run_multi(packets, policies)
            alg_cost = results["alg"].total_weighted_latency
            best_baseline = min(
                results[name].total_weighted_latency for name in self.baselines
            )
            ratios.append(_safe_ratio(alg_cost, best_baseline))
        score, mean = _filter_scores(tuple(ratios))
        return ObjectiveResult(score=score, ratios=tuple(ratios), mean_ratio=mean)


@dataclass(frozen=True)
class BruteForceRatioObjective:
    """ALG cost over the exact offline optimum on tiny cells.

    Attributes
    ----------
    max_total_chunks, max_route_combinations:
        Size guards forwarded to :func:`brute_force_optimal`; a candidate
        exceeding them scores 0.0 (filtered out) rather than aborting the
        search.
    """

    max_total_chunks: int = 12
    max_route_combinations: int = 5000

    def scenario_policies(self) -> Tuple[str, ...]:
        """Only ALG runs online; the reference is the offline optimum."""
        return ("alg",)

    def evaluate(self, scenario: Scenario) -> ObjectiveResult:
        """Score ``scenario`` over its cell seeds (exact ratio per seed)."""
        ratios = []
        for seed in scenario.seeds:
            topology, packets, policies = scenario.materialise(seed)
            packet_list = list(packets)
            instance = Instance(
                name=scenario.name, topology=topology, packets=packet_list
            )
            try:
                optimum = brute_force_optimal(
                    instance,
                    max_total_chunks=self.max_total_chunks,
                    max_route_combinations=self.max_route_combinations,
                )
            except AnalysisError:
                # Candidate outgrew the exhaustive solver: filter, don't fail.
                ratios.append(0.0)
                continue
            engine = SimulationEngine(
                topology,
                policies["alg"],
                EngineConfig(speed=scenario.speed, max_slots=scenario.max_slots),
            )
            alg_cost = engine.run(packet_list).total_weighted_latency
            ratios.append(_safe_ratio(alg_cost, optimum.cost))
        score, mean = _filter_scores(tuple(ratios))
        return ObjectiveResult(score=score, ratios=tuple(ratios), mean_ratio=mean)


Objective = Union[EmpiricalRatioObjective, BruteForceRatioObjective]

_OBJECTIVE_KINDS: Dict[str, type] = {
    "empirical": EmpiricalRatioObjective,
    "brute-force": BruteForceRatioObjective,
}


def objective_to_json(objective: Objective) -> Dict[str, Any]:
    """Serialise an objective for checkpoint metadata."""
    for kind, cls in _OBJECTIVE_KINDS.items():
        if isinstance(objective, cls):
            payload = asdict(objective)
            if "baselines" in payload:
                payload["baselines"] = list(payload["baselines"])
            return {"kind": kind, **payload}
    raise SearchError(f"cannot serialise objective of type {type(objective).__name__}")


def objective_from_json(data: Dict[str, Any]) -> Objective:
    """Reconstruct an objective from checkpoint metadata (or CLI kind names)."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind not in _OBJECTIVE_KINDS:
        raise SearchError(
            f"unknown objective kind {kind!r}; choose from {sorted(_OBJECTIVE_KINDS)}"
        )
    if "baselines" in payload:
        payload["baselines"] = tuple(payload["baselines"])
    return _OBJECTIVE_KINDS[kind](**payload)
