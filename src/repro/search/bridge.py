"""Promoting discovered worst cases into the scenario registry.

The hall of fame a search produces is plain data; this module closes the
loop back to :mod:`repro.scenarios` by rebuilding each archived candidate's
declarative :class:`~repro.scenarios.spec.Scenario` — same content-addressed
name, hence the same topology/workload draws the objective scored — and
optionally registering it, so discovered stressors become first-class cells:
they show up in ``repro scenarios list``, can join grids, and can be pinned
by the golden harness exactly like the hand-derived ones.

For archival beyond a session, pair this with the ``trace`` workload kind:
record a discovered scenario's packets with
:func:`repro.workloads.trace_io.write_packet_trace_jsonl` and register a
``WorkloadSpec("trace", {"path": …})`` scenario replaying them verbatim.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.scenarios.library import register_scenario
from repro.scenarios.spec import Scenario
from repro.search.loop import HallOfFameEntry
from repro.search.space import ParamSpace

__all__ = ["hall_of_fame_to_scenarios"]


def hall_of_fame_to_scenarios(
    entries: Sequence[HallOfFameEntry],
    space: ParamSpace,
    seeds: Tuple[int, ...] = (0,),
    policies: Tuple[str, ...] = ("alg", "fifo", "maxweight", "islip", "shortest-path"),
    register: bool = False,
    replace: bool = False,
    limit: Optional[int] = None,
) -> List[Scenario]:
    """Rebuild (and optionally register) the scenarios behind a hall of fame.

    Parameters
    ----------
    entries:
        Hall-of-fame entries (e.g. ``result.hall_of_fame``), best first.
    space:
        The :class:`ParamSpace` the search ran over (its builder defines the
        params → scenario mapping; entries from a different space raise).
    seeds, policies:
        Cell seeds and policy race of the promoted scenarios — promotion
        widens the replicate seeds or the policy set without re-searching.
    register:
        When true, each scenario is added to the global registry (so it
        appears in ``repro scenarios list`` and the ``full`` grid).
    replace:
        Forwarded to :func:`~repro.scenarios.library.register_scenario`;
        allows re-promoting after a repeated search.
    limit:
        Promote only the best ``limit`` entries (default: all).
    """
    chosen = list(entries)[: limit if limit is not None else len(entries)]
    scenarios: List[Scenario] = []
    for entry in chosen:
        scenario = space.build_scenario(
            entry.params, seeds=seeds, policies=policies, name=entry.scenario_name
        )
        if register:
            register_scenario(scenario, replace=replace)
        scenarios.append(scenario)
    return scenarios
