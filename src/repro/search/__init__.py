"""Automated adversarial scenario search (``repro.search``).

ROADMAP's "adversarial search" item made concrete: a deterministic,
seedable evolutionary loop that perturbs scenario parameters and keeps the
cells maximising ALG's empirical ratio, turning worst-case hunting from a
manual charging-argument derivation into a parallel, reproducible,
resumable subsystem.

* :mod:`repro.search.space` — typed bounded knobs over scenario recipes
  (:class:`ParamSpace`, the ``adversarial`` and ``tiny`` named spaces);
* :mod:`repro.search.objective` — pluggable measurements
  (:class:`EmpiricalRatioObjective` over shared-stream ``run_multi`` cells,
  :class:`BruteForceRatioObjective` against the exact offline optimum);
* :mod:`repro.search.loop` — the generational :class:`AdversarialSearch`
  driver (elitism, hall of fame, JSONL checkpoint/resume, parallel
  evaluation through the experiment runner);
* :mod:`repro.search.bridge` — :func:`hall_of_fame_to_scenarios`, promoting
  discovered cells into the scenario registry.

The CLI front end is ``repro search list|run|resume|report``.
"""

from repro.search.bridge import hall_of_fame_to_scenarios
from repro.search.loop import (
    BUDGETS,
    AdversarialSearch,
    HallOfFameEntry,
    SearchConfig,
    SearchResult,
    read_checkpoint,
    resume_search,
)
from repro.search.objective import (
    BruteForceRatioObjective,
    EmpiricalRatioObjective,
    Objective,
    ObjectiveResult,
    objective_from_json,
    objective_to_json,
)
from repro.search.space import (
    ChoiceKnob,
    FloatKnob,
    IntKnob,
    ParamSpace,
    adversarial_space,
    candidate_digest,
    candidate_key,
    get_space,
    register_space,
    space_names,
    tiny_space,
)

__all__ = [
    "AdversarialSearch",
    "SearchConfig",
    "SearchResult",
    "HallOfFameEntry",
    "BUDGETS",
    "read_checkpoint",
    "resume_search",
    "EmpiricalRatioObjective",
    "BruteForceRatioObjective",
    "Objective",
    "ObjectiveResult",
    "objective_to_json",
    "objective_from_json",
    "ParamSpace",
    "IntKnob",
    "FloatKnob",
    "ChoiceKnob",
    "adversarial_space",
    "tiny_space",
    "get_space",
    "register_space",
    "space_names",
    "candidate_key",
    "candidate_digest",
    "hall_of_fame_to_scenarios",
]
